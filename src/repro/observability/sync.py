"""Sync tracing: the recording half of the thread-tier concurrency
certifier (DESIGN.md §14).

The serving stack's thread tier — :class:`~repro.api.service.KernelService`'s
dispatcher Condition, :class:`~repro.api.store.PlanStore`'s RLock, the
compiled cache's double-checked locks, autotune's per-key locks, the net
server's per-connection threads — synchronises through a handful of
primitives. This module wraps those primitives so that, **under test**, a
process-global :class:`SyncTracer` records every synchronisation event
(lock acquire/release, thread fork/join, Condition wait, Future
set/result, queue put/get) plus every access to a ``# guarded-by:``
annotated attribute. :mod:`repro.analysis.happens_before` replays the
recorded trace through vector clocks and certifies that no two
conflicting guarded accesses were unordered — turning the declarative
``guarded-by`` annotations of the static layer into checked facts.

The production fast path stays free: the :func:`make_lock` /
:func:`make_rlock` / :func:`make_condition` factories hand back plain
:mod:`threading` primitives unless a tracer is installed at construction
time, so an untraced process pays nothing. A traced primitive that
outlives its tracer degrades to a cheap ``is None`` check per operation.

Like :mod:`repro.observability.faults`, installation is process-global
and test-scoped (``with sync_tracing("name") as tracer: ...``); the
schedule-exploration hooks (:attr:`SyncTracer.schedule_hook`) are what
:mod:`repro.analysis.explore` perturbs to drive inequivalent thread
interleavings through the same sync points.

Trace documents are JSON (:data:`SYNC_TRACE_VERSION`):

``{"sync_trace_version": 1, "name": ..., "threads": {ident: name},
"events": [{"seq", "op", "thread", ...}]}``

where ``op`` is one of ``acquire release fork child child_end join
notify fut_set fut_get q_put q_get read write``. ``read``/``write``
events carry the attribute's canonical ``name`` (``Class.attr``), the
owning instance ``obj`` id, the declared ``guard`` and the list of lock
names ``held`` by the accessing thread — diagnostics for the checker's
violation reports.
"""

from __future__ import annotations

import concurrent.futures as _futures
import inspect
import json
import os
import queue as _queue
import re
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator

__all__ = [
    "SYNC_TRACE_VERSION",
    "SyncTracer",
    "TracedCondition",
    "TracedLock",
    "TracedRLock",
    "active_sync_tracer",
    "default_instrumented_classes",
    "guarded_attrs_of",
    "install_sync_tracer",
    "instrument_guarded",
    "load_sync_trace",
    "make_condition",
    "make_lock",
    "make_rlock",
    "save_sync_trace",
    "sync_tracing",
    "uninstall_sync_tracer",
]

#: Bump when the trace document layout changes incompatibly; the
#: happens-before checker refuses traces whose version it does not know.
SYNC_TRACE_VERSION = 1

#: Environment variable naming a directory where the test fixtures dump
#: recorded sync traces (mirrors ``MATROX_TRACE_DIR`` for engine traces).
SYNC_TRACE_DIR_ENV = "MATROX_SYNC_TRACE_DIR"

_tracer: "SyncTracer | None" = None
_install_lock = threading.Lock()


def active_sync_tracer() -> "SyncTracer | None":
    """The installed tracer (None in production — the hooks' fast path)."""
    return _tracer


class SyncTracer:
    """Appends synchronisation events to an in-memory trace.

    Thread-safe: every traced primitive in the process funnels through
    :meth:`record`, which assigns a globally monotone ``seq`` under one
    internal (untraced) lock — so the trace's sequence order is
    consistent with the real execution order of the recorded points.
    """

    def __init__(self, name: str = "sync") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._events: list[dict[str, Any]] = []
        self._seq = 0
        self._tokens = 0
        self._threads: dict[int, str] = {}
        self._held: dict[int, list[tuple[str, int]]] = {}
        #: Optional ``hook(point, thread_name)`` called *before* each
        #: traced blocking operation — the schedule explorer's sleep
        #: injection point. Must be fast and must not touch traced
        #: primitives.
        self.schedule_hook: Callable[[str, str], None] | None = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def next_token(self) -> int:
        """Fresh token tying a fork event to its child/join events."""
        with self._lock:
            self._tokens += 1
            return self._tokens

    def schedule_point(self, point: str) -> None:
        hook = self.schedule_hook
        if hook is not None:
            hook(point, threading.current_thread().name)

    def record(self, op: str, *, name: str | None = None,
               obj: int | None = None, token: int | None = None,
               guard: str | None = None) -> None:
        thread = threading.current_thread()
        ident = thread.ident or 0
        with self._lock:
            self._seq += 1
            ev: dict[str, Any] = {"seq": self._seq, "op": op,
                                  "thread": ident}
            self._threads.setdefault(ident, thread.name)
            if name is not None:
                ev["name"] = name
            if obj is not None:
                ev["obj"] = obj
            if token is not None:
                ev["token"] = token
            if guard is not None:
                ev["guard"] = guard
            if op == "acquire" and name is not None and obj is not None:
                self._held.setdefault(ident, []).append((name, obj))
            elif op == "release" and obj is not None:
                held = self._held.get(ident, [])
                for i in range(len(held) - 1, -1, -1):
                    if held[i][1] == obj:
                        del held[i]
                        break
            elif op in ("read", "write"):
                ev["held"] = [h[0] for h in self._held.get(ident, [])]
            self._events.append(ev)

    def thread_count(self) -> int:
        with self._lock:
            return len(self._threads)

    def to_doc(self) -> dict[str, Any]:
        """Snapshot the trace as a JSON-ready document."""
        with self._lock:
            return {
                "sync_trace_version": SYNC_TRACE_VERSION,
                "name": self.name,
                "threads": {str(k): v for k, v in self._threads.items()},
                "events": [dict(ev) for ev in self._events],
            }


# --------------------------------------------------------------------------
# Traced primitives + factories
# --------------------------------------------------------------------------

class TracedLock:
    """``threading.Lock`` recording acquire/release into the tracer."""

    __slots__ = ("_lock", "name")

    def __init__(self, name: str) -> None:
        self._lock = threading.Lock()
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        tracer = _tracer
        if tracer is not None:
            tracer.schedule_point(f"acquire:{self.name}")
        got = self._lock.acquire(blocking, timeout)
        if got and tracer is not None:
            tracer.record("acquire", name=self.name, obj=id(self))
        return got

    def release(self) -> None:
        tracer = _tracer
        if tracer is not None:
            tracer.record("release", name=self.name, obj=id(self))
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()


class TracedRLock:
    """``threading.RLock`` recording only the *outermost* acquire and the
    *final* release — the replay layer never sees reentrancy."""

    __slots__ = ("_lock", "name", "_owner", "_count")

    def __init__(self, name: str) -> None:
        self._lock = threading.RLock()
        self.name = name
        self._owner: int | None = None
        self._count = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        tracer = _tracer
        ident = threading.get_ident()
        outer = self._owner != ident
        if tracer is not None and outer:
            tracer.schedule_point(f"acquire:{self.name}")
        got = self._lock.acquire(blocking, timeout)
        if got:
            if self._owner == ident:
                self._count += 1
            else:
                # _owner/_count are only mutated by the holding thread.
                self._owner = ident
                self._count = 1
                if tracer is not None:
                    tracer.record("acquire", name=self.name, obj=id(self))
        return got

    def release(self) -> None:
        if self._owner == threading.get_ident() and self._count > 1:
            self._count -= 1
            self._lock.release()
            return
        tracer = _tracer
        if tracer is not None:
            tracer.record("release", name=self.name, obj=id(self))
        # Reset ownership *before* the real release: afterwards another
        # thread may already be inside its own acquire().
        self._owner = None
        self._count = 0
        self._lock.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()


class TracedCondition:
    """``threading.Condition`` whose lock traffic — including the
    release/reacquire pair hidden inside ``wait()`` — is recorded."""

    __slots__ = ("_cv", "name")

    def __init__(self, name: str) -> None:
        self._cv = threading.Condition()
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        tracer = _tracer
        if tracer is not None:
            tracer.schedule_point(f"acquire:{self.name}")
        got = self._cv.acquire(blocking, timeout)
        if got and tracer is not None:
            tracer.record("acquire", name=self.name, obj=id(self))
        return got

    def release(self) -> None:
        tracer = _tracer
        if tracer is not None:
            tracer.record("release", name=self.name, obj=id(self))
        self._cv.release()

    def wait(self, timeout: float | None = None) -> bool:
        tracer = _tracer
        if tracer is not None:
            # wait() releases the lock: publish our clock first so the
            # notifier's acquire picks up the edge, then log the
            # reacquire on wakeup.
            tracer.record("release", name=self.name, obj=id(self))
        got = self._cv.wait(timeout)
        tracer = _tracer
        if tracer is not None:
            tracer.record("acquire", name=self.name, obj=id(self))
        return got

    def wait_for(self, predicate: Callable[[], Any],
                 timeout: float | None = None) -> Any:
        # Re-implemented over self.wait() so every hidden release/
        # reacquire cycle lands in the trace (stdlib delegates to its
        # own wait, which we could not observe).
        import time as _time
        endtime: float | None = None
        result = predicate()
        while not result:
            if timeout is not None:
                if endtime is None:
                    endtime = _time.monotonic() + timeout
                waittime = endtime - _time.monotonic()
                if waittime <= 0:
                    break
                self.wait(waittime)
            else:
                self.wait(None)
            result = predicate()
        return result

    def notify(self, n: int = 1) -> None:
        tracer = _tracer
        if tracer is not None:
            # Informational only: the happens-before edge is carried by
            # the release that follows, not by notify itself.
            tracer.record("notify", name=self.name, obj=id(self._cv))
        self._cv.notify(n)

    def notify_all(self) -> None:
        tracer = _tracer
        if tracer is not None:
            tracer.record("notify", name=self.name, obj=id(self._cv))
        self._cv.notify_all()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()


def make_lock(name: str) -> "threading.Lock | TracedLock":
    """A mutex named for the concurrency certifier.

    Plain ``threading.Lock`` unless a :class:`SyncTracer` is installed at
    construction time (i.e. always, outside tests): production pays
    nothing for the tracing capability.
    """
    if _tracer is not None:
        return TracedLock(name)
    return threading.Lock()


def make_rlock(name: str) -> "threading.RLock | TracedRLock":
    if _tracer is not None:
        return TracedRLock(name)
    return threading.RLock()


def make_condition(name: str) -> "threading.Condition | TracedCondition":
    if _tracer is not None:
        return TracedCondition(name)
    return threading.Condition()


# --------------------------------------------------------------------------
# Thread / Future / Queue patching (installed with the tracer)
# --------------------------------------------------------------------------

_TOKEN_ATTR = "_matrox_sync_token"
_orig: dict[str, Any] = {}


def _patch() -> None:
    if _orig:
        return
    _orig["thread_start"] = threading.Thread.start
    _orig["thread_join"] = threading.Thread.join
    _orig["fut_set_result"] = _futures.Future.set_result
    _orig["fut_set_exception"] = _futures.Future.set_exception
    _orig["fut_result"] = _futures.Future.result
    _orig["q_put"] = _queue.Queue.put
    _orig["q_get"] = _queue.Queue.get

    def start(thread: threading.Thread) -> None:
        tracer = _tracer
        if tracer is not None:
            token = tracer.next_token()
            setattr(thread, _TOKEN_ATTR, token)
            tracer.record("fork", token=token)
            orig_run = thread.run

            def run() -> None:
                t = _tracer
                if t is tracer:
                    t.record("child", token=token)
                try:
                    orig_run()
                finally:
                    t = _tracer
                    if t is tracer:
                        t.record("child_end", token=token)

            thread.run = run  # type: ignore[method-assign]
        _orig["thread_start"](thread)

    def join(thread: threading.Thread,
             timeout: float | None = None) -> None:
        _orig["thread_join"](thread, timeout)
        tracer = _tracer
        token = getattr(thread, _TOKEN_ATTR, None)
        if tracer is not None and token is not None \
                and not thread.is_alive():
            tracer.record("join", token=token)

    def set_result(fut: Any, result: Any) -> None:
        tracer = _tracer
        if tracer is not None:
            tracer.record("fut_set", obj=id(fut))
        _orig["fut_set_result"](fut, result)

    def set_exception(fut: Any, exc: Any) -> None:
        tracer = _tracer
        if tracer is not None:
            tracer.record("fut_set", obj=id(fut))
        _orig["fut_set_exception"](fut, exc)

    def result(fut: Any, timeout: float | None = None) -> Any:
        try:
            return _orig["fut_result"](fut, timeout)
        finally:
            tracer = _tracer
            if tracer is not None and fut.done():
                tracer.record("fut_get", obj=id(fut))

    def put(q: Any, item: Any, block: bool = True,
            timeout: float | None = None) -> None:
        tracer = _tracer
        if tracer is not None:
            tracer.schedule_point("q_put")
            tracer.record("q_put", obj=id(q))
        _orig["q_put"](q, item, block, timeout)

    def get(q: Any, block: bool = True,
            timeout: float | None = None) -> Any:
        item = _orig["q_get"](q, block, timeout)
        tracer = _tracer
        if tracer is not None:
            tracer.record("q_get", obj=id(q))
        return item

    threading.Thread.start = start  # type: ignore[method-assign]
    threading.Thread.join = join  # type: ignore[method-assign]
    _futures.Future.set_result = set_result  # type: ignore[method-assign]
    _futures.Future.set_exception = set_exception  # type: ignore[method-assign]
    _futures.Future.result = result  # type: ignore[method-assign]
    _queue.Queue.put = put  # type: ignore[method-assign]
    _queue.Queue.get = get  # type: ignore[method-assign]


def _unpatch() -> None:
    if not _orig:
        return
    threading.Thread.start = _orig.pop("thread_start")
    threading.Thread.join = _orig.pop("thread_join")
    _futures.Future.set_result = _orig.pop("fut_set_result")
    _futures.Future.set_exception = _orig.pop("fut_set_exception")
    _futures.Future.result = _orig.pop("fut_result")
    _queue.Queue.put = _orig.pop("q_put")
    _queue.Queue.get = _orig.pop("q_get")
    _orig.clear()


def install_sync_tracer(tracer: SyncTracer) -> SyncTracer:
    """Install ``tracer`` process-globally (tests only; see sync_tracing)."""
    global _tracer
    with _install_lock:
        if _tracer is not None:
            raise RuntimeError(
                "a SyncTracer is already installed; recorded schedules "
                "must not overlap (uninstall_sync_tracer() first)")
        _patch()
        _tracer = tracer
    return tracer


def uninstall_sync_tracer() -> None:
    """Remove any installed tracer and undo the patches (idempotent)."""
    global _tracer
    with _install_lock:
        _tracer = None
        _unpatch()


@contextmanager
def sync_tracing(name: str = "sync") -> Iterator[SyncTracer]:
    """``with sync_tracing("scenario") as tracer:`` — scoped install."""
    tracer = SyncTracer(name)
    install_sync_tracer(tracer)
    try:
        yield tracer
    finally:
        uninstall_sync_tracer()


# --------------------------------------------------------------------------
# Guarded-attribute instrumentation
# --------------------------------------------------------------------------

# Same comment convention as repro.analysis.lint's guarded registry
# (kept textually in sync; lint owns the static side, this regex feeds
# the dynamic side and must not import the analysis layer — the
# observability package stays dependency-light).
_GUARDED_BY_RE = re.compile(
    r"self\.(?P<attr>\w+)\s*(?::[^=]+)?=.*"
    r"#\s*guarded-by:\s*(?P<lock>[\w.\[\]'\"]+)")

_MISSING = object()


def guarded_attrs_of(cls: type) -> dict[str, str]:
    """``{attr: lock}`` for every ``# guarded-by:`` line in the class."""
    try:
        src = inspect.getsource(cls)
    except (OSError, TypeError):
        return {}
    return {m.group("attr"): m.group("lock")
            for m in _GUARDED_BY_RE.finditer(src)}


def instrument_guarded(cls: type,
                       attrs: dict[str, str] | None = None,
                       ) -> Callable[[], None]:
    """Replace ``cls``'s ``# guarded-by:`` attributes with recording
    properties; returns a zero-argument undo callable.

    Works for plain classes (values live in the instance ``__dict__``
    under the real attribute name, so pre-existing instances keep their
    state) and for ``__slots__`` classes (the saved member descriptor
    does the storage). Each read/write lands in the active tracer as a
    ``read``/``write`` event keyed ``ClassName.attr``.
    """
    if attrs is None:
        attrs = guarded_attrs_of(cls)
    saved: dict[str, Any] = {}
    cname = cls.__name__
    for attr, guard in sorted(attrs.items()):
        prior = inspect.getattr_static(cls, attr, _MISSING)
        slot = prior if hasattr(prior, "__set__") \
            and hasattr(prior, "__get__") and prior is not _MISSING else None

        def fget(obj: Any, *, _a: str = attr, _s: Any = slot,
                 _g: str = guard, _n: str = f"{cname}.{attr}") -> Any:
            tracer = _tracer
            if tracer is not None:
                tracer.record("read", name=_n, obj=id(obj), guard=_g)
            if _s is not None:
                return _s.__get__(obj, type(obj))
            try:
                return obj.__dict__[_a]
            except KeyError:
                raise AttributeError(_a) from None

        def fset(obj: Any, value: Any, *, _a: str = attr, _s: Any = slot,
                 _g: str = guard, _n: str = f"{cname}.{attr}") -> None:
            tracer = _tracer
            if tracer is not None:
                tracer.record("write", name=_n, obj=id(obj), guard=_g)
            if _s is not None:
                _s.__set__(obj, value)
            else:
                obj.__dict__[_a] = value

        saved[attr] = prior
        setattr(cls, attr, property(fget, fset))

    def undo() -> None:
        for attr, prior in saved.items():
            if prior is _MISSING:
                delattr(cls, attr)
            else:
                setattr(cls, attr, prior)

    return undo


def default_instrumented_classes() -> list[type]:
    """The thread-tier classes whose guarded attributes the recording
    fixtures instrument (everything with cross-thread guarded state)."""
    from repro.api.service import KernelService
    from repro.api.store import PlanStore
    from repro.codegen import compiled as _compiled
    from repro.net.server import AuditLog, KernelServer
    from repro.net.tenants import Tenant

    return [KernelService, PlanStore, Tenant, KernelServer, AuditLog,
            _compiled.CompiledCache, _compiled._Runtime]


# --------------------------------------------------------------------------
# Trace I/O
# --------------------------------------------------------------------------

def save_sync_trace(doc: dict[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(doc))
    os.replace(tmp, path)
    return path


def load_sync_trace(path: str | Path) -> dict[str, Any]:
    with open(path) as fh:
        doc = json.load(fh)
    version = doc.get("sync_trace_version")
    if version != SYNC_TRACE_VERSION:
        raise ValueError(
            f"unsupported sync trace version {version!r} in {path} "
            f"(expected {SYNC_TRACE_VERSION})")
    return doc


_dump_counter = 0
_dump_lock = threading.Lock()


def maybe_dump_sync_trace(tracer: SyncTracer,
                          directory: str | Path | None = None) -> Path | None:
    """Dump ``tracer`` to the :data:`SYNC_TRACE_DIR_ENV` directory (or
    ``directory``) when the trace actually exercised concurrency —
    at least two threads recorded — else return None."""
    global _dump_counter
    if directory is None:
        directory = os.environ.get(SYNC_TRACE_DIR_ENV)
    if not directory:
        return None
    if tracer.thread_count() < 2:
        return None
    with _dump_lock:
        _dump_counter += 1
        n = _dump_counter
    stem = re.sub(r"[^\w.-]+", "_", tracer.name).strip("_") or "trace"
    return save_sync_trace(tracer.to_doc(),
                           Path(directory) / f"{stem}.{n}.synctrace.json")
