"""A minimal, dependency-free JSON-Schema subset validator.

The run-manifest schema (``run_manifest.schema.json``) is a checked-in
contract: CI schema-validates every manifest a smoke run emits, and the
Hypothesis property suite validates generated manifests against it. The
container bakes in no ``jsonschema`` package, so this module implements
exactly the subset the schema uses — ``type`` (including type lists),
``properties``, ``required``, ``additionalProperties`` (boolean form),
``items`` (single-schema form), ``enum``, ``pattern``, and ``minimum``
— and refuses schemas that use anything else, so a schema edit can
never silently stop being enforced.
"""

from __future__ import annotations

import re
from typing import Any

__all__ = ["SchemaError", "validate_json"]

_KNOWN_KEYWORDS = {
    "$schema", "$id", "title", "description",
    "type", "properties", "required", "additionalProperties", "items",
    "enum", "pattern", "minimum",
}

_TYPES: dict[str, type[object] | tuple[type[object], ...]] = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


class SchemaError(ValueError):
    """The schema itself uses a keyword this validator does not cover."""


def _type_ok(value: object, names: str | list[str]) -> bool:
    names = [names] if isinstance(names, str) else list(names)
    for name in names:
        if name not in _TYPES:
            raise SchemaError(f"unknown type {name!r} in schema")
        py = _TYPES[name]
        # bool is an int subclass in Python but not in JSON Schema.
        if isinstance(value, bool):
            if name == "boolean":
                return True
            continue
        if isinstance(value, py):
            return True
    return False


def validate_json(doc: object, schema: dict[str, Any],
                  path: str = "$") -> list[str]:
    """Validate ``doc`` against the schema subset; returns error strings.

    An empty list means the document conforms. Raises
    :class:`SchemaError` if the *schema* uses an unsupported keyword —
    loudly, so the contract never rots into a no-op.
    """
    if not isinstance(schema, dict):
        raise SchemaError(f"schema at {path} must be an object")
    unknown = sorted(set(schema) - _KNOWN_KEYWORDS)
    if unknown:
        raise SchemaError(
            f"schema at {path} uses unsupported keyword(s) {unknown}")

    errors: list[str] = []
    if "type" in schema and not _type_ok(doc, schema["type"]):
        errors.append(
            f"{path}: expected type {schema['type']}, got "
            f"{type(doc).__name__}")
        return errors  # further keyword checks assume the right type
    if "enum" in schema and doc not in schema["enum"]:
        errors.append(f"{path}: {doc!r} not in enum {schema['enum']}")
    if ("pattern" in schema and isinstance(doc, str)
            and re.search(schema["pattern"], doc) is None):
        errors.append(
            f"{path}: {doc!r} does not match pattern "
            f"{schema['pattern']!r}")
    if "minimum" in schema and isinstance(doc, (int, float)) \
            and not isinstance(doc, bool) and doc < schema["minimum"]:
        errors.append(f"{path}: {doc} < minimum {schema['minimum']}")

    if isinstance(doc, dict):
        props = schema.get("properties", {})
        for name in schema.get("required", ()):
            if name not in doc:
                errors.append(f"{path}: missing required property {name!r}")
        for name, value in doc.items():
            if name in props:
                errors.extend(
                    validate_json(value, props[name], f"{path}.{name}"))
            elif schema.get("additionalProperties", True) is False:
                errors.append(f"{path}: unexpected property {name!r}")
    if isinstance(doc, list) and "items" in schema:
        for i, value in enumerate(doc):
            errors.extend(
                validate_json(value, schema["items"], f"{path}[{i}]"))
    return errors
