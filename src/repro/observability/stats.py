"""Unified stats collection and ``/metrics``-style text export.

Counters already exist at every layer — :class:`~repro.api.store.StoreStats`,
:class:`~repro.api.session.SessionStats`, the
:class:`~repro.api.service.KernelService` dispatcher, the executor's
engine cache, and the autotuner — but each spoke its own dialect. This
module flattens them into one nested dict (:func:`collect_stats`) and
renders that as Prometheus-style ``name value`` lines
(:func:`metrics_text`), which is what ``repro stats`` prints and what a
future wire protocol would serve at ``/metrics``.

:func:`store_inventory` is the *offline* view: it reads a store
directory's manifests raw (tolerating version skew and rot — an
inventory is a report, not a serve path), so ``repro stats --store``
works on any store, including ones this build cannot load.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["collect_stats", "metrics_text", "store_inventory"]


def collect_stats(*, session=None, service=None, executor=None,
                  store=None) -> dict:
    """One nested dict of every counter the given components expose.

    Components imply their dependencies: a service implies its session,
    a session implies its store and executor. Explicit arguments win.
    """
    from repro.analysis.counters import analysis_counters
    from repro.observability.manifest import manifest_write_failures

    if service is not None and session is None:
        session = service.session
    if session is not None:
        store = store if store is not None else session.store
        executor = executor if executor is not None else session._executor
    out: dict = {"manifest_write_failures": manifest_write_failures(),
                 "analysis": analysis_counters()}
    if store is not None:
        out["store"] = store.cache_info()
    if session is not None:
        out["session"] = session.stats.as_dict()
    if executor is not None:
        out["engines"] = executor.engine_stats()
        out["autotune"] = executor.autotune_stats()
    if service is not None:
        out["service"] = service.stats(include_autotune=False)
    return out


def metrics_text(stats: dict, prefix: str = "repro") -> str:
    """Flatten nested counters into sorted ``<prefix>_<path> <value>``
    lines (numbers only; booleans as 0/1 — the Prometheus exposition
    shape, minus type metadata)."""
    lines: list[str] = []

    def walk(obj, path: str) -> None:
        if isinstance(obj, bool):
            lines.append(f"{path} {int(obj)}")
        elif isinstance(obj, (int, float)):
            value = f"{obj:.6g}" if isinstance(obj, float) else str(obj)
            lines.append(f"{path} {value}")
        elif isinstance(obj, dict):
            for key in obj:
                walk(obj[key], f"{path}_{_sanitize(key)}")

    walk(stats, prefix)
    return "\n".join(sorted(lines)) + "\n" if lines else ""


def _sanitize(key) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in str(key))


def store_inventory(directory) -> dict:
    """Offline per-tier inventory of a PlanStore directory.

    Reads manifests raw — unreadable or version-skewed entries are
    *counted*, not raised, because an inventory must describe exactly
    the stores ``repro gc`` exists to clean up.
    """
    from repro.api.store import STORE_VERSION

    directory = Path(directory)
    tiers: dict[str, dict] = {}
    unreadable = 0
    version_skew = 0
    total_bytes = 0
    entries = 0
    for manifest_path in sorted(directory.glob("*.json")):
        if ".tmp." in manifest_path.name:
            continue
        size = manifest_path.stat().st_size
        payload = manifest_path.with_suffix(".npz")
        if payload.exists():
            size += payload.stat().st_size
        total_bytes += size
        try:
            manifest = json.loads(manifest_path.read_text())
            tier = manifest["tier"]
            version = manifest["store_version"]
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            unreadable += 1
            continue
        entries += 1
        if version != STORE_VERSION:
            version_skew += 1
        bucket = tiers.setdefault(str(tier), {"entries": 0, "bytes": 0})
        bucket["entries"] += 1
        bucket["bytes"] += size
    run_manifests = len(list((directory / "manifests").glob("run-*.json")))
    return {
        "directory": str(directory),
        "entries": entries,
        "bytes": total_bytes,
        "tiers": tiers,
        "unreadable": unreadable,
        "version_skew": version_skew,
        "run_manifests": run_manifests,
    }
