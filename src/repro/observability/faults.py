"""Deterministic fault injection: the chaos layer's control plane.

Chaos tests need to break the system at *named interleaving points*, not
with sleeps and luck (the dynamic-partial-order-reduction argument: the
failure schedule is part of the test's identity, so it must be
enumerable and replayable). A :class:`FaultPlan` names exactly which
fault fires where:

* ``kill_worker=(phase, wid)`` — SIGKILL worker ``wid`` at the start of
  the named :class:`~repro.core.parallel.ProcessEngine` barrier phase
  (``"near_and_leaf_up"``, ``"far"``, ``"leaf_down"``), simulating a
  worker dying mid-protocol;
* ``corrupt_tier="p1"|"hmatrix"|"profile"`` — flip the payload bytes of
  the next :class:`~repro.api.store.PlanStore` load of that tier
  *between* its SHA-256 verification and its decode, simulating an
  artifact rotting in the verify-to-decode window (the TOCTOU case a
  plain on-disk tamper test cannot reach).

Each fault fires **once** (the plan records what fired in
:attr:`FaultPlan.fired`), so a recovery retry runs against a healthy
system by construction. Production code consults the process-global
plan through :func:`active_fault_plan`; with no plan installed (the
default, always, outside tests) the hooks are a single ``None`` check.

This module imports nothing from the rest of the package so the hook
sites (:mod:`repro.core.parallel`, :mod:`repro.api.store`) can import
it without cycles.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "FaultPlan",
    "active_fault_plan",
    "clear_fault_plan",
    "inject_faults",
    "install_fault_plan",
]

#: Barrier phases a ``kill_worker`` fault may name (the ProcessEngine
#: protocol's three worker phases, in order).
BARRIER_PHASES = ("near_and_leaf_up", "far", "leaf_down")


@dataclass
class FaultPlan:
    """One enumerated failure schedule (each fault fires at most once).

    Thread-safe: the dispatcher thread of a
    :class:`~repro.api.service.KernelService` and a test's main thread
    may consult the same plan.
    """

    kill_worker: tuple[str, int] | None = None
    corrupt_tier: str | None = None
    fired: list[str] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def __post_init__(self):
        if self.kill_worker is not None:
            phase, wid = self.kill_worker
            if phase not in BARRIER_PHASES:
                raise ValueError(
                    f"kill_worker phase must be one of {BARRIER_PHASES}, "
                    f"got {phase!r}")
            if wid < 0:
                raise ValueError(f"kill_worker id must be >= 0, got {wid}")

    def take_kill(self, phase: str) -> int | None:
        """Worker id to SIGKILL at ``phase``, or None. Arms only once."""
        with self._lock:
            if self.kill_worker is None or self.kill_worker[0] != phase:
                return None
            _, wid = self.kill_worker
            self.kill_worker = None
            self.fired.append(f"kill_worker:{phase}:{wid}")
            return wid

    def take_corrupt(self, tier: str) -> bool:
        """True exactly once for the named store tier's next load."""
        with self._lock:
            if self.corrupt_tier != tier:
                return False
            self.corrupt_tier = None
            self.fired.append(f"corrupt:{tier}")
            return True


_active: FaultPlan | None = None
_install_lock = threading.Lock()


def active_fault_plan() -> FaultPlan | None:
    """The installed plan (None in production — the hooks' fast path)."""
    return _active


def install_fault_plan(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` process-globally (tests only; see inject_faults)."""
    global _active
    with _install_lock:
        if _active is not None:
            raise RuntimeError(
                "a FaultPlan is already installed; chaos schedules must "
                "not overlap (clear_fault_plan() first)")
        _active = plan
    return plan


def clear_fault_plan() -> None:
    """Remove any installed plan (idempotent)."""
    global _active
    with _install_lock:
        _active = None


@contextmanager
def inject_faults(plan: FaultPlan):
    """``with inject_faults(FaultPlan(...)) as plan:`` — scoped install."""
    install_fault_plan(plan)
    try:
        yield plan
    finally:
        clear_fault_plan()
