"""Production observability + chaos hardening (DESIGN.md section 10).

Three concerns, one package:

* **RunManifest** (:mod:`repro.observability.manifest`) — a
  deterministic, schema-validated JSON record of what a run did
  (counters, autotune decisions with margins, version pins, host
  signature), written best-effort next to the store at
  Session/KernelService close;
* **stats export** (:mod:`repro.observability.stats`) — one nested
  counter dict across PlanStore/Session/KernelService/Executor/tuner,
  rendered as ``/metrics``-style text (``repro stats``);
* **fault injection** (:mod:`repro.observability.faults`) — the chaos
  layer: :class:`FaultPlan` names the exact interleaving point where a
  worker dies or an artifact rots, so the failure-model tests are
  enumerated schedules, not sleeps.
"""

from repro.observability.faults import (
    FaultPlan,
    active_fault_plan,
    clear_fault_plan,
    inject_faults,
    install_fault_plan,
)
from repro.observability.manifest import (
    MANIFEST_VERSION,
    RunManifest,
    build_run_manifest,
    canonical_json,
    load_manifest_schema,
    manifest_write_failures,
    validate_run_manifest,
    write_run_manifest,
)
from repro.observability.schema import SchemaError, validate_json
from repro.observability.stats import (
    collect_stats,
    metrics_text,
    store_inventory,
)

__all__ = [
    "MANIFEST_VERSION",
    "RunManifest",
    "build_run_manifest",
    "canonical_json",
    "load_manifest_schema",
    "manifest_write_failures",
    "validate_run_manifest",
    "write_run_manifest",
    "SchemaError",
    "validate_json",
    "collect_stats",
    "metrics_text",
    "store_inventory",
    "FaultPlan",
    "active_fault_plan",
    "clear_fault_plan",
    "inject_faults",
    "install_fault_plan",
]
