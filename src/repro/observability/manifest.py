"""RunManifest: a deterministic JSON record of what a run actually did.

The artifact-manifest pattern: at Session/KernelService close, write one
JSON document next to the store recording per-run counters (store
hits/misses, inspection builds, per-batch latency stats), every
autotune decision with its margin, the version pins of the code that
produced the artifacts, and the host signature. The write is
**best-effort**: a failed manifest write never fails the run, it only
increments :func:`manifest_write_failures`.

Determinism contract (property-tested): serialization is canonical —
keys sorted at every level, fixed separators, trailing newline — so two
runs with identical inputs produce **byte-identical** JSON, and the
``run_id`` is the content address (SHA-256 prefix) of the body. Nothing
in this module samples a clock: ``created`` is an explicit input, so
the caller decides whether the manifest is timestamped or reproducible.

The document schema is checked in as ``run_manifest.schema.json`` and
enforced by :func:`validate_run_manifest` (CI schema-validates the
manifest emitted by the serve smoke run).
"""

from __future__ import annotations

import hashlib
import json
import platform
import threading
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.observability.schema import validate_json

__all__ = [
    "MANIFEST_VERSION",
    "RunManifest",
    "build_run_manifest",
    "canonical_json",
    "load_manifest_schema",
    "manifest_write_failures",
    "validate_run_manifest",
    "write_run_manifest",
]

#: Schema version of the manifest document (bump on incompatible change).
MANIFEST_VERSION = 1

_SCHEMA_PATH = Path(__file__).with_name("run_manifest.schema.json")
_schema_cache: dict | None = None

_failures_lock = threading.Lock()
_write_failures = 0


def canonical_json(obj) -> str:
    """The one serialization every manifest uses: sorted keys, stable
    separators, ASCII, trailing newline — byte-identical for equal
    inputs regardless of dict insertion order."""
    return json.dumps(obj, sort_keys=True, indent=2,
                      separators=(",", ": "), ensure_ascii=True) + "\n"


def load_manifest_schema() -> dict:
    """The checked-in run-manifest JSON schema (cached)."""
    global _schema_cache
    if _schema_cache is None:
        _schema_cache = json.loads(_SCHEMA_PATH.read_text())
    return _schema_cache


def validate_run_manifest(doc: dict) -> list[str]:
    """Schema-conformance errors for a manifest document (empty = valid)."""
    return validate_json(doc, load_manifest_schema())


def manifest_write_failures() -> int:
    """How many best-effort manifest writes have failed in this process."""
    with _failures_lock:
        return _write_failures


def _count_write_failure() -> None:
    global _write_failures
    with _failures_lock:
        _write_failures += 1


def _version_pins() -> dict:
    import repro
    from repro.api.store import STORE_VERSION
    from repro.core.io import _FORMAT_VERSION
    from repro.tuning.profile import PROFILE_FORMAT_VERSION

    return {
        "repro": repro.__version__,
        "store": int(STORE_VERSION),
        "io": int(_FORMAT_VERSION),
        "profile": int(PROFILE_FORMAT_VERSION),
        "numpy": np.__version__,
        "python": platform.python_version(),
    }


@dataclass(frozen=True)
class RunManifest:
    """An immutable manifest document (see :func:`build_run_manifest`)."""

    doc: dict

    @property
    def run_id(self) -> str:
        return self.doc["run_id"]

    def to_json(self) -> str:
        return canonical_json(self.doc)

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        doc = json.loads(text)
        if not isinstance(doc, dict):
            raise ValueError("run manifest must be a JSON object")
        return cls(doc)

    def validate(self) -> None:
        """Raise ``ValueError`` unless the document conforms to the schema."""
        problems = validate_run_manifest(self.doc)
        if problems:
            raise ValueError(
                "run manifest fails schema validation:\n  "
                + "\n  ".join(problems))

    @classmethod
    def build(cls, *, stats: dict, decisions=(), versions: dict | None = None,
              host: dict | None = None, extra: dict | None = None,
              created: float | None = None) -> "RunManifest":
        """Assemble + content-address a manifest from already-collected
        parts (``run_id`` is the SHA-256 prefix of the canonical body,
        so equal inputs name equal manifests)."""
        from repro.tuning.profile import host_signature

        body = {
            "manifest_version": MANIFEST_VERSION,
            "created": created,
            "versions": versions if versions is not None else _version_pins(),
            "host": host if host is not None else host_signature(),
            "stats": dict(stats),
            "decisions": list(decisions),
        }
        if extra:
            body["extra"] = dict(extra)
        digest = hashlib.sha256(canonical_json(body).encode()).hexdigest()
        return cls({**body, "run_id": digest[:16]})


def _autotune_decisions(tuner) -> list[dict]:
    """Every resolved profile as a JSON-able decision record, in a
    deterministic order (fingerprint, then width bucket)."""
    if tuner is None:
        return []
    decisions = [
        {
            "hmatrix_fp": prof.hmatrix_fp,
            "width_bucket": int(prof.width_bucket),
            "policy": dict(prof.policy),
            "source": prof.source,
            "margin": float(prof.margin),
            "trials": int(prof.trials),
        }
        for prof in tuner.profiles()
    ]
    decisions.sort(key=lambda d: (d["hmatrix_fp"], d["width_bucket"],
                                  sorted(d["policy"].items())))
    return decisions


def build_run_manifest(*, session=None, service=None,
                       extra: dict | None = None,
                       created: float | None = None) -> RunManifest:
    """Collect a manifest from a live Session and/or KernelService.

    Pulls the counters already kept by every layer — the session's
    :class:`~repro.api.store.StoreStats` and
    :class:`~repro.api.session.SessionStats`, the executor's engine
    cache, the autotuner's decisions with margins, and (when a service
    is given) the dispatcher's latency/batching stats.
    """
    from repro.analysis.counters import analysis_counters

    if service is not None and session is None:
        session = service.session
    # What the run *proved*, not just what it did: write-set and race
    # certification outcomes (deterministic counters, so the manifest's
    # byte-identity contract holds).
    stats: dict = {"manifest_write_failures": manifest_write_failures(),
                   "analysis": analysis_counters()}
    decisions: list = []
    if session is not None:
        stats["store"] = session.store.cache_info()
        stats["session"] = session.stats.as_dict()
        stats["engines"] = session._executor.engine_stats()
        stats["autotune"] = session._executor.autotune_stats()
        decisions = _autotune_decisions(session._executor._autotuner)
    if service is not None:
        stats["service"] = service.stats(include_autotune=False)
    return RunManifest.build(stats=stats, decisions=decisions, extra=extra,
                             created=created)


def write_run_manifest(manifest: RunManifest, target) -> Path | None:
    """Best-effort write: the manifest lands at ``target`` (a file path,
    or a directory to receive ``run-<run_id>.json``) atomically via
    temp-file + rename. Returns the written path, or ``None`` on any
    failure — a manifest must never fail the run it describes; failures
    only increment :func:`manifest_write_failures`."""
    try:
        target = Path(target)
        if target.is_dir() or target.suffix != ".json":
            target = target / f"run-{manifest.run_id}.json"
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(manifest.to_json())
        tmp.replace(target)
        return target
    except OSError:
        _count_write_failure()
        return None
