"""Importance sampling of per-node candidate lists."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import require


def importance_sample(
    candidates: np.ndarray,
    weights: np.ndarray | None,
    size: int,
    rng=None,
) -> np.ndarray:
    """Pick ``size`` candidates without replacement, biased by ``weights``.

    If the candidate list is already no larger than ``size`` it is returned
    as-is. ``weights=None`` means uniform. Weights are normalised defensively
    so callers can pass unnormalised importance scores (e.g. inverse
    distances).
    """
    candidates = np.asarray(candidates, dtype=np.intp)
    require(size >= 0, "size must be non-negative")
    if len(candidates) <= size:
        return np.sort(candidates)
    rng = as_rng(rng)
    if weights is None:
        chosen = rng.choice(len(candidates), size=size, replace=False)
    else:
        w = np.asarray(weights, dtype=np.float64)
        require(len(w) == len(candidates), "weights must match candidates")
        require((w >= 0).all(), "weights must be non-negative")
        total = w.sum()
        chosen = (
            rng.choice(len(candidates), size=size, replace=False)
            if total <= 0 else
            rng.choice(len(candidates), size=size, replace=False,
                       p=w / total))
    return np.sort(candidates[chosen])
