"""Per-node sampling plan: the output of the sampling module.

The plan maps every tree node to the original-order indices of its far-field
sample points. It depends only on the points and the CTree (plus RNG seed),
so it is computed once in ``inspector_p1`` and reused verbatim across kernel
and accuracy changes — the paper measures this reuse saving 89.2% of mnist's
compression time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sampling.importance import importance_sample
from repro.sampling.neighbors import exact_knn, node_neighbor_lists
from repro.sampling.rptree import rptree_knn
from repro.tree.cluster_tree import ClusterTree
from repro.utils.rng import as_rng
from repro.utils.validation import require


@dataclass
class SamplingPlan:
    """Sample indices per node (original point order) + provenance metadata."""

    samples: dict[int, np.ndarray]
    k: int
    method: str
    seed: int | None = None
    stats: dict = field(default_factory=dict)

    def for_node(self, v: int) -> np.ndarray:
        return self.samples[v]

    def num_samples(self, v: int) -> int:
        return len(self.samples[v])


def build_sampling_plan(
    tree: ClusterTree,
    k: int = 32,
    num_samples: int | None = None,
    exact_threshold: int = 4096,
    n_trees: int = 4,
    random_fraction: float = 0.25,
    seed=None,
) -> SamplingPlan:
    """Build the per-node far-field sample plan.

    Parameters
    ----------
    tree:
        The cluster tree (only geometry + clustering are consulted).
    k:
        Point-level neighbour count — the paper's *sampling size* (default 32).
    num_samples:
        Target sample-set size per node. Defaults to ``4 * k``, which keeps
        the ID row count comfortably above typical sranks.
    exact_threshold:
        Below this N, exact k-NN is used; above it, random-projection trees
        (matching the paper: exact k-NN "can be costly ... use a greedy
        search based on random projection trees").
    random_fraction:
        Fraction of each node's sample budget drawn uniformly from the rest
        of the point set instead of the neighbour candidates; guards the ID
        against a sample set that is *all* near-field.
    """
    n = tree.num_points
    require(n >= 2, "need at least two points")
    k_eff = min(k, n - 1)
    target = num_samples if num_samples is not None else 4 * k
    rng = as_rng(seed)

    if n <= exact_threshold:
        knn = exact_knn(tree.points, k_eff)
        method = "exact"
    else:
        knn = rptree_knn(tree.points, k_eff, n_trees=n_trees, seed=seed)
        method = "rptree"

    candidates = node_neighbor_lists(tree, knn)
    centers = tree.centers

    samples: dict[int, np.ndarray] = {}
    in_node = np.zeros(n, dtype=bool)
    for v in range(tree.num_nodes):
        own = tree.node_point_indices(v)
        outside = n - len(own)
        if outside == 0:
            samples[v] = np.empty(0, dtype=np.intp)  # root: no far field
            continue
        budget = min(target, outside)
        n_random = int(round(budget * random_fraction))
        n_neighbor = budget - n_random

        cand = candidates[v]
        # Nearer candidates dominate the far-field row space for decaying
        # (and especially singular) kernels. The k closest candidates are
        # taken deterministically — a barely-admissible far partner MUST be
        # represented or its near-singular rows are invisible to the ID —
        # and the rest of the neighbour budget is importance-sampled by
        # inverse distance to the node center.
        if len(cand) > 0 and n_neighbor > 0:
            d = np.linalg.norm(tree.points[cand] - centers[v], axis=1)
            order = np.argsort(d, kind="stable")
            n_sure = min(k, n_neighbor, len(cand))
            sure = cand[order[:n_sure]]
            rest = cand[order[n_sure:]]
            n_rand_nbr = n_neighbor - n_sure
            if len(rest) > 0 and n_rand_nbr > 0:
                w = 1.0 / (d[order[n_sure:]] + 1e-12)
                extra_nbr = importance_sample(rest, w, n_rand_nbr, rng)
            else:
                extra_nbr = np.empty(0, dtype=np.intp)
            picked = np.concatenate([sure, extra_nbr])
        else:
            picked = np.empty(0, dtype=np.intp)

        # Top up with uniform samples from the complement.
        needed = budget - len(picked)
        if needed > 0:
            in_node[own] = True
            in_node[picked] = True
            pool = np.flatnonzero(~in_node)
            in_node[own] = False
            in_node[picked] = False
            extra = (rng.choice(pool, size=needed, replace=False)
                     if len(pool) > needed else pool)
            picked = np.concatenate([picked, extra])
        samples[v] = np.unique(picked.astype(np.intp))

    stats = {
        "knn_method": method,
        "k": k_eff,
        "target": target,
        "mean_samples": float(np.mean([len(s) for s in samples.values()])),
    }
    return SamplingPlan(samples=samples, k=k_eff, method=method,
                        seed=seed if isinstance(seed, int) else None, stats=stats)
