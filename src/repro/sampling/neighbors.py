"""Exact k-NN (small N) and per-node neighbour-list merging."""

from __future__ import annotations

import numpy as np

from repro.kernels.distance import pairwise_sq_distances
from repro.tree.cluster_tree import ClusterTree
from repro.utils.validation import check_points, require


def exact_knn(points, k: int, chunk: int = 2048) -> np.ndarray:
    """Exact k-nearest-neighbour indices (excluding self), shape (N, k).

    Chunked over query rows so the distance block stays cache-resident;
    used directly for small N and as ground truth for the rp-tree tests.
    """
    pts = check_points(points)
    n = len(pts)
    require(1 <= k < n, f"k must be in [1, N-1], got k={k}, N={n}")
    out = np.empty((n, k), dtype=np.intp)
    for start in range(0, n, chunk):
        block = pts[start : start + chunk]
        d2 = pairwise_sq_distances(block, pts)
        # Exclude self-matches by pushing the diagonal to +inf.
        rows = np.arange(len(block))
        d2[rows, start + rows] = np.inf
        # argpartition then sort the k winners for deterministic order.
        part = np.argpartition(d2, k - 1, axis=1)[:, :k]
        part_d = np.take_along_axis(d2, part, axis=1)
        order = np.argsort(part_d, axis=1, kind="stable")
        out[start : start + len(block)] = np.take_along_axis(part, order, axis=1)
    return out


def node_neighbor_lists(tree: ClusterTree, knn: np.ndarray) -> dict[int, np.ndarray]:
    """Per-node candidate sample lists from the point-level k-NN table.

    For node ``v``, the candidates are the union of its member points'
    neighbours minus the node's own points — i.e. the *near field just
    outside the node*, which importance sampling then thins. Indices are in
    original (input) point order, matching ``knn``.
    """
    lists: dict[int, np.ndarray] = {}
    n = tree.num_points
    member = np.zeros(n, dtype=bool)
    for v in range(tree.num_nodes):
        own = tree.node_point_indices(v)
        member[own] = True
        cand = np.unique(knn[own].ravel())
        cand = cand[~member[cand]]
        lists[v] = cand
        member[own] = False
    return lists
