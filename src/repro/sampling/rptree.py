"""Approximate k-NN with random-projection trees.

Each tree recursively splits the point set at the median of a random
projection until leaves are small, then brute-forces neighbours inside each
leaf. Several independent trees are merged; because any fixed pair of nearby
points lands in the same leaf of *some* tree with high probability, the
merged result approaches exact k-NN as trees are added — the greedy-search
construction the paper cites (Dasgupta & Freund) for high-dimensional points.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.distance import pairwise_sq_distances
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import check_points, require


def _leaf_partition(pts: np.ndarray, rng, leaf_size: int) -> list[np.ndarray]:
    """Indices grouped into rp-tree leaves (iterative median splits)."""
    stack = [np.arange(len(pts), dtype=np.intp)]
    leaves: list[np.ndarray] = []
    while stack:
        idx = stack.pop()
        if len(idx) <= leaf_size:
            leaves.append(idx)
            continue
        direction = rng.normal(size=pts.shape[1])
        nrm = np.linalg.norm(direction)
        if nrm == 0.0:
            direction[0] = 1.0
            nrm = 1.0
        proj = pts[idx] @ (direction / nrm)
        half = len(idx) // 2
        order = np.argsort(proj, kind="stable")
        stack.append(idx[order[:half]])
        stack.append(idx[order[half:]])
    return leaves


def _merge_leaf_neighbors(
    pts: np.ndarray,
    leaves: list[np.ndarray],
    k: int,
    best_d: np.ndarray,
    best_i: np.ndarray,
) -> None:
    """Brute-force each leaf and fold results into the running best-k tables."""
    for idx in leaves:
        if len(idx) < 2:
            continue
        d2 = pairwise_sq_distances(pts[idx], pts[idx])
        np.fill_diagonal(d2, np.inf)
        kk = min(k, len(idx) - 1)
        part = np.argpartition(d2, kk - 1, axis=1)[:, :kk]
        part_d = np.take_along_axis(d2, part, axis=1)
        for row, point in enumerate(idx):
            cand_i = idx[part[row]]
            cand_d = part_d[row]
            # Merge candidates into this point's current best-k list.
            merged_i = np.concatenate([best_i[point], cand_i])
            merged_d = np.concatenate([best_d[point], cand_d])
            merged_i, keep = np.unique(merged_i, return_index=True)
            merged_d = merged_d[keep]
            top = np.argsort(merged_d, kind="stable")[:k]
            best_i[point, : len(top)] = merged_i[top]
            best_d[point, : len(top)] = merged_d[top]


def rptree_knn(
    points,
    k: int,
    n_trees: int = 4,
    leaf_size: int = 128,
    seed=None,
) -> np.ndarray:
    """Approximate k-NN indices (N, k) via merged random-projection trees."""
    pts = check_points(points)
    n = len(pts)
    require(1 <= k < n, f"k must be in [1, N-1], got k={k}, N={n}")
    require(n_trees >= 1, "need at least one tree")
    leaf_size = max(leaf_size, k + 1)

    best_d = np.full((n, k), np.inf)
    best_i = np.full((n, k), -1, dtype=np.intp)
    for rng in spawn_rngs(seed, n_trees):
        leaves = _leaf_partition(pts, rng, leaf_size)
        _merge_leaf_neighbors(pts, leaves, k, best_d, best_i)

    # Fill any residual -1 slots (possible when duplicate points collapse
    # candidates) with random distinct indices so downstream code never
    # sees invalid ids.
    rng = as_rng(seed)
    for row in range(n):
        missing = np.flatnonzero(best_i[row] < 0)
        if len(missing) == 0:
            continue
        pool = np.setdiff1d(rng.permutation(n), np.append(best_i[row], row))
        best_i[row, missing] = pool[: len(missing)]
    return best_i


def knn_recall(approx: np.ndarray, exact: np.ndarray) -> float:
    """Fraction of true neighbours recovered — the rp-tree quality metric."""
    hits = 0
    for a, e in zip(approx, exact, strict=True):
        hits += len(np.intersect1d(a, e))
    return hits / exact.size
