"""Sampling module of the modular compression pipeline.

Takes only the points and the CTree (never the kernel or accuracy — this is
what makes it reusable across kernel/accuracy changes, Section 5 of the
paper) and produces, per tree node, the list of far-field sample points used
to cheapen interpolative decomposition:

1. an approximate k-nearest-neighbour list per point, built greedily with
   random-projection trees (Dasgupta-Freund style),
2. per-node neighbour lists, merging member points' neighbours and dropping
   the node's own points,
3. importance sampling selecting the final per-node sample set.
"""

from repro.sampling.importance import importance_sample
from repro.sampling.neighbors import exact_knn, node_neighbor_lists
from repro.sampling.rptree import rptree_knn
from repro.sampling.plan import SamplingPlan, build_sampling_plan

__all__ = [
    "exact_knn",
    "rptree_knn",
    "node_neighbor_lists",
    "importance_sample",
    "SamplingPlan",
    "build_sampling_plan",
]
