"""Input-validation helpers used across the public API surface.

These raise early with actionable messages instead of letting malformed
inputs surface as cryptic NumPy broadcasting errors deep inside compression.
"""

from __future__ import annotations

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_points(points, *, name: str = "points") -> np.ndarray:
    """Validate and canonicalise a point set to a C-contiguous float64 (N, d) array."""
    arr = np.ascontiguousarray(points, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    require(arr.ndim == 2, f"{name} must be a 2-D (N, d) array, got ndim={arr.ndim}")
    require(arr.shape[0] > 0, f"{name} must contain at least one point")
    require(arr.shape[1] > 0, f"{name} must have at least one coordinate per point")
    require(np.isfinite(arr).all(), f"{name} must be finite (no NaN/inf)")
    return arr


def check_positive(value, *, name: str) -> None:
    """Require a strictly positive scalar."""
    if not np.isscalar(value) or not value > 0:
        raise ValueError(f"{name} must be a positive scalar, got {value!r}")


def check_probability(value, *, name: str) -> None:
    """Require a scalar in the closed interval [0, 1]."""
    if not np.isscalar(value) or not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
