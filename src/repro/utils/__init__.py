"""Shared utilities: validation helpers and deterministic RNG handling."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import (
    check_points,
    check_positive,
    check_probability,
    require,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "check_points",
    "check_positive",
    "check_probability",
    "require",
]
