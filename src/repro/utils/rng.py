"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (two-means partitioning,
random-projection trees, importance sampling, synthetic datasets) accepts a
``seed`` argument that is normalised through :func:`as_rng` so experiments are
reproducible bit-for-bit across runs.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def as_rng(seed=None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    ``Generator`` (returned unchanged so callers can thread one generator
    through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``seed``.

    Used when a component fans work out (e.g. one RNG per projection tree)
    and needs streams that do not collide.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    root = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    return [np.random.default_rng(s) for s in root.spawn(n)]
