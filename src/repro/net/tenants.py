"""Per-tenant namespaces: isolated stores, owned services, quotas.

One :class:`Tenant` owns one :class:`~repro.api.service.KernelService`
whose :class:`~repro.api.store.PlanStore` root is
``<server root>/tenants/<name>/store`` — tenants never share artifacts,
so one tenant's compiled plans (and tuning profiles) are invisible to
every other tenant even for byte-identical point sets. The directory
layout is the unit of isolation *and* of operations: ``repro stats
--store <root> --tenant <name>`` and ``repro gc`` work per tenant.

Quotas are fixed sliding windows per tenant: at most ``max_requests``
requests and ``max_bytes`` request-body bytes in any trailing
``window_seconds``. Exceeding either raises :class:`QuotaExceeded`
(→ HTTP 429 with ``Retry-After``). Accounting is wall-clock based and
deliberately simple — the goal is to keep one noisy tenant from starving
the dispatcher, not billing-grade metering.
"""

from __future__ import annotations

import re
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from repro.observability.sync import make_lock

__all__ = ["Tenant", "TenantQuota", "TenantRegistry", "QuotaExceeded",
           "valid_tenant_name"]

#: Tenant names are path components; this shape keeps them that way.
_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


def valid_tenant_name(name) -> bool:
    """True for names safe to use as a store directory component.

    Rejects path traversal outright (``..``, separators) and anything
    not matching ``[A-Za-z0-9][A-Za-z0-9_.-]{0,63}``.
    """
    return (isinstance(name, str) and bool(_TENANT_NAME.match(name))
            and ".." not in name)


class QuotaExceeded(Exception):
    """A tenant exhausted its request or byte window (HTTP 429)."""

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        #: Seconds until the oldest charge leaves the window.
        self.retry_after = max(float(retry_after), 0.0)


@dataclass(frozen=True)
class TenantQuota:
    """Sliding-window limits; ``None`` disables a dimension."""

    max_requests: int | None = None
    max_bytes: int | None = None
    window_seconds: float = 60.0

    def __post_init__(self):
        if self.max_requests is not None and self.max_requests < 1:
            raise ValueError(f"max_requests must be >= 1 or None, got "
                             f"{self.max_requests}")
        if self.max_bytes is not None and self.max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1 or None, got "
                             f"{self.max_bytes}")
        if self.window_seconds <= 0:
            raise ValueError(f"window_seconds must be > 0, got "
                             f"{self.window_seconds}")

    @property
    def enabled(self) -> bool:
        return self.max_requests is not None or self.max_bytes is not None


class Tenant:
    """One tenant's serving state: service, store root, quota window."""

    def __init__(self, name: str, root: Path, *, quota: TenantQuota,
                 service_kwargs: dict):
        from repro.api.service import KernelService

        self.name = name
        self.root = Path(root)
        self.store_root = self.root / "store"
        self.quota = quota
        # manifest=True: the RunManifest lands under the tenant's own
        # manifests/ dir at close — per-tenant observability for free.
        self.service = KernelService(store=self.store_root, manifest=True,
                                     **service_kwargs)
        self._lock = make_lock("Tenant._lock")
        self._window: deque[tuple[float, int]] = deque()  # guarded-by: self._lock
        self._window_bytes = 0   # guarded-by: self._lock
        self.requests_total = 0  # guarded-by: self._lock
        self.bytes_total = 0     # guarded-by: self._lock
        self.rejected_total = 0  # guarded-by: self._lock

    # ----------------------------------------------------------------- quota
    def _expire(self, now: float) -> None:
        horizon = now - self.quota.window_seconds
        while self._window and self._window[0][0] <= horizon:
            _, nbytes = self._window.popleft()
            # analysis: waive R002 -- every caller holds self._lock (quota
            # window helper, never called bare)
            self._window_bytes -= nbytes

    def charge(self, nbytes: int, now: float | None = None) -> None:
        """Record one request of ``nbytes``; raise when over quota.

        The rejected request itself is *not* charged — a tenant pinned at
        its limit recovers as the window slides, rather than pushing the
        horizon forward with every retry.
        """
        now = time.monotonic() if now is None else now
        with self._lock:
            self._expire(now)
            q = self.quota
            if (q.max_requests is not None
                    and len(self._window) >= q.max_requests):
                self.rejected_total += 1
                oldest = self._window[0][0]
                raise QuotaExceeded(
                    f"tenant {self.name!r} is over its request quota "
                    f"({q.max_requests} per {q.window_seconds:g}s)",
                    retry_after=oldest + q.window_seconds - now)
            if (q.max_bytes is not None
                    and self._window_bytes + nbytes > q.max_bytes):
                self.rejected_total += 1
                oldest = (self._window[0][0] if self._window else now)
                raise QuotaExceeded(
                    f"tenant {self.name!r} is over its byte quota "
                    f"({q.max_bytes} bytes per {q.window_seconds:g}s)",
                    retry_after=oldest + q.window_seconds - now)
            self._window.append((now, nbytes))
            self._window_bytes += nbytes
            self.requests_total += 1
            self.bytes_total += nbytes

    # ----------------------------------------------------------------- stats
    def stats(self) -> dict:
        """Tenant counters + the owned service's serving stats."""
        with self._lock:
            self._expire(time.monotonic())
            quota = {
                "window_requests": len(self._window),
                "window_bytes": self._window_bytes,
                "requests_total": self.requests_total,
                "bytes_total": self.bytes_total,
                "rejected_total": self.rejected_total,
            }
        sess = self.service.session
        return {
            "tenant": self.name,
            "store_root": str(self.store_root),
            "endpoints": {pid: self.service.shape(pid)[0]
                          for pid in self.service.endpoints()},
            "quota": quota,
            "service": self.service.stats(include_autotune=False),
            "session": sess.stats.as_dict(),
            "store": sess.store.cache_info(),
            "autotune": sess._executor.autotune_stats(),
        }


class TenantRegistry:
    """Lazily-created tenants under one server root directory."""

    def __init__(self, root, *, quota: TenantQuota | None = None,
                 **service_kwargs):
        self.root = Path(root)
        self.quota = quota if quota is not None else TenantQuota()
        self._service_kwargs = dict(service_kwargs)
        self._tenants: dict[str, Tenant] = {}  # guarded-by: self._lock
        self._lock = make_lock("TenantRegistry._lock")

    def get(self, name: str) -> Tenant:
        """The tenant named ``name``, created on first touch.

        Raises ``ValueError`` for names unsafe as path components —
        callers translate that to a 400 before any directory exists.
        """
        if not valid_tenant_name(name):
            raise ValueError(f"invalid tenant name {name!r}")
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is None:
                tenant = Tenant(name, self.root / "tenants" / name,
                                quota=self.quota,
                                service_kwargs=self._service_kwargs)
                self._tenants[name] = tenant
            return tenant

    def active(self) -> list[Tenant]:
        with self._lock:
            return [self._tenants[k] for k in sorted(self._tenants)]

    def drain_all(self, timeout: float | None = None) -> bool:
        """Drain every tenant service; ``False`` if any timed out."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        ok = True
        for tenant in self.active():
            remaining = (None if deadline is None
                         else max(deadline - time.monotonic(), 0.0))
            ok = tenant.service.drain(remaining) and ok
        return ok

    def close_all(self) -> None:
        """Close every tenant service (each writes its RunManifest)."""
        for tenant in self.active():
            tenant.service.close()
