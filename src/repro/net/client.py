"""KernelClient: the stdlib HTTP client for :class:`KernelServer`.

``urllib.request`` only — a client of the wire protocol, not of the
repro internals: everything it sends and receives goes through
:mod:`repro.net.protocol`, so it doubles as the reference implementation
for clients in other languages.

    >>> client = KernelClient("http://127.0.0.1:8741", token="s3cret",
    ...                       tenant="acme")                # doctest: +SKIP
    >>> info = client.compile(points, kernel="gaussian",
    ...                       plan={"leaf_size": 64})       # doctest: +SKIP
    >>> Y = client.matmul(info["points_id"], W)             # doctest: +SKIP

``matmul(..., chunk_cols=q)`` splits a wide panel into column chunks so
the server's dispatcher can micro-batch them with concurrent traffic;
the concatenated result is bit-identical to the unchunked product.
"""

from __future__ import annotations

import contextlib
import json
import urllib.error
import urllib.request

import numpy as np

from repro.net.protocol import PROTOCOL_VERSION, decode_array, encode_array

__all__ = ["KernelClient", "ServerError"]


class ServerError(RuntimeError):
    """A non-2xx response, carrying the wire error code and status."""

    def __init__(self, status: int, code: str, message: str,
                 retry_after: float | None = None):
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = int(status)
        self.code = code
        self.retry_after = retry_after


class KernelClient:
    """Typed front-end for one tenant of a :class:`KernelServer`.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of the server (no trailing path).
    tenant:
        Tenant namespace to address (required for compile/matmul/stats).
    token:
        Bearer token for the tenant; omit against a no-auth server.
    timeout:
        Socket timeout per request, seconds.
    """

    def __init__(self, base_url: str, *, tenant: str | None = None,
                 token: str | None = None, timeout: float = 120.0):
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.token = token
        self.timeout = float(timeout)

    # ------------------------------------------------------------- transport
    def _request(self, method: str, path: str, doc: dict | None = None,
                 *, raw: bool = False):
        headers = {"Accept": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        body = None
        if doc is not None:
            body = json.dumps(doc).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method,
            headers=headers)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as resp:
                payload = resp.read()
                served = resp.headers.get("X-Repro-Protocol")
        except urllib.error.HTTPError as exc:
            raise self._server_error(exc) from None
        except urllib.error.URLError as exc:
            raise ServerError(0, "unreachable",
                              f"{self.base_url}: {exc.reason}") from exc
        if served is not None and int(served) != PROTOCOL_VERSION:
            raise ServerError(0, "protocol_mismatch",
                              f"server speaks protocol {served}, client "
                              f"speaks {PROTOCOL_VERSION}")
        if raw:
            return payload.decode()
        return json.loads(payload)

    @staticmethod
    def _server_error(exc: urllib.error.HTTPError) -> ServerError:
        code, message = "error", exc.reason
        with contextlib.suppress(ValueError, OSError):
            detail = json.loads(exc.read()).get("error", {})
            code = detail.get("code", code)
            message = detail.get("message", message)
        retry_after = exc.headers.get("Retry-After")
        return ServerError(exc.code, code, message,
                           retry_after=(float(retry_after)
                                        if retry_after else None))

    def _tenant_path(self, verb: str) -> str:
        if not self.tenant:
            raise ValueError(f"{verb} requires a tenant; pass "
                             f"KernelClient(..., tenant=...)")
        return f"/v1/{self.tenant}/{verb}"

    # ------------------------------------------------------------- endpoints
    def compile(self, points, *, kernel="gaussian", plan: dict | None = None,
                points_id: str | None = None) -> dict:
        """Upload points; the server inspects (or store-hits) the plan.

        Returns the server's compile record — ``points_id`` (use it for
        :meth:`matmul`), plan/points fingerprints, and ``compiled``
        (``False`` means the tenant's store already held the artifact).
        """
        doc = {"points": encode_array(np.asarray(points, dtype=np.float64)),
               "kernel": kernel}
        if plan is not None:
            doc["plan"] = dict(plan)
        if points_id is not None:
            doc["points_id"] = points_id
        return self._request("POST", self._tenant_path("compile"), doc)

    def matmul(self, points_id: str, W, *,
               chunk_cols: int | None = None) -> np.ndarray:
        """``Y = K[points_id] @ W`` on the server.

        ``chunk_cols`` streams the panel as column chunks of that width
        (one dispatcher submit each — they micro-batch server-side);
        the stitched result is bit-identical to the single-panel path.
        """
        W = np.asarray(W, dtype=np.float64)
        squeeze = W.ndim == 1
        panel = W[:, None] if squeeze else W
        if panel.ndim != 2:
            raise ValueError(f"W must be 1-D or 2-D, got shape {W.shape}")
        if chunk_cols is not None and chunk_cols >= 1 \
                and panel.shape[1] > chunk_cols:
            chunks = [panel[:, i:i + chunk_cols]
                      for i in range(0, panel.shape[1], chunk_cols)]
            doc = {"points_id": points_id,
                   "w_chunks": [encode_array(c) for c in chunks]}
            out = self._request("POST", self._tenant_path("matmul"), doc)
            Y = np.hstack([decode_array(c, field="y_chunks")
                           for c in out["y_chunks"]])
        else:
            doc = {"points_id": points_id, "w": encode_array(panel)}
            out = self._request("POST", self._tenant_path("matmul"), doc)
            Y = decode_array(out["y"], field="y")
        return Y[:, 0] if squeeze else Y

    def stats(self) -> dict:
        """This tenant's quota/service/session/store counters."""
        return self._request("GET", self._tenant_path("stats"))

    def metrics(self) -> str:
        """The ``/metrics`` text (token is sent when configured).

        Against an auth-enabled server a tenant token sees the
        server-level series plus its own tenant; the server's scrape
        token (``metrics_token``) unlocks the all-tenants view.
        """
        return self._request("GET", "/metrics", raw=True)

    def health(self) -> dict:
        return self._request("GET", "/healthz")
