"""Token-based tenant authentication for the kernel server.

The model is deliberately small: a bearer token names exactly one
tenant. A request to ``/v1/{tenant}/...`` must present a token bound to
*that* tenant — a valid token for tenant A hitting tenant B's namespace
is a 403 (authenticated but not authorized), a missing or unknown token
is a 401. Comparisons are constant-time (:func:`hmac.compare_digest`) so
the token table cannot be probed byte-by-byte through timing.

Token tables load from a dict (``{token: tenant}``) or a JSON file of
the shape ``{"tokens": {"<token>": "<tenant>"}}``. ``authenticator=None``
on the server disables auth entirely (single-user/dev mode): every
request is attributed to the tenant named in its URL.
"""

from __future__ import annotations

import hmac
import json
from pathlib import Path

__all__ = ["AuthError", "TokenAuthenticator", "load_token_table"]


class AuthError(Exception):
    """Authentication (401) or authorization (403) failure."""

    def __init__(self, message: str, *, status: int):
        super().__init__(message)
        self.status = int(status)
        self.code = "unauthenticated" if status == 401 else "forbidden"


def load_token_table(source) -> dict[str, str]:
    """``{token: tenant}`` from a dict or a JSON file path."""
    if isinstance(source, dict):
        table = dict(source)
    else:
        doc = json.loads(Path(source).read_text())
        if not isinstance(doc, dict) or not isinstance(doc.get("tokens"),
                                                       dict):
            raise ValueError(
                f"token file {source} must be a JSON object with a "
                f"'tokens' mapping of token -> tenant")
        table = dict(doc["tokens"])
    for token, tenant in table.items():
        if not isinstance(token, str) or not token:
            raise ValueError(f"token keys must be non-empty strings, "
                             f"got {token!r}")
        if not isinstance(tenant, str) or not tenant:
            raise ValueError(f"token {token[:4]}…: tenant must be a "
                             f"non-empty string, got {tenant!r}")
    return table


class TokenAuthenticator:
    """Constant-time bearer-token → tenant resolution."""

    def __init__(self, tokens):
        self._tokens = load_token_table(tokens)

    def tenants(self) -> list[str]:
        return sorted(set(self._tokens.values()))

    def resolve(self, header_value: str | None) -> str:
        """``Authorization`` header → tenant name, or :class:`AuthError`.

        Scans the whole table unconditionally so a miss and a hit cost
        the same number of digest comparisons.
        """
        if not header_value:
            raise AuthError("missing Authorization header (expected "
                            "'Bearer <token>')", status=401)
        scheme, _, token = header_value.partition(" ")
        if scheme.lower() != "bearer" or not token.strip():
            raise AuthError("Authorization header must be "
                            "'Bearer <token>'", status=401)
        token = token.strip()
        matched = None
        for candidate, tenant in self._tokens.items():
            if hmac.compare_digest(candidate.encode(), token.encode()):
                matched = tenant
        if matched is None:
            raise AuthError("unknown token", status=401)
        return matched

    def authenticate(self, header_value: str | None, tenant: str) -> str:
        """Resolve the token AND check it is bound to ``tenant``."""
        owner = self.resolve(header_value)
        if not hmac.compare_digest(owner.encode(), tenant.encode()):
            raise AuthError(
                f"token is not authorized for tenant {tenant!r}",
                status=403)
        return owner
