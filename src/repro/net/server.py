"""KernelServer: the JSON-over-HTTP front-end over KernelService.

Stdlib only (``http.server`` + threads — the dispatcher underneath is
already the concurrency boundary, so a thread-per-connection front-end
adds no new shared state). One server owns a
:class:`~repro.net.tenants.TenantRegistry`; every handler thread:

1. authenticates (``Authorization: Bearer`` → tenant, 401/403),
2. charges the tenant's quota window (429 + ``Retry-After``),
3. parses + validates the payload (:mod:`repro.net.protocol`, 400/413),
4. routes into the tenant's :class:`~repro.api.service.KernelService`
   (``submit`` futures → micro-batching across connections *and*
   tenants' chunked panels), and
5. appends one JSONL line to the request-audit log.

Endpoints (DESIGN.md §11 has the full table)::

    POST /v1/{tenant}/compile   points upload -> plan fingerprint,
                                persisted to the tenant's PlanStore root
    POST /v1/{tenant}/matmul    single panel or chunk-streamed multi-RHS
    GET  /v1/{tenant}/stats     tenant counters (quota/service/store)
    GET  /metrics               Prometheus-style text; with auth on, a
                                tenant token sees server series + its
                                own tenant only, the ``metrics_token``
                                (scrape token) sees all tenants
    GET  /healthz               {"status": "ok" | "draining"}

Shutdown is graceful by construction: :meth:`drain` flips the server to
503-on-new-work while in-flight Futures complete (the
:meth:`KernelService.drain` contract), then :meth:`close` stops the
listener and closes every tenant service — each writes its RunManifest
next to its store.
"""

from __future__ import annotations

import hmac
import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import numpy as np

from repro.api.service import ServiceClosed
from repro.net.auth import AuthError, TokenAuthenticator
from repro.net.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_array,
    encode_array,
    error_doc,
    kernel_from_doc,
    plan_from_doc,
)
from repro.net.tenants import QuotaExceeded, TenantQuota, TenantRegistry
from repro.observability.sync import make_lock

__all__ = ["KernelServer", "AuditLog"]

_ROUTE = re.compile(r"^/v1/(?P<tenant>[^/]+)/(?P<verb>compile|matmul|stats)$")

#: Default cap on one request body (64 MiB of JSON+base64 ≈ a
#: 2000×3000 float64 panel) — resource safety, overridable per server.
DEFAULT_MAX_BODY = 64 * 2**20


class AuditLog:
    """Append-only JSONL request log (thread-safe, best-effort).

    One line per request: timestamp, tenant, verb, HTTP status, byte
    counts, wall time. A failed append never fails the request it
    records — the counter :attr:`write_failures` is the only trace.
    """

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = make_lock("AuditLog._lock")
        self.lines = 0  # guarded-by: self._lock
        self.write_failures = 0  # guarded-by: self._lock

    def append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            try:
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(line)
                self.lines += 1
            except OSError:
                self.write_failures += 1

    def snapshot(self) -> tuple[int, int]:
        """``(lines, write_failures)`` read under the log's lock."""
        with self._lock:
            return self.lines, self.write_failures


class _Request:
    """Per-request scratch the handler threads fill in for auditing."""

    __slots__ = ("tenant", "verb", "status", "bytes_in", "bytes_out",
                 "t_start", "detail", "body_read")

    def __init__(self):
        self.tenant = None
        self.verb = None
        self.status = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.t_start = time.perf_counter()
        self.detail = None
        self.body_read = False


class KernelServer:
    """Multi-tenant HTTP serving front-end (see module docstring).

    Parameters
    ----------
    root:
        Server state directory; tenant ``t`` stores artifacts under
        ``<root>/tenants/<t>/store`` and the audit log defaults to
        ``<root>/audit.jsonl``.
    tokens:
        ``{token: tenant}`` dict, a JSON token-file path, or an existing
        :class:`~repro.net.auth.TokenAuthenticator`. ``None`` disables
        auth (dev mode): the URL names the tenant, unauthenticated.
    quota:
        A :class:`~repro.net.tenants.TenantQuota` applied to every
        tenant (default: unlimited).
    host / port:
        Bind address; port 0 picks an ephemeral port (see :attr:`port`).
    max_batch / max_wait_ms / policy:
        Forwarded to every tenant's :class:`KernelService`.
    audit_log:
        Path for the JSONL request log; ``False`` disables it, ``None``
        (default) uses ``<root>/audit.jsonl``.
    max_body_bytes / max_elements:
        Request-body and per-array caps (413 beyond them).
    metrics_token:
        Scrape token for the all-tenants ``/metrics`` view when auth is
        on. Without it, ``/metrics`` still requires a valid tenant token
        and scopes the export to that tenant (server-level series plus
        its own) — tenant counters must not leak across the auth
        boundary. Ignored (``/metrics`` stays open) in dev mode.
    """

    def __init__(self, root, *, tokens=None, host: str = "127.0.0.1",
                 port: int = 0, quota: TenantQuota | None = None,
                 max_batch: int = 8, max_wait_ms: float = 2.0,
                 policy=None, audit_log=None,
                 max_body_bytes: int = DEFAULT_MAX_BODY,
                 max_elements: int = 50_000_000,
                 request_timeout: float = 120.0,
                 metrics_token: str | None = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if tokens is None or isinstance(tokens, TokenAuthenticator):
            self.auth = tokens
        else:
            self.auth = TokenAuthenticator(tokens)
        self.tenants = TenantRegistry(
            self.root, quota=quota, max_batch=max_batch,
            max_wait_ms=max_wait_ms, policy=policy)
        if audit_log is False:
            self.audit = None
        else:
            self.audit = AuditLog(audit_log if audit_log is not None
                                  else self.root / "audit.jsonl")
        self.max_body_bytes = int(max_body_bytes)
        self.max_elements = int(max_elements)
        self.request_timeout = float(request_timeout)
        self.metrics_token = metrics_token

        self._draining = False  # guarded-by: self._lock
        self._closed = False  # guarded-by: self._lock
        self._serving = False  # guarded-by: self._lock
        self._lock = make_lock("KernelServer._lock")
        self._serve_thread: threading.Thread | None = None
        self.started_at = time.time()
        # status class -> count, plus totals (under self._lock).
        self._responses = {"2xx": 0, "4xx": 0, "5xx": 0}  # guarded-by: self._lock
        self._bytes_in = 0  # guarded-by: self._lock
        self._bytes_out = 0  # guarded-by: self._lock

        server = self

        class _Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            # A stuck client must not pin a handler thread forever.
            timeout = server.request_timeout

            def do_GET(self):
                server._handle(self, "GET")

            def do_POST(self):
                server._handle(self, "POST")

            def log_message(self, fmt, *args):  # route through the audit
                pass  # log instead of stderr; keep handler threads quiet

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True

    # ------------------------------------------------------------- lifecycle
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves port 0 to the ephemeral pick)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "KernelServer":
        """Serve in a background thread (tests, embedding); returns self."""
        if self._serve_thread is None:
            with self._lock:
                self._serving = True
            self._serve_thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="kernel-server-accept", daemon=True)
            self._serve_thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking accept loop (the CLI path)."""
        with self._lock:
            self._serving = True
        self._httpd.serve_forever()

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def drain(self, timeout: float | None = None) -> bool:
        """Stop accepting work (503) and wait for in-flight requests.

        Already-accepted Futures complete; new compile/matmul requests
        are refused with 503 the moment this is called. Read-only
        endpoints (stats, metrics, healthz) keep working so the drain
        itself is observable.
        """
        with self._lock:
            self._draining = True
        return self.tenants.drain_all(timeout)

    def close(self, timeout: float | None = None) -> None:
        """Graceful shutdown: drain, stop the listener, close tenants.

        Each tenant service writes its RunManifest under
        ``tenants/<name>/store/manifests/`` as it closes. Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._draining = True
            serving = self._serving
        self.tenants.drain_all(timeout)
        if serving:
            # stops serve_forever (ours or the CLI's). Never started,
            # shutdown() would block forever on the serve-loop event —
            # closing the listener socket below is all there is to do.
            self._httpd.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(5.0)
        self._httpd.server_close()
        self.tenants.close_all()

    def __enter__(self) -> "KernelServer":
        return self.start()

    def __exit__(self, *exc):
        self.close()
        return False

    # ----------------------------------------------------------------- stats
    def stats(self) -> dict:
        """Server-level counters + every active tenant's stats dict."""
        with self._lock:
            server = {
                "draining": self._draining,
                "uptime_seconds": time.time() - self.started_at,
                "responses": dict(self._responses),
                "bytes_in": self._bytes_in,
                "bytes_out": self._bytes_out,
                "tenants_active": len(self.tenants.active()),
            }
        if self.audit is not None:
            lines, write_failures = self.audit.snapshot()
            server["audit_lines"] = lines
            server["audit_write_failures"] = write_failures
        return {
            "server": server,
            "tenants": {t.name: t.stats() for t in self.tenants.active()},
        }

    def metrics_text(self, tenant: str | None = None) -> str:
        """Prometheus-style export; ``tenant`` scopes it to one tenant's
        series (server-level counters always included)."""
        from repro.observability.stats import metrics_text

        stats = self.stats()
        if tenant is not None:
            stats["tenants"] = {name: s for name, s
                                in stats["tenants"].items()
                                if name == tenant}
        return metrics_text(stats, prefix="repro_net")

    # -------------------------------------------------------------- handling
    def _handle(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        req = _Request()
        try:
            self._route(handler, method, req)
        except BrokenPipeError:  # client went away mid-response
            req.status = req.status or 499
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._send_error(handler, req, 500, "internal_error",
                             f"{type(exc).__name__}: {exc}")
        finally:
            self._account(req)

    def _route(self, handler, method: str, req: _Request) -> None:
        path = handler.path.split("?", 1)[0]
        if method == "GET" and path == "/healthz":
            req.verb = "healthz"
            status = "draining" if self.draining else "ok"
            self._send_json(handler, req, 200, {"status": status})
            return
        if method == "GET" and path == "/metrics":
            req.verb = "metrics"
            try:
                scope = self._metrics_scope(handler)
            except AuthError as exc:
                self._send_error(handler, req, exc.status, exc.code,
                                 str(exc))
                return
            body = self.metrics_text(tenant=scope).encode()
            self._send_raw(handler, req, 200, body,
                           content_type="text/plain; version=0.0.4")
            return
        m = _ROUTE.match(path)
        if m is None:
            self._send_error(handler, req, 404, "not_found",
                             f"no route for {method} {path}")
            return
        tenant_name, verb = m.group("tenant"), m.group("verb")
        req.verb = verb
        if (verb == "stats") != (method == "GET"):
            wants = "GET" if verb == "stats" else "POST"
            self._send_error(handler, req, 405, "method_not_allowed",
                             f"{verb} is a {wants} endpoint")
            return
        try:
            if self.auth is not None:
                self.auth.authenticate(
                    handler.headers.get("Authorization"), tenant_name)
            tenant = self.tenants.get(tenant_name)
        except AuthError as exc:
            self._send_error(handler, req, exc.status, exc.code, str(exc))
            return
        except ValueError as exc:
            self._send_error(handler, req, 400, "bad_tenant", str(exc))
            return
        req.tenant = tenant_name
        if verb == "stats":
            self._send_json(handler, req, 200, tenant.stats())
            return
        # --- mutating verbs: drain gate, body, quota ---
        if self.draining:
            self._send_error(handler, req, 503, "draining",
                             "server is draining; retry against another "
                             "replica", headers={"Retry-After": "1"})
            return
        try:
            doc = self._read_json_body(handler, req)
            tenant.charge(req.bytes_in)
            if verb == "compile":
                self._do_compile(handler, req, tenant, doc)
            else:
                self._do_matmul(handler, req, tenant, doc)
        except ProtocolError as exc:
            self._send_error(handler, req, exc.status, exc.code, str(exc))
        except QuotaExceeded as exc:
            self._send_error(
                handler, req, 429, "over_quota", str(exc),
                headers={"Retry-After": f"{max(exc.retry_after, 0.1):.1f}"})
        except ServiceClosed as exc:
            self._send_error(handler, req, 503, "draining", str(exc),
                             headers={"Retry-After": "1"})

    def _metrics_scope(self, handler) -> str | None:
        """Who may see what on ``/metrics``: ``None`` = all tenants.

        Dev mode (no authenticator) stays open. With auth on, the
        configured scrape token unlocks the full export; otherwise the
        caller must present a valid *tenant* token and sees only the
        server-level series plus its own tenant — raising
        :class:`AuthError` (401) for anything else, so an unauthenticated
        scraper cannot enumerate tenants or read their traffic counters.
        """
        if self.auth is None:
            return None
        header = handler.headers.get("Authorization")
        if self.metrics_token is not None and header:
            scheme, _, token = header.partition(" ")
            if scheme.lower() == "bearer" and hmac.compare_digest(
                    token.strip().encode(), self.metrics_token.encode()):
                return None
        return self.auth.resolve(header)

    def _read_json_body(self, handler, req: _Request) -> dict:
        length = handler.headers.get("Content-Length")
        try:
            length = int(length)
        except (TypeError, ValueError):
            raise ProtocolError("Content-Length required",
                                status=411,
                                code="length_required") from None
        if length < 0:
            # rfile.read(-1) would read to EOF: an unbounded client-
            # controlled allocation sidestepping max_body_bytes.
            raise ProtocolError(
                f"Content-Length must be non-negative, got {length}")
        if length > self.max_body_bytes:
            raise ProtocolError(
                f"request body of {length} bytes exceeds the server cap "
                f"of {self.max_body_bytes}", status=413,
                code="payload_too_large")
        raw = handler.rfile.read(length)
        req.bytes_in = len(raw)
        if len(raw) != length:
            raise ProtocolError(
                f"request body truncated: Content-Length announced "
                f"{length} bytes, {len(raw)} arrived")
        req.body_read = True
        try:
            doc = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON "
                                f"({exc})") from exc
        if not isinstance(doc, dict):
            raise ProtocolError("request body must be a JSON object")
        return doc

    # ------------------------------------------------------------ endpoints
    def _do_compile(self, handler, req: _Request, tenant, doc: dict) -> None:
        from repro.api.session import points_fingerprint

        unknown = sorted(set(doc) - {"points", "points_id", "kernel",
                                     "plan"})
        if unknown:
            raise ProtocolError(f"compile has unknown key(s) {unknown}")
        points = decode_array(doc.get("points"),
                              max_elements=self.max_elements,
                              field="points")
        if points.ndim != 2 or points.shape[0] < 2:
            raise ProtocolError(
                f"points must be a 2-D (n, d) array with n >= 2, got "
                f"shape {list(points.shape)}")
        plan = plan_from_doc(doc.get("plan"))
        kernel = kernel_from_doc(doc.get("kernel"))
        pfp = points_fingerprint(np.ascontiguousarray(points,
                                                      dtype=np.float64))
        points_id = doc.get("points_id") or pfp
        if not isinstance(points_id, str) or not points_id:
            raise ProtocolError("points_id must be a non-empty string")
        t0 = time.perf_counter()
        # warm=True inspects now (or loads from the tenant's store);
        # register() reports built-vs-store-hit from under the service's
        # session lock, so concurrent compiles on one tenant cannot
        # misattribute each other's builds.
        compiled = tenant.service.register(points_id, points, kernel=kernel,
                                           plan=plan, warm=True)
        req.detail = points_id
        self._send_json(handler, req, 200, {
            "points_id": points_id,
            "n": int(points.shape[0]),
            "d": int(points.shape[1]),
            "points_fingerprint": pfp,
            "plan_fingerprint": plan.fingerprint(),
            "p1_fingerprint": plan.p1_fingerprint(),
            "compiled": compiled,  # False = served from the store, warm
            "compile_seconds": time.perf_counter() - t0,
        })

    def _do_matmul(self, handler, req: _Request, tenant, doc: dict) -> None:
        unknown = sorted(set(doc) - {"points_id", "w", "w_chunks"})
        if unknown:
            raise ProtocolError(f"matmul has unknown key(s) {unknown}")
        points_id = doc.get("points_id")
        if not isinstance(points_id, str) or not points_id:
            raise ProtocolError("matmul requires a points_id string")
        req.detail = points_id
        if ("w" in doc) == ("w_chunks" in doc):
            raise ProtocolError("matmul takes exactly one of 'w' (a single "
                                "panel) or 'w_chunks' (a list of column "
                                "chunks)")
        chunked = "w_chunks" in doc
        if chunked:
            chunk_docs = doc["w_chunks"]
            if not isinstance(chunk_docs, list) or not chunk_docs:
                raise ProtocolError("w_chunks must be a non-empty list")
        else:
            chunk_docs = [doc["w"]]
        panels = [decode_array(c, max_elements=self.max_elements,
                               field=f"w_chunks[{i}]" if chunked else "w")
                  for i, c in enumerate(chunk_docs)]
        try:
            n = tenant.service.shape(points_id)[0]
        except KeyError:
            raise ProtocolError(
                f"unknown points_id {points_id!r} for tenant "
                f"{tenant.name!r}; POST /compile it first",
                status=404, code="unknown_points_id") from None
        for i, panel in enumerate(panels):
            rows = panel.shape[0]
            if panel.ndim not in (1, 2) or rows != n:
                raise ProtocolError(
                    f"{f'w_chunks[{i}]' if chunked else 'w'} must have "
                    f"{n} rows for {points_id!r}, got shape "
                    f"{list(panel.shape)}")
        t0 = time.perf_counter()
        # One submit per chunk: the dispatcher stacks compatible chunks
        # (from this request AND concurrent ones) into one GEMM.
        futures = [tenant.service.submit(points_id, panel)
                   for panel in panels]
        results = [f.result(self.request_timeout) for f in futures]
        body = {
            "points_id": points_id,
            "serve_seconds": time.perf_counter() - t0,
        }
        if chunked:
            body["y_chunks"] = [encode_array(y) for y in results]
        else:
            body["y"] = encode_array(results[0])
        self._send_json(handler, req, 200, body)

    # ------------------------------------------------------------ responses
    def _send_json(self, handler, req: _Request, status: int,
                   doc: dict, headers: dict | None = None) -> None:
        body = json.dumps(doc).encode()
        self._send_raw(handler, req, status, body,
                       content_type="application/json", headers=headers)

    def _send_error(self, handler, req: _Request, status: int, code: str,
                    message: str, headers: dict | None = None) -> None:
        try:
            self._send_json(handler, req, status, error_doc(code, message),
                            headers=headers)
        except (BrokenPipeError, ConnectionResetError):
            req.status = req.status or status

    @staticmethod
    def _body_unread(handler, req: _Request) -> bool:
        """Did this request declare a body nobody consumed?

        True on early-error paths (401/404/413-by-header/429/…) that
        reply before :meth:`_read_json_body` ran: the unread bytes are
        still on the socket, and a keep-alive reuse would parse them as
        the next request line. Those responses must close the connection.
        """
        if req.body_read:
            return False
        if handler.headers.get("Transfer-Encoding") is not None:
            return True  # chunked: unknown length, certainly unread
        declared = handler.headers.get("Content-Length")
        if declared is None:
            return False
        try:
            # != 0, not > 0: a negative (malformed) length says nothing
            # about what is actually on the socket — close to be safe.
            return int(declared) != 0
        except ValueError:
            return True

    def _send_raw(self, handler, req: _Request, status: int, body: bytes,
                  content_type: str, headers: dict | None = None) -> None:
        req.status = status
        req.bytes_out = len(body)
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(body)))
        handler.send_header("X-Repro-Protocol", str(PROTOCOL_VERSION))
        if self._body_unread(handler, req):
            # send_header("Connection", "close") also flips the
            # handler's close_connection flag, so the socket really is
            # torn down after this response instead of serving garbage.
            handler.send_header("Connection", "close")
        for key, value in (headers or {}).items():
            handler.send_header(key, value)
        handler.end_headers()
        handler.wfile.write(body)

    def _account(self, req: _Request) -> None:
        bucket = f"{req.status // 100}xx" if req.status else "5xx"
        with self._lock:
            self._responses[bucket] = self._responses.get(bucket, 0) + 1
            self._bytes_in += req.bytes_in
            self._bytes_out += req.bytes_out
        if self.audit is not None and req.verb is not None:
            self.audit.append({
                "ts": round(time.time(), 6),
                "tenant": req.tenant,
                "verb": req.verb,
                "status": req.status,
                "bytes_in": req.bytes_in,
                "bytes_out": req.bytes_out,
                "duration_ms": round(
                    (time.perf_counter() - req.t_start) * 1e3, 3),
                "detail": req.detail,
            })
