"""Network-facing multi-tenant kernel serving (DESIGN.md §11).

The step from "fast library" to "service": :class:`KernelServer` puts a
JSON-over-HTTP wire protocol in front of the compile-once/serve-forever
stack (PlanStore + KernelService + autotuner), with per-tenant
namespaces — isolated store roots, token auth, sliding-window quotas —
a JSONL request-audit log, and graceful drain/shutdown. Stdlib only.

* :mod:`repro.net.protocol` — array/error encoding, untrusted-input
  validation (:class:`ProtocolError` → 400/413);
* :mod:`repro.net.auth` — constant-time bearer-token → tenant mapping;
* :mod:`repro.net.tenants` — tenant registry, store isolation, quotas;
* :mod:`repro.net.server` — the HTTP front-end (``repro server``);
* :mod:`repro.net.client` — the stdlib client (``repro client``).
"""

from repro.net.auth import AuthError, TokenAuthenticator, load_token_table
from repro.net.client import KernelClient, ServerError
from repro.net.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_array,
    encode_array,
)
from repro.net.server import AuditLog, KernelServer
from repro.net.tenants import (
    QuotaExceeded,
    Tenant,
    TenantQuota,
    TenantRegistry,
)

__all__ = [
    "PROTOCOL_VERSION",
    "AuditLog",
    "AuthError",
    "KernelClient",
    "KernelServer",
    "ProtocolError",
    "QuotaExceeded",
    "ServerError",
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
    "TokenAuthenticator",
    "decode_array",
    "encode_array",
    "load_token_table",
]
