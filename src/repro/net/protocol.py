"""Wire protocol for the network-facing kernel server (DESIGN.md §11).

Everything on the wire is JSON over HTTP/1.1 — stdlib-parseable from any
language, no new dependencies on either side. The two structured payload
types are:

* **arrays** — a dense ndarray travels as
  ``{"shape": [...], "dtype": "float64", "data": "<base64>"}`` where
  ``data`` is the base64 of the little-endian, C-contiguous buffer.
  Base64 over JSON costs ~33% wire overhead but keeps every byte of the
  float exact (no decimal round-trip) and every client trivial;
* **errors** — every non-2xx response body is
  ``{"error": {"code": "<machine-readable>", "message": "<human>"}}``,
  with the HTTP status carrying the class (400 malformed, 401/403 auth,
  404 unknown, 413 too large, 429 over quota, 503 draining).

Multi-RHS requests may ship the panel as ``w_chunks`` — a list of
column-chunk arrays with equal row counts. The server submits each chunk
to the :class:`~repro.api.service.KernelService` dispatcher *separately*,
so chunks of one request micro-batch with other tenants' traffic into
stacked GEMMs, and the chunked results concatenate bit-identically to a
single-panel evaluation.

:func:`plan_from_doc` / :func:`kernel_from_doc` are the only paths from
untrusted JSON into :class:`~repro.api.plan.PlanConfig` / kernel
construction: unknown keys and non-finite numbers are rejected here with
:class:`ProtocolError` (→ 400) before they can reach the dispatcher.
"""

from __future__ import annotations

import base64
import binascii
import math
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:
    from repro.api.plan import PlanConfig
    from repro.kernels.base import Kernel

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_array",
    "encode_array",
    "error_doc",
    "kernel_from_doc",
    "plan_from_doc",
]

#: Version of the wire protocol; served in every response header
#: (``X-Repro-Protocol``) and checked by the client.
PROTOCOL_VERSION = 1

#: dtypes allowed on the wire (everything is evaluated in float64; the
#: whitelist exists so a request cannot smuggle object/void dtypes).
_WIRE_DTYPES = ("float64", "float32")

#: PlanConfig keys a compile request may set (mirrors the CLI's dataset
#: spec: the inspector knobs plus the partition pin ``p``).
PLAN_KEYS = ("structure", "tau", "budget", "bacc", "leaf_size", "max_rank",
             "sampling_size", "tree_method", "seed", "p")

#: Kernels constructible from the wire, with their accepted parameters.
KERNEL_KEYS = {"name", "bandwidth"}
_BANDWIDTH_KERNELS = ("gaussian", "laplace", "matern32")


class ProtocolError(ValueError):
    """A malformed or oversized wire payload.

    ``status`` is the HTTP status the server answers with (400 unless
    the payload was well-formed but too large, then 413); ``code`` is the
    machine-readable error token placed in the response body.
    """

    def __init__(self, message: str, *, status: int = 400,
                 code: str = "bad_request") -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = str(code)


def encode_array(arr: Any) -> dict[str, Any]:
    """JSON-able document for a dense array (exact bytes, base64)."""
    arr = np.asarray(arr)
    if arr.dtype.name not in _WIRE_DTYPES:
        arr = arr.astype(np.float64)
    # Little-endian C-order is the wire byte order regardless of host.
    buf = np.ascontiguousarray(arr.astype(arr.dtype.newbyteorder("<"),
                                          copy=False))
    return {
        "shape": list(arr.shape),
        "dtype": arr.dtype.name,
        "data": base64.b64encode(buf.tobytes()).decode("ascii"),
    }


def decode_array(doc: object, *, max_elements: int | None = None,
                 field: str = "array") -> np.ndarray[Any, np.dtype[Any]]:
    """Parse + validate an array document (the untrusted direction).

    Checks structure, dtype whitelist, element count against the declared
    shape, and (for the server's resource safety) an optional element
    cap. Non-finite payload values are allowed — they are data, not
    protocol — but shape/dtype lies are not.
    """
    if not isinstance(doc, dict):
        raise ProtocolError(f"{field} must be an object with "
                            f"shape/dtype/data, got {type(doc).__name__}")
    shape = doc.get("shape")
    dtype = doc.get("dtype", "float64")
    data = doc.get("data")
    if (not isinstance(shape, list) or not shape
            or not all(isinstance(s, int) and s >= 0 for s in shape)):
        raise ProtocolError(f"{field}.shape must be a non-empty list of "
                            f"non-negative integers, got {shape!r}")
    if dtype not in _WIRE_DTYPES:
        raise ProtocolError(f"{field}.dtype must be one of {_WIRE_DTYPES}, "
                            f"got {dtype!r}")
    if not isinstance(data, str):
        raise ProtocolError(f"{field}.data must be a base64 string")
    n_elements = math.prod(shape)
    if max_elements is not None and n_elements > max_elements:
        raise ProtocolError(
            f"{field} declares {n_elements} elements, over the server "
            f"limit of {max_elements}", status=413, code="payload_too_large")
    try:
        raw = base64.b64decode(data.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError) as exc:
        raise ProtocolError(f"{field}.data is not valid base64 "
                            f"({exc})") from exc
    itemsize = np.dtype(dtype).itemsize
    if len(raw) != n_elements * itemsize:
        raise ProtocolError(
            f"{field}.data holds {len(raw)} bytes but shape {shape} with "
            f"dtype {dtype} needs {n_elements * itemsize}")
    arr = np.frombuffer(raw, dtype=np.dtype(dtype).newbyteorder("<"))
    return arr.astype(np.dtype(dtype), copy=True).reshape(shape)


def error_doc(code: str, message: str) -> dict[str, dict[str, str]]:
    """The canonical error body (see module docstring)."""
    return {"error": {"code": str(code), "message": str(message)}}


def _check_finite(value: object, field: str) -> object:
    if isinstance(value, float) and not math.isfinite(value):
        raise ProtocolError(f"{field} must be finite, got {value!r}")
    return value


def plan_from_doc(doc: object) -> "PlanConfig":
    """Untrusted plan document → validated :class:`PlanConfig`.

    ``None``/``{}`` mean "server defaults". Unknown keys are a protocol
    error (a typoed knob must not silently compile a different plan —
    the fingerprint would never match the client's expectation again).
    """
    from repro.api.plan import PlanConfig

    if doc is None:
        return PlanConfig()
    if not isinstance(doc, dict):
        raise ProtocolError(f"plan must be an object, got "
                            f"{type(doc).__name__}")
    unknown = sorted(set(doc) - set(PLAN_KEYS))
    if unknown:
        raise ProtocolError(f"plan has unknown key(s) {unknown}; valid "
                            f"keys: {sorted(PLAN_KEYS)}")
    for key, value in doc.items():
        _check_finite(value, f"plan.{key}")
    try:
        return PlanConfig(**doc)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid plan: {exc}") from exc


def kernel_from_doc(doc: object) -> "Kernel":
    """Untrusted kernel document (or name string) → kernel instance."""
    from repro.kernels.base import get_kernel

    if doc is None:
        doc = {"name": "gaussian"}
    if isinstance(doc, str):
        doc = {"name": doc}
    if not isinstance(doc, dict):
        raise ProtocolError(f"kernel must be a name or an object, got "
                            f"{type(doc).__name__}")
    unknown = sorted(set(doc) - KERNEL_KEYS)
    if unknown:
        raise ProtocolError(f"kernel has unknown key(s) {unknown}; valid "
                            f"keys: {sorted(KERNEL_KEYS)}")
    name = doc.get("name", "gaussian")
    if not isinstance(name, str):
        raise ProtocolError("kernel.name must be a string")
    bandwidth = _check_finite(doc.get("bandwidth", 5.0), "kernel.bandwidth")
    if not isinstance(bandwidth, (int, float)) or bandwidth <= 0:
        raise ProtocolError(f"kernel.bandwidth must be a positive number, "
                            f"got {bandwidth!r}")
    try:
        if name in _BANDWIDTH_KERNELS:
            return get_kernel(name, bandwidth=float(bandwidth))
        return get_kernel(name)
    except (KeyError, ValueError) as exc:
        raise ProtocolError(f"unknown kernel {name!r}") from exc
