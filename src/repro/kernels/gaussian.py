"""Gaussian (RBF) kernel — the paper's kernel for GOFMM/STRUMPACK comparisons."""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel, register_kernel
from repro.kernels.distance import pairwise_sq_distances
from repro.utils.validation import check_positive


@register_kernel("gaussian")
class GaussianKernel(Kernel):
    """``K(x, y) = exp(-||x - y||^2 / (2 h^2)) + reg * [x == y]``.

    ``h`` is the bandwidth (the paper uses ``h = 5``). A small diagonal
    regulariser keeps the implicit matrix SPD on datasets with duplicate
    points, matching how GOFMM stabilises its test matrices.
    """

    def __init__(self, bandwidth: float = 5.0, regularization: float = 0.0):
        check_positive(bandwidth, name="bandwidth")
        if regularization < 0:
            raise ValueError("regularization must be non-negative")
        self.bandwidth = float(bandwidth)
        self.regularization = float(regularization)

    def block(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        d2 = pairwise_sq_distances(X, Y)
        out = np.exp(d2 * (-0.5 / self.bandwidth**2))
        if self.regularization and X is Y:
            out[np.diag_indices(min(out.shape))] += self.regularization
        return out

    def params(self) -> dict:
        return {"bandwidth": self.bandwidth, "regularization": self.regularization}
