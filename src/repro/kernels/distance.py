"""Vectorised pairwise distance helpers.

The expansion ``||x - y||^2 = ||x||^2 - 2 x.y + ||y||^2`` turns the pairwise
distance computation into one GEMM plus two rank-1 broadcasts, which is the
standard locality-friendly formulation (one pass over each operand, all work
in BLAS3). Negative round-off is clamped so downstream ``sqrt`` stays real.
"""

from __future__ import annotations

import numpy as np


def pairwise_sq_distances(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, shape ``(len(X), len(Y))``."""
    X = np.ascontiguousarray(X, dtype=np.float64)
    Y = np.ascontiguousarray(Y, dtype=np.float64)
    if X.ndim != 2 or Y.ndim != 2 or X.shape[1] != Y.shape[1]:
        raise ValueError(
            f"incompatible point arrays: {X.shape} vs {Y.shape} (need matching d)"
        )
    x2 = np.einsum("ij,ij->i", X, X)
    y2 = np.einsum("ij,ij->i", Y, Y)
    d2 = x2[:, None] - 2.0 * (X @ Y.T) + y2[None, :]
    np.maximum(d2, 0.0, out=d2)
    return d2


def pairwise_distances(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Euclidean distances, shape ``(len(X), len(Y))``."""
    return np.sqrt(pairwise_sq_distances(X, Y))
