"""Matérn-3/2 kernel, common in Gaussian-process regression workloads."""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel, register_kernel
from repro.kernels.distance import pairwise_distances
from repro.utils.validation import check_positive

_SQRT3 = np.sqrt(3.0)


@register_kernel("matern32")
class Matern32Kernel(Kernel):
    """``K(x, y) = (1 + sqrt(3) r / h) exp(-sqrt(3) r / h)`` with ``r = ||x - y||``."""

    def __init__(self, bandwidth: float = 1.0):
        check_positive(bandwidth, name="bandwidth")
        self.bandwidth = float(bandwidth)

    def block(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        scaled = pairwise_distances(X, Y) * (_SQRT3 / self.bandwidth)
        return (1.0 + scaled) * np.exp(-scaled)

    def params(self) -> dict:
        return {"bandwidth": self.bandwidth}
