"""Laplace (exponential) kernel."""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel, register_kernel
from repro.kernels.distance import pairwise_distances
from repro.utils.validation import check_positive


@register_kernel("laplace")
class LaplaceKernel(Kernel):
    """``K(x, y) = exp(-||x - y|| / h)``.

    Decays slower than Gaussian, so far-field blocks carry higher numerical
    rank — useful for stressing the adaptive-rank logic in tests.
    """

    def __init__(self, bandwidth: float = 1.0):
        check_positive(bandwidth, name="bandwidth")
        self.bandwidth = float(bandwidth)

    def block(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        return np.exp(pairwise_distances(X, Y) * (-1.0 / self.bandwidth))

    def params(self) -> dict:
        return {"bandwidth": self.bandwidth}
