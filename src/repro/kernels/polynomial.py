"""Inhomogeneous polynomial kernel ``(x.y + c)^p``."""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel, register_kernel


@register_kernel("polynomial")
class PolynomialKernel(Kernel):
    """``K(x, y) = (x . y + offset)^degree``.

    Globally low-rank (rank bounded by a polynomial in d), so it exercises
    the extreme end of the compressibility spectrum: every far block
    compresses to a tiny srank regardless of the admissibility setting.
    """

    def __init__(self, degree: int = 2, offset: float = 1.0):
        if not isinstance(degree, (int, np.integer)) or degree < 1:
            raise ValueError(f"degree must be a positive integer, got {degree!r}")
        self.degree = int(degree)
        self.offset = float(offset)

    def block(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        X = np.ascontiguousarray(X, dtype=np.float64)
        Y = np.ascontiguousarray(Y, dtype=np.float64)
        return (X @ Y.T + self.offset) ** self.degree

    def params(self) -> dict:
        return {"degree": self.degree, "offset": self.offset}
