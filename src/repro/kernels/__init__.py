"""Kernel functions K(x, y) used to induce the (implicit) dense kernel matrix.

The paper evaluates with the Gaussian kernel (bandwidth 5) against GOFMM and
STRUMPACK, and the inverse-distance kernel ``1/||x - y||`` (SMASH's default)
against SMASH. We additionally ship Laplace, Matérn-3/2 and polynomial kernels
so the inspection-reuse experiments can change the kernel function, not only
the accuracy.
"""

from repro.kernels.base import Kernel, get_kernel, register_kernel
from repro.kernels.distance import pairwise_sq_distances
from repro.kernels.gaussian import GaussianKernel
from repro.kernels.inverse import InverseDistanceKernel
from repro.kernels.laplace import LaplaceKernel
from repro.kernels.matern import Matern32Kernel
from repro.kernels.polynomial import PolynomialKernel

__all__ = [
    "Kernel",
    "get_kernel",
    "register_kernel",
    "pairwise_sq_distances",
    "GaussianKernel",
    "InverseDistanceKernel",
    "LaplaceKernel",
    "Matern32Kernel",
    "PolynomialKernel",
]
