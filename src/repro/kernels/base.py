"""Kernel ABC and registry.

A :class:`Kernel` maps two point sets to the dense block
``K[i, j] = K(x_i, y_j)``. Compression never assembles the full N x N matrix;
it only requests the sub-blocks it needs (leaf diagonal blocks, sampled
far-field panels, skeleton-skeleton coupling blocks), so ``block`` is the one
primitive every kernel must implement efficiently.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import check_points

_REGISTRY: dict[str, type["Kernel"]] = {}


def register_kernel(name: str):
    """Class decorator registering a kernel under ``name`` for lookup by string."""

    def deco(cls):
        key = name.lower()
        if key in _REGISTRY:
            raise ValueError(f"kernel {name!r} already registered")
        _REGISTRY[key] = cls
        cls.name = key
        return cls

    return deco


def get_kernel(name: str, **params) -> "Kernel":
    """Instantiate a registered kernel by name (case-insensitive)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown kernel {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key](**params)


class Kernel(ABC):
    """A symmetric positive(-semi)definite kernel function.

    Subclasses implement :meth:`block`; everything else (diagonal access,
    full-matrix assembly for small validation problems, identity/parameter
    reporting used by the inspection-reuse machinery) is derived.
    """

    name: str = "abstract"

    @abstractmethod
    def block(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        """Dense kernel block ``K(X[i], Y[j])`` of shape ``(len(X), len(Y))``."""

    def matrix(self, points: np.ndarray) -> np.ndarray:
        """Full kernel matrix on one point set (validation / small N only)."""
        pts = check_points(points)
        return self.block(pts, pts)

    def diagonal(self, points: np.ndarray) -> np.ndarray:
        """``K(x_i, x_i)`` for each point — used by regularised variants."""
        pts = check_points(points)
        out = np.empty(len(pts))
        # Chunk so the temporary (chunk, chunk) block stays small.
        step = 1024
        for start in range(0, len(pts), step):
            chunk = pts[start : start + step]
            out[start : start + len(chunk)] = np.diag(self.block(chunk, chunk))
        return out

    def params(self) -> dict:
        """Parameter dict identifying this kernel instance.

        Two kernels with equal ``(name, params())`` produce identical matrices;
        the inspection-reuse logic uses this to decide whether low-rank
        factors may be reused.
        """
        return {}

    def identity(self) -> tuple:
        """Hashable identity for caching decisions."""
        return (self.name, tuple(sorted(self.params().items())))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v}" for k, v in self.params().items())
        return f"{type(self).__name__}({inner})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Kernel) and self.identity() == other.identity()

    def __hash__(self) -> int:
        return hash(self.identity())
