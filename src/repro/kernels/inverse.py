"""Inverse-distance kernel ``1/||x - y||`` — SMASH's default setting."""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel, register_kernel
from repro.kernels.distance import pairwise_sq_distances


@register_kernel("inverse_distance")
class InverseDistanceKernel(Kernel):
    """``K(x, y) = 1 / ||x - y||`` with the singular diagonal replaced.

    At ``x == y`` the kernel is singular; following SMASH's handling of the
    self-interaction, coincident pairs evaluate to ``diagonal_value`` (the
    near blocks containing them stay exact full-rank blocks either way).
    """

    def __init__(self, diagonal_value: float = 0.0, epsilon: float = 1e-12):
        """``epsilon`` is a *relative* coincidence threshold: pairs with
        ``||x-y||^2 <= epsilon * (||x||^2 + ||y||^2 + 1)`` evaluate to
        ``diagonal_value``. A relative test is required because the GEMM
        expansion of pairwise distances leaves O(eps_machine) round-off in
        self-distances, which an absolute threshold misses (turning the
        diagonal into huge spurious values)."""
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.diagonal_value = float(diagonal_value)
        self.epsilon = float(epsilon)

    def block(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        X = np.ascontiguousarray(X, dtype=np.float64)
        Y = np.ascontiguousarray(Y, dtype=np.float64)
        d2 = pairwise_sq_distances(X, Y)
        x2 = np.einsum("ij,ij->i", X, X)
        y2 = np.einsum("ij,ij->i", Y, Y)
        singular = d2 <= self.epsilon * (x2[:, None] + y2[None, :] + 1.0)
        with np.errstate(divide="ignore"):
            out = 1.0 / np.sqrt(d2)
        out[singular] = self.diagonal_value
        return out

    def params(self) -> dict:
        return {"diagonal_value": self.diagonal_value, "epsilon": self.epsilon}
