"""repro — a reproduction of MatRox (Liu et al., PPoPP 2020).

MatRox is an inspector-executor framework for H2 hierarchical-matrix
evaluation: modular compression, structure analysis (blocking + coarsening),
the CDS storage format, and specialized code generation for data-local,
load-balanced HMatrix-matrix multiplication.

Quickstart
----------
>>> import numpy as np
>>> from repro import inspector, matmul
>>> points = np.random.default_rng(0).random((2000, 2))
>>> H = inspector(points, kernel="gaussian", structure="h2-geometric")
>>> W = np.random.default_rng(1).random((2000, 16))
>>> Y = matmul(H, W)          # approximates K @ W

The typed API layer (``repro.api``) makes inspect-once/execute-many
first-class: a :class:`Session` caches inspection plans by content
fingerprint and hands out composable :class:`KernelOperator` facades
(``K + lam * I`` is an object solvers consume directly).

>>> from repro import PlanConfig, Session
>>> with Session(plan=PlanConfig(leaf_size=64)) as session:
...     K = session.operator(points, kernel="gaussian")
...     Y2 = K @ W                     # same product, cached plan
>>> bool(np.allclose(Y, Y2, atol=1e-12))
True

See DESIGN.md for the system inventory (section 6 covers the API layer)
and EXPERIMENTS.md for the paper-figure reproductions.
"""

from repro.api import (
    DEFAULT_POLICY,
    ExecutionPolicy,
    IdentityOperator,
    KernelOperator,
    KernelService,
    LinearOperator,
    PlanConfig,
    PlanStore,
    PlanStoreError,
    Session,
    aslinearoperator,
)
from repro.compression.compressor import CompressionResult, compress
from repro.core.accuracy import overall_accuracy, relative_error
from repro.core.executor import Executor, matmul, matmul_many
from repro.core.hmatrix import HMatrix
from repro.core.parallel import ProcessEngine, WorkerCrashError
from repro.core.inspector import (
    InspectionP1,
    Inspector,
    inspector,
    inspector_p1,
    inspector_p2,
)
from repro.core.io import (
    load_hmatrix,
    load_inspection_p1,
    load_operator,
    save_hmatrix,
    save_inspection_p1,
)
from repro.datasets.registry import dataset_names, load_dataset, table1_rows
from repro.kernels.base import Kernel, get_kernel
from repro.observability import (
    FaultPlan,
    RunManifest,
    build_run_manifest,
    collect_stats,
    inject_faults,
    metrics_text,
)
from repro.net import KernelClient, KernelServer
from repro.tuning import Autotuner, TuningProfile, tune
from repro.solvers import (
    KernelRidgeRegression,
    conjugate_gradient,
    estimate_trace,
    power_iteration,
)

__version__ = "1.7.0"

__all__ = [
    "PlanConfig",
    "ExecutionPolicy",
    "DEFAULT_POLICY",
    "Session",
    "PlanStore",
    "PlanStoreError",
    "KernelService",
    "KernelServer",
    "KernelClient",
    "KernelOperator",
    "LinearOperator",
    "IdentityOperator",
    "aslinearoperator",
    "inspector",
    "inspector_p1",
    "inspector_p2",
    "Inspector",
    "InspectionP1",
    "HMatrix",
    "Executor",
    "ProcessEngine",
    "WorkerCrashError",
    "matmul",
    "matmul_many",
    "RunManifest",
    "build_run_manifest",
    "collect_stats",
    "metrics_text",
    "FaultPlan",
    "inject_faults",
    "Autotuner",
    "TuningProfile",
    "tune",
    "compress",
    "CompressionResult",
    "overall_accuracy",
    "relative_error",
    "Kernel",
    "get_kernel",
    "load_dataset",
    "dataset_names",
    "table1_rows",
    "save_hmatrix",
    "load_hmatrix",
    "load_operator",
    "save_inspection_p1",
    "load_inspection_p1",
    "KernelRidgeRegression",
    "conjugate_gradient",
    "power_iteration",
    "estimate_trace",
    "__version__",
]
