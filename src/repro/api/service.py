"""KernelService: a thread-safe, micro-batching serving façade.

One :class:`~repro.api.session.Session` is not a server: its caches are
single-owner and every caller pays a full ``matmul`` per request.
:class:`KernelService` turns it into one:

* **registration** binds a ``points_id`` to a point set + kernel + plan
  (the tenant's compiled artifact — warm-started from the session's
  :class:`~repro.api.store.PlanStore` when one is attached);
* **submit(points_id, W)** is safe from any thread and returns a
  :class:`concurrent.futures.Future`;
* a single **dispatcher thread** owns all Session access (the
  concurrency-safe request path: callers only touch the queue) and
  **micro-batches** compatible requests — queued requests for the same
  HMatrix are stacked column-wise into ONE ``matmul`` call, amortizing
  the batched-GEMM engine (and, with ``backend="process"``, the worker
  pool) across tenants; per-request results are split back out of the
  stacked product, bit-identical to a solo evaluation of the same
  columns;
* per-request **latency and queue-depth stats** (p50/p99, batch sizes)
  make the serving behaviour observable.

The protocol is documented in DESIGN.md section 8; the CLI front-end is
``repro serve --requests`` and the benchmark is
``benchmarks/bench_serving.py``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.api.plan import PlanConfig
from repro.api.policy import ExecutionPolicy
from repro.api.session import Session
from repro.observability.sync import make_condition, make_lock

if TYPE_CHECKING:  # annotation-only: the session owns the store import
    from repro.api.store import PlanStore

__all__ = ["KernelService", "ServiceClosed"]


class ServiceClosed(RuntimeError):
    """Raised by submit()/register() after the service has been closed."""


@dataclass
class _Endpoint:
    """A registered tenant: the immutable inputs of one compiled plan."""

    points: np.ndarray[Any, np.dtype[Any]]
    kernel: Any
    plan: PlanConfig
    n: int


@dataclass
class _Pending:
    """One queued request (W normalized to a 2-D column panel).

    The endpoint is captured *at submit time*: re-registering a
    points_id never reroutes requests that were validated against the
    earlier binding.
    """

    points_id: str
    endpoint: _Endpoint
    W: np.ndarray[Any, np.dtype[Any]]
    cols: int
    squeeze: bool
    future: Future[Any]
    t_submit: float


class KernelService:
    """Concurrent request front-end over one Session.

    Parameters
    ----------
    session:
        An existing :class:`Session` to serve from (not closed on service
        close). Omitted, the service owns a fresh one built from
        ``store``/``plan``/``policy``/``num_threads``.
    store:
        Forwarded to the owned Session — a
        :class:`~repro.api.store.PlanStore` (or directory path) so
        registration warm-starts from compiled artifacts.
    max_batch:
        Most requests merged into one stacked ``matmul`` (>= 1; 1
        disables micro-batching entirely).
    max_wait_ms:
        How long the dispatcher lingers for stragglers when fewer than
        ``max_batch`` compatible requests are queued. 0 batches only
        what is already queued.
    manifest:
        Write a :class:`~repro.observability.RunManifest` at
        :meth:`close` (best-effort — a failed write never fails the
        close). ``True`` writes under ``manifests/`` next to the
        session's store (requires a disk-backed one); a path writes
        there instead (a ``.json`` path names the exact file).

    Thread-safety contract: ``submit``/``request``/``stats`` may be
    called from any thread; all Session/Executor access happens on the
    dispatcher thread (plus ``register(warm=True)``/``warm()``, which
    serialize against it with a lock).
    """

    def __init__(self, session: Session | None = None, *,
                 store: PlanStore | str | Path | None = None,
                 plan: PlanConfig | None = None,
                 policy: ExecutionPolicy | None = None,
                 num_threads: int | None = None,
                 max_batch: int = 8, max_wait_ms: float = 2.0,
                 latency_window: int = 10_000,
                 manifest: bool | str | Path = False):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self._owns_session = session is None
        if session is None:
            session = Session(plan=plan, policy=policy,
                              num_threads=num_threads, store=store)
        self.session = session
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1e3
        self._manifest_target: Path | None = None
        self._manifest_written = False
        #: Where close() actually wrote the run manifest (None until
        #: then, and still None when the best-effort write failed).
        self.manifest_path: Path | None = None
        if manifest:
            if manifest is True:
                if self.session.store.directory is None:
                    raise ValueError(
                        "manifest=True writes next to the store and needs "
                        "a disk-backed one; pass manifest=<path> for a "
                        "memory-only service"
                    )
                self._manifest_target = (
                    self.session.store.directory / "manifests")
            else:
                self._manifest_target = Path(manifest)

        self._endpoints: dict[str, _Endpoint] = {}
        self._queue: deque[_Pending] = deque()  # guarded-by: self._cv
        self._cv = make_condition("KernelService._cv")
        self._closed = False  # guarded-by: self._cv
        self._draining = False  # guarded-by: self._cv
        # requests taken off the queue, not yet resolved
        self._inflight = 0  # guarded-by: self._cv
        # register()/warm() run session.inspect on caller threads; the
        # dispatcher runs inspect+matmul. This lock serializes them.
        self._session_lock = make_lock("KernelService._session_lock")

        self._latencies: deque[float] = deque(maxlen=latency_window)
        self._batch_sizes: deque[int] = deque(maxlen=latency_window)
        self._max_queue_depth = 0  # guarded-by: self._cv
        self._served = 0  # guarded-by: self._cv
        self._errors = 0  # guarded-by: self._cv
        self._dispatcher_crashes = 0  # guarded-by: self._cv

        self._dispatcher = threading.Thread(
            target=self._loop, name="kernel-service-dispatcher", daemon=True)
        self._dispatcher.start()

    # ------------------------------------------------------------- endpoints
    def register(self, points_id: str, points: Any,
                 kernel: Any = "gaussian",
                 plan: PlanConfig | None = None, bacc: float | None = None,
                 warm: bool = False) -> bool:
        """Bind ``points_id`` to a point set + kernel + plan.

        ``warm=True`` inspects (or loads from the plan store) immediately,
        so the first request pays no build latency. Returns whether a
        fresh plan build happened (always ``False`` without ``warm``;
        ``False`` with it means the artifact came from the session cache
        or the plan store).
        """
        with self._cv:
            if self._closed or self._draining:
                raise ServiceClosed(
                    "cannot register on a closed or draining service")
        pts = np.ascontiguousarray(points, dtype=np.float64)
        plan = self.session._resolve_plan(plan, bacc)
        self._endpoints[points_id] = _Endpoint(
            points=pts, kernel=kernel, plan=plan, n=len(pts))
        return self.warm(points_id) if warm else False

    def warm(self, points_id: str | None = None) -> bool:
        """Materialize one endpoint (or all) now, through the plan store.

        Returns whether any fresh plan build happened; the build counter
        is read under the session lock, so the answer is about *this*
        call even with the dispatcher (or other warmers) running.
        """
        ids = [points_id] if points_id is not None else list(self._endpoints)
        built = False
        for pid in ids:
            ep = self._endpoints[pid]
            with self._session_lock:
                before = self.session.stats.p2_builds
                self.session.inspect(ep.points, kernel=ep.kernel,
                                     plan=ep.plan)
                built = built or self.session.stats.p2_builds > before
        return built

    def endpoints(self) -> list[str]:
        return sorted(self._endpoints)

    def shape(self, points_id: str) -> tuple[int, int]:
        """Operator shape served under ``points_id``."""
        ep = self._endpoints.get(points_id)
        if ep is None:
            raise KeyError(f"unknown points_id {points_id!r}")
        return (ep.n, ep.n)

    # -------------------------------------------------------------- requests
    def submit(self, points_id: str, W: Any) -> Future[Any]:
        """Enqueue ``Y = K[points_id] @ W``; returns a Future of Y.

        Safe from any thread. Shape errors raise immediately (here, not
        in the Future); execution errors surface through the Future.
        """
        ep = self._endpoints.get(points_id)
        if ep is None:
            raise KeyError(
                f"unknown points_id {points_id!r}; register() it first "
                f"(known: {self.endpoints()})")
        # Always copy: the dispatcher reads the panel asynchronously (up
        # to max_wait_ms later), so a caller reusing its buffer after
        # submit() must not be able to corrupt the served product.
        W = np.array(W, dtype=np.float64, order="C", copy=True)
        squeeze = W.ndim == 1
        if squeeze:
            W = W[:, None]
        if W.ndim != 2 or W.shape[0] != ep.n:
            raise ValueError(
                f"W must have {ep.n} rows for {points_id!r}, got shape "
                f"{W.shape}")
        item = _Pending(points_id, ep, W, W.shape[1], squeeze, Future(),
                        time.perf_counter())
        with self._cv:
            if self._closed or self._draining:
                raise ServiceClosed(
                    "cannot submit to a closed or draining service")
            self._queue.append(item)
            self._max_queue_depth = max(self._max_queue_depth,
                                        len(self._queue))
            self._cv.notify()
        return item.future

    def request(self, points_id: str, W: Any,
                timeout: float | None = None) -> Any:
        """Synchronous convenience: ``submit(...).result(timeout)``."""
        return self.submit(points_id, W).result(timeout)

    # ------------------------------------------------------------ dispatcher
    def _take_batch(self) -> list[_Pending]:
        """Pop the head request plus up to ``max_batch - 1`` queued
        requests for the same endpoint (callers hold ``self._cv``).
        Skipped (incompatible) requests keep their queue order."""
        head = self._queue.popleft()
        batch = [head]
        if self.max_batch > 1:
            skipped: list[_Pending] = []
            while self._queue and len(batch) < self.max_batch:
                item = self._queue.popleft()
                # Same *endpoint object*, not just the same name: requests
                # validated against a superseded registration never share
                # a stacked product with the new one.
                if item.endpoint is head.endpoint:
                    batch.append(item)
                else:
                    skipped.append(item)
            self._queue.extendleft(reversed(skipped))
        return batch

    def _loop(self) -> None:
        # _execute already fences per-batch errors into Futures, so
        # anything escaping to here is a defect in the dispatch machinery
        # itself (e.g. _take_batch). Without the except, the thread would
        # die silently and every queued Future would hang forever;
        # instead the service fails closed: pending requests complete
        # with ServiceClosed and later submits are refused.
        try:
            while True:
                with self._cv:
                    while not self._queue and not self._closed:
                        self._cv.wait()
                    if not self._queue:
                        return  # closed and fully drained
                    if (self.max_batch > 1 and self.max_wait > 0
                            and not self._closed and not self._draining
                            and len(self._queue) < self.max_batch):
                        # Linger briefly so a burst coalesces into one
                        # batch. (Never during drain: nothing new can
                        # arrive, so lingering only delays completion.)
                        deadline = time.perf_counter() + self.max_wait
                        while (len(self._queue) < self.max_batch
                               and not self._closed and not self._draining):
                            remaining = deadline - time.perf_counter()
                            if remaining <= 0:
                                break
                            self._cv.wait(remaining)
                    batch = self._take_batch()
                    self._inflight += len(batch)
                try:
                    self._execute(batch)
                finally:
                    with self._cv:
                        self._inflight -= len(batch)
                        self._cv.notify_all()
        except BaseException as exc:
            self._dispatcher_failed(exc)
            raise

    def _dispatcher_failed(self, exc: BaseException) -> None:
        """Fail closed after a dispatcher crash: refuse new requests and
        complete every still-queued Future with ServiceClosed (chained to
        the crash) rather than leaving callers hung on result()."""
        with self._cv:
            self._dispatcher_crashes += 1
            self._closed = True
            pending = list(self._queue)
            self._queue.clear()
            self._errors += len(pending)
            self._cv.notify_all()
        wrapped = ServiceClosed(
            f"dispatcher crashed ({type(exc).__name__}: {exc}); "
            f"queued request abandoned")
        wrapped.__cause__ = exc
        for p in pending:
            if p.future.set_running_or_notify_cancel():
                p.future.set_exception(wrapped)

    def _execute(self, batch: list[_Pending]) -> None:
        # Transition every future to RUNNING, dropping any the caller
        # cancelled while queued: after this, set_result/set_exception
        # can never raise InvalidStateError and kill the dispatcher.
        batch = [p for p in batch
                 if p.future.set_running_or_notify_cancel()]
        if not batch:
            return
        ep = batch[0].endpoint  # submit-time binding, see _Pending
        try:
            with self._session_lock:
                H = self.session.inspect(ep.points, kernel=ep.kernel,
                                         plan=ep.plan)
                W = (batch[0].W if len(batch) == 1
                     else np.hstack([p.W for p in batch]))
                Y = self.session.matmul(H, W)
        except BaseException as exc:
            with self._cv:
                self._errors += len(batch)
            for p in batch:
                p.future.set_exception(exc)
            return
        done = time.perf_counter()
        with self._cv:
            for p in batch:
                self._latencies.append(done - p.t_submit)
            self._batch_sizes.append(len(batch))
            self._served += len(batch)
        # Resolve Futures OUTSIDE the lock: set_result runs user
        # done-callbacks synchronously, and a blocking callback must not
        # stall submit()/stats() or deadlock the dispatcher.
        offset = 0
        for p in batch:
            y = np.ascontiguousarray(Y[:, offset:offset + p.cols])
            offset += p.cols
            p.future.set_result(y[:, 0] if p.squeeze else y)

    # --------------------------------------------------------------- metrics
    def stats(self, include_autotune: bool = True) -> dict[str, Any]:
        """Serving metrics: latency percentiles, batching, queue depth.

        ``include_autotune=False`` omits the nested tuner dict — the
        manifest builder records tuner counters under their own key and
        must not double-count them here.
        """
        with self._cv:
            lat = np.asarray(self._latencies, dtype=float)
            sizes = np.asarray(self._batch_sizes, dtype=float)
            out: dict[str, Any] = {
                "served": self._served,
                "errors": self._errors,
                "queue_depth": len(self._queue),
                "max_queue_depth": self._max_queue_depth,
                "batches": int(len(sizes)),
                "mean_batch": float(sizes.mean()) if len(sizes) else 0.0,
                "max_batch_observed": int(sizes.max()) if len(sizes) else 0,
                "dispatcher_crashes": self._dispatcher_crashes,
                "dispatcher_alive": self._dispatcher.is_alive(),
                "draining": self._draining and not self._closed,
                "inflight": self._inflight,
            }
        for name, q in (("p50_ms", 50), ("p99_ms", 99)):
            out[name] = (float(np.percentile(lat, q) * 1e3)
                         if len(lat) else 0.0)
        out["mean_ms"] = float(lat.mean() * 1e3) if len(lat) else 0.0
        if include_autotune:
            # Auto-policy visibility: with order="auto", each stacked
            # batch resolves through the session's tuner, and a batch
            # whose total width drifts into a different bucket tunes a
            # fresh profile — `tunes` counts exactly those drift re-tunes.
            out["autotune"] = self.session._executor.autotune_stats()
        return out

    # ------------------------------------------------------------- lifecycle
    def drain(self, timeout: float | None = None) -> bool:
        """Stop accepting new requests; wait for accepted ones to finish.

        The SIGTERM-friendly half of shutdown, separate from
        :meth:`close`: after ``drain()`` returns ``True``, every Future
        accepted before the drain began has *completed* (the dispatcher
        keeps running them — nothing is abandoned with
        :class:`ServiceClosed`), while ``submit``/``register`` refuse new
        work immediately. The session and dispatcher stay up, so
        ``stats()``/manifest collection still work; call :meth:`close`
        afterwards to tear down.

        Returns ``False`` if ``timeout`` elapsed with work still in
        flight (the drain state persists; a later call can keep
        waiting). Idempotent and safe from any thread.
        """
        deadline = (None if timeout is None
                    else time.perf_counter() + timeout)
        with self._cv:
            self._draining = True
            self._cv.notify_all()  # wake a lingering dispatcher now
            while self._queue or self._inflight:
                if not self._dispatcher.is_alive():
                    # A crashed dispatcher already failed the queue; the
                    # drain itself is then complete (nothing can run).
                    return True
                remaining = (None if deadline is None
                             else deadline - time.perf_counter())
                if remaining is not None and remaining <= 0:
                    return False
                # Bounded waits so a dispatcher that dies without
                # notifying (SIGKILLed interpreter thread, debugger) is
                # still noticed by the aliveness check above.
                self._cv.wait(0.1 if remaining is None
                              else min(remaining, 0.1))
        return True

    def close(self, timeout: float | None = None) -> None:
        """Stop accepting requests, drain the queue, join the dispatcher.

        Owned sessions (constructed by the service) are closed too;
        borrowed ones are left running.
        """
        with self._cv:
            already_down = self._closed and not self._dispatcher.is_alive()
            self._closed = True
            self._cv.notify_all()
        if not already_down:
            self._dispatcher.join(timeout)
        if not self._dispatcher.is_alive():
            # Safety net: anything still queued can never run now (the
            # dispatcher is gone) — complete it with ServiceClosed
            # rather than leaving the caller hung on result().
            with self._cv:
                pending = list(self._queue)
                self._queue.clear()
                self._errors += len(pending)
            for p in pending:
                if p.future.set_running_or_notify_cancel():
                    p.future.set_exception(ServiceClosed(
                        "service closed before the request was dispatched"))
            if self._manifest_target is not None \
                    and not self._manifest_written:
                # Stats must be collected while the (possibly owned)
                # session is still open; the write itself is best-effort.
                self._manifest_written = True
                from repro.observability.manifest import (
                    build_run_manifest,
                    write_run_manifest,
                )
                self.manifest_path = write_run_manifest(
                    build_run_manifest(service=self), self._manifest_target)
        # Only tear the session (pools, process engines) down once the
        # dispatcher has actually exited — a timed-out join means a batch
        # is still inside session.matmul.
        if self._owns_session and not self._dispatcher.is_alive():
            self.session.close()

    def __enter__(self) -> "KernelService":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False
