"""Composable linear operators over compressed kernel matrices.

:class:`KernelOperator` is the lazy linear-operator facade over
:class:`~repro.core.hmatrix.HMatrix`: it supports ``@``, ``.T``,
``alpha * K``, ``K + beta * I``, and the ``shape``/``dtype``/``matvec``/
``matmat`` duck-typing contract of ``scipy.sparse.linalg.aslinearoperator``
(without requiring scipy). Solvers consume these composed operators —
``K + lam * N * I`` is an object, not a hand-rolled closure — so the same
inspected HMatrix serves every downstream algorithm.

Operators are cheap views: composition never materializes matrices, and a
lazy :class:`KernelOperator` defers inspection until the first product
(or an explicit :meth:`KernelOperator.materialize`), which lets a
:class:`~repro.api.session.Session` hand out operators for free and pay
for inspection only when — and if — the operator is applied.
"""

from __future__ import annotations

import numbers

import numpy as np

from repro.api.plan import PlanConfig
from repro.api.policy import ExecutionPolicy, resolve_policy
from repro.core.hmatrix import HMatrix


class LinearOperator:
    """Minimal composable linear-operator algebra.

    Subclasses implement ``_apply(W, policy)`` for a 2-D ``W`` and expose
    ``shape``; everything else (``@``, 1-D handling, scaling, sums,
    transpose, ``matvec``/``matmat`` duck typing) is derived here.
    """

    shape: tuple[int, int]
    dtype = np.dtype(np.float64)

    def _apply(self, W: np.ndarray,
               policy: ExecutionPolicy | None) -> np.ndarray:
        raise NotImplementedError

    def _transpose(self) -> "LinearOperator":
        raise NotImplementedError(
            f"{type(self).__name__} does not define a transpose"
        )

    # ------------------------------------------------------------ application
    def matmul(self, W, policy: ExecutionPolicy | None = None) -> np.ndarray:
        """``Y = A @ W`` for a vector ``(N,)`` or panel ``(N, Q)``."""
        W = np.ascontiguousarray(W, dtype=np.float64)
        squeeze = W.ndim == 1
        if squeeze:
            W = W[:, None]
        if W.shape[0] != self.shape[1]:
            raise ValueError(
                f"W has {W.shape[0]} rows but the operator shape is "
                f"{self.shape}"
            )
        Y = self._apply(W, policy)
        return Y[:, 0] if squeeze else Y

    def __matmul__(self, W) -> np.ndarray:
        return self.matmul(W)

    # scipy.sparse.linalg-style duck typing ---------------------------------
    def matvec(self, v) -> np.ndarray:
        return self.matmul(v)

    def matmat(self, W) -> np.ndarray:
        return self.matmul(W)

    def rmatvec(self, v) -> np.ndarray:
        return self.T.matmul(v)

    def dense(self) -> np.ndarray:
        """Materialize the operator (validation / small N only)."""
        return self.matmul(np.eye(self.shape[1]))

    # ------------------------------------------------------------ composition
    @property
    def T(self) -> "LinearOperator":
        return self._transpose()

    def __mul__(self, alpha) -> "LinearOperator":
        if not isinstance(alpha, numbers.Number):
            return NotImplemented
        return ScaledOperator(self, float(alpha))

    __rmul__ = __mul__

    def __neg__(self) -> "LinearOperator":
        return ScaledOperator(self, -1.0)

    def __add__(self, other) -> "LinearOperator":
        if not isinstance(other, LinearOperator):
            return NotImplemented
        return SumOperator(self, other)

    def __sub__(self, other) -> "LinearOperator":
        if not isinstance(other, LinearOperator):
            return NotImplemented
        return SumOperator(self, ScaledOperator(other, -1.0))

    def shifted(self, beta: float) -> "LinearOperator":
        """``A + beta * I`` — the ridge/Tikhonov composition."""
        return ShiftedOperator(self, float(beta))


class IdentityOperator(LinearOperator):
    """``I`` of order ``n`` (combine as ``beta * IdentityOperator(n)``)."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.shape = (n, n)

    def _apply(self, W, policy):
        return W.copy()

    def _transpose(self):
        return self


class DenseOperator(LinearOperator):
    """A plain ndarray behind the operator interface (tests, references)."""

    def __init__(self, A: np.ndarray):
        A = np.asarray(A, dtype=np.float64)
        if A.ndim != 2:
            raise ValueError(f"A must be 2-D, got shape {A.shape}")
        self.A = A
        self.shape = A.shape

    def _apply(self, W, policy):
        return self.A @ W

    def _transpose(self):
        return DenseOperator(self.A.T)


class ScaledOperator(LinearOperator):
    """``alpha * A`` without materializing anything."""

    def __init__(self, base: LinearOperator, alpha: float):
        self.base = base
        self.alpha = float(alpha)
        self.shape = base.shape

    def _apply(self, W, policy):
        return self.alpha * self.base._apply(W, policy)

    def _transpose(self):
        return ScaledOperator(self.base.T, self.alpha)

    def __mul__(self, alpha):
        if not isinstance(alpha, numbers.Number):
            return NotImplemented
        return ScaledOperator(self.base, self.alpha * float(alpha))

    __rmul__ = __mul__


class ShiftedOperator(LinearOperator):
    """``A + beta * I`` fused into one pass.

    Equivalent to ``A + beta * IdentityOperator(n)`` but without the
    intermediate identity copy and scale — it stays allocation-lean inside
    solver hot loops (one extra axpy per application, like the closures it
    replaces).
    """

    def __init__(self, base: LinearOperator, beta: float):
        self.base = base
        self.beta = float(beta)
        self.shape = base.shape

    def _apply(self, W, policy):
        return self.base._apply(W, policy) + self.beta * W

    def _transpose(self):
        return ShiftedOperator(self.base.T, self.beta)


class SumOperator(LinearOperator):
    """``A + B`` applied term-wise (one product per term)."""

    def __init__(self, left: LinearOperator, right: LinearOperator):
        if left.shape != right.shape:
            raise ValueError(
                f"operator shapes differ: {left.shape} vs {right.shape}"
            )
        self.left = left
        self.right = right
        self.shape = left.shape

    def _apply(self, W, policy):
        return self.left._apply(W, policy) + self.right._apply(W, policy)

    def _transpose(self):
        return SumOperator(self.left.T, self.right.T)


class KernelOperator(LinearOperator):
    """Linear-operator facade over an (optionally not-yet-built) HMatrix.

    Two ways in:

    * ``KernelOperator(H)`` wraps an already-inspected
      :class:`~repro.core.hmatrix.HMatrix`;
    * :meth:`KernelOperator.from_points` captures ``(points, kernel, plan)``
      and defers the inspection until the first product — through the
      owning :class:`~repro.api.session.Session`'s plan cache when bound
      to one, so repeated operators over the same points skip phase 1.

    Kernel operators are symmetric (the compressed approximation of a
    symmetric kernel), so ``.T`` returns the operator itself.
    """

    def __init__(self, hmatrix: HMatrix,
                 policy: ExecutionPolicy | None = None,
                 _session=None):
        self._hmatrix: HMatrix | None = hmatrix
        self.policy = policy
        self._session = _session
        self._points = None
        self._kernel = None
        self._plan: PlanConfig | None = None
        if hmatrix is not None:
            self.shape = hmatrix.shape

    @classmethod
    def from_points(cls, points, kernel="gaussian",
                    plan: PlanConfig | None = None,
                    policy: ExecutionPolicy | None = None,
                    session=None) -> "KernelOperator":
        """Lazy operator: inspection runs on first use, not construction."""
        op = cls(None, policy=policy, _session=session)
        op._points = np.ascontiguousarray(points, dtype=np.float64)
        op._kernel = kernel
        op._plan = plan if plan is not None else PlanConfig()
        n = len(op._points)
        op.shape = (n, n)
        return op

    # ---------------------------------------------------------------- laziness
    @property
    def materialized(self) -> bool:
        """True once the backing HMatrix has been inspected/fetched."""
        return self._hmatrix is not None

    @property
    def hmatrix(self) -> HMatrix:
        """The backing HMatrix, inspecting on first access."""
        if self._hmatrix is None:
            if self._session is not None:
                self._hmatrix = self._session.inspect(
                    self._points, kernel=self._kernel, plan=self._plan
                )
            else:
                self._hmatrix = self._plan.to_inspector().run(
                    self._points, self._kernel
                )
        return self._hmatrix

    def materialize(self) -> "KernelOperator":
        """Force inspection now (returns self for chaining)."""
        self.hmatrix
        return self

    # -------------------------------------------------------------- application
    def _apply(self, W, policy):
        # Identity-against-None, never truthiness (see coalesce_policy).
        policy = resolve_policy(policy, fallback=self.policy)
        if self._session is not None:
            return self._session.matmul(self.hmatrix, W, policy=policy)
        return self.hmatrix.matmul(W, policy=policy)

    def _transpose(self):
        return self

    # --------------------------------------------------------------- reporting
    def summary(self) -> dict:
        return self.hmatrix.summary()

    def __repr__(self) -> str:
        state = "materialized" if self.materialized else "lazy"
        return (f"KernelOperator(shape={getattr(self, 'shape', None)}, "
                f"{state})")


def aslinearoperator(A) -> LinearOperator:
    """Coerce an HMatrix / ndarray / operator to a :class:`LinearOperator`."""
    if isinstance(A, LinearOperator):
        return A
    if isinstance(A, HMatrix):
        return KernelOperator(A)
    if isinstance(A, np.ndarray):
        return DenseOperator(A)
    raise TypeError(f"cannot interpret {type(A).__name__} as a LinearOperator")


def as_apply(A):
    """Normalize an operator-or-callable to a mat-vec/mat-mat callable.

    Solvers accept either a bare callable (the legacy contract) or anything
    with ``@`` — a :class:`LinearOperator`, an HMatrix, or an ndarray.
    """
    if callable(A) and not isinstance(A, LinearOperator):
        return A
    if hasattr(A, "__matmul__"):
        return lambda W: A @ W
    raise TypeError(
        f"expected a callable or matmul-capable operator, got "
        f"{type(A).__name__}"
    )
