"""Plan configuration: every inspector knob, typed, validated, documented.

:class:`PlanConfig` replaces the old ``**config`` kwargs soup that flowed
into :class:`repro.core.inspector.Inspector`: a frozen dataclass whose
constructor rejects invalid values up front (instead of failing deep inside
tree construction or lowering) and whose instances are hashable, so a
:class:`~repro.api.session.Session` can key its plan cache on them.

The fields mirror the paper's inspector parameters; the split between
*phase-1* knobs (tree, admissibility, sampling, blocking — everything that
depends only on the points) and *phase-2* knobs (accuracy, coarsening,
lowering — everything that depends on the kernel/accuracy) is what makes
the Section 5 inspection-reuse path cacheable: two plans with equal
:meth:`p1_fingerprint` share phase-1 artifacts even when their phase-2
settings differ.
"""

from __future__ import annotations

import hashlib
import numbers
import os
from dataclasses import dataclass, field, fields, replace

#: Admissibility structures understood by ``make_admissibility``.
VALID_STRUCTURES = (
    "hss", "h2", "h2-geometric", "geometric", "h2-b", "h2-budget", "budget",
)

#: Cluster-tree construction methods understood by ``build_cluster_tree``.
VALID_TREE_METHODS = ("auto", "kdtree", "twomeans")

#: Fields consumed by phase-1 inspection (points-only work). Plans equal on
#: these share tree / interaction / sampling / blocking artifacts.
_P1_FIELDS = (
    "structure", "tau", "budget", "leaf_size", "sampling_size",
    "tree_method", "seed", "near_blocksize", "far_blocksize",
)


def _default_p() -> int:
    return os.cpu_count() or 1


@dataclass(frozen=True)
class PlanConfig:
    """Validated inspection plan (the paper's inspector parameters).

    Parameters
    ----------
    structure:
        HMatrix structure / admissibility flavour: ``"h2-geometric"``
        (default, geometric tau-admissibility), ``"hss"`` (weak
        admissibility), or ``"h2-b"`` (GOFMM-style budget rule); aliases
        ``"h2"``/``"geometric"`` and ``"h2-budget"``/``"budget"`` are
        accepted.
    tau:
        Geometric admissibility parameter in (0, 1]; larger admits more
        far-field pairs (paper default 0.65).
    budget:
        Near-field budget fraction in [0, 1] for ``"h2-b"`` (paper default
        0.03).
    bacc:
        Block approximation accuracy for the low-rank sweep (phase 2).
    leaf_size:
        Cluster-tree leaf capacity.
    sampling_size:
        Far-field sampling panel size per node.
    max_rank:
        Rank cap for skeletonization.
    agg:
        Coarsening aggregation factor (levels merged per coarsen step).
    p:
        Target partition count for load balancing (defaults to physical
        cores).
    near_blocksize / far_blocksize:
        Blocking factors for the near/far interaction loops.
    coarsen_threshold / block_threshold / far_block_threshold:
        Lowering-decision thresholds (``None`` lets the cost model pick).
    low_level:
        Allow low-level (per-block) code generation.
    tree_method:
        ``"auto"`` (kd-tree for d <= 3, two-means otherwise), ``"kdtree"``,
        or ``"twomeans"``.
    seed:
        Seed for tree construction and sampling.
    """

    structure: str = "h2-geometric"
    tau: float = 0.65
    budget: float = 0.03
    bacc: float = 1e-5
    leaf_size: int = 64
    sampling_size: int = 32
    max_rank: int = 256
    agg: int = 2
    p: int = field(default_factory=_default_p)
    near_blocksize: int = 2
    far_blocksize: int = 4
    coarsen_threshold: int = 4
    block_threshold: int | None = None
    far_block_threshold: int | None = None
    low_level: bool = True
    tree_method: str = "auto"
    seed: int = 0

    def __post_init__(self):
        if self.structure not in VALID_STRUCTURES:
            raise ValueError(
                f"unknown structure {self.structure!r}; must be one of "
                f"{VALID_STRUCTURES}"
            )
        if self.tree_method not in VALID_TREE_METHODS:
            raise ValueError(
                f"tree_method must be one of {VALID_TREE_METHODS}, "
                f"got {self.tree_method!r}"
            )
        if not 0.0 < self.tau <= 1.0:
            raise ValueError(f"tau must be in (0, 1], got {self.tau}")
        if not 0.0 <= self.budget <= 1.0:
            raise ValueError(f"budget must be in [0, 1], got {self.budget}")
        if self.bacc <= 0.0:
            raise ValueError(f"bacc must be positive, got {self.bacc}")
        for name in ("leaf_size", "sampling_size", "max_rank", "agg", "p",
                     "near_blocksize", "far_blocksize"):
            v = getattr(self, name)
            if not isinstance(v, numbers.Integral) or v < 1:
                raise ValueError(f"{name} must be an integer >= 1, got {v!r}")
        if self.coarsen_threshold < 0:
            raise ValueError(
                f"coarsen_threshold must be >= 0, got {self.coarsen_threshold}"
            )
        for name in ("block_threshold", "far_block_threshold"):
            v = getattr(self, name)
            if v is not None and v < 0:
                raise ValueError(f"{name} must be >= 0 or None, got {v!r}")

    # ----------------------------------------------------------- construction
    @classmethod
    def from_kwargs(cls, **config) -> "PlanConfig":
        """Build a plan from loose keyword arguments (the legacy path).

        Unknown keys raise a ``TypeError`` naming the valid knobs, which is
        the validation the old ``Inspector(**config)`` path deferred to
        dataclass internals.
        """
        valid = {f.name for f in fields(cls)}
        unknown = sorted(set(config) - valid)
        if unknown:
            raise TypeError(
                f"unknown plan option(s) {unknown}; valid options: "
                f"{sorted(valid)}"
            )
        return cls(**config)

    def replace(self, **changes) -> "PlanConfig":
        """A copy with the given fields changed (re-validated)."""
        return replace(self, **changes)

    # ------------------------------------------------------------ fingerprints
    def _digest(self, names) -> str:
        payload = repr([(n, getattr(self, n)) for n in names])
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def p1_fingerprint(self) -> str:
        """Content key of the phase-1 (points-only) knobs.

        Two plans with equal ``p1_fingerprint`` produce identical trees,
        interaction lists, sampling plans, and blocksets for the same
        points, so their phase-1 inspection is interchangeable.
        """
        return self._digest(_P1_FIELDS)

    def fingerprint(self) -> str:
        """Content key over every knob (phase 1 + phase 2)."""
        return self._digest(sorted(f.name for f in fields(self)))

    # -------------------------------------------------------------- execution
    def to_inspector(self):
        """The equivalent :class:`repro.core.inspector.Inspector`."""
        from repro.core.inspector import Inspector

        return Inspector(**{f.name: getattr(self, f.name)
                            for f in fields(self)})
