"""Public API layer: typed plans, one execution policy, composable operators.

This package is the user-facing surface of the MatRox reproduction
(DESIGN.md section 6):

* :class:`~repro.api.plan.PlanConfig` — every inspector knob, validated;
* :class:`~repro.api.policy.ExecutionPolicy` / :data:`DEFAULT_POLICY` —
  the single way execution knobs (order, threads, q_chunk) travel;
* :class:`~repro.api.operator.KernelOperator` — a lazy, composable
  linear-operator facade over :class:`~repro.core.hmatrix.HMatrix`;
* :class:`~repro.api.session.Session` — thread-pool executor + tiered
  plan store making inspect-once/execute-many automatic across requests;
* :class:`~repro.api.store.PlanStore` — the durable, content-addressed,
  SHA-256-integrity-checked artifact store behind a Session
  (compile-once / serve-forever across process restarts);
* :class:`~repro.api.service.KernelService` — a thread-safe serving
  façade that micro-batches concurrent requests into stacked GEMMs.

The legacy free functions (``inspector``, ``matmul``, ``matmul_many``)
remain as thin shims over this layer.

``plan`` and ``policy`` are import-light and loaded eagerly; ``operator``
and ``session`` pull in the core machinery and are resolved lazily (PEP
562) so core modules can import the policy without a cycle.
"""

from repro.api.plan import PlanConfig
from repro.api.policy import (
    DEFAULT_POLICY,
    DEFAULT_Q_CHUNK,
    ExecutionPolicy,
    coalesce_policy,
    effective_cpu_count,
    resolve_policy,
)

__all__ = [
    "PlanConfig",
    "ExecutionPolicy",
    "DEFAULT_POLICY",
    "DEFAULT_Q_CHUNK",
    "resolve_policy",
    "coalesce_policy",
    "effective_cpu_count",
    "KernelOperator",
    "LinearOperator",
    "IdentityOperator",
    "DenseOperator",
    "aslinearoperator",
    "as_apply",
    "Session",
    "SessionStats",
    "points_fingerprint",
    "PlanStore",
    "PlanStoreError",
    "StoreStats",
    "KernelService",
    "ServiceClosed",
]

_LAZY = {
    "KernelOperator": "repro.api.operator",
    "LinearOperator": "repro.api.operator",
    "IdentityOperator": "repro.api.operator",
    "DenseOperator": "repro.api.operator",
    "aslinearoperator": "repro.api.operator",
    "as_apply": "repro.api.operator",
    "Session": "repro.api.session",
    "SessionStats": "repro.api.session",
    "points_fingerprint": "repro.api.session",
    "PlanStore": "repro.api.store",
    "PlanStoreError": "repro.api.store",
    "StoreStats": "repro.api.store",
    "KernelService": "repro.api.service",
    "ServiceClosed": "repro.api.service",
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
