"""PlanStore: a durable, content-addressed artifact store for plans.

The paper's whole premise is inspect-once/execute-many; before this module
the "once" only lasted one process lifetime (the Session's in-memory LRUs)
while disk persistence lived in a disconnected path (:mod:`repro.core.io`)
with no cache semantics or integrity checking. :class:`PlanStore` subsumes
both: it is the single artifact cache behind a
:class:`~repro.api.session.Session`, with a **tiered memory → disk get
path** so a fresh process warm-starts from disk and never re-inspects.

Design (DESIGN.md section 8):

* **Keys are content tuples** — the same ``(points_fingerprint,
  PlanConfig fingerprint, kernel identity)`` tuples the Session already
  uses; the store hashes their ``repr`` with SHA-256 into a digest that
  names the on-disk artifact (content addressing, no coordination needed).
* **Two tiers per entry kind**: phase-1 inspections (``p1``), finished
  HMatrices (``hmatrix``), and autotuner profiles (``profile``, see
  :mod:`repro.tuning`), each fronted by its own in-memory LRU.
* **Artifacts are ``<digest>.npz`` payloads** in the existing
  :mod:`repro.core.io` formats **plus a ``<digest>.json`` manifest**
  recording the tier, the key, and the payload's SHA-256. Loads verify the
  digest and *fail closed* with :class:`PlanStoreError` on any mismatch —
  a tampered or torn artifact can never be served.
* **Writes are atomic**: payload to a temp file then ``os.replace``, then
  the manifest the same way. The manifest is written last, so a manifest's
  existence implies a complete payload; eviction deletes the manifest
  first, preserving the invariant in the other direction.
* **Capacity policy**: ``max_bytes`` bounds the on-disk footprint;
  least-recently-*used* artifacts (manifest mtime, touched on every get)
  are evicted first. The newest artifact is never evicted.

All public methods are thread-safe (one coarse lock: artifacts are
few-per-second, megabyte-scale objects, not a hot path), so one PlanStore
may back many Sessions and a :class:`~repro.api.service.KernelService`.
"""

from __future__ import annotations

import contextlib
import hashlib
import importlib
import io
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable
from typing import Any, NoReturn

from repro.core.io import (
    PlanStoreError,
    load_hmatrix,
    load_inspection_p1,
    load_tuning_profile,
    save_hmatrix,
    save_inspection_p1,
    save_tuning_profile,
)
from repro.observability.faults import active_fault_plan
from repro.observability.sync import make_rlock

__all__ = [
    "ArtifactTier",
    "PlanStore",
    "PlanStoreError",
    "StoreStats",
    "register_tier",
    "registered_tiers",
]

#: Version of the store layout (manifest schema + file naming).
STORE_VERSION = 1


@dataclass(frozen=True)
class ArtifactTier:
    """One artifact kind the store knows how to persist.

    A tier declares its codec (``save``/``load`` in the
    :mod:`repro.core.io` calling convention: save to a path/file, load
    from a path/file, load raising :class:`PlanStoreError` on malformed
    bytes), a format ``version`` (informational; codecs version their
    own payloads), the default capacity of its in-memory LRU front, and
    an optional ``prepare`` hook applied to values on ``put`` (e.g. the
    profile tier coerces :class:`~repro.tuning.profile.TuningProfile`
    objects to their dict wire form).

    New tiers plug in via :func:`register_tier` — no edits to this
    module or :mod:`repro.core.io` required; the compiled-executor tier
    (:mod:`repro.codegen.compiled`) registers itself this way.
    """

    name: str
    save: Callable[..., Any]
    load: Callable[..., Any]
    version: int = 1
    default_memory_entries: int = 16
    prepare: Callable[..., Any] | None = None


def _prepare_profile(profile: Any) -> Any:
    return profile.to_dict() if hasattr(profile, "to_dict") else profile


#: tier name -> ArtifactTier. The three built-ins register here; other
#: modules add their own via register_tier().
_TIER_REGISTRY: dict[str, ArtifactTier] = {}

#: Tiers whose owning module registers them on import: looked up lazily
#: so a store can warm()/get() such artifacts without the caller having
#: imported the owner first.
_TIER_AUTOLOAD = {"compiled": "repro.codegen.compiled"}


def register_tier(tier: ArtifactTier) -> ArtifactTier:
    """Register (or replace) an artifact tier; returns it for chaining."""
    if not tier.name or not tier.name.isidentifier():
        raise ValueError(f"tier name must be an identifier, got {tier.name!r}")
    _TIER_REGISTRY[tier.name] = tier
    return tier


def registered_tiers() -> tuple[str, ...]:
    """Names of every registered tier (autoloadable ones included)."""
    for name in _TIER_AUTOLOAD:
        _lookup_tier(name)
    return tuple(sorted(_TIER_REGISTRY))


def _lookup_tier(name: str) -> ArtifactTier | None:
    tier = _TIER_REGISTRY.get(name)
    if tier is None and name in _TIER_AUTOLOAD:
        try:
            importlib.import_module(_TIER_AUTOLOAD[name])
        except ImportError:  # pragma: no cover - owner module broken
            return None
        tier = _TIER_REGISTRY.get(name)
    return tier


def _tier(name: str) -> ArtifactTier:
    tier = _lookup_tier(name)
    if tier is None:
        raise ValueError(f"unknown tier {name!r}; must be one of "
                         f"{sorted(_TIER_REGISTRY)}")
    return tier


register_tier(ArtifactTier("p1", save_inspection_p1, load_inspection_p1,
                           default_memory_entries=8))
register_tier(ArtifactTier("hmatrix", save_hmatrix, load_hmatrix,
                           default_memory_entries=16))
register_tier(ArtifactTier("profile", save_tuning_profile,
                           load_tuning_profile, default_memory_entries=32,
                           prepare=_prepare_profile))


@dataclass
class StoreStats:
    """Where gets were served from (and what writes/evictions happened)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    integrity_failures: int = 0
    quarantined: int = 0
    gc_runs: int = 0
    gc_removed: int = 0
    gc_reclaimed_bytes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {k: int(v) for k, v in self.__dict__.items()}


class _LRU:
    """Tiny ordered-dict LRU (callers hold the store lock)."""

    def __init__(self, maxsize: int):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[str, tuple[str, Any]] = OrderedDict()

    def get(self, key: str) -> tuple[str, Any] | None:
        if key not in self._data:
            return None
        self._data.move_to_end(key)
        return self._data[key]

    def pop(self, key: str) -> None:
        self._data.pop(key, None)

    def put(self, key: str, value: tuple[str, Any]) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def items(self) -> list[tuple[str, tuple[str, Any]]]:
        return list(self._data.items())

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


class PlanStore:
    """Content-addressed plan/HMatrix store with memory and disk tiers.

    Parameters
    ----------
    directory:
        Artifact directory (created if missing). ``None`` keeps the store
        memory-only — the Session default, equivalent to the old pure-LRU
        behaviour, with :meth:`flush` available to persist later.
    max_bytes:
        On-disk capacity; the least-recently-used artifacts are evicted
        after each put to stay under it. ``None`` (default) is unbounded.
    memory_p1 / memory_hmatrix:
        Capacities of the two in-memory LRU tiers.

    ``get_*`` returns ``None`` on a miss, the artifact on a hit, and
    raises :class:`PlanStoreError` on a hit whose bytes fail verification
    (fail closed — a corrupt store never silently rebuilds or serves).
    """

    def __init__(self, directory: str | Path | None = None, *,
                 max_bytes: int | None = None,
                 memory_p1: int = 8, memory_hmatrix: int = 16,
                 memory_profile: int = 32,
                 memory_entries: dict[str, int] | None = None):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1 or None, got {max_bytes}")
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        # Per-tier LRU capacity overrides. The legacy keyword names cover
        # the built-in tiers; ``memory_entries={"compiled": 4, ...}``
        # covers any registered tier. LRUs themselves are created lazily
        # (_mem_for), so tiers registered *after* this store was built
        # still get a memory front.
        self._mem_capacity: dict[str, int] = {
            "p1": memory_p1, "hmatrix": memory_hmatrix,
                              "profile": memory_profile,
                              **(memory_entries or {})}
        self._mem: dict[str, _LRU] = {}
        self._lock = make_rlock("PlanStore._lock")
        self.stats = StoreStats()

    def _mem_for(self, tier: str) -> _LRU:
        mem = self._mem.get(tier)
        if mem is None:
            capacity = self._mem_capacity.get(
                tier, _tier(tier).default_memory_entries)
            mem = self._mem[tier] = _LRU(capacity)
        return mem

    # ------------------------------------------------------------ addressing
    @staticmethod
    def digest(tier: str, key: Any) -> str:
        """Stable content address of a cache key within a tier."""
        _tier(tier)  # validates the tier name
        payload = repr((tier, repr(key)))
        return hashlib.sha256(payload.encode()).hexdigest()[:32]

    def _paths(self, digest: str) -> tuple[Path, Path]:
        assert self.directory is not None  # callers check the disk tier
        return (self.directory / f"{digest}.npz",
                self.directory / f"{digest}.json")

    def _manifests(self) -> list[Path]:
        """On-disk manifests, excluding in-flight/orphaned temp files.

        Temp names keep the real suffixes (numpy insists on ``.npz``), so
        every directory scan must filter them: a crash-orphaned partial
        temp file is garbage to ignore, not an artifact — it must never
        fail ``warm()``/``entries()`` on a healthy store. Stale orphans
        are swept only after a very conservative hour — a slow concurrent
        writer must never have a live temp file deleted from under it.
        """
        assert self.directory is not None  # callers check the disk tier
        out: list[Path] = []
        # analysis: waive R004 -- orphan-sweep age cutoff: gc bookkeeping,
        # never part of a payload or key
        cutoff = time.time() - 3600.0
        for p in self.directory.glob("*.json"):
            if ".tmp." in p.name:
                self._sweep_orphan(p, cutoff)
                continue
            out.append(p)
        for p in self.directory.glob("*.tmp.npz"):
            self._sweep_orphan(p, cutoff)
        return out

    def _manifests_by_mtime(self) -> list[Path]:
        """Manifests oldest-used first, tolerating a concurrent evictor:
        a manifest deleted between the glob and its stat() is simply an
        entry that no longer exists, not an error."""
        stamped: list[tuple[float, str, Path]] = []
        for p in self._manifests():
            try:
                stamped.append((p.stat().st_mtime, str(p), p))
            except OSError:
                continue
        return [p for _, _, p in sorted(stamped)]

    @staticmethod
    def _sweep_orphan(path: Path, cutoff: float) -> None:
        # OSError: raced with its writer; the next sweep retries.
        with contextlib.suppress(OSError):  # pragma: no cover
            if path.stat().st_mtime < cutoff:
                path.unlink(missing_ok=True)

    # ------------------------------------------------------------ public API
    def get(self, tier: str, key: Any) -> Any:
        """Artifact stored under ``(tier, key)`` — ``None`` on a miss.

        The one get path for every registered :class:`ArtifactTier`
        (memory LRU → verified disk load). Raises
        :class:`PlanStoreError` on a hit whose bytes fail verification.
        """
        return self._get(tier, key)

    def put(self, tier: str, key: Any, value: Any) -> str:
        """Persist ``value`` under ``(tier, key)``; returns the digest.

        Applies the tier's ``prepare`` hook (wire-format coercion), then
        writes memory + disk atomically.
        """
        tier_desc = _tier(tier)
        if tier_desc.prepare is not None:
            value = tier_desc.prepare(value)
        return self._put(tier, key, value)

    # Legacy per-tier helpers. Deprecated: use the generic
    # get(tier, key) / put(tier, key, value) registry API instead; these
    # remain as thin shims for callers written against the PR-4 surface.
    def get_p1(self, key: Any) -> Any:
        """Deprecated shim for ``get("p1", key)``."""
        return self.get("p1", key)

    def put_p1(self, key: Any, p1: Any) -> str:
        """Deprecated shim for ``put("p1", key, p1)``."""
        return self.put("p1", key, p1)

    def get_hmatrix(self, key: Any) -> Any:
        """Deprecated shim for ``get("hmatrix", key)``."""
        return self.get("hmatrix", key)

    def put_hmatrix(self, key: Any, H: Any) -> str:
        """Deprecated shim for ``put("hmatrix", key, H)``."""
        return self.put("hmatrix", key, H)

    def get_profile(self, key: Any) -> Any:
        """Deprecated shim for ``get("profile", key)``."""
        return self.get("profile", key)

    def put_profile(self, key: Any, profile: Any) -> str:
        """Deprecated shim for ``put("profile", key, profile)``."""
        return self.put("profile", key, profile)

    # ------------------------------------------------------------- get / put
    def _get(self, tier: str, key: Any) -> Any:
        digest = self.digest(tier, key)
        with self._lock:
            hit = self._mem_for(tier).get(digest)
            if hit is not None:
                self.stats.memory_hits += 1
                if self.directory is not None:
                    # Memory hits must count as "used" for disk eviction
                    # too, or max_bytes would evict the hottest artifacts
                    # (their manifests would keep their compile-time
                    # mtime while only cold entries got touched on get).
                    self._touch(self._paths(digest)[1])
                return hit[1]
            if self.directory is None:
                self.stats.misses += 1
                return None
            payload_path, manifest_path = self._paths(digest)
            if not manifest_path.exists():
                self.stats.misses += 1
                return None
            try:
                manifest = self._read_manifest(manifest_path)
                if manifest.get("tier") != tier:
                    # Keys hash the tier into the digest, so a mismatch
                    # means the manifest content itself was rewritten.
                    self._integrity_error(
                        f"manifest {manifest_path} records tier "
                        f"{manifest.get('tier')!r}, expected {tier!r}",
                        quarantine=True)
                value = self._verified_load(tier, payload_path, manifest)
            except PlanStoreError as exc:
                if not manifest_path.exists():
                    # A concurrent evictor deleted the entry mid-read:
                    # that is a clean miss, not corruption.
                    self.stats.misses += 1
                    return None
                self._quarantine_if_flagged(exc, manifest_path)
                raise
            self._touch(manifest_path)  # LRU recency for eviction
            self._mem_for(tier).put(digest, (repr(key), value))
            self.stats.disk_hits += 1
            return value

    @staticmethod
    def _touch(path: Path) -> None:
        # OSError: raced with eviction; recency update is best-effort.
        with contextlib.suppress(OSError):  # pragma: no cover
            os.utime(path)

    def _put(self, tier: str, key: Any, value: Any) -> str:
        digest = self.digest(tier, key)
        with self._lock:
            self._mem_for(tier).put(digest, (repr(key), value))
            if self.directory is not None:
                self._write(self.directory, tier, digest, repr(key), value)
                self.stats.puts += 1
                self._evict()
        return digest

    # ------------------------------------------------------------ disk layer
    def _integrity_error(self, message: str, *, quarantine: bool = False,
                         cause: Exception | None = None) -> NoReturn:
        """Fail closed. ``quarantine=True`` marks the error as *artifact
        corruption* (vs. e.g. version skew, which other builds may still
        read): the caller then deletes the entry so the next request is
        a clean miss that rebuilds — fail closed now, recover on retry.
        """
        self.stats.integrity_failures += 1
        exc = PlanStoreError(message)
        exc.quarantine = quarantine
        raise exc from cause

    def _quarantine_if_flagged(self, exc: Exception,
                               manifest_path: Path) -> None:
        if getattr(exc, "quarantine", False):
            # Manifest first: its absence makes the entry a miss even if
            # the payload unlink loses a race.
            manifest_path.unlink(missing_ok=True)
            manifest_path.with_suffix(".npz").unlink(missing_ok=True)
            self._mem_drop(manifest_path.stem)
            self.stats.quarantined += 1

    def _mem_drop(self, digest: str) -> None:
        for mem in self._mem.values():
            mem.pop(digest)

    def _read_manifest(self, manifest_path: Path) -> dict[str, Any]:
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._integrity_error(
                f"store manifest {manifest_path} is unreadable or not JSON "
                f"({type(exc).__name__}: {exc})",
                quarantine=True, cause=exc)
        if not isinstance(manifest, dict) or "sha256" not in manifest:
            self._integrity_error(
                f"store manifest {manifest_path} is missing its sha256 "
                f"field", quarantine=True)
        if manifest.get("store_version") != STORE_VERSION:
            # Version skew is NOT corruption: another build may read this
            # artifact fine, so it is never quarantined (gc() evicts
            # skewed artifacts explicitly, on request).
            self._integrity_error(
                f"store manifest {manifest_path} has version "
                f"{manifest.get('store_version')!r}; this build reads "
                f"version {STORE_VERSION}")
        return manifest

    def _verified_load(self, tier: str, payload_path: Path,
                       manifest: dict[str, Any]) -> Any:
        try:
            payload = payload_path.read_bytes()
        except OSError as exc:
            self._integrity_error(
                f"store payload {payload_path} is unreadable although its "
                f"manifest exists ({exc})", quarantine=True, cause=exc)
        actual = hashlib.sha256(payload).hexdigest()
        if actual != manifest["sha256"]:
            self._integrity_error(
                f"store payload {payload_path} failed its SHA-256 integrity "
                f"check (expected {manifest['sha256'][:12]}…, got "
                f"{actual[:12]}…); refusing to serve a tampered or torn "
                f"artifact", quarantine=True)
        # Chaos hook: rot the bytes *between* verification and decode —
        # the TOCTOU window an on-disk tamper test cannot reach. No plan
        # installed (production, always) is a single None check.
        plan = active_fault_plan()
        if plan is not None and plan.take_corrupt(tier):
            payload = payload[:max(len(payload) // 2, 1)]
        try:
            # Decode the bytes already read for the integrity check; the
            # payload file is not read twice.
            return _tier(tier).load(io.BytesIO(payload))
        except PlanStoreError as exc:
            self._integrity_error(
                f"store payload {payload_path}: {exc}",
                quarantine=True, cause=exc)

    def _write(self, directory: Path, tier: str, digest: str,
               key_repr: str, value: Any) -> None:
        directory.mkdir(parents=True, exist_ok=True)
        payload_path = directory / f"{digest}.npz"
        manifest_path = directory / f"{digest}.json"
        # Payload first, atomically; the temp name keeps the .npz suffix so
        # numpy does not append a second one.
        tmp_payload = directory / f"{digest}.{os.getpid()}.tmp.npz"
        try:
            _tier(tier).save(value, tmp_payload)
            data = tmp_payload.read_bytes()
            os.replace(tmp_payload, payload_path)
        finally:
            tmp_payload.unlink(missing_ok=True)
        manifest = {
            "store_version": STORE_VERSION,
            "tier": tier,
            "key": key_repr,
            "sha256": hashlib.sha256(data).hexdigest(),
            "size": len(data),
            # analysis: waive R004 -- entry age for `repro gc --max-age`;
            # the content address is the sha256 above, never this stamp
            "created": time.time(),
        }
        # Manifest last (its existence implies a complete payload).
        tmp_manifest = directory / f"{digest}.{os.getpid()}.tmp.json"
        try:
            tmp_manifest.write_text(json.dumps(manifest, indent=1))
            os.replace(tmp_manifest, manifest_path)
        finally:
            tmp_manifest.unlink(missing_ok=True)

    def _evict(self) -> None:
        """Drop least-recently-used artifacts until under ``max_bytes``."""
        if self.max_bytes is None or self.directory is None:
            return
        # (mtime, total_bytes, payload_path, manifest_path)
        entries: list[tuple[float, int, Path, Path]] = []
        for manifest_path in self._manifests():
            payload_path = manifest_path.with_suffix(".npz")
            try:
                size = manifest_path.stat().st_size
                mtime = manifest_path.stat().st_mtime
                if payload_path.exists():
                    size += payload_path.stat().st_size
            except OSError:
                continue
            entries.append((mtime, size, payload_path, manifest_path))
        entries.sort()
        total = sum(e[1] for e in entries)
        # Never evict the most recently used entry — a single artifact
        # larger than max_bytes would otherwise churn forever.
        while total > self.max_bytes and len(entries) > 1:
            _, size, payload_path, manifest_path = entries.pop(0)
            manifest_path.unlink(missing_ok=True)  # manifest first
            payload_path.unlink(missing_ok=True)
            total -= size
            self.stats.evictions += 1

    # ----------------------------------------------------------- maintenance
    def entries(self) -> list[dict[str, Any]]:
        """Manifests of every on-disk artifact (oldest-used first)."""
        if self.directory is None:
            return []
        with self._lock:
            out: list[dict[str, Any]] = []
            for manifest_path in self._manifests_by_mtime():
                try:
                    manifest = self._read_manifest(manifest_path)
                except PlanStoreError:
                    if not manifest_path.exists():
                        continue  # concurrently evicted, not corrupt
                    raise
                out.append({**manifest, "digest": manifest_path.stem})
            return out

    def disk_bytes(self) -> int:
        """Total on-disk footprint (payloads + manifests)."""
        if self.directory is None:
            return 0
        return sum(p.stat().st_size
                   for pat in ("*.json", "*.npz")
                   for p in self.directory.glob(pat)
                   if ".tmp." not in p.name)

    def warm(self) -> int:
        """Load-and-verify every on-disk artifact through the memory tiers.

        Returns the number of artifacts verified. Integrity failures
        raise :class:`PlanStoreError` (fail closed) — a warm() that
        succeeds means *every* artifact verified. Residency afterwards is
        still bounded by the memory-tier capacities: artifacts are
        visited oldest-used first, so when the store holds more than
        ``memory_p1``/``memory_hmatrix`` entries the *most recently used*
        ones are the ones left resident; the rest verify and fall back to
        disk hits on first request.
        """
        if self.directory is None:
            return 0
        count = 0
        with self._lock:
            for manifest_path in self._manifests_by_mtime():
                try:
                    manifest = self._read_manifest(manifest_path)
                except PlanStoreError as exc:
                    if not manifest_path.exists():
                        continue  # concurrently evicted, not corrupt
                    self._quarantine_if_flagged(exc, manifest_path)
                    raise
                tier = manifest.get("tier")
                if not isinstance(tier, str) or _lookup_tier(tier) is None:
                    self._integrity_error(
                        f"store manifest {manifest_path} records unknown "
                        f"tier {tier!r}")
                payload_path = manifest_path.with_suffix(".npz")
                try:
                    value = self._verified_load(tier, payload_path,
                                                manifest)
                except PlanStoreError as exc:
                    if not manifest_path.exists():
                        continue  # concurrently evicted mid-load
                    self._quarantine_if_flagged(exc, manifest_path)
                    raise
                self._mem_for(tier).put(manifest_path.stem,
                                        (manifest.get("key", ""), value))
                count += 1
        return count

    def flush(self, directory: str | Path | None = None) -> int:
        """Write every memory-tier entry to disk; returns how many.

        ``directory`` overrides the store's own (required for a
        memory-only store). Entries already on disk are rewritten
        (idempotent, atomic).
        """
        target = Path(directory) if directory is not None else self.directory
        if target is None:
            raise PlanStoreError(
                "cannot flush a memory-only PlanStore without a directory; "
                "pass flush(directory=...) or construct PlanStore(dir)")
        count = 0
        with self._lock:
            for tier, mem in self._mem.items():
                for digest, (key_repr, value) in mem.items():
                    self._write(target, tier, digest, key_repr, value)
                    self.stats.puts += 1
                    count += 1
            if target == self.directory:
                self._evict()
        return count

    def clear_memory(self) -> None:
        """Drop the memory tiers (disk artifacts are untouched)."""
        with self._lock:
            for mem in self._mem.values():
                mem.clear()

    def gc(self, max_age: float | None = None, *,
           keep_other_versions: bool = False, dry_run: bool = False,
           now: float | None = None) -> dict[str, int]:
        """Evict artifacts by age and version skew; report reclaimed bytes.

        Removes, and reports the bytes of:

        * artifacts not *used* (manifest mtime — touched on every get)
          within the last ``max_age`` seconds (``None`` disables age
          eviction);
        * artifacts written by a different store-layout version (this
          build cannot read them; pass ``keep_other_versions=True`` to
          preserve them for the build that can);
        * unreadable manifests, and orphaned payloads whose manifest is
          gone (both are unserveable debris — orphans get the same
          conservative 1-hour grace as temp files, so a concurrent
          writer between its payload and manifest renames is safe);
        * run manifests under ``manifests/`` older than ``max_age``.

        ``dry_run=True`` reports without deleting. Returns a report dict
        (``scanned``/``removed``/``kept``/``reclaimed_bytes``/
        ``run_manifests_removed``); cumulative totals land in
        :class:`StoreStats` (``gc_runs``/``gc_removed``/
        ``gc_reclaimed_bytes``).
        """
        report: dict[str, int] = {
            "scanned": 0, "removed": 0, "kept": 0,
            "reclaimed_bytes": 0, "run_manifests_removed": 0}
        if self.directory is None:
            return report
        if max_age is not None and max_age < 0:
            raise ValueError(f"max_age must be >= 0 or None, got {max_age}")
        # analysis: waive R004 -- gc clock, overridable via `now=` for tests
        now = time.time() if now is None else float(now)
        with self._lock:
            for manifest_path in self._manifests():
                report["scanned"] += 1
                payload_path = manifest_path.with_suffix(".npz")
                try:
                    stat = manifest_path.stat()
                except OSError:
                    continue  # concurrently evicted
                size = stat.st_size
                if payload_path.exists():
                    size += payload_path.stat().st_size
                try:
                    manifest = json.loads(manifest_path.read_text())
                    version = (manifest.get("store_version")
                               if isinstance(manifest, dict) else None)
                    readable = True
                except (OSError, UnicodeDecodeError, json.JSONDecodeError):
                    version, readable = None, False
                # Unreadable debris is always collected; otherwise keep
                # version-skewed entries on request and current entries
                # within the age window.
                keep = readable and (
                    (version != STORE_VERSION and keep_other_versions)
                    or (version == STORE_VERSION
                        and (max_age is None
                             or now - stat.st_mtime <= max_age)))
                if keep:
                    report["kept"] += 1
                    continue
                report["removed"] += 1
                report["reclaimed_bytes"] += size
                if not dry_run:
                    manifest_path.unlink(missing_ok=True)
                    payload_path.unlink(missing_ok=True)
                    self._mem_drop(manifest_path.stem)
            for payload_path in self.directory.glob("*.npz"):
                if (".tmp." in payload_path.name
                        or payload_path.with_suffix(".json").exists()):
                    continue
                try:
                    stat = payload_path.stat()
                except OSError:
                    continue
                if now - stat.st_mtime <= 3600.0:
                    continue  # writer grace: manifest rename may be next
                report["scanned"] += 1
                report["removed"] += 1
                report["reclaimed_bytes"] += stat.st_size
                if not dry_run:
                    payload_path.unlink(missing_ok=True)
            manifests_dir = self.directory / "manifests"
            if max_age is not None and manifests_dir.is_dir():
                for run_path in manifests_dir.glob("run-*.json"):
                    try:
                        stat = run_path.stat()
                    except OSError:
                        continue
                    if now - stat.st_mtime <= max_age:
                        continue
                    report["run_manifests_removed"] += 1
                    report["reclaimed_bytes"] += stat.st_size
                    if not dry_run:
                        run_path.unlink(missing_ok=True)
            if not dry_run:
                self.stats.gc_runs += 1
                self.stats.gc_removed += report["removed"]
                self.stats.gc_reclaimed_bytes += report["reclaimed_bytes"]
        return report

    # ------------------------------------------------------------- reporting
    def cache_info(self) -> dict[str, Any]:
        """Tier occupancy + hit/miss counters (for logs and tests)."""
        with self._lock:
            tiers = {"p1", "hmatrix", "profile", *self._mem}
            return {
                **{f"{name}_entries": len(self._mem.get(name) or ())
                   for name in sorted(tiers)},
                "disk_entries": (len(self._manifests())
                                 if self.directory is not None else 0),
                **self.stats.as_dict(),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = str(self.directory) if self.directory else "memory-only"
        entries = sum(len(mem) for mem in self._mem.values())
        return f"PlanStore({where}, memory_entries={entries})"
