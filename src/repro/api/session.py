"""Session: inspect-once / execute-many as an object.

A :class:`Session` owns the two things the inspector-executor contract
needs to amortise work across requests:

* a thread-pool :class:`~repro.core.executor.Executor` (created from the
  session's :class:`~repro.api.policy.ExecutionPolicy`), so repeated
  evaluations reuse worker threads; and
* an LRU **plan cache** keyed by content fingerprints — the SHA-256 of the
  points buffer plus the :class:`~repro.api.plan.PlanConfig` fingerprint —
  holding both phase-1 inspection artifacts and finished HMatrices.

``session.operator(points, kernel=..., plan=...)`` therefore makes the
paper's Section 5 reuse paths automatic: a repeated request with identical
points and plan skips phase-1 inspection entirely (P1 reuse), and a
request that only changes the kernel or block accuracy re-runs phase 2
against the cached phase-1 artifacts (P2 reuse). :attr:`Session.stats`
counts builds and cache hits so the reuse is observable, not assumed.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.api.operator import KernelOperator
from repro.api.plan import PlanConfig
from repro.api.policy import ExecutionPolicy, resolve_policy
from repro.core.executor import Executor
from repro.core.hmatrix import HMatrix
from repro.kernels.base import Kernel, get_kernel


def points_fingerprint(points: np.ndarray) -> str:
    """Content hash of a point set (dtype-normalized buffer + shape)."""
    pts = np.ascontiguousarray(points, dtype=np.float64)
    h = hashlib.sha256()
    h.update(str(pts.shape).encode())
    h.update(pts.tobytes())
    return h.hexdigest()[:16]


@dataclass
class SessionStats:
    """Counters proving (or disproving) inspection reuse."""

    p1_builds: int = 0
    p1_hits: int = 0
    p2_builds: int = 0
    hmatrix_hits: int = 0
    evaluations: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class _LRU:
    """Tiny ordered-dict LRU (no locking: sessions are per-thread owners)."""

    def __init__(self, maxsize: int):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()

    def get(self, key):
        if key not in self._data:
            return None
        self._data.move_to_end(key)
        return self._data[key]

    def put(self, key, value):
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)


class Session:
    """Reusable inspect-once/execute-many context.

    Parameters
    ----------
    plan:
        Default :class:`PlanConfig` for operators created by this session
        (per-call ``plan=`` overrides it).
    policy:
        Default :class:`ExecutionPolicy`; its ``num_threads`` sizes the
        session's thread pool.
    num_threads:
        Shorthand override for ``policy.num_threads``.
    p1_cache_size / hmatrix_cache_size:
        LRU capacities for phase-1 artifacts and finished HMatrices.

    Use as a context manager (or call :meth:`close`) to release the pool.
    """

    def __init__(self, plan: PlanConfig | None = None,
                 policy: ExecutionPolicy | None = None,
                 num_threads: int | None = None,
                 p1_cache_size: int = 8,
                 hmatrix_cache_size: int = 16):
        self.plan = plan if plan is not None else PlanConfig()
        self.policy = resolve_policy(policy, num_threads=num_threads)
        # The full policy travels into the executor so a
        # backend="process" session owns its worker pools (torn down,
        # with their shared-memory segments, on close()).
        self._executor = Executor(policy=self.policy)
        self._p1_cache = _LRU(p1_cache_size)
        self._h_cache = _LRU(hmatrix_cache_size)
        self.stats = SessionStats()

    # ------------------------------------------------------------- inspection
    def _resolve_plan(self, plan, bacc) -> PlanConfig:
        plan = plan if plan is not None else self.plan
        if not isinstance(plan, PlanConfig):
            raise TypeError(
                f"plan must be a PlanConfig, got {type(plan).__name__}"
            )
        return plan.replace(bacc=bacc) if bacc is not None else plan

    def inspect(self, points, kernel: Kernel | str = "gaussian",
                plan: PlanConfig | None = None,
                bacc: float | None = None) -> HMatrix:
        """Cached inspection: points + kernel + plan -> HMatrix.

        Cache discipline (cheapest sufficient work wins):

        1. identical points/plan/kernel -> cached HMatrix, nothing runs;
        2. identical points + phase-1 knobs -> cached phase-1 artifacts,
           only phase 2 (compression, coarsening, layout, codegen) runs;
        3. otherwise -> full inspection, both caches are populated.
        """
        plan = self._resolve_plan(plan, bacc)
        if isinstance(kernel, str):
            kernel = get_kernel(kernel)
        pfp = points_fingerprint(points)

        h_key = (pfp, plan.fingerprint(), kernel.identity())
        H = self._h_cache.get(h_key)
        if H is not None:
            self.stats.hmatrix_hits += 1
            return H

        p1_key = (pfp, plan.p1_fingerprint())
        inspector = plan.to_inspector()
        p1 = self._p1_cache.get(p1_key)
        if p1 is None:
            p1 = inspector.run_p1(points)
            self._p1_cache.put(p1_key, p1)
            self.stats.p1_builds += 1
        else:
            self.stats.p1_hits += 1

        H = inspector.run_p2(p1, kernel)
        self.stats.p2_builds += 1
        self._h_cache.put(h_key, H)
        return H

    def operator(self, points, kernel: Kernel | str = "gaussian",
                 plan: PlanConfig | None = None,
                 bacc: float | None = None,
                 policy: ExecutionPolicy | None = None) -> KernelOperator:
        """A lazy :class:`KernelOperator` bound to this session.

        Construction is free; the first product (or ``.materialize()``)
        routes through :meth:`inspect`, hitting the plan cache when the
        same points+plan were seen before.
        """
        plan = self._resolve_plan(plan, bacc)
        return KernelOperator.from_points(
            points, kernel=kernel, plan=plan,
            policy=policy if policy is not None else self.policy,
            session=self,
        )

    # -------------------------------------------------------------- execution
    def matmul(self, H: HMatrix, W, policy: ExecutionPolicy | None = None,
               **overrides) -> np.ndarray:
        """``Y = H @ W`` through the session's pool and policy."""
        policy = resolve_policy(policy or self.policy, **overrides)
        self.stats.evaluations += 1
        return self._executor.matmul(H, W, policy=policy)

    # -------------------------------------------------------------- lifecycle
    def cache_info(self) -> dict:
        """Occupancy + hit counters (for logs and tests)."""
        return {
            "p1_entries": len(self._p1_cache),
            "hmatrix_entries": len(self._h_cache),
            **self.stats.as_dict(),
        }

    def close(self) -> None:
        self._executor.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc):
        self.close()
        return False
