"""Session: inspect-once / execute-many as an object.

A :class:`Session` owns the two things the inspector-executor contract
needs to amortise work across requests:

* a thread-pool :class:`~repro.core.executor.Executor` (created from the
  session's :class:`~repro.api.policy.ExecutionPolicy`), so repeated
  evaluations reuse worker threads; and
* a :class:`~repro.api.store.PlanStore` — the artifact cache keyed by
  content fingerprints (the SHA-256 of the points buffer plus the
  :class:`~repro.api.plan.PlanConfig` fingerprint) holding both phase-1
  inspection artifacts and finished HMatrices. By default the store is
  memory-only (two LRU tiers, the historic behaviour); pass
  ``store=PlanStore(dir)`` (or just a directory path) and every artifact
  is also persisted with SHA-256 integrity manifests, so a **fresh
  process warm-starts from disk and serves its first request with zero
  inspection** (compile-once / serve-forever).

``session.operator(points, kernel=..., plan=...)`` therefore makes the
paper's Section 5 reuse paths automatic: a repeated request with identical
points and plan skips phase-1 inspection entirely (P1 reuse), and a
request that only changes the kernel or block accuracy re-runs phase 2
against the cached phase-1 artifacts (P2 reuse). :attr:`Session.stats`
counts builds and cache hits so the reuse is observable, not assumed.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import threading
import weakref
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.api.operator import KernelOperator
from repro.api.plan import PlanConfig
from repro.api.policy import ExecutionPolicy, resolve_policy
from repro.api.store import PlanStore
from repro.core.executor import Executor
from repro.core.hmatrix import HMatrix
from repro.kernels.base import Kernel, get_kernel

# --------------------------------------------------------------------------
# Point-set fingerprinting (memoized).
#
# Hashing the full points buffer costs ~ O(N d) per call — measurable on
# the serving path where every request re-fingerprints the same arrays on
# a guaranteed cache hit. The memo is keyed on the array object's id plus
# a cheap witness (shape, dtype, CRC of <= 32 sampled rows). Id reuse
# after garbage collection is guarded by a weakref finalizer that drops
# the entry when the array dies. The witness detects mutation of the
# sampled rows (and any shape/dtype change) — NOT arbitrary single-element
# edits: like every identity-keyed cache, the memo assumes arrays used as
# cache keys are not mutated in place between calls. The lock makes the
# memo safe for concurrent Sessions (e.g. KernelService registration
# threads racing its dispatcher).
# --------------------------------------------------------------------------

_FP_CACHE: OrderedDict = OrderedDict()
_FP_CACHE_MAX = 256
_FP_LOCK = threading.Lock()


def _fp_cache_drop(key) -> None:
    with _FP_LOCK:
        _FP_CACHE.pop(key, None)


def _stripe_witness(points: np.ndarray) -> tuple:
    """Cheap content witness: CRC-32 of <= 32 evenly-sampled rows."""
    n = len(points)
    idx = np.linspace(0, n - 1, num=min(n, 32), dtype=np.intp)
    sample = np.ascontiguousarray(points[idx])
    return (points.shape, str(points.dtype), zlib.crc32(sample.tobytes()))


def points_fingerprint(points) -> str:
    """Content hash of a point set (dtype-normalized buffer + shape).

    Memoized per array object: a repeated call with the *same ndarray*
    skips the full-buffer SHA-256, which removes the dominant per-request
    overhead of a guaranteed cache hit on the serving path. The memo's
    stripe witness catches shape/dtype changes and mutation of the <= 32
    sampled rows; a point set handed to a Session is otherwise treated as
    immutable (mutate a copy instead to get a fresh fingerprint
    guaranteed).
    """
    memoizable = isinstance(points, np.ndarray) and len(points) > 0
    if memoizable:
        key = id(points)
        witness = _stripe_witness(points)
        with _FP_LOCK:
            hit = _FP_CACHE.get(key)
            if hit is not None and hit[0] == witness:
                _FP_CACHE.move_to_end(key)
                return hit[1]
    pts = np.ascontiguousarray(points, dtype=np.float64)
    h = hashlib.sha256()
    h.update(str(pts.shape).encode())
    h.update(pts.tobytes())
    fp = h.hexdigest()[:16]
    if memoizable:
        with _FP_LOCK:
            _FP_CACHE[key] = (witness, fp)
            _FP_CACHE.move_to_end(key)
            while len(_FP_CACHE) > _FP_CACHE_MAX:
                _FP_CACHE.popitem(last=False)
        # pragma-ish: ndarray is weakref-able, so this never fires today
        with contextlib.suppress(TypeError):
            weakref.finalize(points, _fp_cache_drop, key)
    return fp


@dataclass
class SessionStats:
    """Counters proving (or disproving) inspection reuse."""

    p1_builds: int = 0
    p1_hits: int = 0
    p2_builds: int = 0
    hmatrix_hits: int = 0
    evaluations: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class Session:
    """Reusable inspect-once/execute-many context.

    Parameters
    ----------
    plan:
        Default :class:`PlanConfig` for operators created by this session
        (per-call ``plan=`` overrides it).
    policy:
        Default :class:`ExecutionPolicy`; its ``num_threads`` sizes the
        session's thread pool.
    num_threads:
        Shorthand override for ``policy.num_threads``.
    p1_cache_size / hmatrix_cache_size:
        Memory-tier LRU capacities, forwarded to the
        :class:`~repro.api.store.PlanStore` the session constructs when
        ``store`` is ``None`` or a path. Passing them alongside an
        existing ``PlanStore`` instance is a ``ValueError`` — size the
        store itself (``PlanStore(..., memory_p1=, memory_hmatrix=)``).
    store:
        A :class:`~repro.api.store.PlanStore`, or a directory path to
        open one, or ``None`` (default) for a memory-only store. With a
        disk-backed store every inspection artifact is persisted and a
        fresh ``Session(store=...)`` warm-starts from disk: its first
        ``matmul`` runs with ``p1_builds == p2_builds == 0``.
    manifest:
        Write a :class:`~repro.observability.RunManifest` at
        :meth:`close`, **best-effort** (a failed write never fails the
        run; it increments
        :func:`~repro.observability.manifest_write_failures`).
        ``True`` writes ``run-<run_id>.json`` under ``manifests/`` next
        to the store (requires a disk-backed store); a path writes
        there instead (a ``.json`` path names the exact file).

    Use as a context manager (or call :meth:`close`) to release the pool.
    """

    def __init__(self, plan: PlanConfig | None = None,
                 policy: ExecutionPolicy | None = None,
                 num_threads: int | None = None,
                 p1_cache_size: int | None = None,
                 hmatrix_cache_size: int | None = None,
                 store: PlanStore | str | Path | None = None,
                 manifest: bool | str | Path = False):
        self.plan = plan if plan is not None else PlanConfig()
        self.policy = resolve_policy(policy, num_threads=num_threads)
        # Resolve/validate the store BEFORE constructing the Executor: a
        # bad argument must not leak an already-started thread/process
        # pool (nothing would ever call close() on it).
        if store is None or isinstance(store, (str, os.PathLike)):
            store = PlanStore(
                store,
                memory_p1=8 if p1_cache_size is None else p1_cache_size,
                memory_hmatrix=(16 if hmatrix_cache_size is None
                                else hmatrix_cache_size),
            )
        elif isinstance(store, PlanStore):
            if p1_cache_size is not None or hmatrix_cache_size is not None:
                raise ValueError(
                    "p1_cache_size/hmatrix_cache_size apply to the "
                    "PlanStore the session constructs; with an existing "
                    "store, size it directly via PlanStore(memory_p1=, "
                    "memory_hmatrix=)"
                )
        else:
            raise TypeError(
                f"store must be a PlanStore, a directory path, or None; "
                f"got {type(store).__name__}"
            )
        self.store = store
        self._manifest_target: Path | None = None
        if manifest:
            if manifest is True:
                if self.store.directory is None:
                    raise ValueError(
                        "manifest=True writes next to the store and needs "
                        "a disk-backed one; pass manifest=<path> for a "
                        "memory-only session"
                    )
                self._manifest_target = self.store.directory / "manifests"
            else:
                self._manifest_target = Path(manifest)
        # The full policy travels into the executor so a
        # backend="process" session owns its worker pools (torn down,
        # with their shared-memory segments, on close()). The store
        # travels too: an order="auto" session persists its tuning
        # profiles next to its plan artifacts and warm-starts both.
        self._executor = Executor(policy=self.policy, store=self.store)
        self.stats = SessionStats()
        self._closed = False

    # ------------------------------------------------------------- inspection
    def _resolve_plan(self, plan, bacc) -> PlanConfig:
        plan = plan if plan is not None else self.plan
        if not isinstance(plan, PlanConfig):
            raise TypeError(
                f"plan must be a PlanConfig, got {type(plan).__name__}"
            )
        return plan.replace(bacc=bacc) if bacc is not None else plan

    def inspect(self, points, kernel: Kernel | str = "gaussian",
                plan: PlanConfig | None = None,
                bacc: float | None = None) -> HMatrix:
        """Cached inspection: points + kernel + plan -> HMatrix.

        Cache discipline (cheapest sufficient work wins):

        1. identical points/plan/kernel -> stored HMatrix (memory tier,
           else verified disk artifact), nothing runs;
        2. identical points + phase-1 knobs -> stored phase-1 artifacts,
           only phase 2 (compression, coarsening, layout, codegen) runs;
        3. otherwise -> full inspection; both store tiers are populated
           (and persisted, when the store is disk-backed).

        A disk artifact that fails its integrity check raises
        :class:`~repro.core.io.PlanStoreError` — the session fails closed
        rather than serving or rebuilding over tampered bytes.
        """
        plan = self._resolve_plan(plan, bacc)
        if isinstance(kernel, str):
            kernel = get_kernel(kernel)
        pfp = points_fingerprint(points)

        h_key = (pfp, plan.fingerprint(), kernel.identity())
        H = self.store.get_hmatrix(h_key)
        if H is not None:
            self.stats.hmatrix_hits += 1
            return H

        p1_key = (pfp, plan.p1_fingerprint())
        inspector = plan.to_inspector()
        p1 = self.store.get_p1(p1_key)
        if p1 is None:
            p1 = inspector.run_p1(points)
            self.store.put_p1(p1_key, p1)
            self.stats.p1_builds += 1
        else:
            self.stats.p1_hits += 1

        H = inspector.run_p2(p1, kernel)
        self.stats.p2_builds += 1
        self.store.put_hmatrix(h_key, H)
        return H

    def operator(self, points, kernel: Kernel | str = "gaussian",
                 plan: PlanConfig | None = None,
                 bacc: float | None = None,
                 policy: ExecutionPolicy | None = None) -> KernelOperator:
        """A lazy :class:`KernelOperator` bound to this session.

        Construction is free; the first product (or ``.materialize()``)
        routes through :meth:`inspect`, hitting the plan store when the
        same points+plan were seen before.
        """
        plan = self._resolve_plan(plan, bacc)
        return KernelOperator.from_points(
            points, kernel=kernel, plan=plan,
            policy=policy if policy is not None else self.policy,
            session=self,
        )

    # -------------------------------------------------------------- execution
    def matmul(self, H: HMatrix, W, policy: ExecutionPolicy | None = None,
               **overrides) -> np.ndarray:
        """``Y = H @ W`` through the session's pool and policy."""
        # `policy or self.policy` would silently swap an explicitly passed
        # policy object for the session default if it were ever falsy;
        # identity against None is the contract (the shared helper every
        # layer uses — see coalesce_policy).
        policy = resolve_policy(policy, fallback=self.policy, **overrides)
        self.stats.evaluations += 1
        return self._executor.matmul(H, W, policy=policy)

    # ------------------------------------------------------------ persistence
    def save(self, directory=None) -> int:
        """Persist every memory-tier artifact to the store's disk tier.

        With a disk-backed store this is a no-op safety net (artifacts are
        written through on build); for a memory-only session pass
        ``directory`` to snapshot the current caches into a new store
        location. Returns the number of artifacts written.
        """
        return self.store.flush(directory)

    def warm(self) -> int:
        """Verify + preload on-disk artifacts into the store's memory tiers.

        Returns the number of artifacts verified (0 for memory-only
        stores). Up to the memory-tier capacities, first requests are
        then served from memory rather than disk (see
        :meth:`PlanStore.warm` for the residency bound).
        """
        return self.store.warm()

    # -------------------------------------------------------------- lifecycle
    def cache_info(self) -> dict:
        """Occupancy + hit counters (session + store + tuner + engines)."""
        return {**self.store.cache_info(), **self.stats.as_dict(),
                "autotune": self._executor.autotune_stats(),
                "compiled": self._executor.compiled_stats(),
                "engines": self._executor.engine_stats()}

    @property
    def autotuner(self):
        """The session executor's autotuner (created on first use).

        Resolves ``order="auto"`` policies; its profiles persist
        through the session's :class:`~repro.api.store.PlanStore`.
        """
        return self._executor.autotuner

    def close(self) -> None:
        """Release pools; write the run manifest first when configured.

        Idempotent — the manifest is written at most once. The write is
        best-effort by contract: an unwritable target never turns a
        successful run into a failed close.
        """
        if not self._closed:
            self._closed = True
            if self._manifest_target is not None:
                from repro.observability.manifest import (
                    build_run_manifest,
                    write_run_manifest,
                )
                write_run_manifest(build_run_manifest(session=self),
                                   self._manifest_target)
        self._executor.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc):
        self.close()
        return False
