"""Execution policy: the single way evaluation knobs travel.

Before this layer existed, execution knobs were scattered — ``order=`` /
``pool=`` / ``num_threads=`` / ``q_chunk=`` keyword arguments with
*inconsistent* defaults (``matmul`` defaulted to ``"original"`` while
``matmul_many`` defaulted to ``"batched"``). :class:`ExecutionPolicy`
replaces that: one frozen, validated object carried from the CLI, a
:class:`~repro.api.session.Session`, an :class:`~repro.core.executor.Executor`,
or a solver down to :meth:`HMatrix.matmul`.

There is exactly one documented default, :data:`DEFAULT_POLICY`:

* ``order="batched"`` — the bucketed batched-GEMM engine, which falls back
  bit-compatibly to the per-block code whenever the cost model rejected
  batch lowering, so it is a strict superset of the old ``"original"``
  default;
* ``num_threads=None`` — serial (no thread pool);
* ``q_chunk=None`` — the generated evaluator's own streaming panel width
  (:data:`DEFAULT_Q_CHUNK` columns), the cache-sized chunking the codegen
  already selected.

This module is intentionally dependency-free (stdlib only) so that core
modules can import it without cycles.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, replace

#: Streaming panel width used when a policy does not override ``q_chunk``:
#: 256 float64 columns over a typical leaf keeps one pass's W/Y/T/S working
#: set inside the last-level cache (see DESIGN.md section 3).
DEFAULT_Q_CHUNK = 256

#: The evaluation orders an :class:`ExecutionPolicy` may request.
#: ``"compiled"`` runs the fused compiled executor
#: (:mod:`repro.codegen.compiled`), degrading to ``"batched"`` when no
#: compiled evaluator is available for the operator/host.
#: ``"auto"`` defers the choice to the profile-guided autotuner
#: (:mod:`repro.tuning`): it resolves to one of the concrete orders (and a
#: backend/thread/worker/q_chunk setting) before any evaluator runs.
VALID_ORDERS = ("batched", "compiled", "original", "tree", "auto")

#: The execution backends an :class:`ExecutionPolicy` may request.
VALID_BACKENDS = ("thread", "process")


def effective_cpu_count() -> int:
    """CPUs this process may actually run on (never 0).

    ``os.cpu_count()`` reports the machine, not the process: under a
    cgroup CPU limit or a restricted affinity mask (CI containers,
    ``taskset``, SLURM), sizing a pool by it oversubscribes the granted
    cores and stalls. Prefer the scheduler-affinity mask where the
    platform exposes it.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        with contextlib.suppress(OSError):  # pragma: no cover - quirk
            return max(1, len(getaffinity(0)))
    return max(1, os.cpu_count() or 1)


def coalesce_policy(policy: "ExecutionPolicy | None",
                    fallback: "ExecutionPolicy") -> "ExecutionPolicy":
    """``policy`` unless it is ``None`` — identity, never truthiness.

    The one shared resolution helper: ``policy or fallback`` would
    silently swap an explicitly passed policy for the fallback if an
    ExecutionPolicy were ever falsy (a future ``__bool__``/``__len__``,
    or a duck-typed stand-in). Every layer (``Executor``, ``Session``,
    operators, free functions) routes through this instead.
    """
    return policy if policy is not None else fallback


@dataclass(frozen=True)
class ExecutionPolicy:
    """How an HMatrix product is executed (not *what* is computed).

    Parameters
    ----------
    order:
        ``"batched"`` (default) evaluates through the bucketed batched-GEMM
        engine, falling back to the per-block code when the cost model
        rejected batch lowering; ``"compiled"`` runs the fused compiled
        executor (bit-identical to ``"batched"``; degrades to it when no
        compiled evaluator is available); ``"original"`` forces the
        per-block code; all three treat W rows as being in the user's
        input point order.
        ``"tree"`` skips the permutations (internal/benchmark use).
        ``"auto"`` resolves through the profile-guided autotuner
        (:mod:`repro.tuning`) at evaluation time: a
        :class:`~repro.tuning.TuningProfile` keyed by HMatrix
        fingerprint x RHS-width bucket x host signature picks the
        concrete order/backend/thread/worker/q_chunk setting. Knobs set
        explicitly alongside ``order="auto"`` are *pinned*: the tuner
        only chooses among candidates that honor them.
    backend:
        ``"thread"`` (default) runs in-process, optionally over a thread
        pool. ``"process"`` shards the batched engine's CDS row panels
        across a pool of worker processes with the CDS buffers mapped via
        ``multiprocessing.shared_memory`` (see
        :mod:`repro.core.parallel` and DESIGN.md section 7); results are
        bit-identical to the serial batched engine (< 1e-12 on matrices
        where the cost model rejected batch lowering). The backend
        applies to the batched/tree orders; ``order="original"`` names
        the per-block code explicitly and always runs in-process.
    num_threads:
        Worker threads for the per-block code path. ``None`` or 1 runs
        serially. NumPy's BLAS releases the GIL inside GEMM, so block tasks
        overlap on real cores.
    num_workers:
        Worker *processes* for ``backend="process"``. ``None`` picks
        :func:`effective_cpu_count` (the affinity/cgroup-aware count,
        not the machine's); ``0`` keeps the sharded code path but executes
        every shard in the calling process (no pool).
    q_chunk:
        Streaming panel width (columns per pass) override. ``None`` keeps
        the generated evaluator's own cache-sized width.
    """

    order: str = "batched"
    num_threads: int | None = None
    q_chunk: int | None = None
    backend: str = "thread"
    num_workers: int | None = None

    def __post_init__(self) -> None:
        if self.order not in VALID_ORDERS:
            raise ValueError(
                f"order must be one of {VALID_ORDERS}, got {self.order!r}"
            )
        if self.backend not in VALID_BACKENDS:
            raise ValueError(
                f"backend must be one of {VALID_BACKENDS}, got "
                f"{self.backend!r}"
            )
        if self.num_threads is not None and self.num_threads < 1:
            raise ValueError(
                f"num_threads must be >= 1, got {self.num_threads}"
            )
        if self.num_workers is not None and self.num_workers < 0:
            raise ValueError(
                f"num_workers must be >= 0, got {self.num_workers}"
            )
        if self.q_chunk is not None and self.q_chunk < 1:
            raise ValueError(f"q_chunk must be >= 1, got {self.q_chunk}")

    @property
    def is_auto(self) -> bool:
        """True when this policy defers to the autotuner (``order="auto"``)."""
        return self.order == "auto"

    def merged(self, order: str | None = None,
               num_threads: int | None = None,
               q_chunk: int | None = None,
               backend: str | None = None,
               num_workers: int | None = None) -> "ExecutionPolicy":
        """This policy with any explicitly-given knobs overriding it."""
        updates: dict[str, object] = {}
        if order is not None:
            updates["order"] = order
        if num_threads is not None:
            updates["num_threads"] = num_threads
        if q_chunk is not None:
            updates["q_chunk"] = q_chunk
        if backend is not None:
            updates["backend"] = backend
        if num_workers is not None:
            updates["num_workers"] = num_workers
        return replace(self, **updates) if updates else self


#: The one documented default execution policy (see module docstring).
DEFAULT_POLICY = ExecutionPolicy()


def resolve_policy(policy: ExecutionPolicy | None = None,
                   order: str | None = None,
                   num_threads: int | None = None,
                   q_chunk: int | None = None,
                   backend: str | None = None,
                   num_workers: int | None = None,
                   fallback: ExecutionPolicy | None = None) -> ExecutionPolicy:
    """Fold loose keyword knobs and an optional policy into one policy.

    Explicit keywords win over ``policy``, which wins over ``fallback``
    (a carrier's own default, e.g. an ``Executor``'s), which wins over
    :data:`DEFAULT_POLICY`. ``None`` is resolved by identity, never
    truthiness (see :func:`coalesce_policy`). This is the single
    resolution rule every entry point (free functions, ``Executor``,
    ``Session``, CLI) uses.
    """
    base = coalesce_policy(policy,
                           coalesce_policy(fallback, DEFAULT_POLICY))
    return base.merged(
        order=order, num_threads=num_threads, q_chunk=q_chunk,
        backend=backend, num_workers=num_workers,
    )
