"""Execution policy: the single way evaluation knobs travel.

Before this layer existed, execution knobs were scattered — ``order=`` /
``pool=`` / ``num_threads=`` / ``q_chunk=`` keyword arguments with
*inconsistent* defaults (``matmul`` defaulted to ``"original"`` while
``matmul_many`` defaulted to ``"batched"``). :class:`ExecutionPolicy`
replaces that: one frozen, validated object carried from the CLI, a
:class:`~repro.api.session.Session`, an :class:`~repro.core.executor.Executor`,
or a solver down to :meth:`HMatrix.matmul`.

There is exactly one documented default, :data:`DEFAULT_POLICY`:

* ``order="batched"`` — the bucketed batched-GEMM engine, which falls back
  bit-compatibly to the per-block code whenever the cost model rejected
  batch lowering, so it is a strict superset of the old ``"original"``
  default;
* ``num_threads=None`` — serial (no thread pool);
* ``q_chunk=None`` — the generated evaluator's own streaming panel width
  (:data:`DEFAULT_Q_CHUNK` columns), the cache-sized chunking the codegen
  already selected.

This module is intentionally dependency-free (stdlib only) so that core
modules can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Streaming panel width used when a policy does not override ``q_chunk``:
#: 256 float64 columns over a typical leaf keeps one pass's W/Y/T/S working
#: set inside the last-level cache (see DESIGN.md section 3).
DEFAULT_Q_CHUNK = 256

#: The evaluation orders an :class:`ExecutionPolicy` may request.
VALID_ORDERS = ("batched", "original", "tree")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How an HMatrix product is executed (not *what* is computed).

    Parameters
    ----------
    order:
        ``"batched"`` (default) evaluates through the bucketed batched-GEMM
        engine, falling back to the per-block code when the cost model
        rejected batch lowering; ``"original"`` forces the per-block code;
        both treat W rows as being in the user's input point order.
        ``"tree"`` skips the permutations (internal/benchmark use).
    num_threads:
        Worker threads for the per-block code path. ``None`` or 1 runs
        serially. NumPy's BLAS releases the GIL inside GEMM, so block tasks
        overlap on real cores.
    q_chunk:
        Streaming panel width (columns per pass) override. ``None`` keeps
        the generated evaluator's own cache-sized width.
    """

    order: str = "batched"
    num_threads: int | None = None
    q_chunk: int | None = None

    def __post_init__(self):
        if self.order not in VALID_ORDERS:
            raise ValueError(
                f"order must be one of {VALID_ORDERS}, got {self.order!r}"
            )
        if self.num_threads is not None and self.num_threads < 1:
            raise ValueError(
                f"num_threads must be >= 1, got {self.num_threads}"
            )
        if self.q_chunk is not None and self.q_chunk < 1:
            raise ValueError(f"q_chunk must be >= 1, got {self.q_chunk}")

    def merged(self, order: str | None = None,
               num_threads: int | None = None,
               q_chunk: int | None = None) -> "ExecutionPolicy":
        """This policy with any explicitly-given knobs overriding it."""
        updates = {}
        if order is not None:
            updates["order"] = order
        if num_threads is not None:
            updates["num_threads"] = num_threads
        if q_chunk is not None:
            updates["q_chunk"] = q_chunk
        return replace(self, **updates) if updates else self


#: The one documented default execution policy (see module docstring).
DEFAULT_POLICY = ExecutionPolicy()


def resolve_policy(policy: ExecutionPolicy | None = None,
                   order: str | None = None,
                   num_threads: int | None = None,
                   q_chunk: int | None = None) -> ExecutionPolicy:
    """Fold loose keyword knobs and an optional policy into one policy.

    Explicit keywords win over ``policy``, which wins over
    :data:`DEFAULT_POLICY`. This is the single resolution rule every entry
    point (free functions, ``Executor``, ``Session``, CLI) uses.
    """
    return (policy or DEFAULT_POLICY).merged(
        order=order, num_threads=num_threads, q_chunk=q_chunk
    )
