"""STRUMPACK-style baseline: HSS-only, level-by-level with barriers.

STRUMPACK (Ghysels et al.) is specialised for hierarchically semi-separable
structures: every off-diagonal block low-rank, evaluation by synchronized
level-by-level sweeps. Its compression (randomized sampling) is costlier
than the ID path, and it only ran the small datasets in the paper's
experiments — both modelled here.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Baseline, BaselineRun
from repro.baselines.gofmm import GOFMMBaseline
from repro.compression.factors import Factors
from repro.runtime.cache import simulate_trace
from repro.runtime.latency import locality_factor
from repro.runtime.machine import MachineModel
from repro.runtime.simulator import simulate_phases
from repro.runtime.tasks import levelbylevel_phases
from repro.runtime.trace import treebased_trace
from repro.storage.treebased import build_treebased

# Paper (Table 1 + Section 4.1): STRUMPACK only ran problem IDs 5, 6, 8, 13
# — the datasets at or below this point count.
_MAX_POINTS_FRACTION_OF_PAPER = 32_000 / 100_000


class STRUMPACKBaseline(Baseline):
    """HSS-structured multifrontal solver's matmul path."""

    name = "strumpack"

    def __init__(self, max_points: int | None = None,
                 compression_overhead: float = 2.5,
                 rank_inflation: float = 1.9):
        """``max_points`` caps the problems it runs (None: paper-scaled cap
        applied against the problem's own N); ``compression_overhead``
        models its costlier randomized-sampling compression (Fig. 4 shows
        STRUMPACK compression slower than MatRox/GOFMM); ``rank_inflation``
        models the larger HSS ranks its randomized compression produces at
        the same tolerance compared to adaptive ID (basis work scales
        linearly, skeleton-skeleton coupling quadratically)."""
        self.max_points = max_points
        self.compression_overhead = compression_overhead
        self.rank_inflation = rank_inflation
        self._locality_cache: dict[int, float] = {}

    def supports(self, n: int, d: int, q: int, structure: str) -> bool:
        if structure != "hss":
            return False
        cap = self.max_points
        if cap is None:
            cap = int(_MAX_POINTS_FRACTION_OF_PAPER * 100_000)
        return n <= cap

    def evaluate(self, factors: Factors, W: np.ndarray) -> np.ndarray:
        """Numerically identical to the library loops (shared with GOFMM)."""
        if factors.htree.structure != "hss":
            raise ValueError("STRUMPACK supports only HSS structures")
        return GOFMMBaseline().evaluate(factors, W)

    def locality(self, factors: Factors, machine: MachineModel) -> float:
        key = id(factors)
        if key not in self._locality_cache:
            tb = build_treebased(factors)
            counters = simulate_trace(treebased_trace(tb), machine)
            self._locality_cache[key] = locality_factor(counters, machine)
        return self._locality_cache[key]

    def simulate(self, factors: Factors, q: int, machine: MachineModel,
                 p: int | None = None, locality: float | None = None) -> BaselineRun:
        phases = levelbylevel_phases(factors, q)
        # Apply the rank-inflation model to the task costs.
        rho = self.rank_inflation
        for phase in phases:
            for unit in phase.units:
                for t in unit:
                    if t.name.startswith(("up", "down")):
                        t.flops *= rho
                        t.bytes *= rho
                    elif t.name.startswith("coupling"):
                        t.flops *= rho * rho
                        t.bytes *= rho * rho
        loc = self.locality(factors, machine) if locality is None else locality
        sim = simulate_phases(phases, machine, p=p, locality=loc,
                              contention_beta=0.06)
        return BaselineRun(system=self.name, sim=sim,
                           flops=factors.evaluation_flops(q), locality=loc)
