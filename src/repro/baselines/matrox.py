"""MatRox as a simulatable system, including the Figure 5 ablation ladder.

Wraps an inspected HMatrix so benchmarks can simulate its executor under the
same machine models as the baselines, at any rung of the optimization
ladder the paper breaks down:

* ``cds-seq``    — CDS storage, fully serial generated code;
* ``+coarsen``   — coarsened tree loops (parallel sub-trees);
* ``+block``     — blocked reduction loops as well;
* ``+low-level`` — root-iteration peeling on top (the full system).

``rung="+batched"`` additionally prices the bucketed batched-GEMM executor
(not a paper rung — the schedule of :func:`matrox_batched_phases`).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Baseline, BaselineRun
from repro.codegen.lowering import LoweringDecision
from repro.compression.factors import Factors
from repro.core.hmatrix import HMatrix
from repro.runtime.cache import simulate_trace
from repro.runtime.latency import locality_factor
from repro.runtime.machine import MachineModel
from repro.runtime.simulator import simulate_phases
from repro.runtime.tasks import matrox_batched_phases, matrox_phases
from repro.runtime.trace import cds_trace

LADDER = ("cds-seq", "+coarsen", "+block", "+low-level")


def _decision_for(rung: str, base: LoweringDecision) -> LoweringDecision:
    """Restrict the full lowering decision to one ablation rung."""
    if rung == "cds-seq":
        return LoweringDecision(
            block_near=False, block_far=False, coarsen=False, peel_root=False,
            block_threshold=base.block_threshold,
            far_block_threshold=base.far_block_threshold,
            coarsen_threshold=base.coarsen_threshold)
    if rung == "+coarsen":
        return LoweringDecision(
            block_near=False, block_far=False, coarsen=base.coarsen,
            peel_root=False, block_threshold=base.block_threshold,
            far_block_threshold=base.far_block_threshold,
            coarsen_threshold=base.coarsen_threshold)
    if rung == "+block":
        return LoweringDecision(
            block_near=base.block_near, block_far=base.block_far,
            coarsen=base.coarsen, peel_root=False,
            block_threshold=base.block_threshold,
            far_block_threshold=base.far_block_threshold,
            coarsen_threshold=base.coarsen_threshold)
    if rung == "+low-level":
        return base
    raise ValueError(f"unknown ladder rung {rung!r}; choose from {LADDER}")


class MatRoxSystem(Baseline):
    """The system under study, viewed through the baseline interface."""

    name = "matrox"

    def __init__(self, hmatrix: HMatrix):
        self.H = hmatrix
        self._locality_cache: dict[str, float] = {}

    def supports(self, n: int, d: int, q: int, structure: str) -> bool:
        return True

    def evaluate(self, factors: Factors, W: np.ndarray) -> np.ndarray:
        return self.H.evaluator(np.asarray(W, dtype=np.float64))

    def locality(self, machine: MachineModel) -> float:
        """Cache-simulated locality factor of the CDS layout."""
        if machine.name not in self._locality_cache:
            counters = simulate_trace(cds_trace(self.H.cds), machine)
            self._locality_cache[machine.name] = locality_factor(
                counters, machine)
        return self._locality_cache[machine.name]

    def simulate(self, factors: Factors, q: int, machine: MachineModel,
                 p: int | None = None, rung: str = "+low-level",
                 locality: float | None = None,
                 q_chunk: int | None = None) -> BaselineRun:
        if rung == "+batched":
            phases = matrox_batched_phases(self.H.cds, q, q_chunk=q_chunk)
            eff_p = p
        else:
            decision = _decision_for(rung, self.H.evaluator.decision)
            # Serial rungs run on one core regardless of p.
            eff_p = 1 if rung == "cds-seq" else p
            phases = matrox_phases(self.H.cds, q, decision=decision)
        loc = self.locality(machine) if locality is None else locality
        sim = simulate_phases(phases, machine, p=eff_p, locality=loc)
        return BaselineRun(system=f"{self.name}:{rung}", sim=sim,
                           flops=factors.evaluation_flops(q), locality=loc)

    def simulate_ladder(self, q: int, machine: MachineModel,
                        p: int | None = None) -> dict[str, BaselineRun]:
        """All four Figure 5 rungs."""
        return {
            rung: self.simulate(self.H.factors, q, machine, p=p, rung=rung)
            for rung in LADDER
        }
