"""SMASH-style baseline: level-by-level traversal, matvec only, d <= 3.

SMASH (Cai et al.) traverses the CTree level by level (synchronization
growing with the critical path), supports only 1-3 dimensional points, and
only matrix-vector products (Q = 1); its default kernel is 1/||x-y|| with
admissibility 0.65 — the settings the paper adopts when comparing to it.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Baseline, BaselineRun
from repro.baselines.gofmm import GOFMMBaseline
from repro.compression.factors import Factors
from repro.runtime.cache import simulate_trace
from repro.runtime.latency import locality_factor
from repro.runtime.machine import MachineModel
from repro.runtime.simulator import simulate_phases
from repro.runtime.tasks import levelbylevel_phases
from repro.runtime.trace import treebased_trace
from repro.storage.treebased import build_treebased

DEFAULT_TAU = 0.65


class SMASHBaseline(Baseline):
    """Structured matrix approximation by separation and hierarchy."""

    name = "smash"

    def __init__(self):
        self._locality_cache: dict[int, float] = {}

    def supports(self, n: int, d: int, q: int, structure: str) -> bool:
        return d <= 3 and q == 1 and structure in ("h2-geometric", "hss")

    def evaluate(self, factors: Factors, W: np.ndarray) -> np.ndarray:
        W = np.asarray(W)
        q = 1 if W.ndim == 1 else W.shape[1]
        if q != 1:
            raise ValueError("SMASH supports only matrix-vector products (Q=1)")
        if factors.tree.dim > 3:
            raise ValueError("SMASH supports only 1-3 dimensional points")
        return GOFMMBaseline().evaluate(factors, W)

    def locality(self, factors: Factors, machine: MachineModel) -> float:
        key = id(factors)
        if key not in self._locality_cache:
            tb = build_treebased(factors)
            counters = simulate_trace(treebased_trace(tb), machine)
            self._locality_cache[key] = locality_factor(counters, machine)
        return self._locality_cache[key]

    def simulate(self, factors: Factors, q: int, machine: MachineModel,
                 p: int | None = None, locality: float | None = None) -> BaselineRun:
        if q != 1:
            raise ValueError("SMASH supports only Q=1")
        phases = levelbylevel_phases(factors, q)
        loc = self.locality(factors, machine) if locality is None else locality
        sim = simulate_phases(phases, machine, p=p, locality=loc,
                              contention_beta=0.06)
        return BaselineRun(system=self.name, sim=sim,
                           flops=factors.evaluation_flops(q), locality=loc)
