"""Common baseline interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.compression.factors import Factors
from repro.runtime.machine import MachineModel
from repro.runtime.simulator import SimResult


@dataclass
class BaselineRun:
    """One simulated evaluation: wall time plus context for reporting."""

    system: str
    sim: SimResult
    flops: float
    locality: float

    @property
    def time_s(self) -> float:
        return self.sim.time_s

    @property
    def gflops(self) -> float:
        return self.sim.gflops(self.flops)


class Baseline(ABC):
    """A system under comparison: evaluates functionally and simulates time."""

    name: str = "abstract"

    @abstractmethod
    def supports(self, n: int, d: int, q: int, structure: str) -> bool:
        """Whether this system can run the given problem (capability table)."""

    @abstractmethod
    def evaluate(self, factors: Factors, W: np.ndarray) -> np.ndarray:
        """Functional evaluation (tree order), for correctness tests."""

    @abstractmethod
    def simulate(self, factors: Factors, q: int, machine: MachineModel,
                 p: int | None = None) -> BaselineRun:
        """Simulated evaluation time on ``machine`` with ``p`` cores."""
