"""GOFMM-style baseline: tree-based storage + dynamic task scheduling.

GOFMM (Yu et al., SC'17) feeds the HTree into a dynamic task scheduler:
good load balance, but tasks land on whichever worker is free, trading
locality for balance (the paper's critique). Functionally the evaluation is
the library code of Fig. 1d over tree-based storage.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Baseline, BaselineRun
from repro.compression.factors import Factors
from repro.runtime.latency import locality_factor
from repro.runtime.machine import MachineModel
from repro.runtime.simulator import simulate_dynamic
from repro.runtime.tasks import gofmm_taskgraph
from repro.runtime.trace import treebased_trace
from repro.runtime.cache import simulate_trace
from repro.storage.treebased import build_treebased


class GOFMMBaseline(Baseline):
    """Geometry-oblivious FMM: any dimension, HSS and budget-H2 structures."""

    name = "gofmm"

    def __init__(self, budget: float = 0.03):
        self.budget = budget
        self._locality_cache: dict[int, float] = {}

    def supports(self, n: int, d: int, q: int, structure: str) -> bool:
        return True  # GOFMM runs every problem in the paper's comparison

    # ----------------------------------------------------------- functional
    def evaluate(self, factors: Factors, W: np.ndarray) -> np.ndarray:
        """Library-style loops (Fig. 1d) over tree-based storage."""
        tb = build_treebased(factors)
        tree = factors.tree
        W = np.ascontiguousarray(W, dtype=np.float64)
        if W.ndim == 1:
            W = W[:, None]
        Y = np.zeros_like(W)

        # Loops with reduction over near interactions.
        for (i, j), D in tb.near.items():
            Y[tree.start[i]:tree.stop[i]] += D @ W[tree.start[j]:tree.stop[j]]

        # Bottom-up level-by-level loop over the CTree (V application).
        T: dict[int, np.ndarray] = {}
        by_level = [
            [v for v in range(tree.num_nodes)
             if tree.level[v] == lvl and factors.srank(v) > 0]
            for lvl in range(tree.height + 1)
        ]
        for level in reversed(by_level):
            for v in level:
                V = tb.basis[v]
                if tree.is_leaf(v):
                    T[v] = V.T @ W[tree.start[v]:tree.stop[v]]
                else:
                    lc, rc = int(tree.lchild[v]), int(tree.rchild[v])
                    r_lc = factors.srank(lc)
                    T[v] = V[:r_lc].T @ T[lc] + V[r_lc:].T @ T[rc]

        # Reduction over far interactions (B application).
        S: dict[int, np.ndarray] = {}
        for (i, j), B in tb.far.items():
            contrib = B @ T[j]
            S[i] = contrib if i not in S else S[i] + contrib

        # Top-down level-by-level loop (U application).
        for level in by_level:
            for v in level:
                if v not in S:
                    continue
                U = tb.basis[v]
                if tree.is_leaf(v):
                    Y[tree.start[v]:tree.stop[v]] += U @ S[v]
                else:
                    lc, rc = int(tree.lchild[v]), int(tree.rchild[v])
                    r_lc = factors.srank(lc)
                    top, bot = U[:r_lc] @ S[v], U[r_lc:] @ S[v]
                    S[lc] = top if lc not in S else S[lc] + top
                    S[rc] = bot if rc not in S else S[rc] + bot
        return Y

    # ------------------------------------------------------------ simulated
    def locality(self, factors: Factors, machine: MachineModel) -> float:
        """Cache-simulated locality factor of tree-based storage."""
        key = id(factors)
        if key not in self._locality_cache:
            tb = build_treebased(factors)
            counters = simulate_trace(treebased_trace(tb), machine)
            self._locality_cache[key] = locality_factor(counters, machine)
        return self._locality_cache[key]

    def simulate(self, factors: Factors, q: int, machine: MachineModel,
                 p: int | None = None, locality: float | None = None) -> BaselineRun:
        tasks = gofmm_taskgraph(factors, q)
        loc = self.locality(factors, machine) if locality is None else locality
        sim = simulate_dynamic(tasks, machine, p=p, locality=loc)
        return BaselineRun(system=self.name, sim=sim,
                           flops=factors.evaluation_flops(q), locality=loc)
