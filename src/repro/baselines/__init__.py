"""Reimplementations of the baseline libraries' evaluation strategies.

Each baseline is (a) a *functional* evaluator — the library-style loops of
the paper's Figure 1d running against tree-based storage, numerically
identical to MatRox's output — and (b) a *performance model*: the schedule
its runtime would execute (dynamic task queue for GOFMM, barrier-per-level
for STRUMPACK/SMASH), handed to the machine simulator. Structural
restrictions are enforced (STRUMPACK: HSS only, small datasets; SMASH:
d <= 3, matvec only), mirroring the capability table in the paper's
Section 4.1.
"""

from repro.baselines.base import Baseline, BaselineRun
from repro.baselines.gemm import DenseGEMM
from repro.baselines.gofmm import GOFMMBaseline
from repro.baselines.matrox import MatRoxSystem
from repro.baselines.smash import SMASHBaseline
from repro.baselines.strumpack import STRUMPACKBaseline

__all__ = [
    "Baseline",
    "BaselineRun",
    "GOFMMBaseline",
    "STRUMPACKBaseline",
    "SMASHBaseline",
    "DenseGEMM",
    "MatRoxSystem",
]
