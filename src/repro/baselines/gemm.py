"""Dense GEMM reference: the un-approximated K @ W product."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Baseline, BaselineRun
from repro.compression.factors import Factors
from repro.runtime.machine import MachineModel
from repro.runtime.simulator import SimResult


class DenseGEMM(Baseline):
    """Evaluates K @ W exactly; simulated at full BLAS efficiency."""

    name = "gemm"

    def __init__(self, kernel=None):
        self.kernel = kernel

    def supports(self, n: int, d: int, q: int, structure: str) -> bool:
        return True

    def evaluate(self, factors: Factors, W: np.ndarray) -> np.ndarray:
        if self.kernel is None:
            raise ValueError("DenseGEMM needs the kernel to assemble K")
        tree = factors.tree
        K = self.kernel.block(tree.ordered_points, tree.ordered_points)
        W = np.asarray(W, dtype=np.float64)
        return K @ (W if W.ndim == 2 else W[:, None])

    def simulate(self, factors: Factors, q: int, machine: MachineModel,
                 p: int | None = None) -> BaselineRun:
        """One N x N x Q GEMM at large-GEMM efficiency on all cores.

        Streams the dense matrix once from memory (K never fits in cache),
        so the time is the max of the compute and bandwidth bounds.
        """
        p = machine.num_cores if p is None else p
        n = factors.tree.num_points
        flops = 2.0 * n * n * q
        nbytes = 8.0 * n * n
        comp = machine.flop_seconds(flops, cores=p,
                                    efficiency=machine.blas_efficiency)
        mem = machine.mem_seconds(nbytes, active_cores=p) / max(p, 1)
        t = max(comp, mem)
        sim = SimResult(time_s=t, busy_s=t * p, num_tasks=1)
        return BaselineRun(system=self.name, sim=sim, flops=flops,
                           locality=1.0)
