"""Project-aware AST lint: the four rules generic linters cannot state.

Generic tooling (ruff's pycodestyle/pyflakes/bugbear families) checks
Python; these rules check *this project's* invariants — each one
distilled from a bug class the tree has actually had:

* **R001** — no ``policy or fallback`` truthiness. An
  :class:`~repro.api.policy.ExecutionPolicy` must be resolved by
  identity (:func:`~repro.api.policy.coalesce_policy`), never by
  truthiness: a falsy-but-explicit policy would silently swap itself
  for the fallback (the falsy-``policy`` bugs fixed in PRs 4–5).
* **R002** — every write to an attribute documented as lock-guarded
  (a ``# guarded-by: <lock>`` comment on its ``__init__`` assignment)
  must occur lexically inside a ``with <lock>:`` block. ``__init__``
  itself is exempt (single-threaded construction).
* **R003** — on store/serving paths, no bare ``except:`` and no
  *swallowed* :class:`~repro.core.io.PlanStoreError` (a handler whose
  body is only ``pass``/``...``). The store fails closed by contract;
  a silent catch re-opens it.
* **R004** — no wall-clock or RNG sampling (``time.time``,
  ``datetime.now``, ``random.*``, unseeded ``np.random.default_rng()``)
  in manifest/fingerprint/artifact code. Content-addressed artifacts
  and byte-identical manifests must not depend on when they were made.

Waivers are inline comments — ``# analysis: waive R004 -- reason`` on
the flagged line (or alone on the line above it). A waived finding is
still reported (and lands in the JSON artifact with its reason); only
*unwaived* findings fail ``repro analyze --strict``.

R003/R004 are path-scoped: they run only on files whose repo-relative
path contains one of the rule's markers (see :data:`R003_PATH_MARKERS`
/ :data:`R004_PATH_MARKERS`), because a bare ``except`` in a benchmark
harness is noise while the same line in ``api/store.py`` is a bug.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = [
    "Finding",
    "R003_PATH_MARKERS",
    "R004_PATH_MARKERS",
    "RULES",
    "findings_to_doc",
    "iter_python_files",
    "lint_paths",
    "lint_source",
]

#: Rule catalog: id -> one-line contract (documented in DESIGN.md §13).
RULES = {
    "R001": "ExecutionPolicy fallbacks resolve by identity "
            "(coalesce_policy), never `policy or ...` truthiness",
    "R002": "writes to a `# guarded-by:` attribute must happen inside "
            "`with <lock>:`",
    "R003": "no bare `except:` / swallowed PlanStoreError on "
            "store/serving paths",
    "R004": "no wall-clock or RNG sampling in "
            "manifest/fingerprint/artifact code",
}

#: Path markers scoping R003 to store/serving code.
R003_PATH_MARKERS = ("store", "service", "session", "serve", "net/",
                     "core/io")

#: Path markers scoping R004 to manifest/fingerprint/artifact code.
R004_PATH_MARKERS = ("manifest", "fingerprint", "artifact", "store",
                     "profile", "compiled", "api/plan")

#: Attribute references that read a wall clock (flagged by R004 whether
#: called directly or smuggled as a ``default_factory=``).
_WALLCLOCK_REFS = frozenset({
    "time.time", "time.time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today", "date.today",
})

#: Call prefixes that sample a hidden global RNG stream (R004). A
#: *seeded* ``np.random.default_rng(seed)`` is deterministic and allowed;
#: the unseeded zero-argument form is flagged.
_RNG_PREFIXES = ("random.", "np.random.", "numpy.random.")
_DEFAULT_RNG = ("np.random.default_rng", "numpy.random.default_rng")

# Rule ids span the lint family (R...) and the concurrency family
# (C..., repro.analysis.lockorder); one waiver convention covers both.
_WAIVER_RE = re.compile(
    r"#\s*analysis:\s*waive\s+(?P<rules>[RC]\d{3}(?:[,\s]+[RC]\d{3})*)"
    r"\s*(?:--\s*(?P<reason>.*))?")

_GUARDED_BY_RE = re.compile(
    r"self\.(?P<attr>\w+)\s*(?::[^=]+)?=.*#\s*guarded-by:\s*"
    r"(?P<lock>[\w.\[\]'\"]+)")


@dataclass
class Finding:
    """One rule violation (waived or not) at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    waived: bool = False
    waiver_reason: str | None = None

    def format(self) -> str:
        tail = (f"  [waived: {self.waiver_reason or 'no reason given'}]"
                if self.waived else "")
        return f"{self.path}:{self.line}:{self.col}: {self.rule} " \
               f"{self.message}{tail}"


# --------------------------------------------------------------------------
# Waivers.
# --------------------------------------------------------------------------

def _parse_waivers(source: str) -> dict[int, dict[str, str]]:
    """Map line number -> {rule: reason} for every waiver comment.

    A waiver on a code line covers that line; a waiver alone on its own
    line covers the next non-blank, non-comment line.
    """
    waivers: dict[int, dict[str, str]] = {}
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return waivers
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _WAIVER_RE.search(tok.string)
        if m is None:
            continue
        rules = re.findall(r"[RC]\d{3}", m.group("rules"))
        reason = (m.group("reason") or "").strip()
        target = tok.start[0]
        if lines[target - 1].lstrip().startswith("#"):
            j = target  # comment-only line: cover the next code line
            while j < len(lines) and (
                    not lines[j].strip()
                    or lines[j].lstrip().startswith("#")):
                j += 1
            target = j + 1
        for rule in rules:
            waivers.setdefault(target, {})[rule] = reason
    return waivers


def _guarded_registry(source: str) -> dict[str, str]:
    """``# guarded-by:`` annotations: attribute name -> lock expression."""
    registry: dict[str, str] = {}
    for line in source.splitlines():
        m = _GUARDED_BY_RE.search(line)
        if m is not None:
            registry[m.group("attr")] = m.group("lock").strip()
    return registry


# --------------------------------------------------------------------------
# The visitor.
# --------------------------------------------------------------------------

def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, registry: dict[str, str],
                 check_r003: bool, check_r004: bool):
        self.path = path
        self.registry = registry
        self.check_r003 = check_r003
        self.check_r004 = check_r004
        self.findings: list[Finding] = []
        self._with_locks: list[str] = []
        self._func_stack: list[str] = []

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=rule, path=self.path, line=node.lineno,
            col=node.col_offset, message=message))

    # ---- R001 ------------------------------------------------------------
    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        if isinstance(node.op, ast.Or) and node.values:
            first = node.values[0]
            name = None
            if isinstance(first, ast.Name):
                name = first.id
            elif isinstance(first, ast.Attribute):
                name = first.attr
            if name is not None and (name == "policy"
                                     or name.endswith("_policy")):
                self._emit(
                    "R001", node,
                    f"`{name} or ...` resolves a policy by truthiness; "
                    f"use coalesce_policy({name}, fallback)")
        self.generic_visit(node)

    # ---- R002 ------------------------------------------------------------
    def _visit_func(self, node) -> None:
        self._func_stack.append(node.name)
        # A `with` block outside a nested function does not protect the
        # writes inside it (the closure may run on another thread later).
        saved, self._with_locks = self._with_locks, []
        self.generic_visit(node)
        self._with_locks = saved
        self._func_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def _visit_with(self, node) -> None:
        held = [_dotted(item.context_expr) for item in node.items]
        # `with lock.acquire_timeout(...)`-style wrappers: fall back to
        # the call's base expression so `with self._cv:` and helpers match.
        for i, item in enumerate(node.items):
            if held[i] is None and isinstance(item.context_expr, ast.Call):
                held[i] = _dotted(item.context_expr.func)
        pushed = [h for h in held if h is not None]
        self._with_locks.extend(pushed)
        self.generic_visit(node)
        del self._with_locks[len(self._with_locks) - len(pushed):]

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def _check_guarded_write(self, target: ast.AST, node: ast.AST) -> None:
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr in self.registry):
            return
        if "__init__" in self._func_stack:
            return
        lock = self.registry[target.attr]
        if lock in self._with_locks:
            return
        self._emit(
            "R002", node,
            f"self.{target.attr} is documented `# guarded-by: {lock}` but "
            f"this write is outside any `with {lock}:` block")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_guarded_write(target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_guarded_write(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_guarded_write(node.target, node)
        self.generic_visit(node)

    # ---- R003 ------------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self.check_r003:
            if node.type is None:
                self._emit(
                    "R003", node,
                    "bare `except:` on a store/serving path catches "
                    "KeyboardInterrupt/SystemExit and hides fail-closed "
                    "errors; name the exception types")
            elif self._catches_planstore_error(node.type) \
                    and self._body_swallows(node.body):
                self._emit(
                    "R003", node,
                    "PlanStoreError is swallowed (handler body is only "
                    "pass/...); the store fails closed by contract — "
                    "count, degrade, or re-raise")
        self.generic_visit(node)

    @staticmethod
    def _catches_planstore_error(type_node: ast.AST) -> bool:
        names = (type_node.elts if isinstance(type_node, ast.Tuple)
                 else [type_node])
        for n in names:
            dotted = _dotted(n)
            if dotted is not None and \
                    dotted.rsplit(".", 1)[-1] == "PlanStoreError":
                return True
        return False

    @staticmethod
    def _body_swallows(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                    stmt.value, ast.Constant):
                continue  # docstring or `...`
            return False
        return True

    # ---- R004 ------------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.check_r004:
            dotted = _dotted(node)
            if dotted in _WALLCLOCK_REFS:
                self._emit(
                    "R004", node,
                    f"`{dotted}` samples the wall clock inside "
                    f"manifest/fingerprint/artifact code; take the "
                    f"timestamp as an explicit argument")
                return  # one finding per chain, not per sub-attribute
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self.check_r004:
            dotted = _dotted(node.func)
            if dotted in _DEFAULT_RNG:
                if not node.args and not node.keywords:
                    self._emit(
                        "R004", node,
                        "unseeded np.random.default_rng() in "
                        "manifest/fingerprint/artifact code; pass an "
                        "explicit seed")
            elif dotted is not None and \
                    dotted.startswith(_RNG_PREFIXES):
                self._emit(
                    "R004", node,
                    f"`{dotted}(...)` samples a hidden global RNG stream "
                    f"inside manifest/fingerprint/artifact code; use a "
                    f"seeded Generator")
        self.generic_visit(node)


# --------------------------------------------------------------------------
# Entry points.
# --------------------------------------------------------------------------

def _scoped(rel: str, markers: tuple[str, ...]) -> bool:
    return any(marker in rel for marker in markers)


def lint_source(source: str, path: str) -> list[Finding]:
    """Run every applicable rule over one file's source text.

    ``path`` is the repo-relative posix path: it scopes R003/R004 and
    labels the findings. Waived findings are *included* with
    ``waived=True`` — the caller decides whether they count.
    """
    rel = Path(path).as_posix()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding(rule="parse", path=rel, line=exc.lineno or 0,
                        col=exc.offset or 0,
                        message=f"file does not parse: {exc.msg}")]
    linter = _Linter(
        rel, _guarded_registry(source),
        check_r003=_scoped(rel, R003_PATH_MARKERS),
        check_r004=_scoped(rel, R004_PATH_MARKERS))
    linter.visit(tree)
    waivers = _parse_waivers(source)
    for finding in linter.findings:
        reason = waivers.get(finding.line, {}).get(finding.rule)
        if reason is not None:
            finding.waived = True
            finding.waiver_reason = reason
    linter.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return linter.findings


def iter_python_files(root) -> list[Path]:
    """Every ``.py`` file under ``root`` (or ``root`` itself), sorted."""
    root = Path(root)
    if root.is_file():
        return [root]
    return sorted(p for p in root.rglob("*.py")
                  if not any(part.startswith(".") for part in p.parts))


def lint_paths(paths, base=None) -> list[Finding]:
    """Lint every Python file under the given paths.

    ``base`` (default: the current directory) is stripped from reported
    paths so findings and path-scoping are repo-relative.
    """
    base = Path(base) if base is not None else Path.cwd()
    findings: list[Finding] = []
    for path in paths:
        for file in iter_python_files(path):
            try:
                rel = file.resolve().relative_to(base.resolve())
            except ValueError:
                rel = file
            findings.extend(
                lint_source(file.read_text(encoding="utf-8"),
                            rel.as_posix()))
    return findings


def findings_to_doc(findings, *, extra: dict | None = None) -> dict:
    """Machine-readable findings document (the CI JSON artifact)."""
    by_rule: dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    doc = {
        "analysis_version": 1,
        "total": len(findings),
        "unwaived": sum(1 for f in findings if not f.waived),
        "waived": sum(1 for f in findings if f.waived),
        "by_rule": dict(sorted(by_rule.items())),
        "findings": [asdict(f) for f in findings],
    }
    if extra:
        doc.update(extra)
    return doc
