"""Structure-set containers: blockset and coarsenset (the paper's Fig. 1f)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BlockSet:
    """Synchronization-free grouping of interactions.

    ``blocks[b]`` is the list of (i, j) interactions executed by one parallel
    task. The construction guarantees all interactions writing to the same
    output rows (same i-block) land in the same block, so the outer loop over
    blocks is fully parallel with no atomics — the paper's blocked loop.
    """

    blocks: list[list[tuple[int, int]]] = field(default_factory=list)
    blocksize: int = 1
    kind: str = "near"  # "near" (D blocks) or "far" (B blocks)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def num_interactions(self) -> int:
        return sum(len(b) for b in self.blocks)

    def all_interactions(self) -> list[tuple[int, int]]:
        return [d for block in self.blocks for d in block]

    def writer_rows(self, b: int) -> set[int]:
        """Output nodes written by block ``b`` (for disjointness checks)."""
        return {i for (i, _j) in self.blocks[b]}


@dataclass
class SubTree:
    """A load-balanced unit of one coarsen level: post-ordered node ids."""

    nodes: list[int]
    cost: float = 0.0
    roots: list[int] = field(default_factory=list)


@dataclass
class CoarsenLevel:
    """One coarsened level range: disjoint sub-trees executable in parallel."""

    lb: int  # inclusive tree-level lower bound of the range
    ub: int  # exclusive tree-level upper bound
    subtrees: list[SubTree] = field(default_factory=list)

    def all_nodes(self) -> list[int]:
        return [v for st in self.subtrees for v in st.nodes]


@dataclass
class CoarsenSet:
    """Sequence of coarsen levels, executed bottom level first (upward pass).

    The downward pass runs the same structure in reverse with each subtree's
    node order flipped.
    """

    levels: list[CoarsenLevel] = field(default_factory=list)
    agg: int = 2
    num_partitions: int = 1

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def all_nodes(self) -> list[int]:
        return [v for cl in self.levels for v in cl.all_nodes()]

    def max_parallelism(self) -> int:
        return max((len(cl.subtrees) for cl in self.levels), default=0)
