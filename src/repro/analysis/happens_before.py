"""Vector-clock happens-before checker for recorded sync traces.

The thread-tier counterpart of :mod:`repro.analysis.races`: where the
race certifier proves the *process* engine's barrier protocol orders
every shared-array access, this module proves the *thread* tier's locks
actually order every access to a ``# guarded-by:`` annotated attribute.
The input is a sync trace recorded by
:mod:`repro.observability.sync` — lock acquire/release, thread
fork/join, Condition wait cycles, Future set/result, queue put/get, and
``read``/``write`` events for the instrumented guarded attributes.

Replay is classic vector-clock happens-before (the Djit+ scheme: per
variable, the last access epoch of each thread per mode):

* each thread ``t`` owns a clock component; its events advance it;
* ``release(L)`` publishes the releaser's clock into ``L``'s clock
  (join-accumulated: a lock's clock is the union of every critical
  section that left it, which is exactly the mutual-exclusion order);
  ``acquire(L)`` joins it back — so critical sections on one lock are
  pairwise ordered no matter which threads ran them;
* ``fork``/``child`` and ``child_end``/``join`` edges order a thread
  against its creator and its joiner;
* ``fut_set``/``fut_get`` orders a Future's producer before every
  consumer; ``q_put``/``q_get`` conservatively orders all producers of a
  queue before each consumer (over-approximating the per-item edge —
  sound: extra edges can only *hide* races on other variables, never
  invent one, and the dispatcher protocol this certifies drains whole
  batches anyway);
* two accesses to the same ``(obj, attr)`` variable conflict when they
  come from different threads and at least one writes; they are a
  violation when neither happens-before the other.

An empty report certifies the execution: every guarded access really
was ordered by the synchronisation the annotation names.
:func:`seed_unordered_pair` doctors a clean trace by re-attributing one
write to a ghost thread no sync event ever orders — the mutation the
checker must flag, proving it is live.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.counters import bump_analysis_counter

__all__ = [
    "HBViolation",
    "certify_sync_trace",
    "certify_sync_trace_dir",
    "certify_sync_trace_file",
    "seed_unordered_pair",
]

#: Accepted trace format (must match repro.observability.sync).
SYNC_TRACE_VERSION = 1


@dataclass(frozen=True)
class HBViolation:
    """Two unordered conflicting accesses to one guarded attribute."""

    attr: str
    guard: str
    thread_a: str
    mode_a: str
    seq_a: int
    thread_b: str
    mode_b: str
    seq_b: int

    def format(self) -> str:
        return (f"{self.attr} (guarded-by {self.guard}): "
                f"{self.thread_a} {self.mode_a} at seq {self.seq_a} and "
                f"{self.thread_b} {self.mode_b} at seq {self.seq_b} are "
                f"unordered (no happens-before path)")


def _join(into: dict[int, int], other: dict[int, int]) -> None:
    for tid, clock in other.items():
        if clock > into.get(tid, 0):
            into[tid] = clock


def certify_sync_trace(trace: dict) -> list[HBViolation]:
    """Every happens-before violation in a sync trace (empty = certified).

    Increments the ``sync_certified``/``sync_flagged`` analysis counters
    so run manifests record what was proven.
    """
    if not isinstance(trace, dict) or \
            trace.get("sync_trace_version") != SYNC_TRACE_VERSION:
        raise ValueError(
            f"not a v{SYNC_TRACE_VERSION} sync trace: "
            f"{type(trace).__name__} with version "
            f"{trace.get('sync_trace_version') if isinstance(trace, dict) else None!r}")
    names = {int(k): v for k, v in trace.get("threads", {}).items()}

    clocks: dict[int, dict[int, int]] = {}       # thread -> vector clock
    lock_vc: dict[int, dict[int, int]] = {}      # lock obj -> published VC
    fut_vc: dict[int, dict[int, int]] = {}       # future obj -> setter VC
    queue_vc: dict[int, dict[int, int]] = {}     # queue obj -> producer VCs
    forks: dict[int, dict[int, int]] = {}        # token -> parent VC
    ends: dict[int, dict[int, int]] = {}         # token -> child-final VC
    # var -> thread -> (own clock at access, seq); split by mode.
    last_write: dict[tuple[int, str], dict[int, tuple[int, int]]] = {}
    last_read: dict[tuple[int, str], dict[int, tuple[int, int]]] = {}
    violations: list[HBViolation] = []
    flagged: set[tuple[int, str, int, int]] = set()

    def vc_of(tid: int) -> dict[int, int]:
        vc = clocks.get(tid)
        if vc is None:
            # Every thread starts with its own component at 1 so an
            # access epoch is never the always-ordered 0.
            vc = clocks[tid] = {tid: 1}
        return vc

    def tick(tid: int) -> None:
        vc = vc_of(tid)
        vc[tid] = vc.get(tid, 0) + 1

    def ordered(epoch: tuple[int, int], by: int, vc: dict[int, int]) -> bool:
        return epoch[0] <= vc.get(by, 0)

    def check(var: tuple[int, str], tid: int, mode: str, seq: int,
              guard: str) -> None:
        vc = vc_of(tid)
        against = [("write", last_write.get(var, {}))]
        if mode == "write":
            against.append(("read", last_read.get(var, {})))
        for other_mode, table in against:
            for other_tid, epoch in table.items():
                if other_tid == tid:
                    continue  # program order
                if ordered(epoch, other_tid, vc):
                    continue
                key = (var[0], var[1], other_tid, tid)
                if key in flagged:
                    continue  # one report per (var, thread-pair)
                flagged.add(key)
                violations.append(HBViolation(
                    attr=var[1], guard=guard,
                    thread_a=names.get(other_tid, str(other_tid)),
                    mode_a=other_mode, seq_a=epoch[1],
                    thread_b=names.get(tid, str(tid)),
                    mode_b=mode, seq_b=seq))
        table = last_write if mode == "write" else last_read
        table.setdefault(var, {})[tid] = (vc.get(tid, 1), seq)

    for ev in sorted(trace.get("events", ()), key=lambda e: e["seq"]):
        op, tid = ev["op"], int(ev["thread"])
        if op == "fork":
            forks[ev["token"]] = dict(vc_of(tid))
            tick(tid)
        elif op == "child":
            parent = forks.get(ev["token"])
            if parent:
                _join(vc_of(tid), parent)
            tick(tid)
        elif op == "child_end":
            ends[ev["token"]] = dict(vc_of(tid))
            tick(tid)
        elif op == "join":
            child = ends.get(ev["token"])
            if child:
                _join(vc_of(tid), child)
            tick(tid)
        elif op == "acquire":
            published = lock_vc.get(ev["obj"])
            if published:
                _join(vc_of(tid), published)
        elif op == "release":
            _join(lock_vc.setdefault(ev["obj"], {}), vc_of(tid))
            tick(tid)
        elif op == "fut_set":
            _join(fut_vc.setdefault(ev["obj"], {}), vc_of(tid))
            tick(tid)
        elif op == "fut_get":
            setter = fut_vc.get(ev["obj"])
            if setter:
                _join(vc_of(tid), setter)
        elif op == "q_put":
            _join(queue_vc.setdefault(ev["obj"], {}), vc_of(tid))
            tick(tid)
        elif op == "q_get":
            produced = queue_vc.get(ev["obj"])
            if produced:
                _join(vc_of(tid), produced)
        elif op in ("read", "write"):
            check((int(ev["obj"]), ev["name"]), tid, op, int(ev["seq"]),
                  ev.get("guard", "?"))
        # "notify" is informational: the edge rides the release after it.

    bump_analysis_counter(
        "sync_flagged" if violations else "sync_certified")
    return violations


def seed_unordered_pair(trace: dict) -> dict:
    """A doctored copy of a clean trace with one guaranteed-unordered
    conflicting write pair.

    Picks a guarded attribute with at least two accesses (one a write)
    and re-attributes the *last* access to a ghost thread that appears
    in no sync event — no fork, no lock, nothing orders it, so the
    checker must flag the pair. Raises ``ValueError`` when the trace has
    no guarded write to use as a victim.
    """
    doctored = json.loads(json.dumps(trace))
    events = doctored.get("events", [])
    by_var: dict[tuple[int, str], list[int]] = {}
    for idx, ev in enumerate(events):
        if ev["op"] in ("read", "write"):
            by_var.setdefault((int(ev["obj"]), ev["name"]), []).append(idx)
    for indices in by_var.values():
        if len(indices) < 2:
            continue
        if not any(events[i]["op"] == "write" for i in indices):
            continue
        victim = events[indices[-1]]
        # If every prior access is a read, the ghost must write; a ghost
        # write conflicts with reads and writes alike.
        victim["op"] = "write"
        victim["thread"] = 999999999
        doctored.setdefault("threads", {})["999999999"] = "ghost"
        return doctored
    raise ValueError(
        "trace has no guarded attribute with a write and a second "
        "access; record a workload that touches guarded state")


def certify_sync_trace_file(path) -> list[HBViolation]:
    """Load + certify one serialized sync trace."""
    from repro.observability.sync import load_sync_trace

    return certify_sync_trace(load_sync_trace(path))


def certify_sync_trace_dir(directory) -> dict[str, list[HBViolation]]:
    """Certify every ``*.synctrace.json`` under ``directory``.

    Raises ``FileNotFoundError`` when no traces are found: a replay gate
    pointed at an empty directory must fail loudly, not vacuously
    certify.
    """
    directory = Path(directory)
    paths = sorted(directory.glob("*.synctrace.json"))
    if not paths:
        raise FileNotFoundError(f"no sync traces under {directory}")
    return {p.name: certify_sync_trace_file(p) for p in paths}
