"""srank-based cost model for the coarsening algorithm.

The cost of a node in the CTree loops is the work of its T/S GEMMs, which is
proportional to the sizes of its basis generator: for a leaf,
``|I_v| * srank(v)``; for an interior node, ``(srank(lc) + srank(rc)) *
srank(v)`` — the paper's Alg. 2 lines 8-14 ("the subtree cost is related to
the size of submatrices associated with the subtree nodes and is determined
by sranks").
"""

from __future__ import annotations

import numpy as np

from repro.tree.cluster_tree import ClusterTree


def node_cost(tree: ClusterTree, sranks: np.ndarray, v: int) -> float:
    """Work estimate for node ``v``'s upward/downward GEMMs."""
    r = float(sranks[v])
    if r == 0.0:
        return 0.0
    if tree.is_leaf(v):
        return float(tree.node_size(v)) * r
    lc, rc = int(tree.lchild[v]), int(tree.rchild[v])
    return float(sranks[lc] + sranks[rc]) * r


def all_node_costs(tree: ClusterTree, sranks: np.ndarray) -> np.ndarray:
    """Vector of :func:`node_cost` for every node."""
    return np.array(
        [node_cost(tree, sranks, v) for v in range(tree.num_nodes)]
    )


def subtree_cost(tree: ClusterTree, sranks: np.ndarray, nodes) -> float:
    """Total cost of a node set (a coarsen sub-tree)."""
    return float(sum(node_cost(tree, sranks, int(v)) for v in nodes))
