"""Emitted-kernel write-set verifier: prove an artifact before running it.

A :class:`~repro.codegen.compiled.CompiledArtifact` is *data that
becomes code*: its emitted ``hmatmul_compiled`` source is ``exec()``'d
and then driven by index tables loaded from the PlanStore. The store's
SHA-256 catches torn bytes and ``_validate_tables`` catches arenas that
disagree with specs — but neither proves the property correctness
actually rests on: **every scatter's write set is disjoint or
accumulating exactly as the batched reference requires.** A rotted or
doctored artifact with overlapping scatter targets would execute
cleanly and return silently wrong numbers.

:func:`verify_artifact` closes that hole at load time, *before* the
source is executed:

* **source discipline** — the emitted text must parse to exactly one
  function of the expected name built from the fixed whitelist of
  statement forms, calling only the four bound primitives (``mm``,
  ``_gather``, ``_scatter_add``, ``_scatter_set``); ``_scatter_set``
  (exclusive, last-write-wins) may target only the ownership array T,
  and accumulating scatters only Y/S. Since the source is ``exec()``'d
  from the store, this is also a hardening gate: an artifact cannot
  smuggle imports or arbitrary calls into the serving process.
* **bounds** — every spec's output interval, view offset, and index
  slice must land inside the arrays the driver will actually index.
* **near** — the per-panel output intervals ``[si, si+m)`` must be
  pairwise disjoint (one Y-row writer per panel; when they tile
  ``[0, N)`` the driver folds them into one dense accumulate, which is
  only row-aligned under disjointness).
* **far** — single-panel intervals and stacked-scatter rows together
  must cover each S row at most once, and each ``_scatter_add`` call's
  index set must be duplicate-free: NumPy fancy ``dst[idx] += src``
  does **not** accumulate duplicates while the numba loop does, so an
  in-call duplicate silently diverges between backends.
* **up/down** — the ``_scatter_set`` ownership rows must be globally
  duplicate-free (each T row has exactly one owner), and each bucket's
  gather index set — reused as the down-sweep's scatter targets — must
  be duplicate-free per call and globally per target array (every Y/S
  row has one writer in the downward sweep).

Failure is a typed :class:`AnalysisError`; the
:class:`~repro.codegen.compiled.CompiledCache` converts it into the
``writeset_violation`` fallback counter and degrades to
``order="batched"`` — serving never raises. Outcomes are counted in the
``writeset_verified``/``writeset_rejected`` analysis counters.
"""

from __future__ import annotations

import ast

import numpy as np

from repro.analysis.counters import bump_analysis_counter

__all__ = ["AnalysisError", "verify_artifact", "verify_artifact_file"]


class AnalysisError(Exception):
    """An artifact failed write-set verification (degrade, don't run)."""


#: AST node types the emitted driver may contain. Anything outside this
#: set (imports, class defs, lambdas, comprehensions, try/except, ...)
#: has no business in straight-line generated code.
_ALLOWED_NODES = (
    ast.Module, ast.FunctionDef, ast.arguments, ast.arg, ast.Expr,
    ast.Assign, ast.AugAssign, ast.Return, ast.For, ast.If, ast.IfExp,
    ast.Name, ast.Attribute, ast.Subscript, ast.Slice, ast.Tuple,
    ast.Constant, ast.Call, ast.keyword, ast.Compare,
    ast.Is, ast.IsNot, ast.Add, ast.Load, ast.Store,
)

#: The only callables the driver may invoke (bound into its exec
#: environment by CompiledEvaluator).
_ALLOWED_CALLS = frozenset({"mm", "_gather", "_scatter_add",
                            "_scatter_set"})

#: First-argument discipline per primitive: which arrays each data-mover
#: may touch. ``_scatter_set`` is exclusive (last write wins), so it is
#: confined to the ownership array T.
_SCATTER_TARGETS = {
    "_scatter_set": {"T"},
    "_scatter_add": {"Y", "S"},
    "_gather": {"W", "T", "S"},
}


def _fail(reason: str) -> None:
    bump_analysis_counter("writeset_rejected")
    raise AnalysisError(f"compiled artifact rejected: {reason}")


# --------------------------------------------------------------------------
# Source discipline.
# --------------------------------------------------------------------------

def _verify_source(source: str, name: str) -> None:
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        _fail(f"emitted source does not parse ({exc.msg} at line "
              f"{exc.lineno})")
    if len(tree.body) != 1 or not isinstance(tree.body[0], ast.FunctionDef):
        _fail("emitted source must be exactly one function definition")
    fn = tree.body[0]
    if fn.name != name:
        _fail(f"emitted function is named {fn.name!r}, artifact meta "
              f"says {name!r}")
    if fn.decorator_list:
        _fail("emitted function must not be decorated")
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODES):
            _fail(f"emitted source contains a disallowed "
                  f"{type(node).__name__} node")
        if isinstance(node, ast.Call):
            func = node.func
            if not isinstance(func, ast.Name) or \
                    func.id not in _ALLOWED_CALLS:
                label = (func.id if isinstance(func, ast.Name)
                         else ast.unparse(func))
                _fail(f"emitted source calls {label!r}; only "
                      f"{sorted(_ALLOWED_CALLS)} are permitted")
            targets = _SCATTER_TARGETS.get(func.id)
            if targets is not None and not _names_in(
                    node.args[0] if node.args else None, targets):
                first = (ast.unparse(node.args[0]) if node.args
                         else "<missing>")
                _fail(f"{func.id} may only touch {sorted(targets)}, "
                      f"emitted source applies it to {first!r}")


def _names_in(arg: ast.expr | None, targets: set[str]) -> bool:
    """Whether a data-mover's first argument resolves only to allowed
    arrays: a bare name, or a branch select between two allowed names
    (the up-sweep's ``W if from_w else T``)."""
    if isinstance(arg, ast.Name):
        return arg.id in targets
    if isinstance(arg, ast.IfExp):
        return (isinstance(arg.body, ast.Name) and arg.body.id in targets
                and isinstance(arg.orelse, ast.Name)
                and arg.orelse.id in targets)
    return False


# --------------------------------------------------------------------------
# Table discipline.
# --------------------------------------------------------------------------

def _check_index(idx: np.ndarray, limit: int, label: str) -> None:
    if idx.size == 0:
        return
    if int(idx.min()) < 0:
        _fail(f"{label} holds a negative index")
    if int(idx.max()) >= limit:
        _fail(f"{label} indexes row {int(idx.max())}, past its array "
              f"bound {limit}")


def _check_duplicate_free(idx: np.ndarray, label: str) -> None:
    if idx.size and np.unique(idx).size != idx.size:
        _fail(f"{label} scatters to the same row more than once in one "
              f"call (NumPy fancy += drops duplicate contributions; the "
              f"numba loop accumulates them)")


class _RowClaims:
    """Tracks single-writer claims over one output array's rows."""

    def __init__(self, rows: int, array: str, phase: str):
        self.taken = np.zeros(max(rows, 1), dtype=bool)
        self.array = array
        self.phase = phase

    def claim_interval(self, start: int, stop: int, label: str) -> None:
        if bool(self.taken[start:stop].any()):
            _fail(f"{label} writes {self.array}[{start}:{stop}] but "
                  f"other {self.phase} writes already own rows in that "
                  f"interval (single-writer invariant)")
        self.taken[start:stop] = True

    def claim_rows(self, rows: np.ndarray, label: str) -> None:
        if rows.size == 0:
            return
        if bool(self.taken[rows].any()):
            _fail(f"{label} scatters into {self.array} rows already "
                  f"owned by other {self.phase} writes (single-writer "
                  f"invariant)")
        self.taken[rows] = True


def _verify_tables(tables: dict, dim: int, rank_rows: int) -> None:
    t = tables

    # ---- near phase: Y[si:si+m] += panel @ src ---------------------------
    near_gidx = np.asarray(t["near_gidx"])
    _check_index(near_gidx, dim, "near_gidx")
    near_claims = _RowClaims(dim, "Y", "near")
    for row_i, row in enumerate(np.asarray(t["near_specs"])):
        mode, m, k, si, a = (int(x) for x in row)
        label = f"near_specs[{row_i}]"
        if m <= 0 or k < 0 or si < 0 or si + m > dim:
            _fail(f"{label} output interval [{si}, {si + m}) is outside "
                  f"Y's {dim} rows")
        if mode == 0:
            if a < 0 or a + k > dim:
                _fail(f"{label} W view [{a}, {a + k}) is outside W's "
                      f"{dim} rows")
        elif a < 0 or a + k > near_gidx.size:
            _fail(f"{label} gather slice [{a}, {a + k}) is outside "
                  f"near_gidx ({near_gidx.size} entries)")
        near_claims.claim_interval(si, si + m, label)

    # ---- far phase: S singles + stacked scatter-adds ---------------------
    far_gidx = np.asarray(t["far_gidx"])
    _check_index(far_gidx, rank_rows, "far_gidx")
    far_claims = _RowClaims(rank_rows, "S", "far")
    for row_i, row in enumerate(np.asarray(t["far_specs"])):
        mode, m, k, si, a = (int(x) for x in row)
        label = f"far_specs[{row_i}]"
        if m <= 0 or k < 0 or si < 0 or si + m > rank_rows:
            _fail(f"{label} output interval [{si}, {si + m}) is outside "
                  f"S's {rank_rows} rows")
        if mode == 0:
            if a < 0 or a + k > rank_rows:
                _fail(f"{label} T view [{a}, {a + k}) is outside T's "
                      f"{rank_rows} rows")
        elif a < 0 or a + k > far_gidx.size:
            _fail(f"{label} gather slice [{a}, {a + k}) is outside "
                  f"far_gidx ({far_gidx.size} entries)")
        far_claims.claim_interval(si, si + m, label)
    orows = np.asarray(t["fstack_orows"])
    _check_index(orows, rank_rows, "fstack_orows")
    for row_i, row in enumerate(np.asarray(t["fstack_specs"])):
        g, m, k, gat_off, orow_off = (int(x) for x in row)
        label = f"fstack_specs[{row_i}]"
        if g <= 0 or m <= 0 or k < 0:
            _fail(f"{label} has a non-positive stack dimension")
        if gat_off < 0 or gat_off + g * k > far_gidx.size:
            _fail(f"{label} gather slice is outside far_gidx "
                  f"({far_gidx.size} entries)")
        if orow_off < 0 or orow_off + g * m > orows.size:
            _fail(f"{label} scatter slice is outside fstack_orows "
                  f"({orows.size} entries)")
        member = orows[orow_off:orow_off + g * m]
        _check_duplicate_free(member, label)
        far_claims.claim_rows(member, label)

    # ---- up/down sweeps: ownership + reused scatter targets --------------
    up_gidx = np.asarray(t["up_gidx"])
    up_own = np.asarray(t["up_own"])
    _check_index(up_own, rank_rows, "up_own")
    own_claims = _RowClaims(rank_rows, "T", "upward-sweep")
    down_y = _RowClaims(dim, "Y", "downward-sweep")
    down_s = _RowClaims(rank_rows, "S", "downward-sweep")
    for row_i, row in enumerate(np.asarray(t["up_specs"])):
        batch, r, cols, goff, ooff, from_w = (int(x) for x in row)
        label = f"up_specs[{row_i}]"
        if batch <= 0 or r < 0 or cols <= 0:
            _fail(f"{label} has a non-positive bucket dimension")
        if goff < 0 or goff + batch * cols > up_gidx.size:
            _fail(f"{label} gather slice is outside up_gidx "
                  f"({up_gidx.size} entries)")
        if ooff < 0 or ooff + batch * r > up_own.size:
            _fail(f"{label} ownership slice is outside up_own "
                  f"({up_own.size} entries)")
        gidx = up_gidx[goff:goff + batch * cols]
        own = up_own[ooff:ooff + batch * r]
        _check_index(gidx, dim if from_w else rank_rows,
                     f"{label} gather indices")
        # _scatter_set(T, own, ...): exclusive, so every call's rows and
        # the union across calls must be single-owner.
        _check_duplicate_free(own, f"{label} ownership rows")
        own_claims.claim_rows(own, f"{label} ownership rows")
        # The same gidx becomes the downward sweep's scatter-add target
        # (into Y for leaf buckets, S for interior buckets).
        _check_duplicate_free(gidx, f"{label} down-sweep scatter rows")
        if from_w:
            down_y.claim_rows(gidx, f"{label} down-sweep Y scatter")
        else:
            down_s.claim_rows(gidx, f"{label} down-sweep S scatter")


def verify_artifact(artifact) -> None:
    """Prove an artifact's write sets before it is ever executed.

    ``artifact`` is a :class:`~repro.codegen.compiled.CompiledArtifact`
    (duck-typed: ``meta``/``source``/``tables``). Raises
    :class:`AnalysisError` on the first violated invariant; returns
    ``None`` on success. Counts every outcome in the
    ``writeset_verified``/``writeset_rejected`` analysis counters.
    """
    meta = artifact.meta if isinstance(artifact.meta, dict) else {}
    try:
        dim = int(meta["dim"])
        rank_rows = int(meta["rank_rows"])
    except (KeyError, TypeError, ValueError):
        _fail("meta is missing integer dim/rank_rows")
    if dim < 0 or rank_rows < 0:
        _fail(f"meta declares negative dims (dim={dim}, "
              f"rank_rows={rank_rows})")
    _verify_source(str(artifact.source),
                   str(meta.get("name", "hmatmul_compiled")))
    _verify_tables(artifact.tables, dim, rank_rows)
    bump_analysis_counter("writeset_verified")


def verify_artifact_file(path) -> None:
    """Verify a serialized artifact ``.npz`` (the CLI entry point).

    Decode errors surface as :class:`AnalysisError` too — an unreadable
    artifact proves nothing.
    """
    from repro.codegen.compiled import load_compiled_artifact
    from repro.core.io import PlanStoreError

    try:
        artifact = load_compiled_artifact(path)
    except PlanStoreError as exc:
        bump_analysis_counter("writeset_rejected")
        raise AnalysisError(f"compiled artifact rejected: {exc}") from exc
    verify_artifact(artifact)
