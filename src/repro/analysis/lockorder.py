"""Static lock-order analysis: certify the thread tier deadlock-free.

An AST pass over ``src/repro`` that resolves every ``with <lock>:`` /
``lock.acquire()`` site — including locks reached *interprocedurally*
(``KernelService._execute`` holds the session lock while
``Session.inspect`` walks into ``PlanStore``; the compiled cache holds
its RLock across a store round-trip; autotune nests a per-key lock over
the store) — and builds the **lock-acquisition graph**: an edge
``A -> B`` means some execution path acquires ``B`` while holding ``A``.
A cycle in that graph is a potential deadlock (two threads taking the
cycle's locks in opposite orders can block forever); an acyclic graph
certifies the whole tree deadlock-free under the classic lock-ordering
discipline.

How resolution works, in three passes:

1. *Definitions*: every ``self.attr = threading.Lock()/RLock()/
   Condition()`` (or the :mod:`repro.observability.sync` factories, or a
   dataclass ``field(default_factory=threading.Lock)``) becomes a lock
   named ``Class.attr``; a dict annotated ``dict[..., threading.Lock]``
   becomes a *family* ``Class.attr[*]`` (its members are symmetric, so
   one node stands for all); module-level locks become ``module.NAME``.
   Alongside, attribute/parameter/return annotations and
   ``self.x = ClassName(...)`` assignments bind names to classes so
   call targets resolve.
2. *Summaries*: each function is walked once, tracking the locks held
   lexically (``with`` nesting plus bare ``acquire()``); every resolved
   call site is recorded with the locks held around it.
3. *Closure*: the locks each function can transitively acquire are
   computed to fixpoint over the call graph, and each call site held
   under ``A`` contributes edges ``A -> B`` for every ``B`` the callee
   can reach. Reentrant self-edges on RLocks are dropped (reacquiring
   an RLock you hold is legal); every other cycle becomes a ``C001``
   finding, waivable with the ``# analysis: waive C001 -- reason``
   convention shared with :mod:`repro.analysis.lint`.

The pass is deliberately an over-approximation (a held lock at a call
site taints every lock the callee *could* reach): false edges are
possible, false *missing* edges only through dynamic dispatch the
binder cannot see. The graph it emits is checked in as a golden file
(``tests/fixtures/analysis/lock_order.json``) so CI fails when a future
change inverts or adds an ordering edge silently.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.counters import bump_analysis_counter
from repro.analysis.lint import Finding, _parse_waivers, iter_python_files

__all__ = [
    "LOCK_RULES",
    "LockOrderReport",
    "analyze_lock_order",
]

#: Rule catalog (the concurrency-certifier counterpart of lint.RULES).
LOCK_RULES = {
    "C001": "the lock-acquisition graph must be acyclic "
            "(consistent lock order = deadlock freedom)",
}

#: Constructors recognised as lock definitions, with their kind.
_LOCK_CALLS = {
    "threading.Lock": "lock", "threading.RLock": "rlock",
    "threading.Condition": "condition",
    "Lock": "lock", "RLock": "rlock", "Condition": "condition",
    "make_lock": "lock", "make_rlock": "rlock",
    "make_condition": "condition",
}

_DICT_LOCK_ANN = re.compile(r"\bdict\[.*(?:Lock|RLock)\b")


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _lock_kind_of_value(node: ast.AST) -> str | None:
    """The lock kind a value expression constructs, if any."""
    if not isinstance(node, ast.Call):
        return None
    dotted = _dotted(node.func)
    kind = _LOCK_CALLS.get(dotted or "")
    if kind is not None:
        return kind
    if dotted in ("field", "dataclasses.field"):
        for kw in node.keywords:
            if kw.arg == "default_factory":
                inner = _dotted(kw.value)
                if inner in _LOCK_CALLS:
                    return _LOCK_CALLS[inner]
    return None


@dataclass
class _ClassInfo:
    name: str
    module: str
    path: str
    lock_attrs: dict[str, str] = field(default_factory=dict)   # attr->kind
    family_attrs: set[str] = field(default_factory=set)
    attr_anns: dict[str, str] = field(default_factory=dict)    # attr->ann src
    dict_value_anns: dict[str, str] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)   # attr->class
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)


@dataclass
class _Module:
    stem: str
    path: str
    tree: ast.Module
    imports: dict[str, tuple[str, ...]] = field(default_factory=dict)
    locks: dict[str, tuple[str, str]] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)
    classes: dict[str, _ClassInfo] = field(default_factory=dict)


@dataclass
class _Summary:
    path: str
    qualname: str
    direct: set[str] = field(default_factory=set)
    # (held locks at the call, callee key, line)
    calls: list[tuple[tuple[str, ...], tuple, int]] = field(
        default_factory=list)
    # direct nesting edges: (src, dst, line)
    edges: list[tuple[str, str, int]] = field(default_factory=list)


def _module_stem(path: Path) -> str:
    return path.parent.name if path.stem == "__init__" else path.stem


def _ann_str(node: ast.AST | None) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed ASTs
        return ""


class _Index:
    """Global name resolution: classes, functions, annotations."""

    def __init__(self, modules: list[_Module]) -> None:
        self.modules = modules
        self.classes: dict[str, _ClassInfo] = {}
        self.functions: dict[tuple[str, str], ast.FunctionDef] = {}
        for mod in modules:
            for cls in mod.classes.values():
                self.classes.setdefault(cls.name, cls)
            for fname, fn in mod.functions.items():
                self.functions[(mod.stem, fname)] = fn
        # Resolve annotation strings to known class names once the full
        # class table exists.
        for mod in modules:
            for cls in mod.classes.values():
                for attr, ann in cls.attr_anns.items():
                    resolved = self.class_in_annotation(ann)
                    if resolved is not None:
                        cls.attr_types.setdefault(attr, resolved)
                for attr, ann in cls.dict_value_anns.items():
                    resolved = self.class_in_annotation(ann)
                    if resolved is not None:
                        cls.attr_types.setdefault(f"{attr}[]", resolved)

    def class_in_annotation(self, ann: str) -> str | None:
        """First known class named inside an annotation string."""
        for token in re.findall(r"[A-Za-z_]\w*", ann):
            if token in self.classes:
                return token
        return None

    def return_class(self, key: tuple) -> str | None:
        fn: ast.FunctionDef | None = None
        if key[0] == "func":
            fn = self.functions.get((key[1], key[2]))
        elif key[0] == "method":
            cls = self.classes.get(key[1])
            if cls is not None:
                if key[2] == "__init__":
                    return key[1]
                fn = cls.methods.get(key[2])
        if fn is None:
            return None
        return self.class_in_annotation(_ann_str(fn.returns))


# --------------------------------------------------------------------------
# Pass 1: definitions.
# --------------------------------------------------------------------------

def _collect_module(path: Path, rel: str, source: str) -> _Module | None:
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    mod = _Module(stem=_module_stem(path), path=rel, tree=tree)
    for node in tree.body:
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                local = alias.asname or alias.name
                mod.imports[local] = ("from", node.module.rsplit(".", 1)[-1],
                                      alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                mod.imports[local] = ("mod", alias.name.rsplit(".", 1)[-1])
        elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            kind = _lock_kind_of_value(node.value)
            if kind is not None:
                name = node.targets[0].id
                mod.locks[name] = (f"{mod.stem}.{name}", kind)
        elif isinstance(node, ast.FunctionDef):
            mod.functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            mod.classes[node.name] = _collect_class(node, mod, rel)
    return mod


def _collect_class(node: ast.ClassDef, mod: _Module, rel: str) -> _ClassInfo:
    cls = _ClassInfo(name=node.name, module=mod.stem, path=rel)
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name):
            attr, ann = stmt.target.id, _ann_str(stmt.annotation)
            kind = _lock_kind_of_value(stmt.value) if stmt.value else None
            if kind is None and ann in ("threading.Lock", "threading.RLock",
                                        "threading.Condition"):
                kind = _LOCK_CALLS[ann.split(".", 1)[1]]
            if kind is not None:
                cls.lock_attrs[attr] = kind
            elif _DICT_LOCK_ANN.search(ann):
                cls.family_attrs.add(attr)
            elif ann.startswith("dict["):
                cls.dict_value_anns[attr] = ann
            else:
                cls.attr_anns[attr] = ann
        elif isinstance(stmt, ast.FunctionDef):
            cls.methods[stmt.name] = stmt
            _collect_self_assigns(stmt, cls)
    return cls


def _collect_self_assigns(fn: ast.FunctionDef, cls: _ClassInfo) -> None:
    params = {a.arg: _ann_str(a.annotation) for a in
              list(fn.args.posonlyargs) + list(fn.args.args)
              + list(fn.args.kwonlyargs) if a.annotation is not None}
    for node in ast.walk(fn):
        target = None
        value = None
        ann = ""
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value, ann = node.target, node.value, \
                _ann_str(node.annotation)
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            continue
        attr = target.attr
        if isinstance(value, ast.IfExp):
            # `self.x = (A(...) if cond else B(...))` — either arm that
            # constructs a known class binds the attribute.
            for arm in (value.body, value.orelse):
                if isinstance(arm, ast.Call):
                    value = arm
                    break
        kind = _lock_kind_of_value(value) if value is not None else None
        if kind is not None:
            cls.lock_attrs[attr] = kind
            continue
        if _DICT_LOCK_ANN.search(ann):
            cls.family_attrs.add(attr)
            continue
        if ann.startswith("dict["):
            cls.dict_value_anns.setdefault(attr, ann)
            continue
        if ann:
            cls.attr_anns.setdefault(attr, ann)
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            if dotted is not None and "." not in dotted:
                cls.attr_anns.setdefault(attr, dotted)
        elif isinstance(value, ast.Name) and value.id in params:
            cls.attr_anns.setdefault(attr, params[value.id])


# --------------------------------------------------------------------------
# Pass 2: per-function summaries.
# --------------------------------------------------------------------------

class _Summarizer(ast.NodeVisitor):
    def __init__(self, index: _Index, mod: _Module,
                 cls: _ClassInfo | None, fn: ast.FunctionDef,
                 qualname: str) -> None:
        self.index = index
        self.mod = mod
        self.cls = cls
        self.summary = _Summary(path=mod.path, qualname=qualname)
        self.held: list[str] = []
        self.locals_cls: dict[str, str] = {}
        self.locals_lock: dict[str, str] = {}
        for arg in (list(fn.args.posonlyargs) + list(fn.args.args)
                    + list(fn.args.kwonlyargs)):
            if arg.annotation is not None and arg.arg != "self":
                resolved = index.class_in_annotation(
                    _ann_str(arg.annotation))
                if resolved is not None:
                    self.locals_cls[arg.arg] = resolved

    # ---- resolution ------------------------------------------------------

    def _class_of(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Name):
            if node.id == "self" and self.cls is not None:
                return self.cls.name
            return self.locals_cls.get(node.id)
        if isinstance(node, ast.Attribute):
            owner = self._class_of(node.value)
            if owner is not None:
                info = self.index.classes.get(owner)
                if info is not None:
                    resolved = info.attr_types.get(node.attr)
                    if resolved is not None:
                        return resolved
                    # Property access: the getter's return annotation
                    # names the class (e.g. Executor.autotuner).
                    getter = info.methods.get(node.attr)
                    if getter is not None:
                        return self.index.class_in_annotation(
                            _ann_str(getter.returns))
            return None
        if isinstance(node, ast.Subscript):
            owner = self._class_of(node.value) if not (
                isinstance(node.value, ast.Attribute)
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id == "self") else (
                self.cls.name if self.cls else None)
            if isinstance(node.value, ast.Attribute) and owner is not None:
                info = self.index.classes.get(owner)
                if info is not None:
                    return info.attr_types.get(f"{node.value.attr}[]")
            return None
        if isinstance(node, ast.Call):
            key = self._callee_of(node)
            if key is not None:
                return self.index.return_class(key)
        return None

    def _lock_of(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Name):
            lid = self.locals_lock.get(node.id)
            if lid is not None:
                return lid
            entry = self.mod.locks.get(node.id)
            return entry[0] if entry is not None else None
        if isinstance(node, ast.Attribute):
            owner = self._class_of(node.value)
            if owner is not None:
                info = self.index.classes.get(owner)
                if info is not None and node.attr in info.lock_attrs:
                    return f"{owner}.{node.attr}"
            return None
        if isinstance(node, ast.Subscript):
            base = node.value
            if isinstance(base, ast.Attribute):
                owner = self._class_of(base.value)
                if owner is not None:
                    info = self.index.classes.get(owner)
                    if info is not None and base.attr in info.family_attrs:
                        return f"{owner}.{base.attr}[*]"
            return None
        if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute) \
                and node.func.attr == "setdefault":
            base = node.func.value
            if isinstance(base, ast.Attribute):
                owner = self._class_of(base.value)
                if owner is not None:
                    info = self.index.classes.get(owner)
                    if info is not None and base.attr in info.family_attrs:
                        return f"{owner}.{base.attr}[*]"
        return None

    def _callee_of(self, node: ast.Call) -> tuple | None:
        fn = node.func
        if isinstance(fn, ast.Name):
            if fn.id in self.mod.functions:
                return ("func", self.mod.stem, fn.id)
            if fn.id in self.index.classes:
                return ("method", fn.id, "__init__")
            imported = self.mod.imports.get(fn.id)
            if imported is not None and imported[0] == "from":
                _, stem, name = imported
                if name in self.index.classes:
                    return ("method", name, "__init__")
                return ("func", stem, name)
            return None
        if isinstance(fn, ast.Attribute):
            owner = self._class_of(fn.value)
            if owner is not None:
                return ("method", owner, fn.attr)
            if isinstance(fn.value, ast.Name):
                imported = self.mod.imports.get(fn.value.id)
                if imported is not None and imported[0] == "mod":
                    return ("func", imported[1], fn.attr)
        return None

    # ---- state tracking --------------------------------------------------

    def _acquire(self, lid: str, line: int) -> None:
        for held in self.held:
            self.summary.edges.append((held, lid, line))
        self.held.append(lid)
        self.summary.direct.add(lid)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        pushed = 0
        for item in node.items:
            self.visit(item.context_expr)
            lid = self._lock_of(item.context_expr)
            if lid is not None:
                self._acquire(lid, node.lineno)
                pushed += 1
        for stmt in node.body:
            self.visit(stmt)
        if pushed:
            del self.held[-pushed:]

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            lid = self._lock_of(node.value)
            if lid is not None:
                self.locals_lock[name] = lid
                return
            cls = self._class_of(node.value)
            if cls is not None:
                self.locals_cls[name] = cls

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("acquire", "release"):
            lid = self._lock_of(node.func.value)
            if lid is not None:
                if node.func.attr == "acquire":
                    # Held conservatively until the end of the function:
                    # pairing acquire/release lexically is not worth the
                    # soundness risk (the tree uses `with` everywhere).
                    self._acquire(lid, node.lineno)
                elif lid in self.held:
                    self.held.remove(lid)
        key = self._callee_of(node)
        if key is not None and self.held:
            self.summary.calls.append((tuple(self.held), key, node.lineno))
        elif key is not None:
            self.summary.calls.append(((), key, node.lineno))
        self.generic_visit(node)

    # Nested defs and lambdas run later, on whatever thread calls them —
    # their bodies are not covered by the lexically held locks here.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


# --------------------------------------------------------------------------
# Pass 3: closure, cycles, report.
# --------------------------------------------------------------------------

@dataclass
class LockOrderReport:
    """The lock-acquisition graph plus its cycle findings."""

    locks: dict[str, str]                       # name -> kind
    edges: dict[tuple[str, str], list[dict]]    # (src, dst) -> sites
    cycles: list[list[str]]
    findings: list[Finding]

    def summary(self) -> dict:
        """The golden-file shape: names and edges only, no line numbers
        (so refactors that move code without changing order stay green).
        """
        return {
            "lockorder_version": 1,
            "locks": sorted(self.locks),
            "edges": sorted([src, dst] for src, dst in self.edges),
        }

    def to_doc(self) -> dict:
        return {
            "lockorder_version": 1,
            "locks": [{"name": name, "kind": self.locks[name]}
                      for name in sorted(self.locks)],
            "edges": [
                {"src": src, "dst": dst,
                 "sites": sorted(self.edges[(src, dst)],
                                 key=lambda s: (s["path"], s["line"]))[:8]}
                for src, dst in sorted(self.edges)
            ],
            "cycles": [list(c) for c in self.cycles],
            "unwaived_cycles": sum(1 for f in self.findings if not f.waived),
        }


def _strongly_connected(nodes: set[str],
                        succ: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan SCC, iterative (analysis code must not recurse off a graph)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    out: list[list[str]] = []
    counter = 0
    for root in sorted(nodes):
        if root in index:
            continue
        work = [(root, iter(sorted(succ.get(root, ()))))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(succ.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    comp.append(top)
                    if top == node:
                        break
                out.append(sorted(comp))
    return out


def analyze_lock_order(paths, base=None) -> LockOrderReport:
    """Build + certify the lock-acquisition graph under ``paths``.

    Increments ``lockorder_certified`` (acyclic) or ``lockorder_cycles``
    (by the number of cycles) so manifests record the verdict.
    """
    base = Path(base) if base is not None else Path.cwd()
    modules: list[_Module] = []
    sources: dict[str, str] = {}
    for path in paths:
        for file in iter_python_files(path):
            try:
                rel = file.resolve().relative_to(base.resolve()).as_posix()
            except ValueError:
                rel = file.as_posix()
            source = file.read_text(encoding="utf-8")
            mod = _collect_module(file, rel, source)
            if mod is not None:
                modules.append(mod)
                sources[rel] = source
    index = _Index(modules)

    summaries: dict[tuple, _Summary] = {}
    lock_kinds: dict[str, str] = {}
    for mod in modules:
        for name, (lid, kind) in mod.locks.items():
            lock_kinds[lid] = kind
        for cls in mod.classes.values():
            for attr, kind in cls.lock_attrs.items():
                lock_kinds[f"{cls.name}.{attr}"] = kind
            for attr in cls.family_attrs:
                lock_kinds[f"{cls.name}.{attr}[*]"] = "family"
            for mname, fn in cls.methods.items():
                summarizer = _Summarizer(index, mod, cls, fn,
                                         f"{cls.name}.{mname}")
                for stmt in fn.body:
                    summarizer.visit(stmt)
                summaries[("method", cls.name, mname)] = summarizer.summary
        for fname, fn in mod.functions.items():
            summarizer = _Summarizer(index, mod, None, fn, fname)
            for stmt in fn.body:
                summarizer.visit(stmt)
            summaries[("func", mod.stem, fname)] = summarizer.summary

    # Transitive lock closure per function.
    reach: dict[tuple, set[str]] = {k: set(s.direct)
                                    for k, s in summaries.items()}
    changed = True
    while changed:
        changed = False
        for key, summ in summaries.items():
            bucket = reach[key]
            before = len(bucket)
            for _held, callee, _line in summ.calls:
                bucket |= reach.get(callee, set())
            if len(bucket) != before:
                changed = True

    edges: dict[tuple[str, str], list[dict]] = {}

    def add_edge(src: str, dst: str, summ: _Summary, line: int,
                 via: str | None = None) -> None:
        if src == dst and lock_kinds.get(src) == "rlock":
            return  # reentrant reacquisition is legal, not an order edge
        site = {"path": summ.path, "line": line, "function": summ.qualname}
        if via is not None:
            site["via"] = via
        sites = edges.setdefault((src, dst), [])
        if site not in sites:
            sites.append(site)

    for key, summ in summaries.items():
        for src, dst, line in summ.edges:
            add_edge(src, dst, summ, line)
        for held, callee, line in summ.calls:
            if not held:
                continue
            via = callee[1] + "." + callee[2] if callee[0] == "method" \
                else callee[2]
            for dst in sorted(reach.get(callee, ())):
                for src in held:
                    add_edge(src, dst, summ, line, via=via)

    succ: dict[str, set[str]] = {}
    nodes = set(lock_kinds)
    for (src, dst) in edges:
        nodes.add(src)
        nodes.add(dst)
        succ.setdefault(src, set()).add(dst)
    cycles = [comp for comp in _strongly_connected(nodes, succ)
              if len(comp) > 1
              or (len(comp) == 1 and comp[0] in succ.get(comp[0], ()))]

    findings: list[Finding] = []
    for comp in cycles:
        cycle_edges = [(s, d) for (s, d) in sorted(edges)
                       if s in comp and d in comp]
        site = edges[cycle_edges[0]][0] if cycle_edges else \
            {"path": "?", "line": 0, "function": "?"}
        findings.append(Finding(
            rule="C001", path=site["path"], line=site["line"], col=0,
            message=(f"lock-order cycle through {{{', '.join(comp)}}} "
                     f"(edges: "
                     f"{'; '.join(f'{s} -> {d}' for s, d in cycle_edges)})"
                     f" — two threads taking these in opposite order "
                     f"deadlock")))
    for finding in findings:
        waivers = _parse_waivers(sources.get(finding.path, ""))
        reason = waivers.get(finding.line, {}).get(finding.rule)
        if reason is not None:
            finding.waived = True
            finding.waiver_reason = reason

    if cycles:
        bump_analysis_counter("lockorder_cycles", len(cycles))
    else:
        bump_analysis_counter("lockorder_certified")
    return LockOrderReport(locks=dict(sorted(lock_kinds.items())),
                           edges=edges, cycles=cycles, findings=findings)
