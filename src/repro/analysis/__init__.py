"""Structure analysis: the paper's blocking and coarsening algorithms.

Consumes the structure information produced by modular compression (HTree,
CTree, sranks) and produces the structure sets — ``blockset`` for the
reduction loops and ``coarsenset`` for the loops over the CTree — that drive
code generation and the CDS data layout.
"""

from repro.analysis.binpack import first_fit_binpack
from repro.analysis.blocking import build_blockset
from repro.analysis.coarsening import build_coarsenset
from repro.analysis.cost_model import node_cost, subtree_cost
from repro.analysis.structure_sets import BlockSet, CoarsenLevel, CoarsenSet, SubTree

__all__ = [
    "build_blockset",
    "build_coarsenset",
    "first_fit_binpack",
    "node_cost",
    "subtree_cost",
    "BlockSet",
    "CoarsenSet",
    "CoarsenLevel",
    "SubTree",
]
