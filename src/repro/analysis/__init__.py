"""Analysis: the paper's structure algorithms + the correctness passes.

Two families live here. The *structure analysis* side consumes the
information produced by modular compression (HTree, CTree, sranks) and
produces the structure sets — ``blockset`` for the reduction loops and
``coarsenset`` for the loops over the CTree — that drive code generation
and the CDS data layout.

The *correctness analysis* side (DESIGN.md §13) proves invariants the
tests can only sample: project-aware AST lint rules (:mod:`.lint`), the
shared-memory race certifier over ProcessEngine traces (:mod:`.races`),
the emitted-kernel write-set verifier that gates compiled artifacts
before execution (:mod:`.codegen_check`), and the thread-tier
concurrency certifier (DESIGN.md §14): static lock-order analysis
(:mod:`.lockorder`), the vector-clock happens-before checker over
recorded sync traces (:mod:`.happens_before`), and the DPOR-lite
schedule explorer (:mod:`.explore`). All are wired into the ``repro
analyze`` CLI verb; their outcome counters (:mod:`.counters`) surface in
``repro stats`` and the run manifest.
"""

from repro.analysis.binpack import first_fit_binpack
from repro.analysis.blocking import build_blockset
from repro.analysis.coarsening import build_coarsenset
from repro.analysis.codegen_check import (
    AnalysisError,
    verify_artifact,
    verify_artifact_file,
)
from repro.analysis.cost_model import node_cost, subtree_cost
from repro.analysis.explore import (
    ScenarioSuite,
    ScheduleExplorer,
    ScheduleReport,
    explore_default_scenarios,
    schedule_footprint,
)
from repro.analysis.happens_before import (
    HBViolation,
    certify_sync_trace,
    certify_sync_trace_dir,
    certify_sync_trace_file,
    seed_unordered_pair,
)
from repro.analysis.counters import (
    analysis_counters,
    bump_analysis_counter,
    reset_analysis_counters,
)
from repro.analysis.lockorder import (
    LOCK_RULES,
    LockOrderReport,
    analyze_lock_order,
)
from repro.analysis.lint import (
    RULES,
    Finding,
    findings_to_doc,
    lint_paths,
    lint_source,
)
from repro.analysis.races import (
    RaceViolation,
    certify_trace,
    certify_trace_dir,
    certify_trace_file,
    load_trace,
    save_trace,
    seed_overlap_violation,
    trace_from_plans,
)
from repro.analysis.structure_sets import BlockSet, CoarsenLevel, CoarsenSet, SubTree

__all__ = [
    "build_blockset",
    "build_coarsenset",
    "first_fit_binpack",
    "node_cost",
    "subtree_cost",
    "BlockSet",
    "CoarsenSet",
    "CoarsenLevel",
    "SubTree",
    # correctness analysis (DESIGN.md §13)
    "AnalysisError",
    "Finding",
    "HBViolation",
    "LOCK_RULES",
    "LockOrderReport",
    "RULES",
    "RaceViolation",
    "ScenarioSuite",
    "ScheduleExplorer",
    "ScheduleReport",
    "analysis_counters",
    "analyze_lock_order",
    "bump_analysis_counter",
    "certify_sync_trace",
    "certify_sync_trace_dir",
    "certify_sync_trace_file",
    "certify_trace",
    "certify_trace_dir",
    "certify_trace_file",
    "explore_default_scenarios",
    "findings_to_doc",
    "lint_paths",
    "lint_source",
    "load_trace",
    "reset_analysis_counters",
    "save_trace",
    "schedule_footprint",
    "seed_overlap_violation",
    "seed_unordered_pair",
    "trace_from_plans",
    "verify_artifact",
    "verify_artifact_file",
]
