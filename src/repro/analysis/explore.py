"""DPOR-lite schedule exploration: perturb thread interleavings at the
recorded sync points (DESIGN.md §14).

The happens-before checker (:mod:`.happens_before`) certifies the
interleavings the test suite *happened* to produce; this module widens
that sample. A :class:`ScheduleExplorer` re-runs a small concurrent
scenario many times, and on each run installs a fresh
:class:`~repro.observability.sync.SyncTracer` whose
:attr:`~repro.observability.sync.SyncTracer.schedule_hook` injects a
**deterministic** per-run delay right before every traced blocking
operation (lock acquire, queue put). Different runs perturb different
sync points, so threads reach the contended primitives in different
orders — the cheap, sound half of dynamic partial-order reduction:
instead of computing backtracking sets we derive schedule *diversity*
from seeded perturbation and prune equivalent runs after the fact.

Two runs are **equivalent** when they produced the same Mazurkiewicz-
style footprint: the sequence of (lock name, canonical thread) acquire
events. Threads are canonicalised by order of first appearance in the
trace, so OS-assigned names/idents never make two identical schedules
look distinct. The explorer reports how many *inequivalent* schedules it
actually exercised — the number CI gates on — rather than how many times
it looped.

Failure detection is end-to-end: each run executes the scenario on a
watchdogged thread. A scenario that raises, returns a wrong result
(scenarios assert their own invariants), or fails to finish inside the
timeout (deadlock/livelock) records one ``schedule_failures`` counter
bump; a clean run records ``schedules_explored``.

Determinism: delays are derived from ``zlib.crc32`` over
``(run, point, thread, occurrence)`` — never from Python's salted
``hash()`` — so a failing run index can be replayed exactly.

The built-in :class:`ScenarioSuite` covers the thread-tier scenarios
named in DESIGN.md §14: dispatcher drain under load, dispatcher crash
containment, and concurrent PlanStore eviction.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
import zlib
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.analysis.counters import bump_analysis_counter
from repro.observability.sync import (
    SyncTracer,
    install_sync_tracer,
    uninstall_sync_tracer,
)

__all__ = ["ScheduleExplorer", "ScheduleReport", "ScenarioSuite",
           "explore_default_scenarios", "schedule_footprint"]

#: Delay quantum for perturbation (seconds). Injected delays are
#: 0..7 quanta — long enough to reorder a queue handoff, short enough
#: that a full exploration stays interactive.
PERTURB_QUANTUM = 0.0005


def schedule_footprint(doc: dict) -> tuple:
    """The run's Mazurkiewicz-style footprint from its trace document.

    A tuple of ``(lock name, canonical thread)`` pairs, one per acquire
    event, in global sequence order. Thread idents are canonicalised to
    ``T0, T1, ...`` by first appearance in the event stream.
    """
    canon: dict[Any, str] = {}
    out = []
    for ev in sorted(doc.get("events", []), key=lambda e: e["seq"]):
        tid = ev["thread"]
        if tid not in canon:
            canon[tid] = f"T{len(canon)}"
        if ev["op"] == "acquire":
            out.append((ev.get("name", "?"), canon[tid]))
    return tuple(out)


@dataclass
class ScheduleReport:
    """Outcome of one exploration: runs, dedup, failures."""

    scenario: str
    runs: int = 0
    #: Distinct footprints seen (the DPOR-lite equivalence classes).
    inequivalent: int = 0
    #: ``(run index, message)`` for every failed/deadlocked run.
    failures: list[tuple[int, str]] = field(default_factory=list)
    footprints: set = field(default_factory=set, repr=False)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_doc(self) -> dict:
        return {
            "scenario": self.scenario,
            "runs": self.runs,
            "inequivalent": self.inequivalent,
            "failures": [{"run": k, "error": msg}
                         for k, msg in self.failures],
        }


class ScheduleExplorer:
    """Re-run one scenario under deterministic schedule perturbation.

    ``scenario`` is a zero-argument callable that builds its own threads,
    asserts its own invariants and raises on violation. It runs with a
    process-global tracer installed, so every ``make_lock``-built
    primitive it (or the production code it drives) constructs is traced
    and perturbed.
    """

    def __init__(self, scenario: Callable[[], None], *,
                 name: str | None = None, runs: int = 24,
                 timeout: float = 120.0):
        if runs < 1:
            raise ValueError(f"runs must be >= 1, got {runs}")
        self.scenario = scenario
        self.name = name or getattr(scenario, "__name__", "scenario")
        self.runs = int(runs)
        self.timeout = float(timeout)

    def _perturber(self, run: int) -> Callable[[str, str], None]:
        counts: dict[tuple[str, str], int] = {}
        lock = threading.Lock()

        def hook(point: str, thread: str) -> None:
            with lock:
                key = (point, thread)
                n = counts[key] = counts.get(key, 0) + 1
            h = zlib.crc32(f"{run}:{point}:{thread}:{n}".encode())
            delay = (h & 7) * PERTURB_QUANTUM
            if delay:
                time.sleep(delay)

        return hook

    def _one_run(self, run: int) -> tuple[tuple, str | None]:
        tracer = SyncTracer(f"{self.name}.run{run}")
        tracer.schedule_hook = self._perturber(run)
        install_sync_tracer(tracer)
        err: str | None = None
        try:
            box: dict[str, BaseException] = {}
            done = threading.Event()

            def body() -> None:
                try:
                    self.scenario()
                except BaseException as exc:  # noqa: BLE001 - reported
                    box["exc"] = exc
                finally:
                    done.set()

            worker = threading.Thread(
                target=body, name=f"explore-{self.name}-{run}", daemon=True)
            worker.start()
            if not done.wait(self.timeout):
                err = (f"run {run} did not finish within {self.timeout:g}s "
                       f"(possible deadlock)")
            elif "exc" in box:
                exc = box["exc"]
                err = f"run {run} failed: {type(exc).__name__}: {exc}"
        finally:
            # Traced primitives outliving the tracer degrade to plain
            # threading ops, so a timed-out run cannot corrupt later ones.
            uninstall_sync_tracer()
        return schedule_footprint(tracer.to_doc()), err

    def explore(self) -> ScheduleReport:
        """Run every perturbation; dedupe; bump the analysis counters."""
        report = ScheduleReport(scenario=self.name)
        for run in range(self.runs):
            footprint, err = self._one_run(run)
            report.runs += 1
            if err is not None:
                report.failures.append((run, err))
                bump_analysis_counter("schedule_failures")
                continue
            if footprint not in report.footprints:
                report.footprints.add(footprint)
                bump_analysis_counter("schedules_explored")
        report.inequivalent = len(report.footprints)
        return report


# --------------------------------------------------------------------------
# Built-in scenarios (DESIGN.md §14): the thread-tier serving paths.
# --------------------------------------------------------------------------

class ScenarioSuite:
    """The stock schedule-exploration scenarios over a tiny workload.

    One suite owns a scratch directory: a shared plan-store root so that
    every run after the first warm-starts its plans (the explorer is
    about *schedules*, not inspector latency), plus per-run store roots
    for the eviction scenario. Call :meth:`cleanup` (or use as a context
    manager) when done.
    """

    def __init__(self, root: str | Path | None = None, *,
                 n_points: int = 96):
        self._owns_root = root is None
        self.root = Path(root) if root is not None else Path(
            tempfile.mkdtemp(prefix="matrox-explore-"))
        self.root.mkdir(parents=True, exist_ok=True)
        rng = np.random.default_rng(7)
        self._points = rng.random((int(n_points), 2))
        self._panels = [rng.random((int(n_points), 3)) for _ in range(6)]
        from repro.api.plan import PlanConfig

        self._plan = PlanConfig(leaf_size=32, bacc=1e-6, p=4, seed=0)
        self._store_root = self.root / "plans"

    # ------------------------------------------------------------- plumbing
    def __enter__(self) -> ScenarioSuite:
        return self

    def __exit__(self, *exc: object) -> None:
        self.cleanup()

    def cleanup(self) -> None:
        if self._owns_root:
            shutil.rmtree(self.root, ignore_errors=True)

    def scenarios(self) -> dict[str, Callable[[], None]]:
        """Name -> scenario callable, exploration-ready."""
        return {
            "dispatcher_drain": self.dispatcher_drain,
            "dispatcher_crash": self.dispatcher_crash,
            "store_eviction": self.store_eviction,
        }

    def _service(self, **kwargs):
        from repro.api.service import KernelService

        svc = KernelService(plan=self._plan, store=self._store_root,
                            **kwargs)
        svc.register("grid", self._points, warm=True)
        return svc

    # ------------------------------------------------------------ scenarios
    def dispatcher_drain(self) -> None:
        """Concurrent submitters racing a drain: every accepted Future
        must complete with a well-formed result and drain must report
        completion."""
        svc = self._service(max_batch=4, max_wait_ms=1.0)
        try:
            results: list[np.ndarray] = []
            errors: list[BaseException] = []
            res_lock = threading.Lock()

            def client(i: int) -> None:
                try:
                    y = svc.request("grid", self._panels[i], timeout=60)
                    with res_lock:
                        results.append(y)
                except BaseException as exc:  # noqa: BLE001 - asserted below
                    with res_lock:
                        errors.append(exc)

            clients = [threading.Thread(target=client, args=(i,),
                                        name=f"drain-client-{i}")
                       for i in range(4)]
            for t in clients:
                t.start()
            for t in clients:
                t.join(60)
            if not svc.drain(timeout=60):
                raise AssertionError("drain timed out with clients done")
            if errors:
                raise AssertionError(f"client failed: {errors[0]!r}")
            if len(results) != 4:
                raise AssertionError(f"expected 4 results, got "
                                     f"{len(results)}")
            n = len(self._points)
            for y in results:
                if y.shape != (n, 3) or not np.all(np.isfinite(y)):
                    raise AssertionError("malformed result from service")
        finally:
            svc.close()

    def dispatcher_crash(self) -> None:
        """A dispatcher-machinery fault must fail *closed*: the pending
        Future completes exceptionally (never hangs) and later submits
        are refused — under every interleaving."""
        from repro.api.service import ServiceClosed

        # The dispatcher deliberately dies raising; keep its (expected)
        # traceback out of the exploration output.
        orig_hook = threading.excepthook

        def quiet(hook_args) -> None:
            if (isinstance(hook_args.exc_value, RuntimeError)
                    and "injected dispatch fault"
                    in str(hook_args.exc_value)):
                return
            orig_hook(hook_args)

        threading.excepthook = quiet
        svc = self._service(max_batch=2, max_wait_ms=0.0)
        try:
            orig = svc._take_batch
            state = {"calls": 0}

            def faulty():
                state["calls"] += 1
                if state["calls"] == 1:
                    raise RuntimeError("injected dispatch fault")
                return orig()

            svc._take_batch = faulty
            fut = svc.submit("grid", self._panels[0])
            try:
                fut.result(timeout=60)
            except ServiceClosed:
                pass  # the contract: chained, typed, prompt
            except BaseException as exc:  # noqa: BLE001 - asserted
                raise AssertionError(
                    f"crash surfaced as {type(exc).__name__}, expected "
                    f"ServiceClosed") from exc
            else:
                raise AssertionError("future resolved after dispatcher "
                                     "crash")
            try:
                svc.submit("grid", self._panels[1])
            except ServiceClosed:
                pass
            else:
                raise AssertionError("submit accepted after crash")
            if svc.stats().get("dispatcher_crashes") != 1:
                raise AssertionError("crash not counted exactly once")
        finally:
            svc.close()
            threading.excepthook = orig_hook

    def store_eviction(self) -> None:
        """Concurrent writers against a byte-capped PlanStore: every put
        succeeds, eviction keeps running, and the store stays readable
        throughout."""
        from repro.api.store import PlanStore
        from repro.tuning.profile import TuningProfile

        root = Path(tempfile.mkdtemp(prefix="evict-", dir=self.root))
        try:
            store = PlanStore(root, max_bytes=2048, memory_profile=2)
            errors: list[BaseException] = []

            def writer(t: int) -> None:
                try:
                    for i in range(6):
                        prof = TuningProfile(
                            hmatrix_fp=f"fp-{t}-{i}", width_bucket=1,
                            host={"writer": t}, policy={"order": "batched"},
                            source="prior")
                        key = ("explore", t, i)
                        store.put("profile", key, prof)
                        got = store.get("profile", key)
                        # An immediate re-read may miss (already evicted
                        # under pressure) but must never be wrong. The
                        # memory front serves the prepared wire dict.
                        fp = (got.get("hmatrix_fp")
                              if isinstance(got, dict)
                              else getattr(got, "hmatrix_fp", None))
                        if got is not None and fp != prof.hmatrix_fp:
                            raise AssertionError(
                                "store returned wrong profile")
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    errors.append(exc)

            writers = [threading.Thread(target=writer, args=(t,),
                                        name=f"evict-writer-{t}")
                       for t in range(3)]
            for t in writers:
                t.start()
            for t in writers:
                t.join(60)
            if errors:
                raise AssertionError(
                    f"writer failed: {errors[0]!r}") from errors[0]
            if store.stats.puts != 18:
                raise AssertionError(
                    f"expected 18 puts, got {store.stats.puts}")
            if store.stats.evictions < 1:
                raise AssertionError("byte cap never triggered eviction")
            store.cache_info()  # must stay coherent under the cap
        finally:
            shutil.rmtree(root, ignore_errors=True)


def explore_default_scenarios(*, runs: int = 24, root: str | Path | None
                              = None) -> dict[str, ScheduleReport]:
    """Explore every stock scenario; name -> report (CLI entry point)."""
    out: dict[str, ScheduleReport] = {}
    with ScenarioSuite(root) as suite:
        for name, scenario in suite.scenarios().items():
            explorer = ScheduleExplorer(scenario, name=name, runs=runs)
            out[name] = explorer.explore()
    return out
