"""Process-global counters for the analysis layer (DESIGN.md §13).

Every analysis pass that runs in-process — the write-set verifier
guarding compiled-artifact loads, the race certifier replaying engine
traces — increments a named counter here. :func:`analysis_counters`
surfaces the snapshot through ``collect_stats()["analysis"]`` and the
run manifest's ``stats.analysis`` section, so a manifest records not
just *what* a run did but *what was proven about it*.

Counter values are monotone within a process and deterministic for a
deterministic workload (nothing here samples a clock), which keeps the
run-manifest byte-identity contract intact.
"""

from __future__ import annotations

import threading

__all__ = ["analysis_counters", "bump_analysis_counter",
           "reset_analysis_counters"]

#: The fixed counter vocabulary. A typo'd name must fail loudly rather
#: than mint a new counter nobody aggregates.
_NAMES = (
    "writeset_verified",   # compiled artifacts proven safe before exec
    "writeset_rejected",   # compiled artifacts refused (degrade to batched)
    "races_certified",     # engine traces certified race-free
    "races_flagged",       # engine traces with unordered conflicting writes
    "lint_findings",       # unwaived lint findings reported by `repro analyze`
    "lockorder_certified",   # lock-order graphs certified acyclic
    "lockorder_cycles",      # lock-order cycles found (deadlock potential)
    "sync_certified",        # sync traces certified free of HB violations
    "sync_flagged",          # sync traces with unordered conflicting accesses
    "schedules_explored",    # inequivalent thread schedules explored
    "schedule_failures",     # explored schedules that failed or deadlocked
)

_lock = threading.Lock()
_counters: dict[str, int] = dict.fromkeys(_NAMES, 0)


def bump_analysis_counter(name: str, amount: int = 1) -> None:
    """Increment one analysis counter (thread-safe)."""
    if name not in _counters:
        raise KeyError(f"unknown analysis counter {name!r}; "
                       f"known: {sorted(_counters)}")
    with _lock:
        _counters[name] += int(amount)


def analysis_counters() -> dict[str, int]:
    """A snapshot copy of every analysis counter."""
    with _lock:
        return dict(_counters)


def reset_analysis_counters() -> None:
    """Zero every counter (test isolation)."""
    with _lock:
        for name in _NAMES:
            _counters[name] = 0
