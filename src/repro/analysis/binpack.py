"""First-fit bin-packing used by coarsening to merge sub-trees (Alg. 2 l.15-19).

Items are packed first-fit-decreasing into ``n_bins`` bins balanced on item
cost: each item goes to the currently lightest bin that it "fits" — with a
fixed bin count we use the lightest-bin heuristic (a.k.a. multiprocessor
scheduling via Graham's LPT), the standard realisation of the paper's cited
bin-packing-for-scheduling approach.
"""

from __future__ import annotations

import heapq

from repro.utils.validation import require


def first_fit_binpack(costs: list[float], n_bins: int) -> list[list[int]]:
    """Pack item indices into ``n_bins`` cost-balanced bins.

    Returns a list of bins, each a list of item indices, ordered so bin
    loads are as even as the LPT heuristic achieves (within 4/3 of optimal
    makespan). Empty bins are dropped.
    """
    require(n_bins >= 1, f"n_bins must be >= 1, got {n_bins}")
    order = sorted(range(len(costs)), key=lambda i: -costs[i])
    # Heap of (load, bin_index); push decreasing items onto the lightest bin.
    heap: list[tuple[float, int]] = [(0.0, b) for b in range(n_bins)]
    heapq.heapify(heap)
    bins: list[list[int]] = [[] for _ in range(n_bins)]
    for item in order:
        load, b = heapq.heappop(heap)
        bins[b].append(item)
        heapq.heappush(heap, (load + costs[item], b))
    return [b for b in bins if b]


def bin_loads(costs: list[float], bins: list[list[int]]) -> list[float]:
    """Total cost per bin (for balance assertions in tests)."""
    return [sum(costs[i] for i in b) for b in bins]
