"""Shared-memory race certifier for the process-parallel engine.

The :class:`~repro.core.parallel.ProcessEngine` is safe because of one
invariant — *every Y/T/S row slice has exactly one writer per barrier
phase* — enforced by construction (shards group near/far pairs by
output node; leaves are disjoint). Tests sample that invariant; this
module **certifies** it per engine instance, in the CSST style
(partial-order analysis of a concurrent execution's trace):

1. *Recording*: :func:`trace_from_plans` turns an engine's shard plans
   into an access trace — for every worker and every barrier phase, the
   (array, row-interval, read/write) accesses it will perform. The
   trace is exact, not sampled: workers execute precisely the panels in
   their plan, every call, so the static per-plan trace covers every
   dynamic execution of that engine.
2. *Happens-before*: the 3-phase barrier protocol totally orders the
   master's steps against the workers' phases::

       setup(0) < phase1(1) < master_up(2) < phase2(3)
                < master_down(4) < phase3(5) < readout(6)

   Two accesses are ordered iff their steps differ, or they belong to
   the same actor (program order). The only *unordered* pairs are two
   different actors inside the same barrier phase.
3. *Certification*: :func:`certify_trace` reports every unordered pair
   of accesses to the same array with overlapping row intervals where
   at least one side writes. An empty report is a proof (over the
   happens-before model) that the engine run was race-free; each
   violation pinpoints the phase, the actors, and the overlapping rows.

Traces serialize to JSON (:func:`save_trace`/:func:`load_trace`); the
engine dumps one per run when ``MATROX_TRACE_DIR`` is set, and the CI
``analyze`` job replays the chaos/equivalence suites' traces through
``repro analyze --races``. :func:`seed_overlap_violation` doctors a
clean trace by overlapping two panels — the mutation the certifier must
flag, proving the checker itself is live.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.analysis.counters import bump_analysis_counter

__all__ = [
    "TRACE_VERSION",
    "RaceViolation",
    "certify_trace",
    "certify_trace_dir",
    "certify_trace_file",
    "load_trace",
    "save_trace",
    "seed_overlap_violation",
    "trace_from_plans",
]

#: Format version of the serialized trace document.
TRACE_VERSION = 1

#: Barrier-step order (see module docstring). Worker phases sit at the
#: odd steps; the master's strictly-ordered work sits at the even ones.
STEP_PHASES = {
    0: "setup",
    1: "near_and_leaf_up",
    2: "master_up",
    3: "far",
    4: "master_down",
    5: "leaf_down",
    6: "readout",
}


@dataclass(frozen=True)
class RaceViolation:
    """Two unordered accesses, same array, overlapping rows, >= 1 write."""

    array: str
    step: int
    phase: str
    actor_a: str
    mode_a: str
    rows_a: tuple[int, int]
    actor_b: str
    mode_b: str
    rows_b: tuple[int, int]

    def format(self) -> str:
        return (f"{self.array} rows "
                f"[{max(self.rows_a[0], self.rows_b[0])}, "
                f"{min(self.rows_a[1], self.rows_b[1])}) in phase "
                f"{self.phase!r}: {self.actor_a} {self.mode_a}s "
                f"{list(self.rows_a)} while {self.actor_b} {self.mode_b}s "
                f"{list(self.rows_b)} (unordered)")


def _access(actor: str, step: int, array: str, mode: str,
            start: int, stop: int):
    return (actor, step, array, mode, int(start), int(stop))


def trace_from_plans(plans, *, n: int, rank_rows: int, num_workers: int,
                     calls: int = 0, chunks: int = 0) -> dict:
    """Build the access trace of an engine from its shard plans.

    ``plans`` are :class:`~repro.core.parallel._ShardPlan`-shaped objects
    (duck-typed: ``wid``/``near_pairs``/``point_rows``/``far_pairs``/
    ``skel_rows``/``leaf_specs``). The master's interior-level work is
    recorded coarsely (whole-array intervals at its own steps) — the
    barriers totally order it against every worker, so coarseness can
    never mask a race, only document the model.
    """
    accesses: set[tuple] = set()
    accesses.add(_access("master", 0, "W", "write", 0, n))
    accesses.add(_access("master", 0, "Y", "write", 0, n))
    accesses.add(_access("master", 0, "S", "write", 0, rank_rows))
    accesses.add(_access("master", 2, "T", "read", 0, rank_rows))
    accesses.add(_access("master", 2, "T", "write", 0, rank_rows))
    accesses.add(_access("master", 4, "S", "read", 0, rank_rows))
    accesses.add(_access("master", 4, "S", "write", 0, rank_rows))
    accesses.add(_access("master", 6, "Y", "read", 0, n))
    for plan in plans:
        actor = f"worker{plan.wid}"
        for (i, j) in plan.near_pairs:
            accesses.add(_access(actor, 1, "Y", "write",
                                 *plan.point_rows[i]))
            accesses.add(_access(actor, 1, "W", "read",
                                 *plan.point_rows[j]))
        for (_off, rows, cols, start, t0) in plan.leaf_specs:
            accesses.add(_access(actor, 1, "W", "read", start, start + rows))
            accesses.add(_access(actor, 1, "T", "write", t0, t0 + cols))
            accesses.add(_access(actor, 5, "S", "read", t0, t0 + cols))
            accesses.add(_access(actor, 5, "Y", "write",
                                 start, start + rows))
        for (i, j) in plan.far_pairs:
            accesses.add(_access(actor, 3, "S", "write",
                                 *plan.skel_rows[i]))
            accesses.add(_access(actor, 3, "T", "read",
                                 *plan.skel_rows[j]))
    return {
        "trace_version": TRACE_VERSION,
        "n": int(n),
        "rank_rows": int(rank_rows),
        "num_workers": int(num_workers),
        "calls": int(calls),
        "chunks": int(chunks),
        "accesses": [
            {"actor": a, "step": s, "phase": STEP_PHASES[s], "array": arr,
             "mode": m, "rows": [lo, hi]}
            for a, s, arr, m, lo, hi in sorted(accesses)
        ],
    }


def certify_trace(trace: dict) -> list[RaceViolation]:
    """Every happens-before violation in a trace (empty = certified).

    Increments the ``races_certified``/``races_flagged`` analysis
    counters, so run manifests record what was proven.
    """
    if not isinstance(trace, dict) or \
            trace.get("trace_version") != TRACE_VERSION:
        raise ValueError(
            f"not a v{TRACE_VERSION} access trace: "
            f"{type(trace).__name__} with version "
            f"{trace.get('trace_version') if isinstance(trace, dict) else None!r}")
    groups: dict[tuple[str, int], list] = {}
    for acc in trace.get("accesses", ()):
        lo, hi = acc["rows"]
        if hi <= lo:
            continue  # empty interval can conflict with nothing
        groups.setdefault((acc["array"], int(acc["step"])), []).append(
            (int(lo), int(hi), acc["actor"], acc["mode"]))
    violations: list[RaceViolation] = []
    for (array, step), entries in sorted(groups.items()):
        entries.sort()
        for i, (lo_a, hi_a, actor_a, mode_a) in enumerate(entries):
            for lo_b, hi_b, actor_b, mode_b in entries[i + 1:]:
                if lo_b >= hi_a:
                    break  # start-sorted: nothing further overlaps
                if actor_a == actor_b:
                    continue  # program order: same actor is ordered
                if mode_a != "write" and mode_b != "write":
                    continue  # read/read never races
                violations.append(RaceViolation(
                    array=array, step=step,
                    phase=STEP_PHASES.get(step, f"step{step}"),
                    actor_a=actor_a, mode_a=mode_a, rows_a=(lo_a, hi_a),
                    actor_b=actor_b, mode_b=mode_b, rows_b=(lo_b, hi_b)))
    bump_analysis_counter(
        "races_flagged" if violations else "races_certified")
    return violations


def seed_overlap_violation(trace: dict) -> dict:
    """A doctored copy of a clean trace with two panels overlapped.

    Finds two write accesses to the same array in the same barrier phase
    by *different* actors and stretches one interval over the other —
    exactly the single-writer violation the certifier exists to catch.
    Raises ``ValueError`` when the trace has no two distinct writers in
    any phase (e.g. a one-worker engine): the mutation needs a victim.
    """
    doctored = json.loads(json.dumps(trace))
    writes: dict[tuple[str, int], list[int]] = {}
    for idx, acc in enumerate(doctored.get("accesses", ())):
        if acc["mode"] != "write" or acc["actor"] == "master":
            continue
        writes.setdefault((acc["array"], int(acc["step"])), []).append(idx)
    for indices in writes.values():
        actors = {doctored["accesses"][i]["actor"] for i in indices}
        if len(actors) < 2:
            continue
        first = doctored["accesses"][indices[0]]
        victim = next(i for i in indices[1:]
                      if doctored["accesses"][i]["actor"] != first["actor"])
        doctored["accesses"][victim]["rows"] = list(first["rows"])
        return doctored
    raise ValueError(
        "trace has no phase with two distinct writers; run the engine "
        "with >= 2 workers to seed an overlap")


def save_trace(trace: dict, path) -> Path:
    """Write a trace as canonical JSON (sorted keys, trailing newline)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace, sort_keys=True, indent=1) + "\n",
                    encoding="utf-8")
    return path


def load_trace(path) -> dict:
    trace = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(trace, dict):
        raise ValueError(f"{path}: trace must be a JSON object")
    return trace


def certify_trace_file(path) -> list[RaceViolation]:
    """Load + certify one serialized trace."""
    return certify_trace(load_trace(path))


def certify_trace_dir(directory) -> dict[str, list[RaceViolation]]:
    """Certify every ``*.json`` trace under ``directory``.

    Returns ``{filename: violations}`` for every trace found; raises
    ``FileNotFoundError`` when the directory holds no traces at all (a
    replay gate pointed at an empty directory must fail loudly, not
    vacuously certify).
    """
    directory = Path(directory)
    paths = sorted(directory.glob("*.json"))
    if not paths:
        raise FileNotFoundError(f"no trace JSONs under {directory}")
    return {p.name: certify_trace_file(p) for p in paths}
