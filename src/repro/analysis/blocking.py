"""Blocking algorithm (the paper's Algorithm 1).

Maps each (i, j) interaction to grid cell ``((i-1)//blocksize,
(j-1)//blocksize)`` — clustering interactions that share nodes — then
gathers every cell in grid row ``i`` into the same blockset entry, because
all interactions with the same output node i write to the same rows of Y;
keeping them in one block removes the reduction/atomic the library code of
Fig. 1d needs. The same algorithm serves near (D) and far (B) interactions.
"""

from __future__ import annotations

from repro.analysis.structure_sets import BlockSet
from repro.htree.htree import HTree
from repro.utils.validation import require


def build_blockset(
    htree: HTree,
    blocksize: int,
    kind: str = "near",
    interactions: list[tuple[int, int]] | None = None,
) -> BlockSet:
    """Build the blockset for near or far interactions.

    Parameters
    ----------
    htree:
        Interaction structure (source of the near/far pair lists).
    blocksize:
        Grid granularity; the paper uses 2 for near and 4 for far.
    kind:
        ``"near"`` or ``"far"``.
    interactions:
        Explicit pair list override (used by tests).
    """
    require(blocksize >= 1, f"blocksize must be >= 1, got {blocksize}")
    if interactions is None:
        if kind == "near":
            interactions = htree.near_pairs()
        elif kind == "far":
            interactions = htree.far_pairs()
        else:
            raise ValueError(f"kind must be 'near' or 'far', got {kind!r}")

    num_nodes = htree.num_nodes
    block_dim = (num_nodes - 1 + blocksize) // blocksize  # Alg. 1 line 1

    # Lines 3-9: map interaction (i, j) to grid cell (iid, jid). Node ids
    # are shifted by 1 (the root takes no part in interactions).
    cells: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for (i, j) in interactions:
        iid = (i - 1) // blocksize
        jid = (j - 1) // blocksize
        cells.setdefault((iid, jid), []).append((i, j))

    # Lines 10-16: concatenate row i's non-empty cells into blockset[i],
    # so same-output interactions share a block (no write conflicts).
    blocks: list[list[tuple[int, int]]] = []
    for iid in range(block_dim):
        row: list[tuple[int, int]] = []
        for jid in range(block_dim):
            cell = cells.get((iid, jid))
            if cell:
                row.extend(cell)
        if row:
            blocks.append(row)

    return BlockSet(blocks=blocks, blocksize=blocksize, kind=kind)
