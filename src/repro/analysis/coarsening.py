"""Coarsening algorithm (the paper's Algorithm 2).

Adapts Load-Balanced level Coarsening (LBC, Cheshmi et al.) to binary
cluster trees with an srank cost model:

1. Levels (by *height*: leaves have height 0) are grouped ``agg`` at a time
   into coarsen levels; within each coarsen level the nodes form disjoint
   sub-trees, so each sub-tree can run on one thread with no synchronization
   (all parent-child dependencies inside a coarsen level stay thread-local).
2. Each initial sub-tree is costed with the srank model.
3. Sub-trees inside one coarsen level are merged by first-fit bin-packing
   into ``p`` load-balanced partitions that execute in parallel.

The resulting ``coarsenset`` runs bottom coarsen level first for the upward
pass; the executor reverses it for the downward pass.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.binpack import first_fit_binpack
from repro.analysis.cost_model import node_cost
from repro.analysis.structure_sets import CoarsenLevel, CoarsenSet, SubTree
from repro.tree.cluster_tree import ClusterTree
from repro.utils.validation import require


def node_heights(tree: ClusterTree) -> np.ndarray:
    """Height of every node: 0 at leaves, ``1 + max(children)`` inside."""
    heights = np.zeros(tree.num_nodes, dtype=np.intp)
    for v in tree.postorder():
        if not tree.is_leaf(v):
            heights[v] = 1 + max(
                heights[tree.lchild[v]], heights[tree.rchild[v]]
            )
    return heights


def _collect_subtree(tree: ClusterTree, root: int, lb: int,
                     heights: np.ndarray, active: np.ndarray) -> list[int]:
    """Post-order nodes of ``root``'s subtree with height >= lb, active only."""
    out: list[int] = []
    stack: list[tuple[int, bool]] = [(root, False)]
    while stack:
        v, expanded = stack.pop()
        if expanded:
            out.append(v)
            continue
        if not active[v] or heights[v] < lb:
            continue
        stack.append((v, True))
        if not tree.is_leaf(v):
            stack.append((int(tree.rchild[v]), False))
            stack.append((int(tree.lchild[v]), False))
    return out


def build_coarsenset(
    tree: ClusterTree,
    sranks: np.ndarray,
    p: int,
    agg: int = 2,
) -> CoarsenSet:
    """Build the coarsenset (Alg. 2).

    Parameters
    ----------
    tree:
        The cluster tree.
    sranks:
        Per-node sranks from compression; nodes with srank 0 take no part in
        the CTree loops (e.g. the root) and are excluded, matching the paper
        ("node 0 is not involved in any computation").
    p:
        Number of parallel sub-trees per coarsen level (paper: number of
        physical cores).
    agg:
        Aggregation parameter — tree levels merged per coarsen level
        (paper default 2).
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    require(agg >= 1, f"agg must be >= 1, got {agg}")
    sranks = np.asarray(sranks)
    heights = node_heights(tree)
    active = sranks > 0

    height = int(heights[0])  # root height == CTree.height in the paper
    if height == 0 or not active.any():
        return CoarsenSet(levels=[], agg=agg, num_partitions=p)
    num_levels = -(-height // agg)  # ceil(height / agg), Alg. 2 line 1

    levels: list[CoarsenLevel] = []
    for i in range(num_levels):
        lb = i * agg
        ub = (i + 1) * agg
        # Disjoint sub-tree roots of this coarsen level: active nodes whose
        # height falls in [lb, ub) and whose parent lies above the range
        # (or is inactive, in which case this node heads its own sub-tree).
        in_range = active & (heights >= lb) & (heights < ub)
        subtrees: list[SubTree] = []
        for v in np.flatnonzero(in_range):
            v = int(v)
            par = int(tree.parent[v])
            is_root_here = (
                par < 0
                or heights[par] >= ub
                or not active[par]
            )
            if not is_root_here:
                continue
            nodes = _collect_subtree(tree, v, lb, heights, active)
            if nodes:
                cost = sum(node_cost(tree, sranks, u) for u in nodes)
                subtrees.append(SubTree(nodes=nodes, cost=cost, roots=[v]))

        if not subtrees:
            continue

        # Alg. 2 lines 15-19: merge initial sub-trees into nPart balanced
        # partitions with first-fit bin-packing.
        n_sub = len(subtrees)
        n_part = p if n_sub > p else max(1, n_sub // 2)
        bins = first_fit_binpack([st.cost for st in subtrees], n_part)
        merged: list[SubTree] = []
        for b in bins:
            nodes: list[int] = []
            roots: list[int] = []
            cost = 0.0
            for item in sorted(b):  # keep deterministic subtree order
                nodes.extend(subtrees[item].nodes)
                roots.extend(subtrees[item].roots)
                cost += subtrees[item].cost
            merged.append(SubTree(nodes=nodes, cost=cost, roots=roots))
        levels.append(CoarsenLevel(lb=lb, ub=ub, subtrees=merged))

    return CoarsenSet(levels=levels, agg=agg, num_partitions=p)
