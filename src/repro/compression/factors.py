"""Container for the compression output: the U/V/B/D generators and sranks.

This is the "structure information" handed from the compression phase to
structure analysis and data-layout construction. Submatrices are stored in
plain per-node / per-pair dicts here; the CDS layer (repro.storage.cds)
repacks them into flat visit-order buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.htree.htree import HTree


@dataclass
class Factors:
    """Generators of the compressed HMatrix.

    Attributes
    ----------
    htree:
        The interaction structure these factors were built for.
    skeleton:
        Per node: original-order point indices of the node's skeleton.
    leaf_basis:
        Per leaf node v: ``V_v`` of shape (|I_v|, r_v). Symmetric kernels
        share U = V, so one array serves both the upward projection
        (``V^T W``) and the downward interpolation (``V S``).
    transfer:
        Per interior node v: ``E_v`` of shape (r_lc + r_rc, r_v), the nested
        basis transfer matrix.
    coupling:
        Per far pair (i, j): ``B_ij = K(sk(i), sk(j))`` of shape (r_i, r_j).
    near_blocks:
        Per near pair (i, j): exact dense ``D_ij = K(I_i, I_j)``.
    sranks:
        Per node: skeleton rank r_v (0 for nodes without a basis).
    """

    htree: HTree
    skeleton: dict[int, np.ndarray] = field(default_factory=dict)
    leaf_basis: dict[int, np.ndarray] = field(default_factory=dict)
    transfer: dict[int, np.ndarray] = field(default_factory=dict)
    coupling: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)
    near_blocks: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)
    sranks: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.intp))

    @property
    def tree(self):
        return self.htree.tree

    def srank(self, v: int) -> int:
        return int(self.sranks[v])

    def memory_bytes(self) -> int:
        """Total bytes held by all generators (float64)."""
        total = 0
        for d in (self.leaf_basis, self.transfer):
            total += sum(a.nbytes for a in d.values())
        for d in (self.coupling, self.near_blocks):
            total += sum(a.nbytes for a in d.values())
        return total

    def compression_ratio(self) -> float:
        """Dense matrix bytes / compressed bytes."""
        n = self.tree.num_points
        dense = n * n * 8
        stored = self.memory_bytes()
        return dense / stored if stored else float("inf")

    def evaluation_flops(self, q: int) -> int:
        """Flops of one HMatrix-matrix multiply with Q = ``q`` columns.

        Counts 2*m*n*q per GEMM: near D blocks, leaf V (up + down),
        transfer E (up + down), and coupling B applications.
        """
        t = self.tree
        flops = 0
        for (i, j) in self.near_blocks:
            flops += 2 * t.node_size(i) * t.node_size(j) * q
        for _v, V in self.leaf_basis.items():
            flops += 2 * 2 * V.shape[0] * V.shape[1] * q
        for _v, E in self.transfer.items():
            flops += 2 * 2 * E.shape[0] * E.shape[1] * q
        for (_i, _j), B in self.coupling.items():
            flops += 2 * B.shape[0] * B.shape[1] * q
        return flops

    def validate(self) -> None:
        """Shape consistency of all generators; raises AssertionError."""
        t = self.tree
        for v, V in self.leaf_basis.items():
            assert t.is_leaf(v), f"leaf basis on interior node {v}"
            assert V.shape == (t.node_size(v), self.srank(v)), (
                f"leaf basis {v}: {V.shape} != ({t.node_size(v)}, {self.srank(v)})"
            )
        for v, E in self.transfer.items():
            assert not t.is_leaf(v), f"transfer on leaf node {v}"
            lc, rc = int(t.lchild[v]), int(t.rchild[v])
            assert E.shape == (self.srank(lc) + self.srank(rc), self.srank(v)), (
                f"transfer {v}: {E.shape}"
            )
        for (i, j), B in self.coupling.items():
            assert B.shape == (self.srank(i), self.srank(j)), f"coupling {(i, j)}"
        for (i, j), D in self.near_blocks.items():
            assert D.shape == (t.node_size(i), t.node_size(j)), f"near {(i, j)}"
