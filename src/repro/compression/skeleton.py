"""Bottom-up nested-basis skeletonization of the cluster tree.

Leaves are skeletonized by a column ID of the sampled far-field block
``K(samples, I_v)``; interior nodes skeletonize the union of their
children's skeletons, producing the transfer matrices that make the basis
*nested* (the defining property of H2). Every node's srank is adaptively
tuned to the requested block accuracy, exactly as in the paper's low-rank
approximation module.
"""

from __future__ import annotations

import numpy as np

from repro.compression.factors import Factors
from repro.compression.interp_decomp import interpolative_decomposition
from repro.htree.htree import HTree
from repro.kernels.base import Kernel
from repro.sampling.plan import SamplingPlan
from repro.utils.validation import require


def _node_sample_points(tree, plan: SamplingPlan, v: int, min_rows: int) -> np.ndarray:
    """Sample coordinates for node ``v``, topped up from ancestors if thin.

    The ID needs at least as many sample rows as the rank it may select;
    when a node's own sample list is shorter (tiny datasets), merge in the
    parent's samples that fall outside the node.
    """
    own = set(tree.node_point_indices(v).tolist())
    picked = [s for s in plan.for_node(v).tolist() if s not in own]
    u = v
    while len(picked) < min_rows and tree.parent[u] >= 0:
        u = int(tree.parent[u])
        extra = [s for s in plan.for_node(u).tolist()
                 if s not in own and s not in picked]
        picked.extend(extra)
    return tree.points[np.asarray(picked[: max(min_rows, len(picked))], dtype=np.intp)]


def skeletonize_tree(
    htree: HTree,
    kernel: Kernel,
    plan: SamplingPlan,
    bacc: float = 1e-5,
    max_rank: int = 256,
) -> Factors:
    """Build U/V (leaf bases), transfer matrices, couplings, and near blocks."""
    require(bacc > 0, "bacc must be positive")
    require(max_rank >= 1, "max_rank must be >= 1")
    tree = htree.tree
    points = tree.points

    needs_basis = set(htree.nodes_with_basis())
    factors = Factors(htree=htree)
    sranks = np.zeros(tree.num_nodes, dtype=np.intp)
    skeleton: dict[int, np.ndarray] = {}

    # Bottom-up: children before parents (post-order guarantees this).
    for v in tree.postorder():
        if v == 0 or v not in needs_basis:
            continue
        if tree.is_leaf(v):
            cand_idx = tree.node_point_indices(v)  # original order
        else:
            lc, rc = int(tree.lchild[v]), int(tree.rchild[v])
            cand_idx = np.concatenate([skeleton[lc], skeleton[rc]])

        min_rows = min(2 * max_rank, max(2 * len(cand_idx), 8))
        samples = _node_sample_points(tree, plan, v, min_rows)
        G = (kernel.block(samples, points[cand_idx]) if len(samples)
             else np.zeros((0, len(cand_idx))))
        decomp = interpolative_decomposition(G, bacc=bacc, max_rank=max_rank)

        skeleton[v] = cand_idx[decomp.skeleton]
        sranks[v] = decomp.rank
        if tree.is_leaf(v):
            factors.leaf_basis[v] = np.ascontiguousarray(decomp.interp.T)
        else:
            factors.transfer[v] = np.ascontiguousarray(decomp.interp.T)

    factors.skeleton = skeleton
    factors.sranks = sranks

    # Coupling blocks for far pairs: B_ij = K(sk(i), sk(j)).
    for i, j in htree.far_pairs():
        factors.coupling[(i, j)] = kernel.block(
            points[skeleton[i]], points[skeleton[j]]
        )

    # Near blocks stay exact: D_ij = K(I_i, I_j) in *tree order* so the
    # executor can index Y/W with contiguous slices.
    for i, j in htree.near_pairs():
        factors.near_blocks[(i, j)] = kernel.block(
            tree.node_points(i), tree.node_points(j)
        )
    return factors
