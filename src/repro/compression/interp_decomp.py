"""Interpolative decomposition (ID) with adaptive rank selection.

Given a matrix G (samples x candidate columns), a column ID selects r
*skeleton* columns J and an interpolation matrix P (r x m) with
``G ~= G[:, J] @ P`` and ``P[:, J] = I``. It is computed from a pivoted QR:
``G Pi = Q [R11 R12]`` gives ``P = [I | R11^{-1} R12] Pi^T`` and the rank r
is the smallest prefix of the R diagonal meeting the requested *block
accuracy* — the adaptive srank tuning of the paper's low-rank module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.utils.validation import require


@dataclass(frozen=True)
class InterpolativeDecomposition:
    """Result of a column ID.

    Attributes
    ----------
    skeleton:
        Column indices J (into the input matrix) of the r skeleton columns.
    interp:
        Interpolation matrix P of shape (r, m) with ``G ~= G[:, J] @ P``.
    rank:
        r = len(skeleton) — the block's srank.
    achieved_error:
        The pivot-decay estimate actually achieved (|R[r,r]| / |R[0,0]|,
        0.0 when the factorisation is exact).
    """

    skeleton: np.ndarray
    interp: np.ndarray
    rank: int
    achieved_error: float

    def reconstruct(self, G: np.ndarray) -> np.ndarray:
        """``G[:, J] @ P`` — the rank-r approximation of G."""
        return G[:, self.skeleton] @ self.interp


def _choose_rank(rdiag: np.ndarray, bacc: float, max_rank: int) -> int:
    """Smallest r with |R[r,r]| <= bacc * |R[0,0]|, clamped to [1, max_rank]."""
    scale = rdiag[0]
    if scale == 0.0:
        return 1  # zero matrix: keep a single (zero) skeleton column
    below = np.flatnonzero(rdiag <= bacc * scale)
    r = int(below[0]) if len(below) else len(rdiag)
    return int(np.clip(r, 1, max_rank))


def interpolative_decomposition(
    G: np.ndarray,
    bacc: float = 1e-5,
    max_rank: int = 256,
    rank: int | None = None,
) -> InterpolativeDecomposition:
    """Column ID of ``G`` with rank adapted to the block accuracy ``bacc``.

    Parameters
    ----------
    G:
        (s, m) sample block; rows are far-field samples, columns are the
        candidate points being skeletonized.
    bacc:
        Block approximation accuracy; the rank is grown until the pivoted-QR
        diagonal decays below ``bacc`` relative to the first pivot.
    max_rank:
        Hard rank cap (the paper's maximum rank, default 256).
    rank:
        Fixed rank override (used by tests and ablations); bypasses bacc.
    """
    G = np.ascontiguousarray(G, dtype=np.float64)
    require(G.ndim == 2, "G must be 2-D")
    s, m = G.shape
    require(m >= 1, "G must have at least one column")

    if s == 0:
        # No far-field constraints: any single column is a valid skeleton.
        interp = np.zeros((1, m))
        interp[0, 0] = 1.0
        return InterpolativeDecomposition(
            skeleton=np.array([0], dtype=np.intp), interp=interp,
            rank=1, achieved_error=0.0,
        )

    # Pivoted QR: G[:, piv] = Q @ R with |diag(R)| non-increasing.
    _q, R, piv = scipy.linalg.qr(G, mode="economic", pivoting=True)
    rdiag = np.abs(np.diag(R))
    kmax = min(s, m)

    if rank is not None:
        require(rank >= 1, "rank must be >= 1")
        r = min(rank, kmax, max_rank)
    else:
        r = _choose_rank(rdiag[:kmax], bacc, min(max_rank, kmax))

    achieved = float(rdiag[r] / rdiag[0]) if (r < kmax and rdiag[0] > 0) else 0.0

    # P = [I | T] Pi^T with T = R11^{-1} R12 (triangular solve, not inverse).
    R11 = R[:r, :r]
    R12 = R[:r, r:m]
    if R12.size:
        # Guard against exactly-singular R11 (duplicate columns at the rank
        # boundary): fall back to least-squares.
        try:
            T = scipy.linalg.solve_triangular(R11, R12, lower=False)
        except scipy.linalg.LinAlgError:
            T = np.linalg.lstsq(R11, R12, rcond=None)[0]
        if not np.isfinite(T).all():
            T = np.linalg.lstsq(R11, R12, rcond=None)[0]
    else:
        T = np.zeros((r, 0))

    interp = np.empty((r, m))
    interp[:, piv[:r]] = np.eye(r)
    interp[:, piv[r:m]] = T
    skeleton = np.asarray(piv[:r], dtype=np.intp)
    return InterpolativeDecomposition(
        skeleton=skeleton, interp=interp, rank=r, achieved_error=achieved
    )
