"""Modular compression orchestrator.

Wires the four compression modules — tree construction, interaction
computation, sampling, low-rank approximation — with the separated inputs
the paper's Figure 3 shows: points feed tree construction; the admissibility
feeds interaction computation; points + CTree feed sampling; kernel + bacc
(+ sampling info + HTree) feed low-rank approximation. Each module's output
is exposed on the result object so callers (and the inspection-reuse logic)
can retain any subset.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.compression.factors import Factors
from repro.compression.skeleton import skeletonize_tree
from repro.htree.admissibility import Admissibility, make_admissibility
from repro.htree.htree import HTree, build_htree
from repro.kernels.base import Kernel, get_kernel
from repro.sampling.plan import SamplingPlan, build_sampling_plan
from repro.tree.build import build_cluster_tree
from repro.tree.cluster_tree import ClusterTree


@dataclass
class CompressionResult:
    """All structure information produced by modular compression."""

    tree: ClusterTree
    htree: HTree
    plan: SamplingPlan
    factors: Factors
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def sranks(self) -> np.ndarray:
        return self.factors.sranks


def compress(
    points,
    kernel: Kernel | str = "gaussian",
    structure: str | Admissibility = "h2-geometric",
    bacc: float = 1e-5,
    leaf_size: int = 64,
    max_rank: int = 256,
    sampling_size: int = 32,
    tree_method: str = "auto",
    seed=0,
    tree: ClusterTree | None = None,
    htree: HTree | None = None,
    plan: SamplingPlan | None = None,
    **structure_params,
) -> CompressionResult:
    """Run modular compression end to end.

    Pre-built ``tree`` / ``htree`` / ``plan`` may be supplied to skip the
    corresponding modules — this is exactly the reuse hook ``inspector_p2``
    relies on when only the kernel or bacc changed.
    """
    if isinstance(kernel, str):
        kernel = get_kernel(kernel)
    timings: dict[str, float] = {}

    t0 = time.perf_counter()
    if tree is None:
        tree = build_cluster_tree(points, leaf_size=leaf_size,
                                  method=tree_method, seed=seed)
    timings["tree_construction"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    if htree is None:
        adm = (structure if isinstance(structure, Admissibility)
               else make_admissibility(structure, **structure_params))
        htree = build_htree(tree, adm)
    timings["interaction_computation"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    if plan is None:
        plan = build_sampling_plan(tree, k=sampling_size, seed=seed)
    timings["sampling"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    factors = skeletonize_tree(htree, kernel, plan, bacc=bacc, max_rank=max_rank)
    timings["low_rank_approximation"] = time.perf_counter() - t0

    return CompressionResult(tree=tree, htree=htree, plan=plan,
                             factors=factors, timings=timings)
