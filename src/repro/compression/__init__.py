"""Low-rank approximation module: interpolative decomposition (ID) with
adaptive rank, nested-basis (H2) skeletonization, and the modular
compression orchestrator wiring tree construction, interaction computation,
sampling, and low-rank approximation together.
"""

from repro.compression.compressor import CompressionResult, compress
from repro.compression.factors import Factors
from repro.compression.interp_decomp import (
    InterpolativeDecomposition,
    interpolative_decomposition,
)
from repro.compression.skeleton import skeletonize_tree

__all__ = [
    "interpolative_decomposition",
    "InterpolativeDecomposition",
    "Factors",
    "skeletonize_tree",
    "compress",
    "CompressionResult",
]
