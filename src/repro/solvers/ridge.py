"""Kernel ridge regression with an HMatrix-compressed kernel.

The paper's Section 1 workload: ``(K + lam I) alpha = y`` solved
iteratively, with the O(N^2) kernel products replaced by HMatrix products.
The regularized system is a composed operator — ``K + lam * I`` built from
a :class:`~repro.api.operator.KernelOperator` — handed straight to CG (no
hand-rolled ``apply_A`` closure). Prediction on training points reuses the
same HMatrix; prediction on new points evaluates the (rectangular) kernel
block directly.
"""

from __future__ import annotations

import numpy as np

from repro.api.operator import KernelOperator, LinearOperator
from repro.api.plan import PlanConfig
from repro.api.policy import ExecutionPolicy
from repro.core.hmatrix import HMatrix
from repro.kernels.base import Kernel, get_kernel
from repro.solvers.cg import conjugate_gradient
from repro.utils.validation import check_points, require


class KernelRidgeRegression:
    """Kernel ridge regression: compress once, solve and predict fast.

    Parameters
    ----------
    kernel:
        Kernel instance or registered name.
    lam:
        Ridge regularization strength (adds ``lam * I`` to the kernel).
    structure, bacc, leaf_size, seed, **plan_kw:
        Inspection knobs, validated into a :class:`PlanConfig`.
    plan:
        A ready-made :class:`PlanConfig` (mutually exclusive with the loose
        knobs above).
    policy:
        :class:`ExecutionPolicy` bound to the kernel operator during the
        solve (defaults to the shared policy default).
    session:
        Optional :class:`~repro.api.session.Session`; when given,
        inspection routes through its plan cache, so refitting on the same
        points (e.g. a lambda sweep) skips phase-1 inspection.
    """

    def __init__(self, kernel: Kernel | str = "gaussian", lam: float = 1e-3,
                 structure: str = "h2-b", bacc: float = 1e-7,
                 leaf_size: int = 64, seed: int = 0, cg_tol: float = 1e-8,
                 cg_max_iter: int = 500, plan: PlanConfig | None = None,
                 policy: ExecutionPolicy | None = None,
                 session=None, **plan_kw):
        require(lam > 0, "lam must be positive")
        self.kernel = get_kernel(kernel) if isinstance(kernel, str) else kernel
        self.lam = float(lam)
        self.cg_tol = cg_tol
        self.cg_max_iter = cg_max_iter
        if plan is not None:
            if plan_kw:
                raise TypeError(
                    f"pass either plan= or loose inspection kwargs, not "
                    f"both (got plan and {sorted(plan_kw)})"
                )
            self.plan = plan
        else:
            self.plan = PlanConfig.from_kwargs(
                structure=structure, bacc=bacc, leaf_size=leaf_size,
                seed=seed, **plan_kw)
        self.policy = policy
        self.session = session
        self.hmatrix: HMatrix | None = None
        self.operator_: LinearOperator | None = None
        self.alpha_: np.ndarray | None = None
        self.X_: np.ndarray | None = None
        self.cg_result_ = None

    def fit(self, X, y) -> "KernelRidgeRegression":
        """Compress K(X, X) and solve ``(K + lam I) alpha = y`` with CG."""
        X = check_points(X, name="X")
        y = np.ascontiguousarray(y, dtype=np.float64)
        if y.shape[0] != len(X):
            raise ValueError(f"y has {y.shape[0]} rows, X has {len(X)}")
        self.X_ = X
        make = (self.session.operator if self.session is not None
                else KernelOperator.from_points)
        K = make(X, kernel=self.kernel, plan=self.plan,
                 policy=self.policy).materialize()
        self.hmatrix = K.hmatrix
        self.operator_ = K.shifted(self.lam)

        self.cg_result_ = conjugate_gradient(
            self.operator_, y, tol=self.cg_tol, max_iter=self.cg_max_iter
        )
        self.alpha_ = self.cg_result_.x
        return self

    def predict(self, X_new) -> np.ndarray:
        """``K(X_new, X_train) @ alpha`` (exact rectangular kernel block)."""
        if self.alpha_ is None:
            raise RuntimeError("fit() must be called before predict()")
        X_new = check_points(X_new, name="X_new")
        return self.kernel.block(X_new, self.X_) @ self.alpha_

    def training_residual(self, y) -> float:
        """``||(K~ + lam I) alpha - y|| / ||y||`` on the training set."""
        if self.alpha_ is None:
            raise RuntimeError("fit() must be called before residuals")
        y = np.asarray(y, dtype=np.float64)
        r = self.operator_ @ self.alpha_ - y
        return float(np.linalg.norm(r) / max(np.linalg.norm(y), 1e-300))
