"""Spectral and trace estimators driven by HMatrix products.

Both estimators accept the operator as a bare mat-vec callable (the legacy
contract) or as anything with ``@`` — a composed
:class:`~repro.api.operator.LinearOperator`, an HMatrix, or an ndarray —
and ``n`` may be omitted for operators that carry their ``shape``.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.api.operator import LinearOperator, as_apply
from repro.utils.rng import as_rng
from repro.utils.validation import require


def _operator_dim(A, n: int | None) -> int:
    if n is None:
        shape = getattr(A, "shape", None)
        if shape is None:
            raise ValueError(
                "n is required when the operator does not expose .shape"
            )
        n = int(shape[0])
    return n


def power_iteration(
    apply_A: Callable[[np.ndarray], np.ndarray] | LinearOperator,
    n: int | None = None,
    tol: float = 1e-6,
    max_iter: int = 200,
    seed=0,
) -> tuple[float, np.ndarray]:
    """Dominant eigenvalue (by magnitude) and eigenvector of a symmetric
    operator (mat-vec callable or composed operator)."""
    n = _operator_dim(apply_A, n)
    apply_A = as_apply(apply_A)
    require(n >= 1, "n must be >= 1")
    rng = as_rng(seed)
    v = rng.normal(size=n)
    v /= np.linalg.norm(v)
    lam = 0.0
    for _ in range(max_iter):
        w = apply_A(v)
        norm = float(np.linalg.norm(w))
        if norm == 0.0:
            return 0.0, v
        w /= norm
        lam_new = float(w @ apply_A(w))
        if abs(lam_new - lam) <= tol * max(abs(lam_new), 1.0):
            return lam_new, w
        lam, v = lam_new, w
    return lam, v


def estimate_trace(
    apply_A: Callable[[np.ndarray], np.ndarray] | LinearOperator,
    n: int | None = None,
    num_probes: int = 32,
    seed=0,
) -> float:
    """Hutchinson trace estimator with Rademacher probes.

    One batched HMatrix-matrix product evaluates all probes at once —
    exactly the "multiply by a large matrix" usage the paper amortises the
    inspector against.
    """
    n = _operator_dim(apply_A, n)
    apply_A = as_apply(apply_A)
    require(num_probes >= 1, "num_probes must be >= 1")
    rng = as_rng(seed)
    Z = rng.choice((-1.0, 1.0), size=(n, num_probes))
    AZ = apply_A(Z)
    return float(np.einsum("ij,ij->", Z, AZ) / num_probes)
