"""Spectral and trace estimators driven by HMatrix products."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import require


def power_iteration(
    apply_A: Callable[[np.ndarray], np.ndarray],
    n: int,
    tol: float = 1e-6,
    max_iter: int = 200,
    seed=0,
) -> tuple[float, np.ndarray]:
    """Dominant eigenvalue (by magnitude) and eigenvector of a symmetric
    operator given as a mat-vec callable."""
    require(n >= 1, "n must be >= 1")
    rng = as_rng(seed)
    v = rng.normal(size=n)
    v /= np.linalg.norm(v)
    lam = 0.0
    for _ in range(max_iter):
        w = apply_A(v)
        norm = float(np.linalg.norm(w))
        if norm == 0.0:
            return 0.0, v
        w /= norm
        lam_new = float(w @ apply_A(w))
        if abs(lam_new - lam) <= tol * max(abs(lam_new), 1.0):
            return lam_new, w
        lam, v = lam_new, w
    return lam, v


def estimate_trace(
    apply_A: Callable[[np.ndarray], np.ndarray],
    n: int,
    num_probes: int = 32,
    seed=0,
) -> float:
    """Hutchinson trace estimator with Rademacher probes.

    One batched HMatrix-matrix product evaluates all probes at once —
    exactly the "multiply by a large matrix" usage the paper amortises the
    inspector against.
    """
    require(num_probes >= 1, "num_probes must be >= 1")
    rng = as_rng(seed)
    Z = rng.choice((-1.0, 1.0), size=(n, num_probes))
    AZ = apply_A(Z)
    return float(np.einsum("ij,ij->", Z, AZ) / num_probes)
