"""Conjugate gradient on a black-box SPD operator.

The operator may be a bare mat-vec callable (the legacy contract) or
anything with ``@`` — a composed :class:`~repro.api.operator.LinearOperator`
such as ``K + lam * N * I``, an HMatrix, or an ndarray. Composition
replaces the hand-rolled ``apply_A`` closures solvers used to build.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.api.operator import LinearOperator, as_apply
from repro.utils.validation import require


@dataclass
class CGResult:
    """Solution plus convergence diagnostics."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    residual_history: list[float]


def conjugate_gradient(
    apply_A: Callable[[np.ndarray], np.ndarray] | LinearOperator,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iter: int = 500,
) -> CGResult:
    """Solve ``A x = b`` for SPD ``A`` (mat-vec callable or operator).

    Supports multiple right-hand sides: ``b`` of shape (N,) or (N, Q) —
    the HMatrix product is a matrix-matrix multiply either way, which is
    exactly the workload the paper's evaluation phase accelerates.
    Convergence: ``||r||_F <= tol * ||b||_F``.
    """
    apply_A = as_apply(apply_A)
    b = np.ascontiguousarray(b, dtype=np.float64)
    require(tol > 0, "tol must be positive")
    require(max_iter >= 1, "max_iter must be >= 1")
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    if x.shape != b.shape:
        raise ValueError(f"x0 shape {x.shape} != b shape {b.shape}")

    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return CGResult(x=np.zeros_like(b), iterations=0, residual_norm=0.0,
                        converged=True, residual_history=[0.0])

    r = b - apply_A(x)
    p = r.copy()
    rs = float(np.vdot(r, r))
    history = [float(np.linalg.norm(r))]
    for it in range(1, max_iter + 1):
        Ap = apply_A(p)
        pAp = float(np.vdot(p, Ap))
        if pAp <= 0:
            # Operator numerically not SPD (e.g. aggressive compression):
            # stop rather than diverge.
            return CGResult(x=x, iterations=it - 1,
                            residual_norm=history[-1],
                            converged=False, residual_history=history)
        alpha = rs / pAp
        x = x + alpha * p
        r = r - alpha * Ap
        rnorm = float(np.linalg.norm(r))
        history.append(rnorm)
        if rnorm <= tol * bnorm:
            return CGResult(x=x, iterations=it, residual_norm=rnorm,
                            converged=True, residual_history=history)
        rs_new = float(np.vdot(r, r))
        p = r + (rs_new / rs) * p
        rs = rs_new
    return CGResult(x=x, iterations=max_iter, residual_norm=history[-1],
                    converged=False, residual_history=history)
