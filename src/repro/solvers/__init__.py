"""Iterative solvers and estimators built on HMatrix products.

The paper's motivating applications multiply the kernel matrix repeatedly:
Gaussian ridge regression inside a direct/iterative solver, multigrid,
Schur-complement methods. This package provides those consumers:

* :func:`conjugate_gradient` — CG on any SPD operator;
* :class:`KernelRidgeRegression` — fit/predict kernel ridge regression with
  an HMatrix-compressed kernel;
* :func:`power_iteration` / :func:`estimate_trace` — spectral-norm and
  Hutchinson trace estimation via HMatrix products.
"""

from repro.solvers.cg import CGResult, conjugate_gradient
from repro.solvers.estimators import estimate_trace, power_iteration
from repro.solvers.ridge import KernelRidgeRegression

__all__ = [
    "conjugate_gradient",
    "CGResult",
    "KernelRidgeRegression",
    "power_iteration",
    "estimate_trace",
]
