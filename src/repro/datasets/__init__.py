"""Dataset generators reproducing the paper's Table 1 roster.

The paper evaluates on 8 high-dimensional UCI machine-learning point sets
(problem IDs 1-8) and 5 low-dimensional scientific point sets (IDs 9-13).
The UCI data is not redistributable/available offline, so each ML dataset is
replaced by a synthetic generator matched on dimension and cluster geometry
(see DESIGN.md section 2); the scientific sets (grid, random, dino, sunflower,
unit) are generated exactly as described by their names.
"""

from repro.datasets.geometric import (
    dino_points,
    grid_points,
    random_points,
    sunflower_points,
    unit_sphere_points,
)
from repro.datasets.registry import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    load_dataset,
    table1_rows,
)
from repro.datasets.synthetic import clustered_gaussian_points, manifold_points

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "table1_rows",
    "grid_points",
    "random_points",
    "dino_points",
    "sunflower_points",
    "unit_sphere_points",
    "clustered_gaussian_points",
    "manifold_points",
]
