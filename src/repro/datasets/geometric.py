"""Low-dimensional scientific point sets (Table 1, problem IDs 9-13)."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import require


def grid_points(n: int, d: int = 2) -> np.ndarray:
    """Regular d-dimensional lattice with roughly ``n`` points in [0, 1]^d.

    Matches the paper's ``grid`` dataset (d = 2). The side length is the
    d-th root of n rounded up, and the lattice is truncated back to exactly
    ``n`` points so callers get the size they asked for.
    """
    require(n > 0, "n must be positive")
    require(d in (1, 2, 3), f"grid supports d in {{1,2,3}}, got {d}")
    side = int(np.ceil(n ** (1.0 / d)))
    axes = [np.linspace(0.0, 1.0, side) for _ in range(d)]
    mesh = np.meshgrid(*axes, indexing="ij")
    pts = np.stack([m.ravel() for m in mesh], axis=1)
    return np.ascontiguousarray(pts[:n])


def random_points(n: int, d: int = 2, seed=None) -> np.ndarray:
    """Uniform random points in the unit cube (the paper's ``random``, d = 2)."""
    require(n > 0, "n must be positive")
    rng = as_rng(seed)
    return rng.random((n, d))


def dino_points(n: int, seed=None) -> np.ndarray:
    """A noisy closed 3-D parametric curve, standing in for the ``dino`` surface.

    The paper's dino set is a 3-D surface scan (d = 3). We sample a trefoil
    knot thickened with small Gaussian noise: a 1-D manifold embedded in 3-D,
    giving the strongly non-uniform, low-intrinsic-dimension geometry that
    makes hierarchical compression effective on surface scans.
    """
    require(n > 0, "n must be positive")
    rng = as_rng(seed)
    t = rng.random(n) * 2.0 * np.pi
    x = np.sin(t) + 2.0 * np.sin(2.0 * t)
    y = np.cos(t) - 2.0 * np.cos(2.0 * t)
    z = -np.sin(3.0 * t)
    pts = np.stack([x, y, z], axis=1)
    pts += rng.normal(scale=0.02, size=pts.shape)
    return pts


def sunflower_points(n: int, seed=None) -> np.ndarray:
    """Vogel sunflower spiral in 2-D (the paper's ``sunflower`` set).

    Points at radius sqrt(k) and angle k * golden angle — a classical
    quasi-uniform but strongly center-dense distribution.
    """
    require(n > 0, "n must be positive")
    golden = np.pi * (3.0 - np.sqrt(5.0))
    k = np.arange(1, n + 1, dtype=np.float64)
    r = np.sqrt(k / n)
    theta = k * golden
    return np.stack([r * np.cos(theta), r * np.sin(theta)], axis=1)


def unit_sphere_points(n: int, d: int = 2, seed=None) -> np.ndarray:
    """Points on the unit circle/sphere (the paper's ``unit`` set, d = 2).

    d is the *ambient* dimension; points lie on the (d-1)-sphere, so the
    intrinsic dimension is d - 1 — the classic case where weak admissibility
    (HSS) still compresses well.
    """
    require(n > 0, "n must be positive")
    require(d >= 2, "unit sphere needs ambient d >= 2")
    rng = as_rng(seed)
    g = rng.normal(size=(n, d))
    norms = np.linalg.norm(g, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return g / norms
