"""Table 1 dataset registry.

Each entry records the paper's N and d and a generator producing a synthetic
point set with the same dimension and a matching geometry class. ``scale``
lets experiments shrink N uniformly (pure-Python compression on the paper's
full 100k-point sets would dominate run time without changing any relative
comparison — every tool in a benchmark sees the same points).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from repro.datasets.geometric import (
    dino_points,
    grid_points,
    random_points,
    sunflower_points,
    unit_sphere_points,
)
from repro.datasets.synthetic import clustered_gaussian_points, manifold_points
from repro.utils.validation import require


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table 1 plus the generator reproducing its geometry."""

    problem_id: int
    name: str
    paper_n: int
    dim: int
    kind: str  # "ml" (UCI, high-dim) or "scientific" (low-dim)
    generator: Callable[..., np.ndarray] = field(repr=False)

    def generate(self, n: int | None = None, seed: int = 0) -> np.ndarray:
        """Generate ``n`` points (default: the paper's N) with this geometry."""
        n = self.paper_n if n is None else int(n)
        require(n > 0, "n must be positive")
        return self.generator(n=n, seed=seed)


def _ml(n_clusters: int, intrinsic: int):
    def gen(n: int, d: int, seed=0) -> np.ndarray:
        return clustered_gaussian_points(
            n, d, n_clusters=n_clusters, intrinsic_dim=intrinsic, seed=seed
        )

    return gen


_SPECS = [
    # --- UCI machine-learning point sets (high dimensional) -----------------
    DatasetSpec(1, "covtype", 100_000, 54, "ml",
                lambda n, seed=0: _ml(7, 10)(n, 54, seed)),
    DatasetSpec(2, "higgs", 100_000, 28, "ml",
                lambda n, seed=0: _ml(2, 8)(n, 28, seed)),
    DatasetSpec(3, "mnist", 60_000, 780, "ml",
                lambda n, seed=0: manifold_points(n, 780, intrinsic_dim=10, seed=seed)),
    DatasetSpec(4, "susy", 100_000, 18, "ml",
                lambda n, seed=0: _ml(2, 6)(n, 18, seed)),
    DatasetSpec(5, "letter", 20_000, 16, "ml",
                lambda n, seed=0: _ml(26, 6)(n, 16, seed)),
    DatasetSpec(6, "pen", 11_000, 16, "ml",
                lambda n, seed=0: _ml(10, 4)(n, 16, seed)),
    DatasetSpec(7, "hepmass", 100_000, 28, "ml",
                lambda n, seed=0: _ml(2, 8)(n, 28, seed)),
    DatasetSpec(8, "gas", 14_000, 129, "ml",
                lambda n, seed=0: _ml(6, 8)(n, 129, seed)),
    # --- scientific point sets (low dimensional) ----------------------------
    DatasetSpec(9, "grid", 102_000, 2, "scientific",
                lambda n, seed=0: grid_points(n, 2)),
    DatasetSpec(10, "random", 66_000, 2, "scientific",
                lambda n, seed=0: random_points(n, 2, seed=seed)),
    DatasetSpec(11, "dino", 80_000, 3, "scientific",
                lambda n, seed=0: dino_points(n, seed=seed)),
    DatasetSpec(12, "sunflower", 80_000, 2, "scientific",
                lambda n, seed=0: sunflower_points(n, seed=seed)),
    DatasetSpec(13, "unit", 32_000, 2, "scientific",
                lambda n, seed=0: unit_sphere_points(n, 2, seed=seed)),
]

DATASETS: dict[str, DatasetSpec] = {s.name: s for s in _SPECS}


def dataset_names(kind: str | None = None) -> list[str]:
    """Names in problem-ID order, optionally filtered to 'ml' or 'scientific'."""
    return [s.name for s in _SPECS if kind is None or s.kind == kind]


def load_dataset(name: str, n: int | None = None, seed: int = 0) -> np.ndarray:
    """Generate the named dataset's synthetic equivalent."""
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; available: {dataset_names()}")
    return DATASETS[name].generate(n=n, seed=seed)


def table1_rows() -> list[dict]:
    """Rows regenerating the paper's Table 1 (ID, name, N, d)."""
    return [
        {"id": s.problem_id, "data": s.name, "N": s.paper_n, "d": s.dim,
         "kind": s.kind}
        for s in _SPECS
    ]
