"""Synthetic high-dimensional point sets standing in for the UCI datasets.

Hierarchical compression quality depends on the *geometry* of the point set
(ambient dimension, intrinsic dimension, cluster structure), not on the
semantic labels, so each UCI dataset is replaced by a generator matched on
those properties: a mixture of anisotropic Gaussian clusters living near a
low-dimensional manifold, with per-dataset ambient d and cluster counts.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import require


def clustered_gaussian_points(
    n: int,
    d: int,
    n_clusters: int = 16,
    intrinsic_dim: int | None = None,
    spread: float = 0.15,
    seed=None,
) -> np.ndarray:
    """Mixture of anisotropic Gaussians embedded near a low-dim subspace.

    Cluster centers are drawn in a random ``intrinsic_dim``-dimensional
    subspace of R^d and points scatter around them with per-cluster random
    covariance; this mimics the cluster structure of real ML feature spaces
    that makes them compressible despite large ambient d.
    """
    require(n > 0 and d > 0, "n and d must be positive")
    require(n_clusters > 0, "n_clusters must be positive")
    rng = as_rng(seed)
    kdim = min(intrinsic_dim or max(2, d // 8), d)
    basis, _ = np.linalg.qr(rng.normal(size=(d, kdim)))
    centers = rng.normal(scale=2.0, size=(n_clusters, kdim)) @ basis.T
    assignments = rng.integers(0, n_clusters, size=n)
    pts = np.empty((n, d))
    for c in range(n_clusters):
        mask = assignments == c
        m = int(mask.sum())
        if m == 0:
            continue
        # Anisotropic per-cluster scatter: most variance inside the manifold.
        scales = spread * rng.uniform(0.3, 1.0, size=d)
        local = rng.normal(size=(m, kdim)) @ (basis.T * 1.0)
        noise = rng.normal(size=(m, d)) * scales
        pts[mask] = centers[c] + spread * local + 0.2 * noise
    return pts


def manifold_points(n: int, d: int, intrinsic_dim: int = 2, seed=None) -> np.ndarray:
    """Smooth random manifold embedded in R^d (swiss-roll generalisation).

    Latent coordinates are pushed through random sinusoidal features, giving a
    curved ``intrinsic_dim``-dimensional sheet — the geometry of image-like
    datasets (e.g. mnist) whose pixel vectors concentrate near such sheets.
    """
    require(n > 0 and d > 0, "n and d must be positive")
    require(1 <= intrinsic_dim <= d, "intrinsic_dim must lie in [1, d]")
    rng = as_rng(seed)
    latent = rng.random((n, intrinsic_dim)) * 2.0 * np.pi
    freqs = rng.normal(scale=1.0, size=(intrinsic_dim, d))
    phases = rng.random(d) * 2.0 * np.pi
    pts = np.sin(latent @ freqs + phases)
    pts += rng.normal(scale=0.01, size=pts.shape)
    return pts
