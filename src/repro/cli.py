"""Command-line interface: ``python -m repro <command>``.

Mirrors the paper's inspector/executor workflow as a tool:

* ``inspect``  — points in, ``hmat.npz`` out (compression + structure
  analysis + codegen), optionally saving the reusable p1 artifacts;
* ``evaluate`` — load an ``hmat.npz``, multiply with a dense matrix file
  (or random W) under an execution policy (``--order``, ``--threads``,
  ``--q-chunk``), write/report Y;
* ``info``     — print the structural summary of a stored HMatrix;
* ``datasets`` — regenerate Table 1 / emit a synthetic dataset to .npy.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.api.plan import PlanConfig
from repro.api.policy import VALID_BACKENDS, VALID_ORDERS, resolve_policy
from repro.core.executor import Executor
from repro.core.io import (
    load_hmatrix,
    load_inspection_p1,
    save_hmatrix,
    save_inspection_p1,
)
from repro.datasets.registry import dataset_names, load_dataset, table1_rows
from repro.kernels.base import get_kernel


def _load_points(spec: str, n: int | None, seed: int) -> np.ndarray:
    """``spec`` is either a dataset name from Table 1 or a .npy path."""
    if spec in dataset_names():
        return load_dataset(spec, n=n, seed=seed)
    return np.load(spec)


def _add_inspector_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--structure", default="h2-geometric",
                   choices=["h2-geometric", "hss", "h2-b"],
                   help="HMatrix structure / admissibility flavour")
    p.add_argument("--tau", type=float, default=0.65,
                   help="geometric admissibility parameter")
    p.add_argument("--budget", type=float, default=0.03,
                   help="GOFMM-style budget (h2-b only)")
    p.add_argument("--bacc", type=float, default=1e-5,
                   help="block approximation accuracy")
    p.add_argument("--leaf-size", type=int, default=64)
    p.add_argument("--max-rank", type=int, default=256)
    p.add_argument("--sampling-size", type=int, default=32)
    p.add_argument("--kernel", default="gaussian")
    p.add_argument("--bandwidth", type=float, default=5.0)
    p.add_argument("--seed", type=int, default=0)


def _make_kernel(args):
    if args.kernel in ("gaussian", "laplace", "matern32"):
        return get_kernel(args.kernel, bandwidth=args.bandwidth)
    return get_kernel(args.kernel)


def _make_plan(args) -> PlanConfig:
    return PlanConfig(structure=args.structure, tau=args.tau,
                      budget=args.budget, bacc=args.bacc,
                      leaf_size=args.leaf_size, max_rank=args.max_rank,
                      sampling_size=args.sampling_size, seed=args.seed)


def _add_policy_args(p: argparse.ArgumentParser) -> None:
    """Execution-policy flags (resolve against the shared default)."""
    p.add_argument("--order", default=None, choices=list(VALID_ORDERS),
                   help="evaluation engine/order (default: batched)")
    p.add_argument("--backend", default=None, choices=list(VALID_BACKENDS),
                   help="execution backend: in-process threads (default) "
                        "or the shared-memory process pool")
    p.add_argument("--threads", type=int, default=None,
                   help="thread-pool workers for the per-block code")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes for --backend process "
                        "(default: cpu count)")
    p.add_argument("--q-chunk", type=int, default=None,
                   help="streaming panel width (columns per pass)")


def cmd_inspect(args) -> int:
    points = _load_points(args.points, args.n, args.seed)
    kernel = _make_kernel(args)
    insp = _make_plan(args).to_inspector()

    t0 = time.perf_counter()
    if args.reuse_p1:
        p1 = load_inspection_p1(args.reuse_p1)
        print(f"reusing phase-1 inspection from {args.reuse_p1}")
    else:
        p1 = insp.run_p1(points)
    H = insp.run_p2(p1, kernel)
    dt = time.perf_counter() - t0

    save_hmatrix(H, args.output)
    if args.save_p1:
        save_inspection_p1(p1, args.save_p1)
        print(f"phase-1 artifacts -> {args.save_p1}")
    s = H.summary()
    print(f"inspected N={s['N']} ({s['structure']}) in {dt:.2f}s -> "
          f"{args.output}")
    print(f"  sranks: mean {s['mean_srank']:.1f}, max {s['max_srank']}; "
          f"memory {s['memory_mb']:.2f} MiB "
          f"(ratio {s['compression_ratio']:.1f}x)")
    return 0


def cmd_evaluate(args) -> int:
    H = load_hmatrix(args.hmatrix)
    if args.w:
        W = np.load(args.w)
    else:
        W = np.random.default_rng(args.seed).random((H.dim, args.q))
    policy = resolve_policy(order=args.order, num_threads=args.threads,
                            q_chunk=args.q_chunk, backend=args.backend,
                            num_workers=args.workers)
    with Executor(policy=policy) as ex:
        t0 = time.perf_counter()
        Y = ex.matmul(H, W)
        dt = time.perf_counter() - t0
    gf = H.evaluation_flops(W.shape[1] if W.ndim == 2 else 1) / dt / 1e9
    workers = ""
    if policy.backend == "process":
        w = "auto" if policy.num_workers is None else policy.num_workers
        workers = f", workers={w}"
    print(f"evaluated Y = H @ W  (N={H.dim}, Q="
          f"{W.shape[1] if W.ndim == 2 else 1}, order={policy.order}, "
          f"backend={policy.backend}{workers}"
          f"{f', threads={policy.num_threads}' if policy.num_threads else ''}"
          f") in {dt:.3f}s ({gf:.2f} GF/s)")
    if args.output:
        np.save(args.output, Y)
        print(f"Y -> {args.output}")
    else:
        print(f"||Y||_F = {np.linalg.norm(Y):.6e}")
    return 0


def cmd_info(args) -> int:
    H = load_hmatrix(args.hmatrix)
    for key, value in H.summary().items():
        print(f"{key:20s} {value}")
    if args.source:
        print("\n--- generated evaluation code ---")
        print(H.evaluator.source)
    return 0


def cmd_datasets(args) -> int:
    if args.emit:
        pts = load_dataset(args.emit, n=args.n, seed=args.seed)
        out = args.output or f"{args.emit}.npy"
        np.save(out, pts)
        print(f"{args.emit}: {pts.shape} -> {out}")
        return 0
    print(f"{'ID':>3} {'data':>10} {'N':>8} {'d':>4} {'kind':>11}")
    for row in table1_rows():
        print(f"{row['id']:>3} {row['data']:>10} {row['N']:>8} "
              f"{row['d']:>4} {row['kind']:>11}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MatRox reproduction: inspector-executor HMatrix tool",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("inspect", help="compress points into an HMatrix")
    p.add_argument("points", help="Table 1 dataset name or .npy point file")
    p.add_argument("-o", "--output", default="hmat.npz")
    p.add_argument("-n", type=int, default=None,
                   help="point count for named datasets")
    p.add_argument("--save-p1", default=None,
                   help="also store reusable phase-1 artifacts here")
    p.add_argument("--reuse-p1", default=None,
                   help="load phase-1 artifacts instead of recomputing")
    _add_inspector_args(p)
    p.set_defaults(fn=cmd_inspect)

    p = sub.add_parser("evaluate", help="multiply a stored HMatrix")
    p.add_argument("hmatrix", help="hmat.npz from 'inspect'")
    p.add_argument("--w", default=None, help=".npy right-hand matrix")
    p.add_argument("-q", type=int, default=16,
                   help="random W columns when --w is not given")
    p.add_argument("-o", "--output", default=None, help="store Y as .npy")
    p.add_argument("--seed", type=int, default=0)
    _add_policy_args(p)
    p.set_defaults(fn=cmd_evaluate)

    p = sub.add_parser("info", help="summarise a stored HMatrix")
    p.add_argument("hmatrix")
    p.add_argument("--source", action="store_true",
                   help="print the generated evaluation code")
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("datasets", help="list Table 1 / emit a dataset")
    p.add_argument("--emit", default=None, help="dataset name to generate")
    p.add_argument("-n", type=int, default=None)
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_datasets)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
