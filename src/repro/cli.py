"""Command-line interface: ``python -m repro <command>``.

Mirrors the paper's inspector/executor workflow as a tool:

* ``inspect``  — points in, ``hmat.npz`` out (compression + structure
  analysis + codegen), optionally saving the reusable p1 artifacts;
* ``evaluate`` — load an ``hmat.npz``, multiply with a dense matrix file
  (or random W) under an execution policy (``--order``, ``--threads``,
  ``--q-chunk``; ``--order auto`` resolves via the profile-guided
  autotuner, persisting profiles in ``--store``), write/report Y;
* ``tune``     — measure the execution-policy grid for a stored HMatrix
  at the given RHS widths and record
  :class:`~repro.tuning.TuningProfile` artifacts (``--store``);
* ``compile``  — inspect point sets into a durable, integrity-checked
  :class:`~repro.api.store.PlanStore` directory (compile once…);
* ``serve``    — replay a JSON request file through a
  :class:`~repro.api.service.KernelService` warm-started from a store
  (…serve forever); ``--expect-warm`` fails if any inspection ran;
  ``--manifest`` writes a schema-validated
  :class:`~repro.observability.RunManifest` at close;
* ``server``   — run the network-facing multi-tenant kernel server
  (:class:`~repro.net.server.KernelServer`): JSON-over-HTTP
  compile/matmul/stats endpoints with token auth, per-tenant PlanStore
  roots, quotas, a JSONL audit log, and SIGTERM-graceful drain;
* ``client``   — talk to a running server from the shell
  (``compile``/``matmul``/``stats``/``metrics``);
* ``stats``    — offline inventory of a PlanStore directory, as
  ``/metrics``-style text or JSON (tolerates rot and version skew);
  ``--tenant`` scopes it to one tenant of a server root;
* ``gc``       — age/version-based PlanStore eviction with
  reclaimed-byte reporting (``--dry-run`` previews);
* ``info``     — print the structural summary of a stored HMatrix;
* ``datasets`` — regenerate Table 1 / emit a synthetic dataset to .npy.

The request-file format consumed by ``compile --requests``/``serve``::

    {
      "datasets": {
        "<points_id>": {"points": "<Table-1 name or .npy path>",
                         "n": 1000, "kernel": "gaussian",
                         "bandwidth": 5.0, "leaf_size": 32, ...}
      },
      "requests": [
        {"points_id": "<points_id>", "q": 4, "seed": 0}, ...
      ]
    }

``datasets`` entries accept the same inspector knobs as the ``inspect``
flags (structure/tau/budget/bacc/leaf_size/max_rank/sampling_size/
tree_method/seed); compiling and serving from the *same file* guarantees
the store keys match.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.api.plan import PlanConfig
from repro.api.policy import VALID_BACKENDS, VALID_ORDERS, resolve_policy
from repro.core.executor import Executor
from repro.core.io import (
    load_hmatrix,
    load_inspection_p1,
    save_hmatrix,
    save_inspection_p1,
)
from repro.datasets.registry import dataset_names, load_dataset, table1_rows
from repro.kernels.base import get_kernel


def _load_points(spec: str, n: int | None, seed: int) -> np.ndarray:
    """``spec`` is either a dataset name from Table 1 or a .npy path."""
    if spec in dataset_names():
        return load_dataset(spec, n=n, seed=seed)
    return np.load(spec)


def _add_inspector_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--structure", default="h2-geometric",
                   choices=["h2-geometric", "hss", "h2-b"],
                   help="HMatrix structure / admissibility flavour")
    p.add_argument("--tau", type=float, default=0.65,
                   help="geometric admissibility parameter")
    p.add_argument("--budget", type=float, default=0.03,
                   help="GOFMM-style budget (h2-b only)")
    p.add_argument("--bacc", type=float, default=1e-5,
                   help="block approximation accuracy")
    p.add_argument("--leaf-size", type=int, default=64)
    p.add_argument("--max-rank", type=int, default=256)
    p.add_argument("--sampling-size", type=int, default=32)
    p.add_argument("--kernel", default="gaussian")
    p.add_argument("--bandwidth", type=float, default=5.0)
    p.add_argument("--seed", type=int, default=0)


def _make_kernel(args):
    if args.kernel in ("gaussian", "laplace", "matern32"):
        return get_kernel(args.kernel, bandwidth=args.bandwidth)
    return get_kernel(args.kernel)


def _make_plan(args) -> PlanConfig:
    return PlanConfig(structure=args.structure, tau=args.tau,
                      budget=args.budget, bacc=args.bacc,
                      leaf_size=args.leaf_size, max_rank=args.max_rank,
                      sampling_size=args.sampling_size, seed=args.seed)


def _add_policy_args(p: argparse.ArgumentParser) -> None:
    """Execution-policy flags (resolve against the shared default)."""
    p.add_argument("--order", default=None, choices=list(VALID_ORDERS),
                   help="evaluation engine/order (default: batched; "
                        "'auto' resolves via the profile-guided autotuner)")
    p.add_argument("--backend", default=None, choices=list(VALID_BACKENDS),
                   help="execution backend: in-process threads (default) "
                        "or the shared-memory process pool")
    p.add_argument("--threads", type=int, default=None,
                   help="thread-pool workers for the per-block code")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes for --backend process "
                        "(default: cpu count)")
    p.add_argument("--q-chunk", type=int, default=None,
                   help="streaming panel width (columns per pass)")


def cmd_inspect(args) -> int:
    points = _load_points(args.points, args.n, args.seed)
    kernel = _make_kernel(args)
    insp = _make_plan(args).to_inspector()

    t0 = time.perf_counter()
    if args.reuse_p1:
        p1 = load_inspection_p1(args.reuse_p1)
        print(f"reusing phase-1 inspection from {args.reuse_p1}")
    else:
        p1 = insp.run_p1(points)
    H = insp.run_p2(p1, kernel)
    dt = time.perf_counter() - t0

    save_hmatrix(H, args.output)
    if args.save_p1:
        save_inspection_p1(p1, args.save_p1)
        print(f"phase-1 artifacts -> {args.save_p1}")
    s = H.summary()
    print(f"inspected N={s['N']} ({s['structure']}) in {dt:.2f}s -> "
          f"{args.output}")
    print(f"  sranks: mean {s['mean_srank']:.1f}, max {s['max_srank']}; "
          f"memory {s['memory_mb']:.2f} MiB "
          f"(ratio {s['compression_ratio']:.1f}x)")
    return 0


def cmd_evaluate(args) -> int:
    from repro.api.store import PlanStore

    H = load_hmatrix(args.hmatrix)
    W = (np.load(args.w) if args.w
         else np.random.default_rng(args.seed).random((H.dim, args.q)))
    policy = resolve_policy(order=args.order, num_threads=args.threads,
                            q_chunk=args.q_chunk, backend=args.backend,
                            num_workers=args.workers)
    store = PlanStore(args.store) if getattr(args, "store", None) else None
    with Executor(policy=policy, store=store) as ex:
        t0 = time.perf_counter()
        Y = ex.matmul(H, W)
        dt = time.perf_counter() - t0
        if policy.is_auto:
            # Report the policy the tuner actually ran (and where the
            # profile came from), not the unresolved "auto".
            tuner = ex.autotuner
            q = W.shape[1] if W.ndim == 2 else 1
            prof = tuner.profile_for(H, q, policy)
            policy = prof.best_policy()
            print(f"auto policy -> order={policy.order}, "
                  f"backend={policy.backend}, "
                  f"threads={policy.num_threads}, "
                  f"workers={policy.num_workers}, "
                  f"q_chunk={policy.q_chunk} "
                  f"(source={prof.source}, margin {prof.margin:.2f}x, "
                  f"bucket={prof.width_bucket})")
    gf = H.evaluation_flops(W.shape[1] if W.ndim == 2 else 1) / dt / 1e9
    workers = ""
    if policy.backend == "process":
        w = "auto" if policy.num_workers is None else policy.num_workers
        workers = f", workers={w}"
    print(f"evaluated Y = H @ W  (N={H.dim}, Q="
          f"{W.shape[1] if W.ndim == 2 else 1}, order={policy.order}, "
          f"backend={policy.backend}{workers}"
          f"{f', threads={policy.num_threads}' if policy.num_threads else ''}"
          f") in {dt:.3f}s ({gf:.2f} GF/s)")
    if args.output:
        np.save(args.output, Y)
        print(f"Y -> {args.output}")
    else:
        print(f"||Y||_F = {np.linalg.norm(Y):.6e}")
    return 0


#: Inspector knobs a dataset spec (request file) may set; defaults are the
#: PlanConfig defaults, exactly like the ``inspect`` flags. ``p`` is
#: included so cross-machine compile/serve can pin the partition count
#: (it is part of the full fingerprint and defaults to the host's cores).
_SPEC_PLAN_KEYS = ("structure", "tau", "budget", "bacc", "leaf_size",
                   "max_rank", "sampling_size", "tree_method", "seed", "p")

#: Non-plan keys a dataset spec may set (dataset source + kernel).
_SPEC_DATA_KEYS = ("points", "n", "kernel", "bandwidth")


def _plan_from_spec(spec: dict) -> PlanConfig:
    unknown = sorted(set(spec) - set(_SPEC_PLAN_KEYS) - set(_SPEC_DATA_KEYS))
    if unknown:
        raise SystemExit(
            f"dataset spec has unknown key(s) {unknown}; valid keys: "
            f"{sorted(_SPEC_PLAN_KEYS + _SPEC_DATA_KEYS)}")
    return PlanConfig(**{k: spec[k] for k in _SPEC_PLAN_KEYS if k in spec})


def _kernel_from_spec(spec: dict):
    name = spec.get("kernel", "gaussian")
    if name in ("gaussian", "laplace", "matern32"):
        return get_kernel(name, bandwidth=spec.get("bandwidth", 5.0))
    return get_kernel(name)


def _spec_points(spec: dict) -> np.ndarray:
    return _load_points(spec["points"], spec.get("n"), spec.get("seed", 0))


def _load_request_file(path) -> dict:
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or not isinstance(doc.get("datasets"), dict):
        raise SystemExit(
            f"request file {path} must be a JSON object with a 'datasets' "
            f"mapping (see 'python -m repro serve --help')")
    return doc


def cmd_compile(args) -> int:
    from repro.api.session import Session
    from repro.api.store import PlanStore

    if args.requests:
        specs = _load_request_file(args.requests)["datasets"]
    elif args.points:
        specs = {args.points_id or args.points: {
            "points": args.points, "n": args.n, "seed": args.seed,
            "kernel": args.kernel, "bandwidth": args.bandwidth,
            "structure": args.structure, "tau": args.tau,
            "budget": args.budget, "bacc": args.bacc,
            "leaf_size": args.leaf_size, "max_rank": args.max_rank,
            "sampling_size": args.sampling_size,
        }}
    else:
        print("compile: give a points spec or --requests FILE",
              file=sys.stderr)
        return 2
    store = PlanStore(args.store)
    with Session(store=store) as session:
        for pid, spec in specs.items():
            points = _spec_points(spec)
            t0 = time.perf_counter()
            H = session.inspect(points, kernel=_kernel_from_spec(spec),
                                plan=_plan_from_spec(spec))
            dt = time.perf_counter() - t0
            s = H.summary()
            print(f"compiled {pid}: N={s['N']} ({s['structure']}) in "
                  f"{dt:.2f}s (memory {s['memory_mb']:.2f} MiB)")
    info = store.cache_info()
    print(f"store {args.store}: {info['disk_entries']} artifact(s), "
          f"{store.disk_bytes() / 2**20:.2f} MiB on disk "
          f"(p1_builds={session.stats.p1_builds}, "
          f"p1_hits={session.stats.p1_hits}, "
          f"hmatrix_hits={session.stats.hmatrix_hits})")
    return 0


def cmd_serve(args) -> int:
    from repro.api.service import KernelService
    from repro.api.store import PlanStore

    doc = _load_request_file(args.requests)
    requests = doc.get("requests", [])
    unknown = sorted({str(r.get("points_id")) for r in requests}
                     - set(doc["datasets"]))
    if unknown:
        raise SystemExit(
            f"request file {args.requests}: requests reference points_id(s) "
            f"{unknown} missing from the 'datasets' section")
    manifest = getattr(args, "manifest", None) or False
    if manifest is True and not args.store:
        raise SystemExit(
            "serve: --manifest without a path writes next to the store; "
            "give --store or an explicit --manifest PATH")
    store = PlanStore(args.store) if args.store else None
    policy = (resolve_policy(order=args.order)
              if getattr(args, "order", None) else None)
    with KernelService(store=store, policy=policy,
                       max_batch=args.max_batch,
                       max_wait_ms=args.max_wait_ms,
                       manifest=manifest) as service:
        for pid, spec in doc["datasets"].items():
            service.register(pid, _spec_points(spec),
                             kernel=_kernel_from_spec(spec),
                             plan=_plan_from_spec(spec), warm=True)
        futures = []
        t0 = time.perf_counter()
        for i, req in enumerate(requests):
            pid = req["points_id"]
            n = service.shape(pid)[0]
            W = np.random.default_rng(req.get("seed", i)).random(
                (n, int(req.get("q", 1))))
            futures.append((pid, service.submit(pid, W)))
        for _pid, fut in futures:
            fut.result()
        wall = time.perf_counter() - t0
        stats = service.stats()
        sess = service.session.stats
        disk_hits = service.session.store.stats.disk_hits
    rate = len(requests) / wall if wall > 0 and requests else 0.0
    print(f"served {len(requests)} request(s) over "
          f"{len(doc['datasets'])} endpoint(s) in {wall:.3f}s "
          f"({rate:.1f} req/s)")
    print(f"  latency p50 {stats['p50_ms']:.2f} ms, "
          f"p99 {stats['p99_ms']:.2f} ms; "
          f"batches={stats['batches']}, mean_batch={stats['mean_batch']:.2f},"
          f" max_queue_depth={stats['max_queue_depth']}")
    print(f"  inspection: p1_builds={sess.p1_builds}, "
          f"p2_builds={sess.p2_builds}, hmatrix_hits={sess.hmatrix_hits}, "
          f"store_disk_hits={disk_hits}")
    tune_stats = stats.get("autotune") or {}
    if tune_stats:
        print(f"  autotune: tunes={tune_stats['tunes']}, "
              f"memory_hits={tune_stats['memory_hits']}, "
              f"store_hits={tune_stats['store_hits']}, "
              f"profiles={tune_stats['profiles']}")
    if manifest:
        if service.manifest_path is not None:
            print(f"  run manifest -> {service.manifest_path}")
        else:
            print("  warning: run manifest write failed (best-effort)",
                  file=sys.stderr)
    if args.expect_warm and (sess.p1_builds or sess.p2_builds):
        print("error: --expect-warm but inspection ran "
              f"(p1_builds={sess.p1_builds}, p2_builds={sess.p2_builds}); "
              "run 'repro compile --requests ... --store ...' first",
              file=sys.stderr)
        return 1
    return 0


def cmd_server(args) -> int:
    import signal
    import threading

    from repro.net.server import KernelServer
    from repro.net.tenants import TenantQuota

    quota = TenantQuota(max_requests=args.quota_requests,
                        max_bytes=args.quota_bytes,
                        window_seconds=args.quota_window)
    policy = (resolve_policy(order=args.order)
              if getattr(args, "order", None) else None)
    server = KernelServer(
        args.root, tokens=args.tokens, host=args.host, port=args.port,
        quota=quota, max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms, policy=policy,
        audit_log=False if args.no_audit else args.audit,
        metrics_token=args.metrics_token)
    stop = threading.Event()

    def _graceful(signum, frame):
        print(f"\nsignal {signal.Signals(signum).name}: draining…",
              file=sys.stderr)
        stop.set()

    for sig in (signal.SIGTERM, signal.SIGINT):
        signal.signal(sig, _graceful)
    server.start()
    print(f"kernel server listening on {server.url} "
          f"(root={args.root}, auth={'on' if server.auth else 'OFF'}, "
          f"max_batch={args.max_batch})")
    stop.wait()
    drained = server.drain(args.drain_timeout)
    server.close(args.drain_timeout)
    stats = server.stats()["server"]
    print(f"drained {'cleanly' if drained else 'with a timeout'}; served "
          f"{stats['responses'].get('2xx', 0)} ok / "
          f"{stats['responses'].get('4xx', 0)} client-error / "
          f"{stats['responses'].get('5xx', 0)} server-error responses "
          f"over {stats['tenants_active']} tenant(s)")
    return 0 if drained else 1


def cmd_client(args) -> int:
    from repro.net.client import KernelClient, ServerError

    if args.action != "metrics" and not args.tenant:
        print(f"client {args.action}: --tenant is required",
              file=sys.stderr)
        return 2
    if args.action == "compile" and not args.points:
        print("client compile: --points is required", file=sys.stderr)
        return 2
    if args.action == "matmul" and not args.points_id:
        print("client matmul: --points-id is required", file=sys.stderr)
        return 2
    client = KernelClient(args.url, tenant=args.tenant, token=args.token,
                          timeout=args.timeout)
    try:
        if args.action == "metrics":
            print(client.metrics(), end="")
            return 0
        if args.action == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.action == "compile":
            points = _load_points(args.points, args.n, args.seed)
            plan = {"structure": args.structure, "tau": args.tau,
                    "budget": args.budget, "bacc": args.bacc,
                    "leaf_size": args.leaf_size, "max_rank": args.max_rank,
                    "sampling_size": args.sampling_size, "seed": args.seed}
            info = client.compile(
                points,
                kernel={"name": args.kernel, "bandwidth": args.bandwidth},
                plan=plan, points_id=args.points_id)
            verb = ("compiled" if info["compiled"]
                    else "already compiled (store hit)")
            print(f"{verb} {info['points_id']}: N={info['n']} d={info['d']} "
                  f"plan={info['plan_fingerprint']} in "
                  f"{info['compile_seconds']:.3f}s")
            return 0
        # matmul
        if args.w:
            W = np.load(args.w)
        else:
            # Row count comes from the tenant's endpoint registry.
            endpoints = client.stats().get("endpoints", {})
            n = endpoints.get(args.points_id)
            if n is None:
                print(f"client: points_id {args.points_id!r} not "
                      f"registered (known: {sorted(endpoints)}); "
                      f"compile first", file=sys.stderr)
                return 2
            W = np.random.default_rng(args.seed).random((n, args.q))
        t0 = time.perf_counter()
        Y = client.matmul(args.points_id, W, chunk_cols=args.chunk_cols)
        dt = time.perf_counter() - t0
        print(f"Y = K[{args.points_id}] @ W  {W.shape} -> {Y.shape} "
              f"in {dt:.3f}s")
        if args.output:
            np.save(args.output, Y)
            print(f"Y -> {args.output}")
        else:
            print(f"||Y||_F = {np.linalg.norm(Y):.6e}")
        return 0
    except ServerError as exc:
        print(f"client: {exc}", file=sys.stderr)
        return 1


def cmd_stats(args) -> int:
    from repro.observability.stats import metrics_text, store_inventory

    directory = Path(args.store)
    if args.tenant:
        scoped = directory / "tenants" / args.tenant / "store"
        if not scoped.is_dir():
            known = sorted(p.parent.name for p
                           in (directory / "tenants").glob("*/store"))
            print(f"stats: no store for tenant {args.tenant!r} under "
                  f"{args.store} (known tenants: {known or 'none'})",
                  file=sys.stderr)
            return 2
        directory = scoped
    if not directory.is_dir():
        print(f"stats: no store directory at {args.store}", file=sys.stderr)
        return 2
    inv = store_inventory(directory)
    if args.tenant:
        inv["tenant"] = args.tenant
    if args.json:
        print(json.dumps(inv, indent=2, sort_keys=True))
    else:
        print(metrics_text(inv, prefix="repro_store"), end="")
    return 0


def cmd_analyze(args) -> int:
    from repro.analysis import (
        AnalysisError,
        bump_analysis_counter,
        certify_trace_dir,
        findings_to_doc,
        lint_paths,
        verify_artifact_file,
    )
    from repro.observability.manifest import canonical_json

    paths = args.paths or ["src/repro"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"analyze: no such path(s): {missing}", file=sys.stderr)
        return 2
    findings = lint_paths(paths)
    for finding in findings:
        print(finding.format())
    unwaived = [f for f in findings if not f.waived]
    if unwaived:
        bump_analysis_counter("lint_findings", len(unwaived))
    failures = len(unwaived)

    extra: dict = {"paths": [str(p) for p in paths]}
    if args.races:
        try:
            results = certify_trace_dir(args.races)
        except (FileNotFoundError, ValueError) as exc:
            print(f"analyze: {exc}", file=sys.stderr)
            return 2
        race_count = 0
        for name, violations in sorted(results.items()):
            for violation in violations:
                print(f"{name}: RACE {violation.format()}")
                race_count += 1
        extra["races"] = {"traces": len(results),
                          "violations": race_count}
        failures += race_count
        print(f"analyze: {len(results)} engine trace(s) certified, "
              f"{race_count} race(s)")
    if args.artifact:
        try:
            verify_artifact_file(args.artifact)
            artifact_ok = True
            print(f"analyze: {args.artifact}: write sets verified")
        except AnalysisError as exc:
            artifact_ok = False
            print(f"analyze: {args.artifact}: {exc}", file=sys.stderr)
            failures += 1
        extra["artifact"] = {"path": str(args.artifact),
                             "verified": artifact_ok}

    if args.threads:
        from repro.analysis import analyze_lock_order

        report = analyze_lock_order(paths)
        for finding in report.findings:
            print(finding.format())
        unwaived_cycles = sum(1 for f in report.findings if not f.waived)
        failures += unwaived_cycles
        extra["lock_order"] = report.to_doc()
        print(f"analyze: lock graph: {len(report.locks)} lock(s), "
              f"{len(report.edges)} edge(s), {len(report.cycles)} "
              f"cycle(s) ({unwaived_cycles} unwaived)")
        if args.lock_graph:
            out = Path(args.lock_graph)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(canonical_json(report.summary()))
            print(f"analyze: lock graph -> {out}")
    if args.sync_traces:
        from repro.analysis import certify_sync_trace_dir

        try:
            sync_results = certify_sync_trace_dir(args.sync_traces)
        except (FileNotFoundError, ValueError) as exc:
            print(f"analyze: {exc}", file=sys.stderr)
            return 2
        sync_count = 0
        for name, violations in sorted(sync_results.items()):
            for violation in violations:
                print(f"{name}: UNORDERED {violation.format()}")
                sync_count += 1
        extra["sync"] = {"traces": len(sync_results),
                         "violations": sync_count}
        failures += sync_count
        print(f"analyze: {len(sync_results)} sync trace(s) certified, "
              f"{sync_count} happens-before violation(s)")
    if args.deadlocks:
        from repro.analysis import explore_default_scenarios

        reports = explore_default_scenarios(runs=args.schedules)
        schedule_failures = 0
        inequivalent = 0
        for name, rep in sorted(reports.items()):
            inequivalent += rep.inequivalent
            schedule_failures += len(rep.failures)
            for run, msg in rep.failures:
                print(f"{name}: SCHEDULE {msg}", file=sys.stderr)
        extra["schedules"] = {
            "scenarios": {name: rep.to_doc()
                          for name, rep in sorted(reports.items())},
            "inequivalent": inequivalent,
            "failures": schedule_failures,
        }
        failures += schedule_failures
        print(f"analyze: {inequivalent} inequivalent schedule(s) explored "
              f"across {len(reports)} scenario(s), "
              f"{schedule_failures} failure(s)")

    doc = findings_to_doc(findings, extra=extra)
    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(canonical_json(doc))
        print(f"analyze: findings -> {out}")
    print(f"analyze: {len(findings)} finding(s), {len(unwaived)} unwaived, "
          f"{doc['waived']} waived")
    if args.strict and failures:
        print(f"analyze: strict mode: {failures} failure(s)",
              file=sys.stderr)
        return 1
    return 0


def cmd_gc(args) -> int:
    from repro.api.store import PlanStore

    if not Path(args.store).is_dir():
        print(f"gc: no store directory at {args.store}", file=sys.stderr)
        return 2
    store = PlanStore(args.store)
    report = store.gc(max_age=args.max_age,
                      keep_other_versions=args.keep_other_versions,
                      dry_run=args.dry_run)
    verb = "would reclaim" if args.dry_run else "reclaimed"
    print(f"gc {args.store}: scanned {report['scanned']}, removed "
          f"{report['removed']} artifact(s) + {report['run_manifests_removed']}"
          f" run manifest(s), kept {report['kept']}, {verb} "
          f"{report['reclaimed_bytes']} bytes")
    return 0


def cmd_tune(args) -> int:
    from repro.api.store import PlanStore
    from repro.tuning import Autotuner

    H = load_hmatrix(args.hmatrix)
    store = PlanStore(args.store) if args.store else None
    tuner = Autotuner(store=store, reps=args.reps)
    print(f"host: {', '.join(f'{k}={v}' for k, v in tuner.host.items())}")
    for q in args.q:
        prof = tuner.tune(H, q)
        knobs = ", ".join(f"{k}={v}" for k, v in prof.policy.items())
        print(f"q={q} (bucket {prof.width_bucket}): winner {knobs} "
              f"[{prof.source}, margin {prof.margin:.2f}x, "
              f"trials {prof.trials}]")
        for cand in prof.candidates:
            ck = ", ".join(f"{k}={v}" for k, v in cand["policy"].items())
            kind = "measured" if cand.get("measured") else "predicted"
            print(f"    {cand['seconds'] * 1e3:9.3f} ms  ({kind})  {ck}")
    if store is not None:
        print(f"profiles -> {args.store} "
              f"({store.cache_info()['disk_entries']} artifact(s) on disk); "
              f"reuse with: repro evaluate --order auto --store {args.store}")
    return 0


def cmd_info(args) -> int:
    H = load_hmatrix(args.hmatrix)
    for key, value in H.summary().items():
        print(f"{key:20s} {value}")
    if args.source:
        print("\n--- generated evaluation code ---")
        print(H.evaluator.source)
    return 0


def cmd_datasets(args) -> int:
    if args.emit:
        pts = load_dataset(args.emit, n=args.n, seed=args.seed)
        out = args.output or f"{args.emit}.npy"
        np.save(out, pts)
        print(f"{args.emit}: {pts.shape} -> {out}")
        return 0
    print(f"{'ID':>3} {'data':>10} {'N':>8} {'d':>4} {'kind':>11}")
    for row in table1_rows():
        print(f"{row['id']:>3} {row['data']:>10} {row['N']:>8} "
              f"{row['d']:>4} {row['kind']:>11}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MatRox reproduction: inspector-executor HMatrix tool",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("inspect", help="compress points into an HMatrix")
    p.add_argument("points", help="Table 1 dataset name or .npy point file")
    p.add_argument("-o", "--output", default="hmat.npz")
    p.add_argument("-n", type=int, default=None,
                   help="point count for named datasets")
    p.add_argument("--save-p1", default=None,
                   help="also store reusable phase-1 artifacts here")
    p.add_argument("--reuse-p1", default=None,
                   help="load phase-1 artifacts instead of recomputing")
    _add_inspector_args(p)
    p.set_defaults(fn=cmd_inspect)

    p = sub.add_parser("evaluate", help="multiply a stored HMatrix")
    p.add_argument("hmatrix", help="hmat.npz from 'inspect'")
    p.add_argument("--w", default=None, help=".npy right-hand matrix")
    p.add_argument("-q", type=int, default=16,
                   help="random W columns when --w is not given")
    p.add_argument("-o", "--output", default=None, help="store Y as .npy")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--store", default=None,
                   help="PlanStore directory for --order auto tuning "
                        "profiles (tuned once, reused across runs)")
    _add_policy_args(p)
    p.set_defaults(fn=cmd_evaluate)

    p = sub.add_parser(
        "tune",
        help="measure the execution-policy grid for a stored HMatrix "
             "and record tuning profiles")
    p.add_argument("hmatrix", help="hmat.npz from 'inspect'")
    p.add_argument("-q", type=int, nargs="+", default=[1, 16, 256],
                   help="RHS widths to tune (one profile per width bucket)")
    p.add_argument("--store", default=None,
                   help="PlanStore directory to persist the profiles "
                        "(served by --order auto)")
    p.add_argument("--reps", type=int, default=3,
                   help="timed repetitions per candidate (min-of-reps)")
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser(
        "compile",
        help="inspect points into a durable PlanStore (compile once)")
    p.add_argument("points", nargs="?", default=None,
                   help="Table 1 dataset name or .npy point file "
                        "(or use --requests)")
    p.add_argument("--store", required=True,
                   help="PlanStore directory (created if missing)")
    p.add_argument("--points-id", default=None,
                   help="endpoint name for the compiled artifact "
                        "(default: the points spec)")
    p.add_argument("--requests", default=None,
                   help="compile every dataset in a request file instead "
                        "of a single points spec")
    p.add_argument("-n", type=int, default=None,
                   help="point count for named datasets")
    _add_inspector_args(p)
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser(
        "serve",
        help="replay a request file through KernelService (serve forever)")
    p.add_argument("--requests", required=True,
                   help="JSON request file (see module docstring)")
    p.add_argument("--store", default=None,
                   help="warm-start from this PlanStore directory")
    p.add_argument("--max-batch", type=int, default=8,
                   help="micro-batch size cap (1 disables batching)")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="how long the dispatcher lingers for stragglers")
    p.add_argument("--expect-warm", action="store_true",
                   help="exit non-zero if any inspection ran (proves the "
                        "store served every plan)")
    p.add_argument("--order", default=None, choices=list(VALID_ORDERS),
                   help="execution order for served requests ('auto' "
                        "tunes per width bucket, re-tuning on drift; "
                        "profiles persist in --store)")
    p.add_argument("--manifest", nargs="?", const=True, default=None,
                   metavar="PATH",
                   help="write a RunManifest at close: to PATH (a .json "
                        "file or a directory), or, with no value, under "
                        "manifests/ next to --store")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "server",
        help="run the network-facing multi-tenant kernel server")
    p.add_argument("--root", required=True,
                   help="server state directory (per-tenant stores live "
                        "under <root>/tenants/<name>/store)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8741,
                   help="bind port (0 picks an ephemeral port)")
    p.add_argument("--tokens", default=None,
                   help="JSON token file ({'tokens': {token: tenant}}); "
                        "omitted, auth is DISABLED (dev mode)")
    p.add_argument("--metrics-token", default=None,
                   help="scrape token for the all-tenants /metrics view "
                        "(with auth on, tenant tokens see only their own "
                        "series)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="per-tenant dispatcher micro-batch cap")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="dispatcher linger for stragglers")
    p.add_argument("--order", default=None, choices=list(VALID_ORDERS),
                   help="execution order for served requests")
    p.add_argument("--quota-requests", type=int, default=None,
                   help="per-tenant request cap per quota window")
    p.add_argument("--quota-bytes", type=int, default=None,
                   help="per-tenant request-body byte cap per window")
    p.add_argument("--quota-window", type=float, default=60.0,
                   help="sliding quota window, seconds")
    p.add_argument("--audit", default=None, metavar="PATH",
                   help="JSONL request-audit log "
                        "(default: <root>/audit.jsonl)")
    p.add_argument("--no-audit", action="store_true",
                   help="disable the request-audit log")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="seconds to wait for in-flight requests on "
                        "SIGTERM/SIGINT")
    p.set_defaults(fn=cmd_server)

    p = sub.add_parser(
        "client",
        help="talk to a running kernel server")
    p.add_argument("action",
                   choices=["compile", "matmul", "stats", "metrics"])
    p.add_argument("--url", required=True,
                   help="server base URL, e.g. http://127.0.0.1:8741")
    p.add_argument("--tenant", default=None,
                   help="tenant namespace (required except for metrics)")
    p.add_argument("--token", default=None, help="bearer token")
    p.add_argument("--timeout", type=float, default=120.0)
    p.add_argument("--points", default=None,
                   help="compile: Table 1 dataset name or .npy point file")
    p.add_argument("--points-id", default=None,
                   help="endpoint name (compile: optional; matmul: "
                        "required)")
    p.add_argument("-n", type=int, default=None,
                   help="compile: point count for named datasets")
    p.add_argument("--w", default=None,
                   help="matmul: .npy right-hand matrix")
    p.add_argument("-q", type=int, default=16,
                   help="matmul: random W columns when --w is not given")
    p.add_argument("--chunk-cols", type=int, default=None,
                   help="matmul: stream W as column chunks of this width")
    p.add_argument("-o", "--output", default=None,
                   help="matmul: store Y as .npy")
    _add_inspector_args(p)
    p.set_defaults(fn=cmd_client)

    p = sub.add_parser(
        "stats",
        help="offline PlanStore inventory (/metrics-style text or JSON)")
    p.add_argument("--store", required=True,
                   help="PlanStore directory to inventory (or a server "
                        "root with --tenant)")
    p.add_argument("--tenant", default=None,
                   help="scope to one tenant of a server root "
                        "(<store>/tenants/<tenant>/store)")
    p.add_argument("--json", action="store_true",
                   help="print the inventory as JSON instead of metrics "
                        "lines")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser(
        "gc",
        help="evict aged/skewed PlanStore artifacts, report reclaimed "
             "bytes")
    p.add_argument("--store", required=True, help="PlanStore directory")
    p.add_argument("--max-age", type=float, default=None, metavar="SECONDS",
                   help="evict artifacts (and run manifests) whose "
                        "manifest is older than this many seconds")
    p.add_argument("--keep-other-versions", action="store_true",
                   help="keep artifacts written by other store versions "
                        "(default: evict them)")
    p.add_argument("--dry-run", action="store_true",
                   help="report what would be removed without removing it")
    p.set_defaults(fn=cmd_gc)

    p = sub.add_parser(
        "analyze",
        help="project static analysis: lint rules R001-R004, race "
             "certification, compiled write-set verification, "
             "concurrency certification (C001, happens-before, "
             "schedule exploration)")
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint (default: src/repro)")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 on any unwaived finding, race, lock-order "
                        "cycle, happens-before violation, schedule "
                        "failure, or rejected artifact")
    p.add_argument("--json", default=None,
                   help="write the machine-readable findings JSON here")
    p.add_argument("--races", default=None, metavar="DIR",
                   help="certify every engine access trace (*.json) in DIR")
    p.add_argument("--artifact", default=None, metavar="NPZ",
                   help="verify a compiled artifact's write sets")
    p.add_argument("--threads", action="store_true",
                   help="build + certify the static lock-acquisition "
                        "graph (rule C001: acyclic)")
    p.add_argument("--lock-graph", default=None, metavar="JSON",
                   help="with --threads, write the canonical lock-graph "
                        "summary here (the golden-file shape)")
    p.add_argument("--sync-traces", default=None, metavar="DIR",
                   help="replay every sync trace (*.synctrace.json) in "
                        "DIR through the happens-before checker")
    p.add_argument("--deadlocks", action="store_true",
                   help="explore perturbed thread schedules over the "
                        "stock serving scenarios (DPOR-lite)")
    p.add_argument("--schedules", type=int, default=24, metavar="N",
                   help="perturbation runs per scenario for --deadlocks "
                        "(default: 24)")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("info", help="summarise a stored HMatrix")
    p.add_argument("hmatrix")
    p.add_argument("--source", action="store_true",
                   help="print the generated evaluation code")
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("datasets", help="list Table 1 / emit a dataset")
    p.add_argument("--emit", default=None, help="dataset name to generate")
    p.add_argument("-n", type=int, default=None)
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_datasets)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
