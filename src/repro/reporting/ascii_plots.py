"""ASCII chart primitives (no plotting dependencies)."""

from __future__ import annotations

import math

from repro.utils.validation import require


def _fmt_num(x: float) -> str:
    if x == 0:
        return "0"
    if abs(x) >= 1000 or abs(x) < 0.01:
        return f"{x:.1e}"
    return f"{x:.2f}".rstrip("0").rstrip(".")


def bar_chart(
    labels: list[str],
    series: dict[str, list[float]],
    title: str = "",
    width: int = 40,
    symbol_cycle: str = "#=+*o@",
) -> str:
    """Grouped horizontal bar chart.

    ``series`` maps a series name to one value per label (e.g. GFLOP/s per
    dataset per system). Bars are scaled to the global maximum.
    """
    require(len(series) >= 1, "need at least one series")
    for name, vals in series.items():
        require(len(vals) == len(labels),
                f"series {name!r} has {len(vals)} values for "
                f"{len(labels)} labels")
    peak = max((max(v) for v in series.values()), default=0.0)
    if peak <= 0:
        peak = 1.0
    label_w = max((len(lab) for lab in labels), default=0)
    name_w = max(len(n) for n in series)

    lines: list[str] = []
    if title:
        lines.append(title)
    for i, label in enumerate(labels):
        for j, (name, vals) in enumerate(series.items()):
            n = int(round(vals[i] / peak * width))
            sym = symbol_cycle[j % len(symbol_cycle)]
            head = label if j == 0 else ""
            lines.append(
                f"{head:>{label_w}} {name:>{name_w}} |{sym * n:<{width}}| "
                f"{_fmt_num(vals[i])}"
            )
        lines.append("")
    legend = "  ".join(
        f"{symbol_cycle[j % len(symbol_cycle)]}={name}"
        for j, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def line_chart(
    x: list[float],
    series: dict[str, list[float]],
    title: str = "",
    width: int = 60,
    height: int = 16,
    symbol_cycle: str = "*o+x#@",
) -> str:
    """Multi-series line (really: marker) chart on a character grid."""
    require(len(x) >= 2, "need at least two x values")
    for name, vals in series.items():
        require(len(vals) == len(x), f"series {name!r} length mismatch")
    xmin, xmax = min(x), max(x)
    ymax = max(max(v) for v in series.values())
    ymin = min(min(v) for v in series.values())
    if math.isclose(ymax, ymin):
        ymax = ymin + 1.0

    grid = [[" "] * width for _ in range(height)]
    for j, (_name, vals) in enumerate(series.items()):
        sym = symbol_cycle[j % len(symbol_cycle)]
        for xi, yi in zip(x, vals, strict=True):
            col = int((xi - xmin) / (xmax - xmin) * (width - 1))
            row = int((yi - ymin) / (ymax - ymin) * (height - 1))
            grid[height - 1 - row][col] = sym

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{_fmt_num(ymax):>10} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 10 + " |" + "".join(row) + "|")
    lines.append(f"{_fmt_num(ymin):>10} +" + "-" * width + "+")
    lines.append(
        " " * 12 + f"{_fmt_num(xmin)}" + " " * (width - 12) + f"{_fmt_num(xmax)}"
    )
    legend = "  ".join(
        f"{symbol_cycle[j % len(symbol_cycle)]}={name}"
        for j, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def scatter_plot(
    x: list[float],
    y: list[float],
    title: str = "",
    width: int = 60,
    height: int = 16,
    fit_line: bool = True,
) -> str:
    """Scatter plot with an optional least-squares fit overlay ('.')."""
    require(len(x) == len(y) and len(x) >= 2, "need matching x/y, >= 2 points")
    xmin, xmax = min(x), max(x)
    ymin, ymax = min(y), max(y)
    if math.isclose(xmax, xmin):
        xmax = xmin + 1.0
    if math.isclose(ymax, ymin):
        ymax = ymin + 1.0

    grid = [[" "] * width for _ in range(height)]
    if fit_line:
        n = len(x)
        mx = sum(x) / n
        my = sum(y) / n
        sxx = sum((xi - mx) ** 2 for xi in x)
        if sxx > 0:
            slope = sum((xi - mx) * (yi - my)
                        for xi, yi in zip(x, y, strict=True)) / sxx
            for col in range(width):
                xv = xmin + col / (width - 1) * (xmax - xmin)
                yv = my + slope * (xv - mx)
                if ymin <= yv <= ymax:
                    row = int((yv - ymin) / (ymax - ymin) * (height - 1))
                    grid[height - 1 - row][col] = "."
    for xi, yi in zip(x, y, strict=True):
        col = int((xi - xmin) / (xmax - xmin) * (width - 1))
        row = int((yi - ymin) / (ymax - ymin) * (height - 1))
        grid[height - 1 - row][col] = "*"

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{_fmt_num(ymax):>10} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 10 + " |" + "".join(row) + "|")
    lines.append(f"{_fmt_num(ymin):>10} +" + "-" * width + "+")
    lines.append(
        " " * 12 + f"{_fmt_num(xmin)}" + " " * (width - 12) + f"{_fmt_num(xmax)}"
    )
    return "\n".join(lines)
