"""Terminal-friendly figure rendering for the benchmark harness.

The benchmarks regenerate the paper's tables and figures in environments
without a display or plotting stack, so the charts render as text: grouped
bar charts (Fig. 5), line charts (Fig. 7), and scatter plots (Fig. 6).
"""

from repro.reporting.ascii_plots import bar_chart, line_chart, scatter_plot

__all__ = ["bar_chart", "line_chart", "scatter_plot"]
