"""Flop accounting for the evaluation phase, broken down by loop."""

from __future__ import annotations

from repro.compression.factors import Factors


def evaluation_flop_breakdown(factors: Factors, q: int) -> dict[str, float]:
    """Flops per abstract loop of one HMatrix-matrix multiply."""
    t = factors.tree
    near = sum(
        2.0 * t.node_size(i) * t.node_size(j) * q
        for (i, j) in factors.near_blocks
    )
    leaf = sum(
        2.0 * V.shape[0] * V.shape[1] * q for V in factors.leaf_basis.values()
    )
    transfer = sum(
        2.0 * E.shape[0] * E.shape[1] * q for E in factors.transfer.values()
    )
    coupling = sum(
        2.0 * B.shape[0] * B.shape[1] * q for B in factors.coupling.values()
    )
    return {
        "near": near,
        "upward": leaf + transfer,
        "coupling": coupling,
        "downward": leaf + transfer,
        "total": near + 2 * (leaf + transfer) + coupling,
    }
