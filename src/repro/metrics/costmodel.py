"""Inspector (compression) cost model for the simulated-machine figures.

The comparative overall-time figures (Fig. 4, Fig. 10) stack compression,
structure-analysis, code-generation, and executor time. Our compression runs
in pure Python, so its wall time is not commensurable with the simulated
executor seconds; instead we count the *flops the compression performs*
(kernel block assembly, pivoted-QR IDs, k-NN search) and convert them to
seconds on the same machine model. Structure analysis and code generation
are modelled as the paper reports them: on average 8.1% of inspection time,
split between the two.

The same model serves GOFMM (same ID-based compression) and STRUMPACK
(randomized-sampling compression, modelled as a constant factor more work —
Fig. 4 shows it consistently slower).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.compressor import CompressionResult
from repro.runtime.machine import MachineModel

def _kernel_entry_flops(d: float) -> float:
    # Cost (flops) of evaluating one kernel entry for d-dimensional points:
    # distance accumulation (2d) plus the transcendental (~20).
    return 2.0 * d + 20.0

# Paper: "structure analysis and code generation in MatRox is on average 8.1
# percent of inspection time"; we split it 60/40 between the two stages.
STRUCTURE_ANALYSIS_FRACTION = 0.081 * 0.6
CODE_GENERATION_FRACTION = 0.081 * 0.4


@dataclass
class InspectorCosts:
    """Flop counts of the compression modules (machine-independent)."""

    sampling_flops: float
    lowrank_flops: float
    kernel_flops: float
    tree_flops: float

    @property
    def compression_flops(self) -> float:
        return (self.sampling_flops + self.lowrank_flops
                + self.kernel_flops + self.tree_flops)


def inspector_cost_model(result: CompressionResult) -> InspectorCosts:
    """Count the work modular compression performed for ``result``."""
    tree = result.tree
    factors = result.factors
    n, d = tree.num_points, tree.dim
    entry = _kernel_entry_flops(d)

    # Tree construction: ~log2(N/leaf) passes of projection + partition.
    depth = max(tree.height, 1)
    tree_flops = 2.0 * n * d * depth

    # Sampling: k-NN cost depends on the method the module actually used —
    # exact k-NN is O(N^2 d) (why sampling dominates compression for
    # high-dimensional sets like mnist, 89.2% in the paper); rp-trees are
    # O(trees * N * leaf * d).
    k = result.plan.k
    if result.plan.method == "exact":
        knn_flops = float(n) * n * (2.0 * d + 4.0)
    else:
        tree_count, rp_leaf = 4.0, 128.0
        knn_flops = tree_count * n * rp_leaf * (2.0 * d + 4.0)
    sampling_flops = knn_flops + sum(
        len(s) * d for s in result.plan.samples.values()
    )

    # Low-rank approximation: per node, assemble the sample block
    # (s x m kernel entries) and run pivoted QR (2 s m^2).
    lowrank = 0.0
    kernel_cost = 0.0
    for v in range(tree.num_nodes):
        r = factors.srank(v)
        if r == 0:
            continue
        if tree.is_leaf(v):
            m = tree.node_size(v)
        else:
            lc, rc = int(tree.lchild[v]), int(tree.rchild[v])
            m = factors.srank(lc) + factors.srank(rc)
        s = max(2 * m, 8)
        kernel_cost += s * m * entry
        lowrank += 2.0 * s * m * m
    # Coupling and near block assembly are kernel evaluations too.
    kernel_cost += sum(b.size * entry for b in factors.coupling.values())
    kernel_cost += sum(b.size * entry for b in factors.near_blocks.values())

    return InspectorCosts(
        sampling_flops=sampling_flops,
        lowrank_flops=lowrank,
        kernel_flops=kernel_cost,
        tree_flops=tree_flops,
    )


def simulate_inspector_seconds(
    costs: InspectorCosts,
    machine: MachineModel,
    p: int | None = None,
    overhead: float = 1.0,
) -> dict[str, float]:
    """Convert inspector flop counts to simulated seconds.

    Compression parallelises well in all tools (independent per-node IDs),
    so it runs on ``p`` cores at small-GEMM efficiency. ``overhead``
    scales the compression (STRUMPACK's randomized sampling: ~2.5x).
    Returns a stage -> seconds dict including the modelled structure
    analysis and code generation stages.
    """
    p = machine.num_cores if p is None else p
    compress_s = overhead * machine.flop_seconds(
        costs.compression_flops, cores=p
    )
    return {
        "compression": compress_s,
        "structure_analysis": compress_s * STRUCTURE_ANALYSIS_FRACTION,
        "code_generation": compress_s * CODE_GENERATION_FRACTION,
    }


# --------------------------------------------------------------------------
# Executor policy priors (the repro.tuning seed model).
#
# The autotuner's candidate grid is seeded analytically before anything is
# measured: the same machine-model arithmetic the simulator uses converts
# an HMatrix's evaluation flop count into a predicted wall time per
# execution policy. Two uses (see repro.tuning.autotune):
#
# * problems below EXECUTOR_TRIVIAL_FLOPS skip measurement entirely — at
#   that scale trial noise exceeds any policy delta, so the analytically
#   best candidate is recorded with source="prior";
# * larger problems measure the candidates in prior order, so the likely
#   winner is timed first and mispredictions only cost extra trials,
#   never a wrong *correctness* outcome (every candidate computes the
#   same product).
# --------------------------------------------------------------------------

#: Below this many evaluation flops per right-hand-side pass, measured
#: trials are noise: serve the analytic prior directly (zero trials).
EXECUTOR_TRIVIAL_FLOPS = 2.0e7

#: The process backend only pays for itself once a pass is at least this
#: big (pool dispatch + shared-memory traffic amortized); smaller
#: problems never get a process candidate.
PROCESS_BACKEND_MIN_FLOPS = 5.0e7


def _generic_host_machine(cpus: int) -> MachineModel:
    """A neutral per-host machine model for the policy prior.

    Only *relative* policy ordering matters here, so a conservative
    generic core (2.5 GHz, 8 flops/cycle DP) stands in for the real
    host; the measured trials, not this model, produce the recorded
    seconds for any problem above the trivial floor.
    """
    return MachineModel(
        name=f"generic-{cpus}c",
        num_cores=max(1, int(cpus)),
        freq_ghz=2.5,
        flops_per_cycle=8.0,
        dram_bandwidth_gbs=12.0 * max(1, int(cpus)) ** 0.5,
        single_core_bandwidth_gbs=10.0,
    )


def predict_policy_seconds(knobs: dict, flops: float, q: int,
                           cpus: int,
                           machine: MachineModel | None = None) -> float:
    """Modelled seconds for one ``Y = H @ W`` pass under a policy.

    ``knobs`` is the :func:`repro.tuning.profile.policy_knobs` dict form
    (order/backend/num_threads/num_workers/q_chunk); ``flops`` the
    HMatrix's evaluation flop count for ``q`` columns.
    """
    machine = machine if machine is not None else _generic_host_machine(cpus)
    order = knobs.get("order", "batched")
    backend = knobs.get("backend", "thread")
    q = max(1, int(q))

    if backend == "process" and order != "original":
        workers = knobs.get("num_workers") or cpus
        workers = max(1, min(int(workers), cpus))
        compute = machine.flop_seconds(
            flops, cores=workers, efficiency=machine.blas_efficiency)
        q_chunk = int(knobs.get("q_chunk") or 256)
        chunks = -(-q // q_chunk)
        # 3-phase barrier protocol per chunk + one W/Y pass through
        # shared memory (see repro.core.parallel).
        sync = chunks * 3.0 * machine.barrier_seconds(workers)
        traffic = machine.mem_seconds(2.0 * flops / 50.0,
                                      active_cores=workers)
        return compute + sync + traffic

    if order in ("batched", "tree"):
        # One stacked GEMM per shape bucket: large-GEMM efficiency.
        return machine.flop_seconds(flops, cores=1,
                                    efficiency=machine.blas_efficiency)

    # Per-block code: skinny per-block GEMMs at small-GEMM efficiency,
    # optionally over a thread pool (spawn overhead per task wave).
    threads = knobs.get("num_threads") or 1
    threads = max(1, min(int(threads), cpus))
    compute = machine.flop_seconds(
        flops, cores=threads, efficiency=machine.small_gemm_efficiency)
    spawn = threads * machine.task_spawn_us * 1e-6 if threads > 1 else 0.0
    return compute + spawn


def executor_policy_priors(candidates, flops: float, q: int, cpus: int,
                           machine: MachineModel | None = None) -> list:
    """Rank candidate policy-knob dicts by modelled seconds (best first).

    Returns ``[(knobs, predicted_seconds), ...]`` sorted ascending; ties
    break toward the earlier candidate (the tuner lists its safest
    default first).
    """
    machine = machine if machine is not None else _generic_host_machine(cpus)
    scored = [
        (knobs, predict_policy_seconds(knobs, flops, q, cpus, machine))
        for knobs in candidates
    ]
    order = sorted(range(len(scored)), key=lambda i: (scored[i][1], i))
    return [scored[i] for i in order]
