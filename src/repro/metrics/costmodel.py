"""Inspector (compression) cost model for the simulated-machine figures.

The comparative overall-time figures (Fig. 4, Fig. 10) stack compression,
structure-analysis, code-generation, and executor time. Our compression runs
in pure Python, so its wall time is not commensurable with the simulated
executor seconds; instead we count the *flops the compression performs*
(kernel block assembly, pivoted-QR IDs, k-NN search) and convert them to
seconds on the same machine model. Structure analysis and code generation
are modelled as the paper reports them: on average 8.1% of inspection time,
split between the two.

The same model serves GOFMM (same ID-based compression) and STRUMPACK
(randomized-sampling compression, modelled as a constant factor more work —
Fig. 4 shows it consistently slower).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.compressor import CompressionResult
from repro.runtime.machine import MachineModel

def _kernel_entry_flops(d: float) -> float:
    # Cost (flops) of evaluating one kernel entry for d-dimensional points:
    # distance accumulation (2d) plus the transcendental (~20).
    return 2.0 * d + 20.0

# Paper: "structure analysis and code generation in MatRox is on average 8.1
# percent of inspection time"; we split it 60/40 between the two stages.
STRUCTURE_ANALYSIS_FRACTION = 0.081 * 0.6
CODE_GENERATION_FRACTION = 0.081 * 0.4


@dataclass
class InspectorCosts:
    """Flop counts of the compression modules (machine-independent)."""

    sampling_flops: float
    lowrank_flops: float
    kernel_flops: float
    tree_flops: float

    @property
    def compression_flops(self) -> float:
        return (self.sampling_flops + self.lowrank_flops
                + self.kernel_flops + self.tree_flops)


def inspector_cost_model(result: CompressionResult) -> InspectorCosts:
    """Count the work modular compression performed for ``result``."""
    tree = result.tree
    factors = result.factors
    n, d = tree.num_points, tree.dim
    entry = _kernel_entry_flops(d)

    # Tree construction: ~log2(N/leaf) passes of projection + partition.
    depth = max(tree.height, 1)
    tree_flops = 2.0 * n * d * depth

    # Sampling: k-NN cost depends on the method the module actually used —
    # exact k-NN is O(N^2 d) (why sampling dominates compression for
    # high-dimensional sets like mnist, 89.2% in the paper); rp-trees are
    # O(trees * N * leaf * d).
    k = result.plan.k
    if result.plan.method == "exact":
        knn_flops = float(n) * n * (2.0 * d + 4.0)
    else:
        tree_count, rp_leaf = 4.0, 128.0
        knn_flops = tree_count * n * rp_leaf * (2.0 * d + 4.0)
    sampling_flops = knn_flops + sum(
        len(s) * d for s in result.plan.samples.values()
    )

    # Low-rank approximation: per node, assemble the sample block
    # (s x m kernel entries) and run pivoted QR (2 s m^2).
    lowrank = 0.0
    kernel_cost = 0.0
    for v in range(tree.num_nodes):
        r = factors.srank(v)
        if r == 0:
            continue
        if tree.is_leaf(v):
            m = tree.node_size(v)
        else:
            lc, rc = int(tree.lchild[v]), int(tree.rchild[v])
            m = factors.srank(lc) + factors.srank(rc)
        s = max(2 * m, 8)
        kernel_cost += s * m * entry
        lowrank += 2.0 * s * m * m
    # Coupling and near block assembly are kernel evaluations too.
    kernel_cost += sum(b.size * entry for b in factors.coupling.values())
    kernel_cost += sum(b.size * entry for b in factors.near_blocks.values())

    return InspectorCosts(
        sampling_flops=sampling_flops,
        lowrank_flops=lowrank,
        kernel_flops=kernel_cost,
        tree_flops=tree_flops,
    )


def simulate_inspector_seconds(
    costs: InspectorCosts,
    machine: MachineModel,
    p: int | None = None,
    overhead: float = 1.0,
) -> dict[str, float]:
    """Convert inspector flop counts to simulated seconds.

    Compression parallelises well in all tools (independent per-node IDs),
    so it runs on ``p`` cores at small-GEMM efficiency. ``overhead``
    scales the compression (STRUMPACK's randomized sampling: ~2.5x).
    Returns a stage -> seconds dict including the modelled structure
    analysis and code generation stages.
    """
    p = machine.num_cores if p is None else p
    compress_s = overhead * machine.flop_seconds(
        costs.compression_flops, cores=p
    )
    return {
        "compression": compress_s,
        "structure_analysis": compress_s * STRUCTURE_ANALYSIS_FRACTION,
        "code_generation": compress_s * CODE_GENERATION_FRACTION,
    }
