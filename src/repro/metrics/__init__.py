"""Measurement utilities: flop accounting and inspector cost models."""

from repro.metrics.costmodel import (
    InspectorCosts,
    inspector_cost_model,
    simulate_inspector_seconds,
)
from repro.metrics.flops import evaluation_flop_breakdown

__all__ = [
    "evaluation_flop_breakdown",
    "InspectorCosts",
    "inspector_cost_model",
    "simulate_inspector_seconds",
]
