"""Emission of specialized evaluation code.

``generate_evaluator`` lowers the IR to Python source text (the analogue of
the paper's emitted C code), binds the structure sets to *views into the CDS
buffers* as constant tables, and compiles the source with ``compile``/``exec``.
The generated function is specialized for one HMatrix: which loops exist,
whether they iterate over structure sets or raw interaction lists, and
whether the root iteration is peeled are all baked into the source.

The generated callable computes ``Y += K~ @ W`` in tree order and can run
serially or over a thread pool (NumPy's BLAS releases the GIL inside GEMMs,
so block/sub-tree tasks genuinely overlap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.analysis.structure_sets import BlockSet, CoarsenSet
from repro.codegen.ir import EvaluationIR
from repro.codegen.lowering import LoweringDecision, decide_lowering
from repro.storage.cds import CDSMatrix

# Opcodes for tree-loop operations (kept as plain ints for dispatch speed).
OP_LEAF = 0
OP_INTERIOR = 1


def _run_parallel(pool, fn, items):
    """Execute ``fn`` over ``items`` — serially or on the supplied pool."""
    if pool is None:
        for it in items:
            fn(it)
    else:
        list(pool.map(fn, items))


@dataclass
class GeneratedEvaluator:
    """A compiled, specialized HMatrix-matrix multiplication."""

    source: str
    decision: LoweringDecision
    cds: CDSMatrix
    _fn: Callable = field(repr=False, default=None)
    name: str = "hmatmul"

    def __call__(self, W: np.ndarray, pool=None) -> np.ndarray:
        """Evaluate ``Y = K~ W`` (tree order). W: (N, Q) or (N,)."""
        W = np.ascontiguousarray(W, dtype=np.float64)
        squeeze = W.ndim == 1
        if squeeze:
            W = W[:, None]
        n = self.cds.dim
        if W.shape[0] != n:
            raise ValueError(f"W has {W.shape[0]} rows, HMatrix dim is {n}")
        Y = np.zeros_like(W)
        self._fn(W, Y, pool)
        return Y[:, 0] if squeeze else Y


# --------------------------------------------------------------------------
# Table construction: bind structure sets to CDS views.
# --------------------------------------------------------------------------

def _near_tables(cds: CDSMatrix, blocked: bool):
    """Near-loop task tables: blocked → list of blocks, serial → one list."""
    t = cds.tree
    def entry(i, j):
        return (cds.near(i, j), int(t.start[i]), int(t.stop[i]),
                int(t.start[j]), int(t.stop[j]))
    if blocked:
        return [
            tuple(entry(i, j) for (i, j) in block)
            for block in cds.near_blockset.blocks
        ]
    pairs = sorted(cds.factors.near_blocks)
    return [tuple(entry(i, j) for (i, j) in pairs)]


def _far_tables(cds: CDSMatrix, blocked: bool):
    """Coupling-loop task tables; entries are (B, i, j)."""
    def entry(i, j):
        return (cds.far(i, j), int(i), int(j))
    if blocked:
        return [
            tuple(entry(i, j) for (i, j) in block)
            for block in cds.far_blockset.blocks
        ]
    pairs = sorted(cds.factors.coupling)
    return [tuple(entry(i, j) for (i, j) in pairs)]


def _node_op(cds: CDSMatrix, v: int):
    """Encode one tree-loop op for node v."""
    t = cds.tree
    gen = cds.basis(v)
    if t.is_leaf(v):
        return (OP_LEAF, v, gen, int(t.start[v]), int(t.stop[v]), 0)
    lc, rc = int(t.lchild[v]), int(t.rchild[v])
    return (OP_INTERIOR, v, gen, lc, rc, int(cds.factors.srank(lc)))


def _coarsen_tables(cds: CDSMatrix, coarsenset: CoarsenSet, peel: bool):
    """Upward-pass tables: list of levels, each a list of sub-tree op tuples.

    With peeling, the last coarsen level is returned separately as a flat op
    list executed as straight-line code (standing in for the paper's
    parallel-BLAS peeled root iteration).
    """
    levels = [
        [tuple(_node_op(cds, v) for v in st.nodes) for st in cl.subtrees]
        for cl in coarsenset.levels
    ]
    peeled: tuple = ()
    if peel and levels:
        last = levels.pop()
        peeled = tuple(op for st in last for op in st)
    return levels, peeled


def _serial_tree_tables(cds: CDSMatrix):
    """Un-coarsened upward table: one subtree holding the whole post-order."""
    order = [
        v for v in cds.tree.postorder()
        if v != 0 and cds.factors.srank(v) > 0
    ]
    return [[tuple(_node_op(cds, v) for v in order)]], ()


# --------------------------------------------------------------------------
# Source emission.
# --------------------------------------------------------------------------

_PROLOGUE = '''\
def {name}(W, Y, pool=None):
    """Generated HMatrix-matrix multiplication (tree order).

    Lowering: near={near_mode}, coupling={far_mode}, tree={tree_mode},
    peeled_root={peel}.
    """
    Q = W.shape[1]
    T = [None] * NUM_NODES
    S = [None] * NUM_NODES
'''

_NEAR_BLOCKED = '''
    # Blocked loop over the near blockset: blocks write disjoint Y rows,
    # so the loop over blocks is fully parallel (no reductions).
    def _near_block(block):
        for D, si, ei, sj, ej in block:
            Y[si:ei] += D @ W[sj:ej]
    _run_parallel(pool, _near_block, NEAR_TABLE)
'''

_NEAR_SERIAL = '''
    # Serial reduction loop over near interactions.
    for block in NEAR_TABLE:
        for D, si, ei, sj, ej in block:
            Y[si:ei] += D @ W[sj:ej]
'''

_UP_SUBTREE_FN = '''
    def _up_subtree(ops):
        for op, v, G, a, b, rlc in ops:
            if op == OP_LEAF:
                T[v] = G.T @ W[a:b]
            else:
                Tl = T[a]; Tr = T[b]
                T[v] = G[:rlc].T @ Tl + G[rlc:].T @ Tr
'''

_UP_COARSENED = '''
    # Coarsened loop over the CTree (upward): sequential over coarsen
    # levels, parallel over load-balanced sub-trees inside each level.
    for level in UP_LEVELS:
        _run_parallel(pool, _up_subtree, level)
'''

_UP_PEELED = '''
    # Peeled root iteration: the top coarsen level has little task
    # parallelism, so its node GEMMs run as straight-line (parallel-BLAS)
    # calls instead of sub-tree tasks.
    _up_subtree(UP_PEELED)
'''

_COUPLING_BLOCKED = '''
    # Blocked loop over the far blockset (B blocks): same-output far
    # interactions share a block, so no reduction across blocks.
    def _coupling_block(block):
        for B, i, j in block:
            contrib = B @ T[j]
            if S[i] is None:
                S[i] = contrib
            else:
                S[i] += contrib
    _run_parallel(pool, _coupling_block, FAR_TABLE)
'''

_COUPLING_SERIAL = '''
    # Serial reduction loop over far interactions.
    for block in FAR_TABLE:
        for B, i, j in block:
            contrib = B @ T[j]
            if S[i] is None:
                S[i] = contrib
            else:
                S[i] += contrib
'''

_DOWN_SUBTREE_FN = '''
    def _down_subtree(ops):
        for op, v, G, a, b, rlc in ops:
            sv = S[v]
            if sv is None:
                continue
            if op == OP_LEAF:
                Y[a:b] += G @ sv
            else:
                top = G[:rlc] @ sv
                bot = G[rlc:] @ sv
                S[a] = top if S[a] is None else S[a] + top
                S[b] = bot if S[b] is None else S[b] + bot
'''

_DOWN_PEELED = '''
    # Peeled root iteration of the downward pass (runs first: top of tree).
    _down_subtree(DOWN_PEELED)
'''

_DOWN_COARSENED = '''
    # Coarsened downward pass: coarsen levels in reverse, sub-trees parallel,
    # node order inside each sub-tree reversed (parents before children).
    for level in DOWN_LEVELS:
        _run_parallel(pool, _down_subtree, level)
'''

_EPILOGUE = '''
    return Y
'''


def generate_evaluator(
    cds: CDSMatrix,
    ir: EvaluationIR | None = None,
    decision: LoweringDecision | None = None,
    block_threshold: int | None = None,
    far_block_threshold: int | None = None,
    coarsen_threshold: int = 4,
    low_level: bool = True,
    name: str = "hmatmul",
) -> GeneratedEvaluator:
    """Lower the IR and compile the specialized evaluator for ``cds``."""
    from repro.codegen.ir import build_ir

    if ir is None:
        ir = build_ir(
            cds.factors,
            coarsenset=cds.coarsenset,
            near_blockset=cds.near_blockset,
            far_blockset=cds.far_blockset,
        )
    if decision is None:
        decision = decide_lowering(
            ir,
            block_threshold=block_threshold,
            far_block_threshold=far_block_threshold,
            coarsen_threshold=coarsen_threshold,
            low_level=low_level,
        )

    near_table = _near_tables(cds, decision.block_near)
    far_table = _far_tables(cds, decision.block_far)
    if decision.coarsen:
        up_levels, up_peeled = _coarsen_tables(
            cds, cds.coarsenset, decision.peel_root
        )
    else:
        up_levels, up_peeled = _serial_tree_tables(cds)

    # Downward tables: reversed levels, reversed ops within each sub-tree.
    down_levels = [
        [tuple(reversed(st)) for st in level] for level in reversed(up_levels)
    ]
    down_peeled = tuple(reversed(up_peeled))

    # ---- assemble source ---------------------------------------------------
    parts = [
        _PROLOGUE.format(
            name=name,
            near_mode="blocked" if decision.block_near else "serial",
            far_mode="blocked" if decision.block_far else "serial",
            tree_mode="coarsened" if decision.coarsen else "serial",
            peel=decision.peel_root,
        )
    ]
    parts.append(_NEAR_BLOCKED if decision.block_near else _NEAR_SERIAL)
    parts.append(_UP_SUBTREE_FN)
    parts.append(_UP_COARSENED)
    if decision.peel_root and up_peeled:
        parts.append(_UP_PEELED)
    parts.append(_COUPLING_BLOCKED if decision.block_far else _COUPLING_SERIAL)
    parts.append(_DOWN_SUBTREE_FN)
    if decision.peel_root and down_peeled:
        parts.append(_DOWN_PEELED)
    parts.append(_DOWN_COARSENED)
    parts.append(_EPILOGUE)
    source = "".join(parts)

    env = {
        "NUM_NODES": cds.tree.num_nodes,
        "NEAR_TABLE": near_table,
        "FAR_TABLE": far_table,
        "UP_LEVELS": up_levels,
        "UP_PEELED": up_peeled,
        "DOWN_LEVELS": down_levels,
        "DOWN_PEELED": down_peeled,
        "OP_LEAF": OP_LEAF,
        "_run_parallel": _run_parallel,
    }
    code = compile(source, filename=f"<matrox-generated:{name}>", mode="exec")
    exec(code, env)
    return GeneratedEvaluator(
        source=source, decision=decision, cds=cds, _fn=env[name], name=name
    )
