"""Emission of specialized evaluation code.

``generate_evaluator`` lowers the IR to Python source text (the analogue of
the paper's emitted C code), binds the structure sets to *views into the CDS
buffers* as constant tables, and compiles the source with ``compile``/``exec``.
The generated function is specialized for one HMatrix: which loops exist,
whether they iterate over structure sets or raw interaction lists, and
whether the root iteration is peeled are all baked into the source.

The generated callable computes ``Y += K~ @ W`` in tree order and can run
serially or over a thread pool (NumPy's BLAS releases the GIL inside GEMMs,
so block/sub-tree tasks genuinely overlap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from repro.analysis.structure_sets import CoarsenSet
from repro.codegen.ir import EvaluationIR
from repro.codegen.lowering import LoweringDecision, decide_lowering
from repro.storage.cds import CDSMatrix

# Opcodes for tree-loop operations (kept as plain ints for dispatch speed).
OP_LEAF = 0
OP_INTERIOR = 1


def _run_parallel(pool, fn, items):
    """Execute ``fn`` over ``items`` — serially or on the supplied pool."""
    if pool is None:
        for it in items:
            fn(it)
    else:
        list(pool.map(fn, items))


@dataclass
class GeneratedEvaluator:
    """A compiled, specialized HMatrix-matrix multiplication.

    ``q_chunk`` (when set) streams right-hand sides through the generated
    code in column panels of at most that width, so the W/Y/T/S panels of
    one pass stay cache-resident for arbitrarily wide Q (the batched
    engine's multi-RHS path; see DESIGN.md section 3).
    """

    source: str
    decision: LoweringDecision
    cds: CDSMatrix
    _fn: Callable = field(repr=False, default=None)
    name: str = "hmatmul"
    q_chunk: int | None = None

    def __call__(self, W: np.ndarray, pool=None) -> np.ndarray:
        """Evaluate ``Y = K~ W`` (tree order). W: (N, Q) or (N,)."""
        W = np.ascontiguousarray(W, dtype=np.float64)
        squeeze = W.ndim == 1
        if squeeze:
            W = W[:, None]
        n = self.cds.dim
        if W.shape[0] != n:
            raise ValueError(f"W has {W.shape[0]} rows, HMatrix dim is {n}")
        Y = np.zeros_like(W)
        qc = self.q_chunk
        if qc and W.shape[1] > qc:
            for q0 in range(0, W.shape[1], qc):
                Wc = np.ascontiguousarray(W[:, q0:q0 + qc])
                Yc = np.zeros_like(Wc)
                self._fn(Wc, Yc, pool)
                Y[:, q0:q0 + qc] = Yc
        else:
            self._fn(W, Y, pool)
        return Y[:, 0] if squeeze else Y


# --------------------------------------------------------------------------
# Table construction: bind structure sets to CDS views.
# --------------------------------------------------------------------------

def _near_tables(cds: CDSMatrix, blocked: bool):
    """Near-loop task tables: blocked → list of blocks, serial → one list."""
    t = cds.tree
    def entry(i, j):
        return (cds.near(i, j), int(t.start[i]), int(t.stop[i]),
                int(t.start[j]), int(t.stop[j]))
    if blocked:
        return [
            tuple(entry(i, j) for (i, j) in block)
            for block in cds.near_blockset.blocks
        ]
    pairs = sorted(cds.factors.near_blocks)
    return [tuple(entry(i, j) for (i, j) in pairs)]


def _far_tables(cds: CDSMatrix, blocked: bool):
    """Coupling-loop task tables; entries are (B, i, j)."""
    def entry(i, j):
        return (cds.far(i, j), int(i), int(j))
    if blocked:
        return [
            tuple(entry(i, j) for (i, j) in block)
            for block in cds.far_blockset.blocks
        ]
    pairs = sorted(cds.factors.coupling)
    return [tuple(entry(i, j) for (i, j) in pairs)]


def _node_op(cds: CDSMatrix, v: int):
    """Encode one tree-loop op for node v."""
    t = cds.tree
    gen = cds.basis(v)
    if t.is_leaf(v):
        return (OP_LEAF, v, gen, int(t.start[v]), int(t.stop[v]), 0)
    lc, rc = int(t.lchild[v]), int(t.rchild[v])
    return (OP_INTERIOR, v, gen, lc, rc, int(cds.factors.srank(lc)))


def _coarsen_tables(cds: CDSMatrix, coarsenset: CoarsenSet, peel: bool):
    """Upward-pass tables: list of levels, each a list of sub-tree op tuples.

    With peeling, the last coarsen level is returned separately as a flat op
    list executed as straight-line code (standing in for the paper's
    parallel-BLAS peeled root iteration).
    """
    levels = [
        [tuple(_node_op(cds, v) for v in st.nodes) for st in cl.subtrees]
        for cl in coarsenset.levels
    ]
    peeled: tuple = ()
    if peel and levels:
        last = levels.pop()
        peeled = tuple(op for st in last for op in st)
    return levels, peeled


def _serial_tree_tables(cds: CDSMatrix):
    """Un-coarsened upward table: one subtree holding the whole post-order."""
    order = [
        v for v in cds.tree.postorder()
        if v != 0 and cds.factors.srank(v) > 0
    ]
    return [[tuple(_node_op(cds, v) for v in order)]], ()


# --------------------------------------------------------------------------
# Source emission.
# --------------------------------------------------------------------------

_PROLOGUE = '''\
def {name}(W, Y, pool=None):
    """Generated HMatrix-matrix multiplication (tree order).

    Lowering: near={near_mode}, coupling={far_mode}, tree={tree_mode},
    peeled_root={peel}.
    """
    Q = W.shape[1]
    T = [None] * NUM_NODES
    S = [None] * NUM_NODES
'''

_NEAR_BLOCKED = '''
    # Blocked loop over the near blockset: blocks write disjoint Y rows,
    # so the loop over blocks is fully parallel (no reductions).
    def _near_block(block):
        for D, si, ei, sj, ej in block:
            Y[si:ei] += D @ W[sj:ej]
    _run_parallel(pool, _near_block, NEAR_TABLE)
'''

_NEAR_SERIAL = '''
    # Serial reduction loop over near interactions.
    for block in NEAR_TABLE:
        for D, si, ei, sj, ej in block:
            Y[si:ei] += D @ W[sj:ej]
'''

_UP_SUBTREE_FN = '''
    def _up_subtree(ops):
        for op, v, G, a, b, rlc in ops:
            if op == OP_LEAF:
                T[v] = G.T @ W[a:b]
            else:
                Tl = T[a]; Tr = T[b]
                T[v] = G[:rlc].T @ Tl + G[rlc:].T @ Tr
'''

_UP_COARSENED = '''
    # Coarsened loop over the CTree (upward): sequential over coarsen
    # levels, parallel over load-balanced sub-trees inside each level.
    for level in UP_LEVELS:
        _run_parallel(pool, _up_subtree, level)
'''

_UP_PEELED = '''
    # Peeled root iteration: the top coarsen level has little task
    # parallelism, so its node GEMMs run as straight-line (parallel-BLAS)
    # calls instead of sub-tree tasks.
    _up_subtree(UP_PEELED)
'''

_COUPLING_BLOCKED = '''
    # Blocked loop over the far blockset (B blocks): same-output far
    # interactions share a block, so no reduction across blocks.
    def _coupling_block(block):
        for B, i, j in block:
            contrib = B @ T[j]
            if S[i] is None:
                S[i] = contrib
            else:
                S[i] += contrib
    _run_parallel(pool, _coupling_block, FAR_TABLE)
'''

_COUPLING_SERIAL = '''
    # Serial reduction loop over far interactions.
    for block in FAR_TABLE:
        for B, i, j in block:
            contrib = B @ T[j]
            if S[i] is None:
                S[i] = contrib
            else:
                S[i] += contrib
'''

_DOWN_SUBTREE_FN = '''
    def _down_subtree(ops):
        for op, v, G, a, b, rlc in ops:
            sv = S[v]
            if sv is None:
                continue
            if op == OP_LEAF:
                Y[a:b] += G @ sv
            else:
                top = G[:rlc] @ sv
                bot = G[rlc:] @ sv
                S[a] = top if S[a] is None else S[a] + top
                S[b] = bot if S[b] is None else S[b] + bot
'''

_DOWN_PEELED = '''
    # Peeled root iteration of the downward pass (runs first: top of tree).
    _down_subtree(DOWN_PEELED)
'''

_DOWN_COARSENED = '''
    # Coarsened downward pass: coarsen levels in reverse, sub-trees parallel,
    # node order inside each sub-tree reversed (parents before children).
    for level in DOWN_LEVELS:
        _run_parallel(pool, _down_subtree, level)
'''

_EPILOGUE = '''
    return Y
'''


def generate_evaluator(
    cds: CDSMatrix,
    ir: EvaluationIR | None = None,
    decision: LoweringDecision | None = None,
    block_threshold: int | None = None,
    far_block_threshold: int | None = None,
    coarsen_threshold: int = 4,
    low_level: bool = True,
    name: str = "hmatmul",
) -> GeneratedEvaluator:
    """Lower the IR and compile the specialized evaluator for ``cds``."""
    from repro.codegen.ir import build_ir

    if ir is None:
        ir = build_ir(
            cds.factors,
            coarsenset=cds.coarsenset,
            near_blockset=cds.near_blockset,
            far_blockset=cds.far_blockset,
        )
    if decision is None:
        decision = decide_lowering(
            ir,
            block_threshold=block_threshold,
            far_block_threshold=far_block_threshold,
            coarsen_threshold=coarsen_threshold,
            low_level=low_level,
        )

    near_table = _near_tables(cds, decision.block_near)
    far_table = _far_tables(cds, decision.block_far)
    if decision.coarsen:
        up_levels, up_peeled = _coarsen_tables(
            cds, cds.coarsenset, decision.peel_root
        )
    else:
        up_levels, up_peeled = _serial_tree_tables(cds)

    # Downward tables: reversed levels, reversed ops within each sub-tree.
    down_levels = [
        [tuple(reversed(st)) for st in level] for level in reversed(up_levels)
    ]
    down_peeled = tuple(reversed(up_peeled))

    # ---- assemble source ---------------------------------------------------
    parts = [
        _PROLOGUE.format(
            name=name,
            near_mode="blocked" if decision.block_near else "serial",
            far_mode="blocked" if decision.block_far else "serial",
            tree_mode="coarsened" if decision.coarsen else "serial",
            peel=decision.peel_root,
        )
    ]
    parts.append(_NEAR_BLOCKED if decision.block_near else _NEAR_SERIAL)
    parts.append(_UP_SUBTREE_FN)
    parts.append(_UP_COARSENED)
    if decision.peel_root and up_peeled:
        parts.append(_UP_PEELED)
    parts.append(_COUPLING_BLOCKED if decision.block_far else _COUPLING_SERIAL)
    parts.append(_DOWN_SUBTREE_FN)
    if decision.peel_root and down_peeled:
        parts.append(_DOWN_PEELED)
    parts.append(_DOWN_COARSENED)
    parts.append(_EPILOGUE)
    source = "".join(parts)

    env = {
        "NUM_NODES": cds.tree.num_nodes,
        "NEAR_TABLE": near_table,
        "FAR_TABLE": far_table,
        "UP_LEVELS": up_levels,
        "UP_PEELED": up_peeled,
        "DOWN_LEVELS": down_levels,
        "DOWN_PEELED": down_peeled,
        "OP_LEAF": OP_LEAF,
        "_run_parallel": _run_parallel,
    }
    code = compile(source, filename=f"<matrox-generated:{name}>", mode="exec")
    exec(code, env)
    return GeneratedEvaluator(
        source=source, decision=decision, cds=cds, _fn=env[name], name=name
    )


# --------------------------------------------------------------------------
# Batched (bucketed batched-GEMM) emission.
#
# The reduction loops (near, coupling) lower to *row panels*: all blocks
# sharing an output node concatenate into one wide generator panel, so the
# whole reduction for that node is a single 2-D GEMM against gathered
# operand rows, scattered back by a plain slice add (single writer, no
# atomics, no ``np.add.at``). The tree loops lower to *stacked GEMMs* over
# the CDS shape buckets, one ``np.matmul`` per (level, role, shape) group.
# Either way the per-block interpreter dispatch leaves the critical path.
# --------------------------------------------------------------------------

def _runs(segments: list[tuple[int, int]]):
    """Merge sorted ``[start, stop)`` segments into maximal contiguous runs.

    The gather of a row panel's operand rows then executes as a handful of
    ``memcpy``-speed slice copies instead of per-element fancy indexing —
    in tree order, a node's near/far neighbours are mostly contiguous.
    """
    merged: list[list[int]] = []
    for a, b in segments:
        if merged and merged[-1][1] == a:
            merged[-1][1] = b
        else:
            merged.append([a, b])
    return tuple((int(a), int(b)) for a, b in merged)


# A panel whose gather runs span a nearly-contiguous range is zero-padded
# to the full span instead: up to this much extra compute buys an operand
# that is a pure view of the source (no gather copy, no buffer traffic).
_PAD_LIMIT = 1.3


def _row_panel_tables(pairs, row_range, col_range, blocks):
    """Row panels for one reduction loop: (panel, gather runs, K, si, ei).

    ``row_range``/``col_range`` map a node id to its ``[start, stop)`` rows
    in the output/operand panel; ``blocks[(i, j)]`` is the generator. A
    single gather run executes against a *view* of the operand; when the
    runs almost tile their span, the panel is zero-padded over the holes to
    force that case (``_PAD_LIMIT`` bounds the wasted flops).
    """
    by_row: dict[int, list[int]] = {}
    for (i, j) in pairs:
        by_row.setdefault(i, []).append(j)
    table = []
    for i, js in by_row.items():
        js = sorted(js, key=lambda j: col_range(j)[0])
        segs = [col_range(j) for j in js]
        runs = _runs(segs)
        k = sum(b - a for a, b in runs)
        lo, hi = runs[0][0], runs[-1][1]
        m = blocks[(i, js[0])].shape[0]
        if len(runs) > 1 and hi - lo <= _PAD_LIMIT * k:
            panel = np.zeros((m, hi - lo))
            for j, (a, b) in zip(js, segs, strict=True):
                panel[:, a - lo:b - lo] = blocks[(i, j)]
            runs = ((lo, hi),)
            k = hi - lo
        else:
            panel = np.ascontiguousarray(
                np.hstack([blocks[(i, j)] for j in js])
            )
        si, ei = row_range(i)
        table.append((panel, runs, k, si, ei))
    return tuple(table)


def _batched_near_tables(cds: CDSMatrix):
    t = cds.tree

    def rng(v):
        return (int(t.start[v]), int(t.stop[v]))

    blocks = {p: cds.near(*p) for p in cds.near_visit_order()}
    return _row_panel_tables(cds.near_visit_order(), rng, rng, blocks)


def _rank_offsets(cds: CDSMatrix) -> tuple[dict[int, int], int]:
    """Row offsets of each basis node's skeleton block in the flat T/S panel."""
    off: dict[int, int] = {}
    total = 0
    for v in cds.basis_nodes():
        off[v] = total
        total += cds.factors.srank(v)
    return off, total


def _batched_tree_tables(cds: CDSMatrix, toff: dict[int, int]):
    """Upward/downward level tables over the basis shape buckets.

    Upward entries are ``(G^T stack, gather, t_rows, from_w)`` executing
    ``T[t_rows] = (G^T @ src[gather]).reshape(-1, Q)``; downward entries
    are ``(G stack, s_rows, scatter, to_y)`` executing the transpose.
    Interior transfers read/write the children's skeleton rows in lc-then-rc
    order, which keeps a bucket well-shaped even when the lc/rc rank split
    differs between its members.
    """
    t = cds.tree
    srank = cds.factors.srank
    up_levels = []
    down_levels = []
    for level in cds.basis_level_buckets():
        ups, downs = [], []
        for bucket in level:
            G = bucket.gather(cds.basis_buf)
            # Transposed *view* of the same stack (np.matmul lowers it to
            # BLAS transpose flags) — the generators are stored once.
            GT = G.transpose(0, 2, 1)
            if bucket.kind == "leaf":
                gather = np.stack([
                    np.arange(t.start[v], t.stop[v]) for v in bucket.keys
                ])
                from_w = True
            else:
                gather = np.stack([
                    np.concatenate([
                        toff[int(t.lchild[v])]
                        + np.arange(srank(int(t.lchild[v]))),
                        toff[int(t.rchild[v])]
                        + np.arange(srank(int(t.rchild[v]))),
                    ])
                    for v in bucket.keys
                ])
                from_w = False
            own = np.concatenate([
                toff[v] + np.arange(srank(v)) for v in bucket.keys
            ])
            ups.append((GT, gather, own, from_w))
            # Downward: same bucket transposed — read own rows, scatter to
            # the gather rows (W rows become Y rows, child T rows S rows).
            own2d = own.reshape(bucket.batch, -1)
            downs.append((G, own2d, gather.ravel(), from_w))
        up_levels.append(tuple(ups))
        down_levels.append(tuple(downs))
    return tuple(up_levels), tuple(reversed(down_levels))


def _batched_far_tables(cds: CDSMatrix, toff: dict[int, int]):
    srank = cds.factors.srank

    def rng(v):
        return (toff[v], toff[v] + srank(v))

    blocks = {p: cds.far(*p) for p in cds.far_visit_order()}
    return _row_panel_tables(cds.far_visit_order(), rng, rng, blocks)


_BATCHED_SOURCE = '''\
def {name}(W, Y, pool=None):
    """Generated batched HMatrix-matrix multiplication (tree order).

    Lowering: near/coupling=batched row-panel 2-D GEMMs, tree=batched
    stacked GEMMs over the CDS shape buckets. The pool argument is
    accepted for interface parity and ignored: the fat kernels already
    saturate BLAS without task-level threading.
    """
    Q = W.shape[1]
    if Q == 0:
        return Y
    T = np.empty((RANK_ROWS, Q))
    S = np.zeros((RANK_ROWS, Q))
    buf = np.empty((MAX_K, Q))

    # Reduction loops: one wide row-panel GEMM per output node. A single
    # writer owns each output range, so the update is a plain slice add;
    # a single-run gather is a view of the source, scattered gathers copy
    # their few contiguous runs into the shared buffer.
    def _row_panels(panels, src, out):
        for panel, runs, k, si, ei in panels:
            if len(runs) == 1:
                out[si:ei] += panel @ src[runs[0][0]:runs[0][1]]
                continue
            gat = buf[:k]
            o = 0
            for a, b in runs:
                gat[o:o + b - a] = src[a:b]
                o += b - a
            out[si:ei] += panel @ gat

    # Near loop.
    _row_panels(NEAR_PANELS, W, Y)

    # Upward pass: levels bottom-up; inside a level every bucket is one
    # stacked GEMM writing disjoint skeleton rows of T.
    for level in UP_LEVELS:
        for GT, gather, t_rows, from_w in level:
            src = W if from_w else T
            T[t_rows] = np.matmul(GT, src[gather]).reshape(-1, Q)

    # Coupling loop, reducing into the S panel.
    _row_panels(FAR_PANELS, T, S)

    # Downward pass: levels top-down; leaf buckets scatter into Y rows,
    # interior buckets into the children's S rows (disjoint per level).
    for level in DOWN_LEVELS:
        for G, s_rows, scatter, to_y in level:
            P = np.matmul(G, S[s_rows]).reshape(-1, Q)
            if to_y:
                Y[scatter] += P
            else:
                S[scatter] += P
    return Y
'''


def generate_batched_evaluator(
    cds: CDSMatrix,
    ir: EvaluationIR | None = None,
    decision: LoweringDecision | None = None,
    q_chunk: int | None = 256,
    name: str = "hmatmul_batched",
) -> GeneratedEvaluator:
    """Compile the bucketed batched-GEMM evaluator for ``cds``.

    The returned evaluator computes exactly what :func:`generate_evaluator`
    computes, but executes one stacked ``np.matmul`` per shape bucket.
    ``q_chunk`` bounds the panel width of one pass (``None`` disables
    streaming and runs any Q in a single pass).
    """
    from repro.codegen.ir import build_ir
    from repro.codegen.lowering import decide_lowering, lower_batched

    if ir is None:
        ir = build_ir(
            cds.factors,
            coarsenset=cds.coarsenset,
            near_blockset=cds.near_blockset,
            far_blockset=cds.far_blockset,
        )
    if decision is None:
        decision = decide_lowering(ir)
    decision = lower_batched(ir, decision)

    toff, rank_rows = _rank_offsets(cds)
    up_levels, down_levels = _batched_tree_tables(cds, toff)
    near_panels = _batched_near_tables(cds)
    far_panels = _batched_far_tables(cds, toff)
    max_k = max(
        (e[2] for e in near_panels + far_panels if len(e[1]) > 1),
        default=1,
    )
    env = {
        "np": np,
        "RANK_ROWS": rank_rows,
        "MAX_K": max(max_k, 1),
        "NEAR_PANELS": near_panels,
        "FAR_PANELS": far_panels,
        "UP_LEVELS": up_levels,
        "DOWN_LEVELS": down_levels,
    }
    source = _BATCHED_SOURCE.format(name=name)
    code = compile(source, filename=f"<matrox-generated:{name}>", mode="exec")
    exec(code, env)
    return GeneratedEvaluator(
        source=source, decision=decision, cds=cds, _fn=env[name], name=name,
        q_chunk=q_chunk,
    )
