"""Internal representation of the HMatrix-matrix multiplication.

The IR captures the four abstract loop nests of the evaluation (Fig. 1d)
before lowering decides their final shape:

* ``near``      — reduction loop over near interactions (D blocks),
* ``upward``    — carried-dependency loop over the CTree, bottom-up (V/E),
* ``coupling``  — reduction loop over far interactions (B blocks),
* ``downward``  — carried-dependency loop over the CTree, top-down (U/E).

Each loop records its iteration space (interaction pairs or node order) so
lowering can rewrite it to iterate over a structure set instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.structure_sets import BlockSet, CoarsenSet
from repro.compression.factors import Factors


@dataclass
class LoopNest:
    """One abstract loop of the evaluation program."""

    name: str                       # "near" | "upward" | "coupling" | "downward"
    kind: str                       # "reduction" | "tree"
    iterations: list = field(default_factory=list)
    # "serial" | "blocked" | "coarsened" | "batched" — "batched" replaces
    # the per-iteration GEMMs with one stacked GEMM per CDS shape bucket.
    lowered_to: str = "serial"

    @property
    def trip_count(self) -> int:
        return len(self.iterations)


@dataclass
class EvaluationIR:
    """The whole evaluation program plus the structure sets available to it."""

    loops: dict[str, LoopNest]
    factors: Factors
    coarsenset: CoarsenSet | None = None
    near_blockset: BlockSet | None = None
    far_blockset: BlockSet | None = None

    def loop(self, name: str) -> LoopNest:
        return self.loops[name]


def build_ir(
    factors: Factors,
    coarsenset: CoarsenSet | None = None,
    near_blockset: BlockSet | None = None,
    far_blockset: BlockSet | None = None,
) -> EvaluationIR:
    """Construct the un-lowered IR from compression output."""
    tree = factors.tree
    htree = factors.htree
    basis_nodes = [
        v for v in tree.postorder() if factors.srank(v) > 0
    ]
    loops = {
        "near": LoopNest("near", "reduction", htree.near_pairs()),
        "upward": LoopNest("upward", "tree", list(basis_nodes)),
        "coupling": LoopNest("coupling", "reduction", htree.far_pairs()),
        "downward": LoopNest("downward", "tree", list(reversed(basis_nodes))),
    }
    return EvaluationIR(
        loops=loops,
        factors=factors,
        coarsenset=coarsenset,
        near_blockset=near_blockset,
        far_blockset=far_blockset,
    )
