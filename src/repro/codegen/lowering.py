"""Lowering decisions: when block / coarsen / low-level lowering apply.

The paper gates each lowering on a threshold so thread-launch overhead is
amortised: block lowering requires more interactions than ``block_threshold``
(default: the number of leaf nodes), coarsen lowering requires more tree
levels than ``coarsen_threshold`` (default 4). Root peeling (the low-level
transform) applies whenever coarsen lowering does and the top of the tree
has too little task parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.ir import EvaluationIR


@dataclass(frozen=True)
class LoweringDecision:
    """Which lowerings the generated code will contain, and why."""

    block_near: bool
    block_far: bool
    coarsen: bool
    peel_root: bool
    block_threshold: int
    far_block_threshold: int
    coarsen_threshold: int
    reasons: tuple[str, ...] = ()


def decide_lowering(
    ir: EvaluationIR,
    block_threshold: int | None = None,
    far_block_threshold: int | None = None,
    coarsen_threshold: int = 4,
    low_level: bool = True,
) -> LoweringDecision:
    """Apply the paper's threshold rules to the IR.

    ``block_threshold`` defaults to the number of leaf nodes (the paper's
    architecture-derived default); with HSS structures the number of near
    interactions equals the number of leaves and never *exceeds* it, so
    block lowering stays off — reproducing "block lowering is never
    activated for HSS". The far loop gets its own threshold defaulting to
    twice the node count: HSS's sibling-only coupling list (about one B per
    node) stays below it and remains fused with the tree sweep, while the
    denser far lists of geometric/budget H2 structures exceed it.
    """
    tree = ir.factors.tree
    n_leaves = len(tree.leaves)
    if block_threshold is None:
        block_threshold = n_leaves
    if far_block_threshold is None:
        far_block_threshold = 2 * tree.num_nodes

    reasons = []
    near_n = ir.loop("near").trip_count
    far_n = ir.loop("coupling").trip_count
    block_near = near_n > block_threshold and ir.near_blockset is not None
    block_far = far_n > far_block_threshold and ir.far_blockset is not None
    reasons.append(
        f"near interactions {near_n} {'>' if block_near else '<='} "
        f"block_threshold {block_threshold}"
    )
    reasons.append(
        f"far interactions {far_n} {'>' if block_far else '<='} "
        f"far_block_threshold {far_block_threshold}"
    )

    n_levels = tree.height + 1
    coarsen = n_levels > coarsen_threshold and ir.coarsenset is not None
    reasons.append(
        f"tree levels {n_levels} {'>' if coarsen else '<='} "
        f"coarsen_threshold {coarsen_threshold}"
    )

    peel = bool(low_level and coarsen and ir.coarsenset.num_levels >= 1)
    if peel:
        reasons.append("root iteration peeled for BLAS-level parallelism")

    # Record the decision on the IR loops.
    ir.loop("near").lowered_to = "blocked" if block_near else "serial"
    ir.loop("coupling").lowered_to = "blocked" if block_far else "serial"
    ir.loop("upward").lowered_to = "coarsened" if coarsen else "serial"
    ir.loop("downward").lowered_to = "coarsened" if coarsen else "serial"

    return LoweringDecision(
        block_near=block_near,
        block_far=block_far,
        coarsen=coarsen,
        peel_root=peel,
        block_threshold=block_threshold,
        far_block_threshold=far_block_threshold,
        coarsen_threshold=coarsen_threshold,
        reasons=tuple(reasons),
    )
