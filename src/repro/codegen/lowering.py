"""Lowering decisions: when block / coarsen / low-level / batch lowering apply.

The paper gates each lowering on a threshold so thread-launch overhead is
amortised: block lowering requires more interactions than ``block_threshold``
(default: the number of leaf nodes), coarsen lowering requires more tree
levels than ``coarsen_threshold`` (default 4). Root peeling (the low-level
transform) applies whenever coarsen lowering does and the top of the tree
has too little task parallelism.

Batch lowering (``lowered_to="batched"``) rewrites every loop to execute
one stacked GEMM per CDS shape bucket instead of one small GEMM per
iteration, eliminating the per-block dispatch overhead of the interpreted
executor. Its cost-model gate is *bucket occupancy*: batching only pays
when the mean number of same-shape generators per bucket reaches
``batch_threshold`` (default 2), otherwise the gather/scatter traffic buys
no kernel-launch amortisation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.codegen.ir import EvaluationIR


@dataclass(frozen=True)
class LoweringDecision:
    """Which lowerings the generated code will contain, and why."""

    block_near: bool
    block_far: bool
    coarsen: bool
    peel_root: bool
    block_threshold: int
    far_block_threshold: int
    coarsen_threshold: int
    reasons: tuple[str, ...] = ()
    batch: bool = False
    batch_threshold: float = 2.0


def batch_occupancy(ir: EvaluationIR) -> float:
    """Mean GEMMs fused per batched kernel across all four loops.

    The reduction loops fuse all interactions sharing an output node into
    one row-panel GEMM, so their fusion factor is interactions per distinct
    output node; the tree loops fuse each (level, role, shape) bucket into
    one stacked GEMM. Near 1.0 (e.g. HSS: a diagonal-only near list and
    sibling-only coupling, one block per output node) batching degenerates
    to the serial loop plus gather traffic and is not worth compiling.
    """
    factors = ir.factors
    tree = factors.tree
    kernels = 0
    gemms = 0
    for loop in ("near", "coupling"):
        rows = {i for (i, _j) in ir.loop(loop).iterations}
        kernels += len(rows)
        gemms += ir.loop(loop).trip_count
    buckets: dict[tuple, int] = {}
    for v in ir.loop("upward").iterations:
        if v == 0:
            continue
        gen = factors.leaf_basis[v] if tree.is_leaf(v) else factors.transfer[v]
        key = (int(tree.level[v]), tree.is_leaf(v), gen.shape)
        buckets[key] = buckets.get(key, 0) + 1
    kernels += len(buckets)
    gemms += sum(buckets.values())
    return gemms / kernels if kernels else 0.0


def lower_batched(ir: EvaluationIR, base: LoweringDecision) -> LoweringDecision:
    """Rewrite all four loop annotations to the batched lowering."""
    for name in ("near", "upward", "coupling", "downward"):
        ir.loop(name).lowered_to = "batched"
    return replace(
        base,
        batch=True,
        reasons=base.reasons + ("all loops lowered to bucketed batched GEMMs",),
    )


def decide_lowering(
    ir: EvaluationIR,
    block_threshold: int | None = None,
    far_block_threshold: int | None = None,
    coarsen_threshold: int = 4,
    low_level: bool = True,
    batch_threshold: float = 2.0,
) -> LoweringDecision:
    """Apply the paper's threshold rules to the IR.

    ``block_threshold`` defaults to the number of leaf nodes (the paper's
    architecture-derived default); with HSS structures the number of near
    interactions equals the number of leaves and never *exceeds* it, so
    block lowering stays off — reproducing "block lowering is never
    activated for HSS". The far loop gets its own threshold defaulting to
    twice the node count: HSS's sibling-only coupling list (about one B per
    node) stays below it and remains fused with the tree sweep, while the
    denser far lists of geometric/budget H2 structures exceed it.
    """
    tree = ir.factors.tree
    n_leaves = len(tree.leaves)
    if block_threshold is None:
        block_threshold = n_leaves
    if far_block_threshold is None:
        far_block_threshold = 2 * tree.num_nodes

    reasons = []
    near_n = ir.loop("near").trip_count
    far_n = ir.loop("coupling").trip_count
    block_near = near_n > block_threshold and ir.near_blockset is not None
    block_far = far_n > far_block_threshold and ir.far_blockset is not None
    reasons.append(
        f"near interactions {near_n} {'>' if block_near else '<='} "
        f"block_threshold {block_threshold}"
    )
    reasons.append(
        f"far interactions {far_n} {'>' if block_far else '<='} "
        f"far_block_threshold {far_block_threshold}"
    )

    n_levels = tree.height + 1
    coarsen = n_levels > coarsen_threshold and ir.coarsenset is not None
    reasons.append(
        f"tree levels {n_levels} {'>' if coarsen else '<='} "
        f"coarsen_threshold {coarsen_threshold}"
    )

    peel = bool(low_level and coarsen and ir.coarsenset.num_levels >= 1)
    if peel:
        reasons.append("root iteration peeled for BLAS-level parallelism")

    # Batch gate: is a bucketed batched-GEMM executor worth compiling?
    # (The standard lowering annotations below are unaffected — the batched
    # evaluator is a separate compiled artifact; see ``lower_batched``.)
    occupancy = batch_occupancy(ir)
    batch = occupancy >= batch_threshold
    reasons.append(
        f"bucket occupancy {occupancy:.1f} "
        f"{'>=' if batch else '<'} batch_threshold {batch_threshold}"
    )

    # Record the decision on the IR loops.
    ir.loop("near").lowered_to = "blocked" if block_near else "serial"
    ir.loop("coupling").lowered_to = "blocked" if block_far else "serial"
    ir.loop("upward").lowered_to = "coarsened" if coarsen else "serial"
    ir.loop("downward").lowered_to = "coarsened" if coarsen else "serial"

    return LoweringDecision(
        block_near=block_near,
        block_far=block_far,
        coarsen=coarsen,
        peel_root=peel,
        block_threshold=block_threshold,
        far_block_threshold=far_block_threshold,
        coarsen_threshold=coarsen_threshold,
        reasons=tuple(reasons),
        batch=batch,
        batch_threshold=batch_threshold,
    )
