"""Compiled executor tier: fused native evaluators, cached in PlanStore.

This is the last lowering step the paper leaves on the inspector side:
:mod:`repro.codegen.emit` already specializes Python source per HMatrix,
but its batched evaluator still re-derives nothing *and* still pays
Python dispatch per panel — slicing, branching, temporary allocation —
on every call. At Q=1 (the latency-critical serving shape) that
interpreter overhead dominates the actual GEMM work.

``order="compiled"`` closes the gap with a **fused executor**:

* every index table (gather runs, scatter rows, shape-bucket layouts)
  is precomputed once and frozen into flat arrays;
* all generator panels are copied into contiguous **arenas** so the hot
  loop streams one buffer instead of chasing hundreds of small arrays;
* per call, the driver only issues global gathers, 2-D/stacked GEMMs
  into **preallocated workspaces** (``np.matmul(..., out=...)``), and
  scatter-adds — same-shape coupling blocks collapse into stacked
  batched GEMMs;
* the driver itself is **emitted source** (``compile``/``exec``, like
  the rest of codegen) so the artifact records exactly what runs.

Two backends, selected by a capability probe:

* ``"numpy-fused"`` — always available, zero new dependencies; gathers
  and scatters are vectorized NumPy ops.
* ``"numba"`` — when :mod:`numba` is importable (never a hard
  dependency), the gather/scatter loops are JIT-compiled; GEMMs still go
  through ``np.matmul`` so results stay **bit-identical** to
  ``order="batched"`` on either backend.

Bit-identity contract: for narrow panels the fused driver performs the
*same* floating-point operations in the *same* accumulation order as the
batched evaluator (stacked GEMMs are bitwise equal to their per-slice
2-D calls; gathers/scatters only move bytes), so outputs are
byte-identical. Panels wider than :data:`NARROW_Q_MAX` columns delegate
to the batched evaluator outright — at those widths the work is
BLAS-bound and fusion has nothing left to win, so delegation keeps
parity *and* bit-identity by construction.

Artifacts (:class:`CompiledArtifact`: index tables, panel arenas,
workspace plan, emitted source) persist in the PlanStore tier
``"compiled"``, keyed by HMatrix fingerprint x :func:`~repro.host.host_signature`
— registered through the :class:`~repro.api.store.ArtifactTier` API, so
this module plugs into the store without touching :mod:`repro.core.io`.
A warm Session reloads them with **zero recompiles**
(:class:`CompiledStats` counts builds vs store hits). Host-mismatched,
version-skewed, or backend-unavailable artifacts degrade to
``order="batched"`` with a typed fallback counter — never an exception.
"""

from __future__ import annotations

import importlib.util
import json
import os
import threading
from dataclasses import dataclass, field, replace as _dc_replace

import numpy as np

from repro.analysis.codegen_check import AnalysisError, verify_artifact
from repro.api.store import ArtifactTier, PlanStore, register_tier
from repro.codegen.emit import (
    GeneratedEvaluator,
    _batched_far_tables,
    _batched_near_tables,
    _batched_tree_tables,
    _rank_offsets,
)
from repro.core.io import PlanStoreError
from repro.observability.sync import make_lock, make_rlock
from repro.host import host_key, host_signature
from repro.tuning.autotune import AutotuneBackend, register_autotune_backend
from repro.tuning.profile import hmatrix_fingerprint

__all__ = [
    "COMPILED_FORMAT_VERSION",
    "NARROW_Q_MAX",
    "CompiledArtifact",
    "CompiledCache",
    "CompiledEvaluator",
    "CompiledStats",
    "available_backends",
    "compile_evaluator",
    "compiled_key",
    "default_compiled_cache",
    "evaluator_from_artifact",
    "load_compiled_artifact",
    "reset_default_compiled_cache",
    "save_compiled_artifact",
    "select_backend",
]

#: Payload format version of the compiled tier (bump on layout change;
#: skewed artifacts degrade to a rebuild, never a misread).
COMPILED_FORMAT_VERSION = 1

#: Panels at most this many columns run the fused narrow-Q driver; wider
#: panels delegate to the batched evaluator (BLAS-bound regime — fusion
#: wins nothing there, and delegation keeps bit-identity by construction).
NARROW_Q_MAX = 8

NUMPY_BACKEND = "numpy-fused"
NUMBA_BACKEND = "numba"

#: Environment override for the capability probe (CI pins its legs with
#: this): "numpy-fused" ignores an installed numba, "numba" requires it.
_BACKEND_ENV = "MATROX_COMPILED_BACKEND"


# --------------------------------------------------------------------------
# Capability probe + gather/scatter backends.
# --------------------------------------------------------------------------

def _numba_importable() -> bool:
    try:
        return importlib.util.find_spec("numba") is not None
    except (ImportError, ValueError):  # pragma: no cover - broken meta_path
        return False


def available_backends() -> tuple[str, ...]:
    """Compiled backends usable on this host, preference-ordered.

    ``numpy-fused`` is always available; ``numba`` appears when the
    module is importable. ``MATROX_COMPILED_BACKEND`` narrows the probe
    (the CI legs pin it).
    """
    forced = os.environ.get(_BACKEND_ENV, "").strip()
    if forced == NUMPY_BACKEND:
        return (NUMPY_BACKEND,)
    if forced == NUMBA_BACKEND:
        return (NUMBA_BACKEND,) if _numba_importable() else ()
    out = [NUMPY_BACKEND]
    if _numba_importable():
        out.append(NUMBA_BACKEND)
    return tuple(out)


def select_backend(requested: str | None = None) -> str:
    """The backend a fresh build should use (probe + optional request)."""
    avail = available_backends()
    if not avail:
        raise RuntimeError(
            f"no compiled backend available ({_BACKEND_ENV}="
            f"{os.environ.get(_BACKEND_ENV)!r} but numba is not importable)")
    if requested is None:
        return NUMBA_BACKEND if NUMBA_BACKEND in avail else NUMPY_BACKEND
    if requested not in (NUMPY_BACKEND, NUMBA_BACKEND):
        raise ValueError(
            f"unknown compiled backend {requested!r}; expected "
            f"{NUMPY_BACKEND!r} or {NUMBA_BACKEND!r}")
    if requested not in avail:
        raise RuntimeError(f"compiled backend {requested!r} is unavailable "
                           f"on this host (have {avail})")
    return requested


def _numpy_impls():
    def gather(src, idx, out):
        np.take(src, idx, axis=0, out=out)

    def scatter_add(dst, idx, src):
        dst[idx] += src

    def scatter_set(dst, idx, src):
        dst[idx] = src

    return gather, scatter_add, scatter_set


_numba_impls_cache = None


def _numba_impls():
    """JIT-compiled gather/scatter loops (compiled once per process).

    Only the data movement is jitted; every GEMM stays on ``np.matmul``
    (the same BLAS the batched evaluator calls), which is what keeps the
    numba backend bit-identical. Under the test suite's *fake* numba
    (an identity ``njit``), these run as plain Python loops — slow but
    still exact, which is all the equivalence tests need.
    """
    global _numba_impls_cache
    if _numba_impls_cache is None:
        import numba

        def _jit(fn):
            try:
                return numba.njit(fn, cache=True, nogil=True)
            except TypeError:  # fake/old numba without these kwargs
                return numba.njit(fn)

        def gather(src, idx, out):
            for i in range(idx.shape[0]):
                out[i, :] = src[idx[i], :]

        def scatter_add(dst, idx, src):
            for i in range(idx.shape[0]):
                dst[idx[i], :] += src[i, :]

        def scatter_set(dst, idx, src):
            for i in range(idx.shape[0]):
                dst[idx[i], :] = src[i, :]

        _numba_impls_cache = (_jit(gather), _jit(scatter_add),
                              _jit(scatter_set))
    return _numba_impls_cache


def _backend_impls(backend: str):
    if backend == NUMBA_BACKEND:
        return _numba_impls()
    return _numpy_impls()


# --------------------------------------------------------------------------
# Artifact: the persisted compiled plan.
# --------------------------------------------------------------------------

#: Flat tables a compiled artifact carries (all numpy arrays).
_TABLE_NAMES = (
    "near_specs", "near_gidx", "near_arena",
    "far_specs", "far_gidx", "far_arena",
    "fstack_specs", "fstack_orows", "fstack_arena",
    "up_specs", "up_gidx", "up_own", "up_level_sizes", "up_arena",
)


@dataclass
class CompiledArtifact:
    """A fully materialized compiled plan: everything the fused driver
    needs, with **no** re-derivation from the CDS at load time.

    ``meta`` records format version, backend, fingerprint, and the host
    signature the plan was laid out for; ``source`` is the emitted
    driver text; ``tables`` holds the index tables and panel arenas
    (:data:`_TABLE_NAMES`). The whole object round-trips through one
    ``.npz`` payload (:func:`save_compiled_artifact` /
    :func:`load_compiled_artifact`) under the PlanStore ``"compiled"``
    tier.
    """

    meta: dict
    source: str
    tables: dict

    def nbytes(self) -> int:
        return int(sum(a.nbytes for a in self.tables.values()))


def compiled_key(fingerprint: str, host: dict | None = None) -> tuple:
    """The PlanStore key of a compiled artifact: fingerprint x host."""
    return ("compiled", str(fingerprint),
            host_key(host if host is not None else host_signature()))


def save_compiled_artifact(artifact: CompiledArtifact, path) -> None:
    """Serialize one artifact to ``path`` (single ``.npz`` payload)."""
    header = json.dumps(artifact.meta, sort_keys=True, default=str)
    np.savez(path, meta=np.array(header), source=np.array(artifact.source),
             **artifact.tables)


def load_compiled_artifact(f) -> CompiledArtifact:
    """Deserialize an artifact; fails closed with :class:`PlanStoreError`.

    Any malformed, truncated, or structurally inconsistent payload
    raises — the PlanStore then quarantines the entry so the next
    request is a clean miss that rebuilds.
    """
    try:
        with np.load(f, allow_pickle=False) as z:
            names = set(z.files)
            missing = [n for n in ("meta", "source", *_TABLE_NAMES)
                       if n not in names]
            if missing:
                raise PlanStoreError(
                    f"compiled artifact is missing field(s) {missing}")
            meta = json.loads(str(z["meta"][()]))
            source = str(z["source"][()])
            tables = {n: z[n] for n in _TABLE_NAMES}
    except PlanStoreError:
        raise
    except Exception as exc:  # np.load/json raise a zoo of types
        raise PlanStoreError(
            f"compiled artifact is unreadable or truncated "
            f"({type(exc).__name__}: {exc})") from exc
    if not isinstance(meta, dict):
        raise PlanStoreError("compiled artifact meta is not a mapping")
    art = CompiledArtifact(meta=meta, source=source, tables=tables)
    _validate_tables(art)
    return art


def _validate_tables(art: CompiledArtifact) -> None:
    """Structural consistency checks (decode-time, after SHA-256).

    The store's hash catches torn/tampered *bytes*; this catches a
    payload that is valid npz but whose tables disagree with each other
    (e.g. a spec row pointing past its arena) — indexing from such a
    plan would read garbage or crash mid-evaluation.
    """
    t = art.tables

    def fail(msg):
        raise PlanStoreError(f"compiled artifact is inconsistent: {msg}")

    for name, cols in (("near_specs", 5), ("far_specs", 5),
                       ("fstack_specs", 5), ("up_specs", 6)):
        spec = t[name]
        if spec.size and (spec.ndim != 2 or spec.shape[1] != cols):
            fail(f"{name} has shape {spec.shape}, expected (*, {cols})")
    for specs, arena, szfn in (
            (t["near_specs"], t["near_arena"], lambda r: r[1] * r[2]),
            (t["far_specs"], t["far_arena"], lambda r: r[1] * r[2]),
            (t["fstack_specs"], t["fstack_arena"],
             lambda r: r[0] * r[1] * r[2]),
            (t["up_specs"], t["up_arena"], lambda r: r[0] * r[1] * r[2])):
        need = int(sum(szfn(row) for row in specs)) if specs.size else 0
        if arena.size != need:
            fail(f"arena holds {arena.size} values, specs need {need}")
    if (t["up_specs"].size
            and int(t["up_level_sizes"].sum()) != len(t["up_specs"])):
        fail("up_level_sizes does not partition up_specs")
    for gidx in (t["near_gidx"], t["far_gidx"], t["up_gidx"], t["up_own"],
                 t["fstack_orows"]):
        if gidx.size and gidx.min() < 0:
            fail("negative gather/scatter index")


# --------------------------------------------------------------------------
# Build: derive the flat tables from the CDS (shared with emit.py).
# --------------------------------------------------------------------------

def _expand_runs(runs) -> np.ndarray:
    return (np.concatenate([np.arange(a, b) for a, b in runs])
            if runs else np.empty(0, dtype=np.int64))


def build_artifact(cds, *, backend: str | None = None,
                   fingerprint: str = "", host: dict | None = None,
                   name: str = "hmatmul_compiled",
                   created: float | None = None) -> CompiledArtifact:
    """Lower one CDS matrix to a :class:`CompiledArtifact`.

    Reuses the exact table builders behind the batched evaluator
    (:func:`~repro.codegen.emit._batched_near_tables` and friends), so
    the fused plan is *derived from the same schedule* it must match
    bit-for-bit; it then freezes panels into arenas and gathers into
    global index tables.
    """
    backend = select_backend(backend)
    if backend == NUMBA_BACKEND:
        try:  # importable but broken numba must not poison the artifact
            _numba_impls()
        except Exception:  # noqa: BLE001 - any jit failure degrades
            backend = NUMPY_BACKEND

    toff, rank_rows = _rank_offsets(cds)
    near_panels = _batched_near_tables(cds)
    far_panels = _batched_far_tables(cds, toff)
    up_levels, _ = _batched_tree_tables(cds, toff)

    # ---- near: one 2-D GEMM per row panel --------------------------------
    near_specs, near_gidx, near_chunks = [], [], []
    for panel, runs, k, si, _ei in near_panels:
        m = panel.shape[0]
        if len(runs) == 1:
            near_specs.append((0, m, k, si, runs[0][0]))
        else:
            near_specs.append((1, m, k, si, sum(g.size for g in near_gidx)))
            near_gidx.append(_expand_runs(runs))
        near_chunks.append(np.ascontiguousarray(panel, dtype=np.float64)
                           .ravel())

    # ---- far: same-shape groups stack; the rest stay 2-D -----------------
    by_shape: dict[tuple, list[int]] = {}
    for idx, (panel, _runs, k, _si, _ei) in enumerate(far_panels):
        by_shape.setdefault((panel.shape[0], k), []).append(idx)
    stacked = {i for members in by_shape.values() if len(members) > 1
               for i in members}

    far_gidx: list[np.ndarray] = []
    fstack_specs, fstack_orows, fstack_chunks = [], [], []
    for (m, k), members in by_shape.items():
        if len(members) < 2:
            continue
        gat_off = sum(g.size for g in far_gidx)
        orow_off = sum(r.size for r in fstack_orows)
        for i in members:
            panel, runs, _k, si, ei = far_panels[i]
            far_gidx.append(_expand_runs(runs))
            fstack_orows.append(np.arange(si, si + m))
            fstack_chunks.append(
                np.ascontiguousarray(panel, dtype=np.float64).ravel())
        fstack_specs.append((len(members), m, k, gat_off, orow_off))

    far_specs, far_chunks = [], []
    for idx, (panel, runs, k, si, _ei) in enumerate(far_panels):
        if idx in stacked:
            continue
        m = panel.shape[0]
        if len(runs) == 1:
            far_specs.append((0, m, k, si, runs[0][0]))
        else:
            far_specs.append((1, m, k, si, sum(g.size for g in far_gidx)))
            far_gidx.append(_expand_runs(runs))
        far_chunks.append(np.ascontiguousarray(panel, dtype=np.float64)
                          .ravel())

    # ---- tree sweeps: shape buckets, one stacked GEMM each ---------------
    up_specs, up_gidx, up_own, up_level_sizes, up_chunks = [], [], [], [], []
    for level in up_levels:
        up_level_sizes.append(len(level))
        for GT, gather, own, from_w in level:
            batch, r, cols = GT.shape
            up_specs.append((batch, r, cols, sum(g.size for g in up_gidx),
                             sum(o.size for o in up_own), int(from_w)))
            up_gidx.append(gather.ravel())
            up_own.append(own)
            # Store G (batch, cols, r) contiguously; GT is its transpose
            # view at load — exactly how emit.py shares the stack.
            up_chunks.append(np.ascontiguousarray(
                GT.transpose(0, 2, 1), dtype=np.float64).ravel())

    def _cat_i(parts):
        return (np.concatenate(parts).astype(np.int64)
                if parts else np.empty(0, dtype=np.int64))

    def _cat_f(parts):
        return (np.concatenate(parts) if parts
                else np.empty(0, dtype=np.float64))

    def _spec(rows, cols):
        return (np.asarray(rows, dtype=np.int64) if rows
                else np.empty((0, cols), dtype=np.int64))

    tables = {
        "near_specs": _spec(near_specs, 5),
        "near_gidx": _cat_i(near_gidx),
        "near_arena": _cat_f(near_chunks),
        "far_specs": _spec(far_specs, 5),
        "far_gidx": _cat_i(far_gidx),
        "far_arena": _cat_f(far_chunks),
        "fstack_specs": _spec(fstack_specs, 5),
        "fstack_orows": _cat_i(fstack_orows),
        "fstack_arena": _cat_f(fstack_chunks),
        "up_specs": _spec(up_specs, 6),
        "up_gidx": _cat_i(up_gidx),
        "up_own": _cat_i(up_own),
        "up_level_sizes": np.asarray(up_level_sizes, dtype=np.int64),
        "up_arena": _cat_f(up_chunks),
    }
    counts = {
        "near_panels": len(near_specs),
        "far_singles": len(far_specs),
        "far_stacks": len(fstack_specs),
        "far_stack_members": len(fstack_orows),
        "up_buckets": len(up_specs),
        "levels": len(up_level_sizes),
    }
    meta = {
        "format_version": COMPILED_FORMAT_VERSION,
        "backend": backend,
        "dim": int(cds.dim),
        "rank_rows": int(rank_rows),
        "narrow_q": NARROW_Q_MAX,
        "name": name,
        "fingerprint": str(fingerprint),
        "host": dict(host if host is not None else host_signature()),
        "counts": counts,
        # Explicit input, never a clock sample (lint rule R004): two
        # builds from the same CDS must produce byte-identical payloads
        # unless the caller *chooses* to timestamp them.
        "created": created,
    }
    source = _SOURCE_TEMPLATE.format(
        name=name, backend=backend,
        counts=", ".join(f"{k}={v}" for k, v in sorted(counts.items())))
    return CompiledArtifact(meta=meta, source=source, tables=tables)


# --------------------------------------------------------------------------
# Runtime: emitted driver + prebound plan + per-width workspaces.
# --------------------------------------------------------------------------

_SOURCE_TEMPLATE = '''\
def {name}(W, Y, ws):
    """Compiled fused HMatrix-matrix multiplication (tree order, narrow Q).

    Backend: {backend}. Emitted for one HMatrix ({counts}); index
    tables and panel arenas are frozen in the artifact, workspaces are
    preallocated per RHS width. The driver only issues global gathers,
    GEMMs (np.matmul -> the same BLAS order="batched" calls, for bit
    identity), and scatter-adds.
    """
    mm = np.matmul
    T = ws.T
    S = ws.S
    S[:] = 0.0
    # Near loop: one 2-D GEMM per row panel. Single-run operands are
    # views of W; scattered operands come from one global gather. When
    # the panel row ranges tile [0, N) (ws.nout is bound), panels write
    # a Y-aligned arena and accumulate in ONE vectorized add — Y is
    # all-zero here, so 0.0 + x per element matches the batched
    # evaluator's per-panel adds bit-for-bit.
    if ws.ngat is not None:
        _gather(W, NEAR_GIDX, ws.ngat)
    if ws.nout is not None:
        for panel, src, out, ysl in ws.near_view:
            mm(panel, W[src], out=out)
        for panel, src, out, ysl in ws.near_gath:
            mm(panel, src, out=out)
        Y += ws.nout
    else:
        for panel, src, out, ysl in ws.near_view:
            mm(panel, W[src], out=out)
            Y[ysl] += out
        for panel, src, out, ysl in ws.near_gath:
            mm(panel, src, out=out)
            Y[ysl] += out
    # Upward sweep: one stacked GEMM per shape bucket, bottom-up.
    for GT, from_w, gidx, gbuf2, gbuf3, out3, out2, own in ws.up:
        _gather(W if from_w else T, gidx, gbuf2)
        mm(GT, gbuf3, out=out3)
        _scatter_set(T, own, out2)
    # Coupling loop: singles as 2-D GEMMs (T views or slices of one
    # global gather), same-shape groups as stacked GEMMs.
    if ws.fgat is not None:
        _gather(T, FAR_GIDX, ws.fgat)
    for panel, src, out, ssl in ws.far_view:
        mm(panel, src, out=out)
        S[ssl] += out
    for panel, src, out, ssl in ws.far_gath:
        mm(panel, src, out=out)
        S[ssl] += out
    for G3, X3, out3, out2, orows in ws.far_stack:
        mm(G3, X3, out=out3)
        _scatter_add(S, orows, out2)
    # Downward sweep: reversed levels; leaf buckets scatter into Y,
    # interior buckets into the children's S rows.
    for G, from_w, own, sbuf2, sbuf3, out3, out2, scat in ws.down:
        _gather(S, own, sbuf2)
        mm(G, sbuf3, out=out3)
        if from_w:
            _scatter_add(Y, scat, out2)
        else:
            _scatter_add(S, scat, out2)
    return Y
'''


class _Plan:
    """Q-independent prepared form of an artifact (views, python ints)."""

    __slots__ = ("dim", "rank_rows", "near", "near_dense", "near_gidx",
                 "far", "far_gidx", "fstacks", "up_levels")

    def __init__(self, art: CompiledArtifact):
        t = art.tables
        self.dim = int(art.meta["dim"])
        self.rank_rows = int(art.meta["rank_rows"])
        self.near_gidx = t["near_gidx"].astype(np.intp, copy=False)
        self.far_gidx = t["far_gidx"].astype(np.intp, copy=False)

        def panels(specs, arena, size):
            out, off = [], 0
            for row in specs:
                dims = [int(x) for x in row]
                n = size(dims)
                yield dims, arena[off:off + n]
                off += n

        self.near = []
        for (mode, m, k, si, a), chunk in panels(
                t["near_specs"], t["near_arena"], lambda d: d[1] * d[2]):
            self.near.append((mode, chunk.reshape(m, k), m, k, si, a))
        # Row panels usually tile [0, N) exactly (every row sits in one
        # leaf and every leaf emits one near panel); when they do, the
        # workspace lays the panel outputs in one Y-aligned arena and
        # the driver folds the per-panel adds into a single accumulate.
        self.near.sort(key=lambda e: e[4])
        ranges = [(e[4], e[4] + e[2]) for e in self.near]
        self.near_dense = bool(
            ranges and ranges[0][0] == 0 and ranges[-1][1] == self.dim
            and all(a[1] == b[0]
                    for a, b in zip(ranges, ranges[1:], strict=False)))
        self.far = []
        for (mode, m, k, si, a), chunk in panels(
                t["far_specs"], t["far_arena"], lambda d: d[1] * d[2]):
            self.far.append((mode, chunk.reshape(m, k), m, k, si, a))
        orows = t["fstack_orows"].astype(np.intp, copy=False)
        self.fstacks = []
        for (g, m, k, gat_off, orow_off), chunk in panels(
                t["fstack_specs"], t["fstack_arena"],
                lambda d: d[0] * d[1] * d[2]):
            self.fstacks.append((chunk.reshape(g, m, k), g, m, k, gat_off,
                                 orows[orow_off:orow_off + g * m]))
        gidx = t["up_gidx"].astype(np.intp, copy=False)
        own = t["up_own"].astype(np.intp, copy=False)
        buckets = []
        for (batch, r, cols, goff, ooff, from_w), chunk in panels(
                t["up_specs"], t["up_arena"], lambda d: d[0] * d[1] * d[2]):
            G = chunk.reshape(batch, cols, r)
            buckets.append((G, batch, r, cols,
                            gidx[goff:goff + batch * cols],
                            own[ooff:ooff + batch * r], bool(from_w)))
        self.up_levels = []
        i = 0
        for size in t["up_level_sizes"]:
            self.up_levels.append(buckets[i:i + int(size)])
            i += int(size)


class _Workspace:
    """Preallocated buffers + prebound views for one RHS width."""

    __slots__ = ("T", "S", "ngat", "fgat", "nout", "near_view", "near_gath",
                 "far_view", "far_gath", "far_stack", "up", "down")


def _build_workspace(plan: _Plan, q: int) -> _Workspace:
    ws = _Workspace()
    ws.T = np.empty((plan.rank_rows, q))
    ws.S = np.empty((plan.rank_rows, q))
    ws.ngat = (np.empty((len(plan.near_gidx), q))
               if len(plan.near_gidx) else None)
    ws.fgat = (np.empty((len(plan.far_gidx), q))
               if len(plan.far_gidx) else None)

    ws.near_view, ws.near_gath = [], []
    nout = np.empty((sum(e[2] for e in plan.near), q))
    ws.nout = nout if plan.near_dense else None
    o = 0
    for mode, panel, m, k, si, a in plan.near:
        # Dense tiling: plan.near is si-sorted, so laying outputs in
        # plan order makes nout row-aligned with Y.
        out = nout[o:o + m]
        o += m
        ysl = slice(si, si + m)
        if mode == 0:
            ws.near_view.append((panel, slice(a, a + k), out, ysl))
        else:
            ws.near_gath.append((panel, ws.ngat[a:a + k], out, ysl))

    ws.far_view, ws.far_gath = [], []
    fout = np.empty((sum(e[2] for e in plan.far), q))
    o = 0
    for mode, panel, m, k, si, a in plan.far:
        out = fout[o:o + m]
        o += m
        ssl = slice(si, si + m)
        if mode == 0:
            ws.far_view.append((panel, ws.T[a:a + k], out, ssl))
        else:
            ws.far_gath.append((panel, ws.fgat[a:a + k], out, ssl))

    ws.far_stack = []
    for G3, g, m, k, gat_off, orows in plan.fstacks:
        X3 = ws.fgat[gat_off:gat_off + g * k].reshape(g, k, q)
        out3 = np.empty((g, m, q))
        ws.far_stack.append((G3, X3, out3, out3.reshape(g * m, q), orows))

    ws.up, ws.down = [], []
    for level in plan.up_levels:
        for G, batch, r, cols, gidx, own, from_w in level:
            gbuf2 = np.empty((batch * cols, q))
            out3 = np.empty((batch, r, q))
            ws.up.append((G.transpose(0, 2, 1), from_w, gidx, gbuf2,
                          gbuf2.reshape(batch, cols, q), out3,
                          out3.reshape(batch * r, q), own))
    for level in reversed(plan.up_levels):
        for G, batch, r, cols, gidx, own, from_w in level:
            sbuf2 = np.empty((batch * r, q))
            out3 = np.empty((batch, cols, q))
            ws.down.append((G, from_w, own, sbuf2,
                            sbuf2.reshape(batch, r, q), out3,
                            out3.reshape(batch * cols, q), gidx))
    return ws


class _Runtime:
    """Shared mutable runtime of a CompiledEvaluator (survives
    ``dataclasses.replace``, so q_chunk overrides never recompile)."""

    __slots__ = ("plan", "fn", "workspaces", "lock", "calls")

    def __init__(self, plan, fn):
        self.plan = plan
        self.fn = fn
        self.workspaces: dict[int, _Workspace] = {}
        self.lock = make_lock("_Runtime.lock")
        self.calls = 0  # guarded-by: self.lock


@dataclass
class CompiledEvaluator:
    """A fused compiled HMatrix-matrix multiplication (tree order).

    Same call contract as :class:`~repro.codegen.emit.GeneratedEvaluator`
    (row order = tree order; :meth:`HMatrix.matmul` applies the
    permutation). Narrow panels (<= ``narrow_q`` columns) run the fused
    driver; wider panels delegate to ``batched`` — structurally the
    same schedule, so results are bit-identical either way.
    """

    artifact: CompiledArtifact
    batched: GeneratedEvaluator
    q_chunk: int | None = None
    name: str = "hmatmul_compiled"
    _rt: _Runtime | None = field(default=None, repr=False)

    def __post_init__(self):
        if self._rt is None:
            plan = _Plan(self.artifact)
            backend = self.artifact.meta.get("backend", NUMPY_BACKEND)
            gather, scatter_add, scatter_set = _backend_impls(backend)
            env = {
                "np": np,
                "NEAR_GIDX": plan.near_gidx,
                "FAR_GIDX": plan.far_gidx,
                "_gather": gather,
                "_scatter_add": scatter_add,
                "_scatter_set": scatter_set,
            }
            source = self.artifact.source
            code = compile(source, f"<matrox-compiled:{self.name}>", "exec")
            exec(code, env)
            fname = self.artifact.meta.get("name", self.name)
            self._rt = _Runtime(plan, env[fname])

    @property
    def source(self) -> str:
        return self.artifact.source

    @property
    def backend(self) -> str:
        return self.artifact.meta.get("backend", NUMPY_BACKEND)

    @property
    def decision(self):
        return self.batched.decision

    @property
    def cds(self):
        return self.batched.cds

    def _workspace(self, q: int) -> _Workspace:
        rt = self._rt
        ws = rt.workspaces.get(q)
        if ws is None:
            with rt.lock:
                ws = rt.workspaces.get(q)
                if ws is None:
                    ws = _build_workspace(rt.plan, q)
                    rt.workspaces[q] = ws
        return ws

    def __call__(self, W: np.ndarray, pool=None) -> np.ndarray:
        """Evaluate ``Y = K~ W`` (tree order). W: (N, Q) or (N,)."""
        W = np.ascontiguousarray(W, dtype=np.float64)
        squeeze = W.ndim == 1
        if squeeze:
            W = W[:, None]
        n = self._rt.plan.dim
        if W.shape[0] != n:
            raise ValueError(f"W has {W.shape[0]} rows, HMatrix dim is {n}")
        q = W.shape[1]
        if q == 0 or q > NARROW_Q_MAX:
            # Wide/degenerate panels: the batched evaluator's regime.
            b = self.batched
            if self.q_chunk is not None and b.q_chunk != self.q_chunk:
                b = _dc_replace(b, q_chunk=self.q_chunk)
            Y = b(W, pool=pool)
        else:
            Y = np.zeros_like(W)
            self._rt.fn(W, Y, self._workspace(q))
            with self._rt.lock:
                self._rt.calls += 1
        return Y[:, 0] if squeeze else Y


def evaluator_from_artifact(artifact: CompiledArtifact,
                            batched: GeneratedEvaluator) -> CompiledEvaluator:
    """Rehydrate a :class:`CompiledEvaluator` from a stored artifact.

    Pure table binding — nothing is re-derived from the CDS, which is
    what makes a warm start a zero-recompile operation.
    """
    if int(artifact.meta.get("dim", -1)) != int(batched.cds.dim):
        raise PlanStoreError(
            f"compiled artifact dim {artifact.meta.get('dim')!r} does not "
            f"match the HMatrix dim {batched.cds.dim}")
    return CompiledEvaluator(
        artifact=artifact, batched=batched,
        name=str(artifact.meta.get("name", "hmatmul_compiled")))


def compile_evaluator(H, *, backend: str | None = None,
                      name: str = "hmatmul_compiled") -> CompiledEvaluator:
    """Build a fused compiled evaluator for ``H`` (fresh tables).

    Raises ``ValueError`` when batch lowering was rejected for ``H``
    (the fused plan is derived from the batched schedule).
    """
    batched = H.batched_evaluator
    if batched is None:
        raise ValueError(
            "cannot compile: batch lowering was rejected for this HMatrix")
    art = build_artifact(H.cds, backend=backend,
                         fingerprint=hmatrix_fingerprint(H),
                         host=host_signature(), name=name)
    return evaluator_from_artifact(art, batched)


# --------------------------------------------------------------------------
# Cache: memory -> PlanStore -> build, with typed fallbacks.
# --------------------------------------------------------------------------

@dataclass
class CompiledStats:
    """Counters proving where compiled evaluators came from.

    ``builds`` increments only on a fresh table derivation — a warm
    Session restart over a populated store must keep it at zero.
    ``fallbacks`` maps a typed reason (``host_mismatch``,
    ``numba_missing``, ``version_skew``, ``fingerprint_mismatch``,
    ``store_corrupt``, ``no_batched_lowering``, ``build_error``,
    ``writeset_violation`` — the artifact failed the
    :func:`repro.analysis.codegen_check.verify_artifact` write-set
    proof) to how many times ``order="compiled"`` degraded to the
    batched path.
    """

    builds: int = 0
    memory_hits: int = 0
    store_hits: int = 0
    store_puts: int = 0
    fallbacks: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"builds": self.builds, "memory_hits": self.memory_hits,
                "store_hits": self.store_hits,
                "store_puts": self.store_puts,
                "fallbacks": dict(self.fallbacks)}


class CompiledCache:
    """Resolve the compiled evaluator of an HMatrix, durably.

    Resolution order: the evaluator attached to ``H`` (memory) → the
    PlanStore ``"compiled"`` tier (fingerprint x host key) → a fresh
    build (persisted back when a store is attached). Every degradation
    is a *typed counter*, never an exception: ``evaluator_for`` returns
    ``None`` and the caller runs ``order="batched"`` instead.
    """

    def __init__(self, store: PlanStore | None = None, *,
                 backend: str | None = None,
                 host: dict | None = None):
        self.store = store
        self.backend = backend
        self.host = dict(host) if host is not None else host_signature()
        self.stats = CompiledStats()
        self._lock = make_rlock("CompiledCache._lock")
        self._persisted: set[str] = set()  # guarded-by: self._lock

    def key(self, fingerprint: str) -> tuple:
        return compiled_key(fingerprint, self.host)

    def _fallback(self, reason: str) -> None:
        self.stats.fallbacks[reason] = self.stats.fallbacks.get(reason, 0) + 1

    def evaluator_for(self, H) -> CompiledEvaluator | None:
        """The compiled evaluator for ``H``, or ``None`` (degrade)."""
        with self._lock:
            if getattr(H, "_compiled_built", False):
                ev = H._compiled
                if ev is not None:
                    self.stats.memory_hits += 1
                    self._persist(ev)
                return ev
            batched = H.batched_evaluator
            if batched is None:
                self._fallback("no_batched_lowering")
                H.attach_compiled(None)
                return None
            fp = hmatrix_fingerprint(H)
            art = None
            if self.store is not None:
                try:
                    art = self.store.get("compiled", self.key(fp))
                except PlanStoreError:
                    # The store verified, failed, and quarantined the
                    # entry already; degrade to one rebuild below.
                    self._fallback("store_corrupt")
            if art is not None:
                reason = self._unusable_reason(art, fp)
                if reason is not None:
                    self._fallback(reason)
                    H.attach_compiled(None)
                    return None
                # Write-set verification gates every store-loaded
                # artifact *before* its source is exec'd or its tables
                # indexed: overlapping scatter sets (store rot, a
                # doctored payload, a future codegen bug) degrade to
                # batched instead of executing wrong.
                try:
                    verify_artifact(art)
                except AnalysisError:
                    self._fallback("writeset_violation")
                    H.attach_compiled(None)
                    return None
                try:
                    ev = evaluator_from_artifact(art, batched)
                except PlanStoreError:
                    self._fallback("artifact_mismatch")
                    H.attach_compiled(None)
                    return None
                self.stats.store_hits += 1
                self._persisted.add(fp)
                H.attach_compiled(ev)
                return ev
            try:
                ev = compile_evaluator(H, backend=self.backend)
            except Exception:  # noqa: BLE001 - serving degrades, never raises
                self._fallback("build_error")
                H.attach_compiled(None)
                return None
            # Fresh builds are verified too — the guard is against
            # emitted-code bugs as much as against store rot.
            try:
                verify_artifact(ev.artifact)
            except AnalysisError:
                self._fallback("writeset_violation")
                H.attach_compiled(None)
                return None
            self.stats.builds += 1
            H.attach_compiled(ev)
            self._persist(ev, fp)
            return ev

    def _persist(self, ev: CompiledEvaluator, fp: str | None = None) -> None:
        if self.store is None:
            return
        fp = fp if fp is not None else str(
            ev.artifact.meta.get("fingerprint", ""))
        if not fp or fp in self._persisted:
            return
        self.store.put("compiled", self.key(fp), ev.artifact)
        self._persisted.add(fp)
        self.stats.store_puts += 1

    def _unusable_reason(self, art: CompiledArtifact,
                         fp: str) -> str | None:
        meta = art.meta if isinstance(art.meta, dict) else {}
        if meta.get("format_version") != COMPILED_FORMAT_VERSION:
            return "version_skew"
        if meta.get("fingerprint") != fp:
            return "fingerprint_mismatch"
        if host_key(meta.get("host") or {}) != host_key(self.host):
            return "host_mismatch"
        backend = meta.get("backend")
        if backend not in (NUMPY_BACKEND, NUMBA_BACKEND):
            return "unknown_backend"
        if backend == NUMBA_BACKEND and NUMBA_BACKEND not in (
                available_backends()):
            return "numba_missing"
        return None

    def stats_dict(self) -> dict:
        with self._lock:
            return self.stats.as_dict()


_default_cache: CompiledCache | None = None
_default_cache_lock = threading.Lock()


def default_compiled_cache() -> CompiledCache:
    """The process-global cache behind bare ``H.matmul(order="compiled")``.

    Memory-only (attach-to-H); Executors/Sessions with a PlanStore own a
    persistent :class:`CompiledCache` instead.
    """
    global _default_cache
    with _default_cache_lock:
        if _default_cache is None:
            _default_cache = CompiledCache()
        return _default_cache


def reset_default_compiled_cache() -> None:
    """Drop the process-global cache (test isolation)."""
    global _default_cache
    with _default_cache_lock:
        _default_cache = None


# --------------------------------------------------------------------------
# Registrations: PlanStore tier + autotune backend (one source of truth).
# --------------------------------------------------------------------------

register_tier(ArtifactTier(
    "compiled", save_compiled_artifact, load_compiled_artifact,
    version=COMPILED_FORMAT_VERSION, default_memory_entries=4))

register_autotune_backend(AutotuneBackend(
    name="compiled",
    # Only a *distinct* candidate at narrow widths: wider panels
    # delegate to batched, and a candidate whose trial is byte-for-byte
    # another's would make the measured winner pure timing noise.
    available=lambda ctx: (bool(ctx.get("has_batched", True))
                           and int(ctx.get("bucket", 1)) <= NARROW_Q_MAX),
    candidates=lambda ctx: [{"order": "compiled"}],
))
