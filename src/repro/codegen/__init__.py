"""Code generation: lowering the evaluation IR to specialized Python code.

Mirrors the paper's code-generation stage: an abstract program for the
HMatrix-matrix multiplication is lowered through *block lowering* (the
reduction loops iterate over the blockset) and *coarsen lowering* (the
CTree loops iterate over the coarsenset), gated by the block/coarsen
thresholds, then low-level transforms (root-iteration peeling) are applied.
The result is Python source text compiled to a callable specialized for one
HMatrix structure.
"""

from repro.codegen.ir import EvaluationIR, build_ir
from repro.codegen.lowering import (
    LoweringDecision,
    batch_occupancy,
    decide_lowering,
    lower_batched,
)
from repro.codegen.emit import (
    GeneratedEvaluator,
    generate_batched_evaluator,
    generate_evaluator,
)

__all__ = [
    "EvaluationIR",
    "build_ir",
    "LoweringDecision",
    "decide_lowering",
    "lower_batched",
    "batch_occupancy",
    "GeneratedEvaluator",
    "generate_evaluator",
    "generate_batched_evaluator",
]
