"""Storage formats for the compressed generators.

``CDSMatrix`` is the paper's Compressed Data-Sparse format: every generator
lives in one flat float64 buffer, packed in exactly the order the generated
evaluation code visits it (U/V by coarsenset order, B/D by blockset order),
with srank-derived offsets. ``TreeBasedStorage`` models the library format
the paper compares against: one separately-allocated array per submatrix in
tree-construction order.
"""

from repro.storage.cds import CDSMatrix, ShapeBucket, build_cds
from repro.storage.treebased import TreeBasedStorage, build_treebased

__all__ = ["CDSMatrix", "ShapeBucket", "build_cds", "TreeBasedStorage",
           "build_treebased"]
