"""Tree-based storage: the library format the paper's baselines use.

Each submatrix is a separately-allocated array attached to its tree node /
interaction pair, created in tree-construction (BFS) order — the order the
compression produced it, not the order evaluation visits it. The cache
simulator assigns these allocations scattered base addresses (with per-
allocation headers), reproducing the poor spatial locality the paper
attributes to library implementations ("TB" in Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.factors import Factors


@dataclass
class TreeBasedStorage:
    """Per-node / per-pair arrays, plus the allocation order for tracing."""

    factors: Factors
    basis: dict[int, np.ndarray] = field(default_factory=dict)
    near: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)
    far: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)
    allocation_order: list[tuple[str, object]] = field(default_factory=list)

    @property
    def tree(self):
        return self.factors.tree

    def total_bytes(self) -> int:
        total = sum(a.nbytes for a in self.basis.values())
        total += sum(a.nbytes for a in self.near.values())
        total += sum(a.nbytes for a in self.far.values())
        return total


def build_treebased(factors: Factors) -> TreeBasedStorage:
    """Copy generators into per-node arrays in BFS/compression order."""
    tb = TreeBasedStorage(factors=factors)
    tree = factors.tree
    for v in range(tree.num_nodes):
        if factors.srank(v) == 0:
            continue
        gen = factors.leaf_basis[v] if tree.is_leaf(v) else factors.transfer[v]
        tb.basis[v] = np.array(gen, copy=True)
        tb.allocation_order.append(("basis", v))
    for pair in sorted(factors.near_blocks):
        tb.near[pair] = np.array(factors.near_blocks[pair], copy=True)
        tb.allocation_order.append(("near", pair))
    for pair in sorted(factors.coupling):
        tb.far[pair] = np.array(factors.coupling[pair], copy=True)
        tb.allocation_order.append(("far", pair))
    return tb
