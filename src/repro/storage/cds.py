"""Compressed Data-Sparse (CDS) storage format.

CDS packs the submatrices into four flat buffers in *visit order*:

* ``basis_buf``  — leaf V and interior transfer E matrices, in coarsenset
  order (bottom coarsen level first, sub-tree by sub-tree, post-order inside
  each sub-tree) — the order of the upward pass;
* ``near_buf``   — D blocks in near-blockset order;
* ``far_buf``    — B blocks in far-blockset order.

Offsets are derived from sranks/block sizes, so a generator is addressed as
``buf[offset[key] : offset[key] + rows*cols].reshape(rows, cols)`` — these
reshapes are NumPy views into the flat buffer, never copies, preserving the
format's locality in the executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.structure_sets import BlockSet, CoarsenSet
from repro.compression.factors import Factors


@dataclass
class CDSMatrix:
    """The HMatrix in CDS layout, ready for the generated executor."""

    factors: Factors
    coarsenset: CoarsenSet
    near_blockset: BlockSet
    far_blockset: BlockSet

    basis_buf: np.ndarray = field(default_factory=lambda: np.empty(0))
    near_buf: np.ndarray = field(default_factory=lambda: np.empty(0))
    far_buf: np.ndarray = field(default_factory=lambda: np.empty(0))

    basis_offset: dict[int, int] = field(default_factory=dict)
    basis_shape: dict[int, tuple[int, int]] = field(default_factory=dict)
    near_offset: dict[tuple[int, int], int] = field(default_factory=dict)
    far_offset: dict[tuple[int, int], int] = field(default_factory=dict)

    @property
    def tree(self):
        return self.factors.tree

    @property
    def dim(self) -> int:
        return self.factors.tree.num_points

    # -------------------------------------------------------------- accessors
    def basis(self, v: int) -> np.ndarray:
        """View of node v's V (leaf) or E (interior) generator."""
        rows, cols = self.basis_shape[v]
        off = self.basis_offset[v]
        return self.basis_buf[off : off + rows * cols].reshape(rows, cols)

    def near(self, i: int, j: int) -> np.ndarray:
        """View of the D block for near pair (i, j)."""
        t = self.tree
        rows, cols = t.node_size(i), t.node_size(j)
        off = self.near_offset[(i, j)]
        return self.near_buf[off : off + rows * cols].reshape(rows, cols)

    def far(self, i: int, j: int) -> np.ndarray:
        """View of the B block for far pair (i, j)."""
        rows = self.factors.srank(i)
        cols = self.factors.srank(j)
        off = self.far_offset[(i, j)]
        return self.far_buf[off : off + rows * cols].reshape(rows, cols)

    def total_bytes(self) -> int:
        return self.basis_buf.nbytes + self.near_buf.nbytes + self.far_buf.nbytes

    # ------------------------------------------------------------ trace hooks
    def basis_visit_order(self) -> list[int]:
        """Node ids in upward-pass (coarsenset) visit order."""
        return self.coarsenset.all_nodes()

    def near_visit_order(self) -> list[tuple[int, int]]:
        return self.near_blockset.all_interactions()

    def far_visit_order(self) -> list[tuple[int, int]]:
        return self.far_blockset.all_interactions()


def build_cds(
    factors: Factors,
    coarsenset: CoarsenSet,
    near_blockset: BlockSet,
    far_blockset: BlockSet,
) -> CDSMatrix:
    """Pack the generators into CDS buffers following the structure sets."""
    cds = CDSMatrix(
        factors=factors,
        coarsenset=coarsenset,
        near_blockset=near_blockset,
        far_blockset=far_blockset,
    )
    tree = factors.tree

    # --- basis buffer in coarsenset (upward visit) order -------------------
    order = coarsenset.all_nodes()
    # Nodes carrying a basis but not reached by the coarsenset (possible when
    # srank>0 nodes sit above the last coarsen level) are appended at the end.
    covered = set(order)
    extras = [
        v
        for v in range(tree.num_nodes)
        if factors.srank(v) > 0 and v not in covered
    ]
    sizes: list[int] = []
    for v in order + extras:
        gen = factors.leaf_basis[v] if tree.is_leaf(v) else factors.transfer[v]
        cds.basis_shape[v] = gen.shape
        sizes.append(gen.size)
    total = int(np.sum(sizes)) if sizes else 0
    cds.basis_buf = np.empty(total)
    off = 0
    for v in order + extras:
        gen = factors.leaf_basis[v] if tree.is_leaf(v) else factors.transfer[v]
        cds.basis_offset[v] = off
        cds.basis_buf[off : off + gen.size] = gen.ravel()
        off += gen.size

    # --- near buffer in near-blockset order ---------------------------------
    near_order = near_blockset.all_interactions()
    _pack_pairs(cds.near_offset, near_order, factors.near_blocks, "near", cds)

    # --- far buffer in far-blockset order ------------------------------------
    far_order = far_blockset.all_interactions()
    _pack_pairs(cds.far_offset, far_order, factors.coupling, "far", cds)
    return cds


def _pack_pairs(offsets, order, blocks, which, cds) -> None:
    missing = [p for p in order if p not in blocks]
    if missing:
        raise ValueError(f"{which} blockset references missing blocks: {missing[:5]}")
    extra = [p for p in blocks if p not in set(order)]
    full_order = list(order) + sorted(extra)
    total = int(sum(blocks[p].size for p in full_order))
    buf = np.empty(total)
    off = 0
    for p in full_order:
        b = blocks[p]
        offsets[p] = off
        buf[off : off + b.size] = b.ravel()
        off += b.size
    if which == "near":
        cds.near_buf = buf
    else:
        cds.far_buf = buf
