"""Compressed Data-Sparse (CDS) storage format.

CDS packs the submatrices into four flat buffers in *visit order*:

* ``basis_buf``  — leaf V and interior transfer E matrices, in coarsenset
  order (bottom coarsen level first, sub-tree by sub-tree, post-order inside
  each sub-tree) — the order of the upward pass;
* ``near_buf``   — D blocks in near-blockset order;
* ``far_buf``    — B blocks in far-blockset order.

Offsets are derived from sranks/block sizes, so a generator is addressed as
``buf[offset[key] : offset[key] + rows*cols].reshape(rows, cols)`` — these
reshapes are NumPy views into the flat buffer, never copies, preserving the
format's locality in the executor.

On top of the flat buffers the CDS also exposes *shape buckets*: generators
grouped by ``(rows, cols)`` in visit order, each bucket carrying the buffer
offsets of its members so the batched executor can gather one
``(batch, rows, cols)`` stack and run a single stacked GEMM per bucket
instead of one small GEMM per generator (see DESIGN.md section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.structure_sets import BlockSet, CoarsenSet
from repro.compression.factors import Factors


@dataclass
class ShapeBucket:
    """Generators of one ``(rows, cols)`` shape, in visit order.

    ``keys`` are node ids (basis buckets) or ``(i, j)`` pairs (near/far
    buckets); ``offsets[b]`` is the flat-buffer offset of ``keys[b]``. The
    gather indices are derived, not stored: member ``b`` occupies
    ``buf[offsets[b] : offsets[b] + rows*cols]``. ``kind`` distinguishes
    leaf from interior basis buckets (their batched ops differ).
    """

    shape: tuple[int, int]
    keys: list
    offsets: np.ndarray
    kind: str = ""

    @property
    def batch(self) -> int:
        return len(self.keys)

    def gather(self, buf: np.ndarray) -> np.ndarray:
        """Stack the bucket's generators as one ``(batch, rows, cols)`` array."""
        rows, cols = self.shape
        idx = self.offsets[:, None] + np.arange(rows * cols)
        return buf[idx].reshape(self.batch, rows, cols)


@dataclass
class CDSMatrix:
    """The HMatrix in CDS layout, ready for the generated executor."""

    factors: Factors
    coarsenset: CoarsenSet
    near_blockset: BlockSet
    far_blockset: BlockSet

    basis_buf: np.ndarray = field(default_factory=lambda: np.empty(0))
    near_buf: np.ndarray = field(default_factory=lambda: np.empty(0))
    far_buf: np.ndarray = field(default_factory=lambda: np.empty(0))

    basis_offset: dict[int, int] = field(default_factory=dict)
    basis_shape: dict[int, tuple[int, int]] = field(default_factory=dict)
    near_offset: dict[tuple[int, int], int] = field(default_factory=dict)
    far_offset: dict[tuple[int, int], int] = field(default_factory=dict)

    @property
    def tree(self):
        return self.factors.tree

    @property
    def dim(self) -> int:
        return self.factors.tree.num_points

    # -------------------------------------------------------------- accessors
    def basis(self, v: int) -> np.ndarray:
        """View of node v's V (leaf) or E (interior) generator."""
        rows, cols = self.basis_shape[v]
        off = self.basis_offset[v]
        return self.basis_buf[off : off + rows * cols].reshape(rows, cols)

    def near(self, i: int, j: int) -> np.ndarray:
        """View of the D block for near pair (i, j)."""
        t = self.tree
        rows, cols = t.node_size(i), t.node_size(j)
        off = self.near_offset[(i, j)]
        return self.near_buf[off : off + rows * cols].reshape(rows, cols)

    def far(self, i: int, j: int) -> np.ndarray:
        """View of the B block for far pair (i, j)."""
        rows = self.factors.srank(i)
        cols = self.factors.srank(j)
        off = self.far_offset[(i, j)]
        return self.far_buf[off : off + rows * cols].reshape(rows, cols)

    def total_bytes(self) -> int:
        return self.basis_buf.nbytes + self.near_buf.nbytes + self.far_buf.nbytes

    # ---------------------------------------------------------- shape buckets
    def near_buckets(self) -> list[ShapeBucket]:
        """Near (D) generators bucketed by block shape, in visit order."""
        t = self.tree
        return _bucketize(
            self.near_visit_order(),
            lambda p: (t.node_size(p[0]), t.node_size(p[1])),
            self.near_offset,
        )

    def far_buckets(self) -> list[ShapeBucket]:
        """Far (B) generators bucketed by coupling shape, in visit order."""
        srank = self.factors.srank
        return _bucketize(
            self.far_visit_order(),
            lambda p: (srank(p[0]), srank(p[1])),
            self.far_offset,
        )

    def basis_nodes(self) -> list[int]:
        """All non-root nodes carrying a basis generator, post-ordered."""
        return [
            v for v in self.tree.postorder()
            if v != 0 and self.factors.srank(v) > 0
        ]

    def basis_level_buckets(self) -> list[list[ShapeBucket]]:
        """Basis (V/E) buckets per tree level, deepest level first.

        Within a level, leaf and interior generators land in separate
        buckets (``kind`` is ``"leaf"`` or ``"interior"``): a leaf op reads
        point rows of W/Y while an interior op reads the children's
        skeleton rows, so they cannot share a stacked GEMM. Level grouping
        preserves the only real dependency (parent after children), letting
        the batched sweep replace the coarsen-set schedule wholesale.
        """
        t = self.tree
        by_level: dict[int, list[int]] = {}
        for v in self.basis_nodes():
            by_level.setdefault(int(t.level[v]), []).append(v)
        out: list[list[ShapeBucket]] = []
        for lvl in sorted(by_level, reverse=True):
            nodes = by_level[lvl]
            leaves = [v for v in nodes if t.is_leaf(v)]
            interior = [v for v in nodes if not t.is_leaf(v)]
            buckets = _bucketize(leaves, self.basis_shape.__getitem__,
                                 self.basis_offset, kind="leaf")
            buckets += _bucketize(interior, self.basis_shape.__getitem__,
                                  self.basis_offset, kind="interior")
            out.append(buckets)
        return out

    def bucket_occupancy(self) -> float:
        """Mean generators per shape bucket.

        High occupancy means few stacked GEMMs cover many generators, so
        batching amortises its gather/scatter; occupancy near 1 means the
        shapes are all distinct and batching degenerates to the serial
        loop. (The lowering gate uses the related, pre-CDS
        :func:`repro.codegen.lowering.batch_occupancy` fusion signal.)
        """
        buckets = self.near_buckets() + self.far_buckets()
        for level in self.basis_level_buckets():
            buckets += level
        if not buckets:
            return 0.0
        return sum(b.batch for b in buckets) / len(buckets)

    # ------------------------------------------------------------ trace hooks
    def basis_visit_order(self) -> list[int]:
        """Node ids in upward-pass (coarsenset) visit order."""
        return self.coarsenset.all_nodes()

    def near_visit_order(self) -> list[tuple[int, int]]:
        return self.near_blockset.all_interactions()

    def far_visit_order(self) -> list[tuple[int, int]]:
        return self.far_blockset.all_interactions()


def _bucketize(keys, shape_of, offsets, kind: str = "") -> list[ShapeBucket]:
    """Group ``keys`` by shape, preserving visit order inside each bucket."""
    grouped: dict[tuple[int, int], list] = {}
    for k in keys:
        grouped.setdefault(tuple(shape_of(k)), []).append(k)
    return [
        ShapeBucket(
            shape=shape,
            keys=members,
            offsets=np.asarray([offsets[k] for k in members], dtype=np.intp),
            kind=kind,
        )
        for shape, members in grouped.items()
    ]


def build_cds(
    factors: Factors,
    coarsenset: CoarsenSet,
    near_blockset: BlockSet,
    far_blockset: BlockSet,
) -> CDSMatrix:
    """Pack the generators into CDS buffers following the structure sets."""
    cds = CDSMatrix(
        factors=factors,
        coarsenset=coarsenset,
        near_blockset=near_blockset,
        far_blockset=far_blockset,
    )
    tree = factors.tree

    # --- basis buffer in coarsenset (upward visit) order -------------------
    order = coarsenset.all_nodes()
    # Nodes carrying a basis but not reached by the coarsenset (possible when
    # srank>0 nodes sit above the last coarsen level) are appended at the end.
    covered = set(order)
    extras = [
        v
        for v in range(tree.num_nodes)
        if factors.srank(v) > 0 and v not in covered
    ]
    sizes: list[int] = []
    for v in order + extras:
        gen = factors.leaf_basis[v] if tree.is_leaf(v) else factors.transfer[v]
        cds.basis_shape[v] = gen.shape
        sizes.append(gen.size)
    total = int(np.sum(sizes)) if sizes else 0
    cds.basis_buf = np.empty(total)
    off = 0
    for v in order + extras:
        gen = factors.leaf_basis[v] if tree.is_leaf(v) else factors.transfer[v]
        cds.basis_offset[v] = off
        cds.basis_buf[off : off + gen.size] = gen.ravel()
        off += gen.size

    # --- near buffer in near-blockset order ---------------------------------
    near_order = near_blockset.all_interactions()
    _pack_pairs(cds.near_offset, near_order, factors.near_blocks, "near", cds)

    # --- far buffer in far-blockset order ------------------------------------
    far_order = far_blockset.all_interactions()
    _pack_pairs(cds.far_offset, far_order, factors.coupling, "far", cds)
    return cds


def _pack_pairs(offsets, order, blocks, which, cds) -> None:
    missing = [p for p in order if p not in blocks]
    if missing:
        raise ValueError(f"{which} blockset references missing blocks: {missing[:5]}")
    extra = [p for p in blocks if p not in set(order)]
    full_order = list(order) + sorted(extra)
    total = int(sum(blocks[p].size for p in full_order))
    buf = np.empty(total)
    off = 0
    for p in full_order:
        b = blocks[p]
        offsets[p] = off
        buf[off : off + b.size] = b.ravel()
        off += b.size
    if which == "near":
        cds.near_buf = buf
    else:
        cds.far_buf = buf
