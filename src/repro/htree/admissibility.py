"""Admissibility conditions deciding near vs. far node interactions."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.tree.cluster_tree import ClusterTree
from repro.utils.validation import check_probability, require


class Admissibility(ABC):
    """Predicate deciding whether two same-level cluster nodes are *far*.

    ``structure_name`` labels the resulting HMatrix structure ("hss",
    "h2-geometric", "h2-budget") — experiments use it for reporting.
    """

    structure_name: str = "abstract"

    @abstractmethod
    def is_far(self, tree: ClusterTree, a: int, b: int) -> bool:
        """True if the (a, b) interaction may be low-rank approximated."""

    def prepare(self, tree: ClusterTree) -> None:
        """Hook for admissibilities that need per-tree precomputation."""

    def identity(self) -> tuple:
        """Hashable identity used by inspection-reuse caching."""
        return (self.structure_name,)


class GeometricAdmissibility(Admissibility):
    """The paper's geometric rule: far iff ``tau * dist(a,b) > diam(a) + diam(b)``.

    Larger ``tau`` admits more block pairs as far (more compression); the
    SMASH default used in the paper is ``tau = 0.65``.
    """

    structure_name = "h2-geometric"

    def __init__(self, tau: float = 0.65):
        require(tau > 0, f"tau must be positive, got {tau}")
        self.tau = float(tau)

    def is_far(self, tree: ClusterTree, a: int, b: int) -> bool:
        if a == b:
            return False
        dist = tree.distance(a, b)
        return self.tau * dist > tree.diameter(a) + tree.diameter(b)

    def identity(self) -> tuple:
        return (self.structure_name, self.tau)


class HSSAdmissibility(Admissibility):
    """Weak admissibility: every off-diagonal same-level pair is far.

    This is the STRUMPACK setting — the HMatrix degenerates to HSS, near
    interactions exist only on the leaf diagonal, and evaluation is dominated
    by the loops over the CTree.
    """

    structure_name = "hss"

    def is_far(self, tree: ClusterTree, a: int, b: int) -> bool:
        return a != b


class BudgetAdmissibility(Admissibility):
    """GOFMM-style budget rule (the paper's H2-b structure).

    GOFMM replaces the geometric threshold with a *budget*: per node, the
    closest off-diagonal same-level neighbours are kept as exact near
    interactions until their combined share of the row exceeds
    ``budget * N``; everything farther is admissible. ``budget = 0`` keeps
    only the diagonal exact (equivalent to HSS); the paper's H2-b uses the
    recommended ``budget = 0.03``.
    """

    structure_name = "h2-budget"

    def __init__(self, budget: float = 0.03):
        check_probability(budget, name="budget")
        self.budget = float(budget)
        self._near_pairs: set[tuple[int, int]] | None = None

    def prepare(self, tree: ClusterTree) -> None:
        """Mark, per level, each node's nearest neighbours as near-by-budget."""
        near: set[tuple[int, int]] = set()
        if self.budget > 0.0:
            allowance = self.budget * tree.num_points
            centers = tree.centers
            for nodes in tree.levels():
                if len(nodes) < 2:
                    continue
                pos = centers[nodes]
                diff = pos[:, None, :] - pos[None, :, :]
                dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
                sizes = tree.stop[nodes] - tree.start[nodes]
                for i, v in enumerate(nodes):
                    order = np.argsort(dist[i], kind="stable")
                    spent = 0.0
                    for j in order:
                        w = nodes[j]
                        if w == v:
                            continue
                        if spent + sizes[j] > allowance:
                            break
                        near.add((int(v), int(w)))
                        spent += sizes[j]
        self._near_pairs = near

    def is_far(self, tree: ClusterTree, a: int, b: int) -> bool:
        if a == b:
            return False
        if self._near_pairs is None:
            self.prepare(tree)
        # Symmetrise: an interaction is near if either endpoint claimed it.
        return (a, b) not in self._near_pairs and (b, a) not in self._near_pairs

    def identity(self) -> tuple:
        return (self.structure_name, self.budget)


def make_admissibility(structure: str, **params) -> Admissibility:
    """Factory: ``"hss"``, ``"h2"``/``"h2-geometric"`` (tau), ``"h2-b"`` (budget)."""
    key = structure.lower()
    if key == "hss":
        return HSSAdmissibility()
    if key in ("h2", "h2-geometric", "geometric"):
        return GeometricAdmissibility(**params)
    if key in ("h2-b", "h2-budget", "budget"):
        return BudgetAdmissibility(**params)
    raise ValueError(f"unknown structure {structure!r}")
