"""HTree construction via dual-tree traversal.

Starting from the (root, root) pair, each node pair is tested against the
admissibility rule: admissible pairs become *far* interactions (B blocks),
leaf-leaf inadmissible pairs become *near* interactions (D blocks), and
everything else recurses into children. This finds each far interaction at
the highest (cheapest) tree level where it is admissible, exactly as in the
paper's interaction-computation module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.htree.admissibility import Admissibility, make_admissibility
from repro.tree.cluster_tree import ClusterTree


@dataclass
class HTree:
    """Cluster tree plus near/far interaction lists.

    ``near[i]`` / ``far[i]`` list the partner node ids interacting with node
    ``i`` (self-interactions ``(i, i)`` appear in ``near[i]`` for leaves).
    Lists are sorted so traversal order is deterministic.
    """

    tree: ClusterTree
    near: dict[int, list[int]] = field(default_factory=dict)
    far: dict[int, list[int]] = field(default_factory=dict)
    structure: str = "h2-geometric"

    @property
    def num_nodes(self) -> int:
        return self.tree.num_nodes

    def near_pairs(self) -> list[tuple[int, int]]:
        """All near (i, j) pairs, i-major sorted."""
        return [(i, j) for i in sorted(self.near) for j in self.near[i]]

    def far_pairs(self) -> list[tuple[int, int]]:
        """All far (i, j) pairs, i-major sorted."""
        return [(i, j) for i in sorted(self.far) for j in self.far[i]]

    def num_near(self) -> int:
        return sum(len(v) for v in self.near.values())

    def num_far(self) -> int:
        return sum(len(v) for v in self.far.values())

    def nodes_with_basis(self) -> list[int]:
        """Nodes that need U/V (or transfer) generators.

        A node needs a basis iff it participates in a far interaction or has
        a descendant that does (its T must be propagated upward). Computed by
        marking far endpoints and closing over ancestors' children.
        """
        tree = self.tree
        needed = np.zeros(tree.num_nodes, dtype=bool)
        for i, partners in self.far.items():
            if partners:
                needed[i] = True
        # Propagate down: if a node is needed, both children are needed
        # (the upward pass computes a parent's T from both children's T).
        for v in range(tree.num_nodes):
            if needed[v] and not tree.is_leaf(v):
                needed[tree.lchild[v]] = True
                needed[tree.rchild[v]] = True
        return [int(v) for v in np.flatnonzero(needed)]

    def validate(self) -> None:
        """Check structural invariants; raises AssertionError on violation."""
        tree = self.tree
        leaves = set(tree.leaves.tolist())
        for i, partners in self.near.items():
            assert i in leaves, f"near list on non-leaf node {i}"
            for j in partners:
                assert j in leaves, f"near partner {j} of {i} is not a leaf"
                assert i in self.near.get(j, []), f"near pair ({i},{j}) not symmetric"
        for i, partners in self.far.items():
            for j in partners:
                assert i != j, "self far-interaction"
                assert i in self.far.get(j, []), f"far pair ({i},{j}) not symmetric"

    def coverage_matrix(self) -> np.ndarray:
        """Boolean N x N matrix (tree order) marking which entries each
        interaction covers — used by tests to prove the near/far lists tile
        the full matrix exactly once."""
        n = self.tree.num_points
        covered = np.zeros((n, n), dtype=np.int32)
        t = self.tree
        for i, j in self.near_pairs():
            covered[t.start[i]:t.stop[i], t.start[j]:t.stop[j]] += 1
        for i, j in self.far_pairs():
            covered[t.start[i]:t.stop[i], t.start[j]:t.stop[j]] += 1
        return covered


def build_htree(tree: ClusterTree, admissibility: Admissibility | str = "h2-geometric",
                **adm_params) -> HTree:
    """Run the interaction-computation module: CTree + admissibility -> HTree."""
    if isinstance(admissibility, str):
        admissibility = make_admissibility(admissibility, **adm_params)
    admissibility.prepare(tree)

    near: dict[int, list[int]] = {int(v): [] for v in tree.leaves}
    far: dict[int, list[int]] = {v: [] for v in range(tree.num_nodes)}

    def recurse(a: int, b: int) -> None:
        if a != b and admissibility.is_far(tree, a, b):
            far[a].append(b)
            if a != b:
                far[b].append(a)
            return
        a_leaf, b_leaf = tree.is_leaf(a), tree.is_leaf(b)
        if a_leaf and b_leaf:
            near[a].append(b)
            if a != b:
                near[b].append(a)
            return
        # Recurse into the children of the non-leaf side(s). Only the a <= b
        # representative of each unordered pair is visited to avoid double
        # work; symmetry is restored when the pair is classified.
        if a == b:
            lc, rc = int(tree.lchild[a]), int(tree.rchild[a])
            recurse(lc, lc)
            recurse(lc, rc)
            recurse(rc, rc)
        elif b_leaf or (not a_leaf and tree.node_size(a) >= tree.node_size(b)):
            recurse(int(tree.lchild[a]), b)
            recurse(int(tree.rchild[a]), b)
        else:
            recurse(a, int(tree.lchild[b]))
            recurse(a, int(tree.rchild[b]))

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10_000 + 4 * tree.num_nodes))
    try:
        recurse(0, 0)
    finally:
        sys.setrecursionlimit(old_limit)

    for lst in near.values():
        lst.sort()
    for lst in far.values():
        lst.sort()
    far = {i: v for i, v in far.items() if v}

    return HTree(tree=tree, near=near, far=far,
                 structure=admissibility.structure_name)
