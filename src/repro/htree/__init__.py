"""HTree: cluster tree augmented with near/far interaction lists.

The interaction-computation module applies an admissibility rule to the
CTree and records, per node, which same-level nodes interact as *near*
(kept exact, dense D blocks) and which as *far* (low-rank approximated
B blocks). Three admissibility flavours from the paper are supported:

* geometric ``tau`` admissibility (SMASH-style, default ``tau = 0.65``),
* HSS / weak admissibility (STRUMPACK: every off-diagonal block is far),
* GOFMM-style *budget* admissibility (H2-b: a fraction of the nearest
  off-diagonal interactions is kept exact).
"""

from repro.htree.admissibility import (
    BudgetAdmissibility,
    GeometricAdmissibility,
    HSSAdmissibility,
    make_admissibility,
)
from repro.htree.htree import HTree, build_htree

__all__ = [
    "HTree",
    "build_htree",
    "GeometricAdmissibility",
    "HSSAdmissibility",
    "BudgetAdmissibility",
    "make_admissibility",
]
