"""Average memory access latency (AMAL) and locality factors.

The paper's Figure 6 proxy for locality: AMAL computed from cache/TLB
hit-miss counters via the standard recursive formula

    AMAL = tlb_penalty + hit_L1 + miss_L1 * (hit_L2 + miss_L2 * (... + memory))

(Hennessy & Patterson). The *locality factor* of a storage layout is its
AMAL normalised by the best-case AMAL (all L1 hits); the machine simulator
uses it to inflate the memory-time of tasks reading that layout.
"""

from __future__ import annotations

from repro.runtime.cache import CacheCounters
from repro.runtime.machine import MachineModel


def average_memory_access_latency(counters: CacheCounters,
                                  machine: MachineModel) -> float:
    """AMAL in cycles per access."""
    if counters.accesses == 0:
        return machine.caches[0].hit_cycles

    # Recursive miss-penalty chain, innermost level first.
    penalty = machine.memory_cycles
    for spec in reversed(machine.caches[1:]):
        name = spec.name
        total = counters.level_hits[name] + counters.level_misses[name]
        miss = counters.level_misses[name] / total if total else 0.0
        penalty = spec.hit_cycles + miss * penalty

    l1 = machine.caches[0]
    amal = l1.hit_cycles + counters.miss_ratio(l1.name) * penalty

    tlb_total = counters.tlb_hits + counters.tlb_misses
    if tlb_total:
        tlb_miss = counters.tlb_misses / tlb_total
        amal += machine.tlb_hit_cycles + tlb_miss * machine.tlb_miss_cycles
    return amal


def ideal_latency(machine: MachineModel) -> float:
    """AMAL when every access hits L1 and the TLB."""
    return machine.caches[0].hit_cycles + machine.tlb_hit_cycles


def locality_factor(counters: CacheCounters, machine: MachineModel) -> float:
    """AMAL relative to the all-hit ideal (>= 1); multiplies memory time."""
    return average_memory_access_latency(counters, machine) / ideal_latency(machine)
