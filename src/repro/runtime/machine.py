"""Machine models for the simulated multicore.

Parameters follow the paper's testbeds:

* **Haswell** — Xeon E5-2680v3: 12 cores, 2.5 GHz, AVX2+FMA (16 DP
  flops/cycle/core), 30 MB L3;
* **KNL** — Xeon Phi 7250: 68 cores, 1.4 GHz, AVX-512 (32 DP
  flops/cycle/core), 34 MB shared L2/L3-equivalent.

Overhead constants (barrier, task-dequeue, atomic) are calibrated to typical
measured magnitudes for OpenMP runtimes; the figures only rely on their
relative effects (barriers grow with core count; a central task queue
serialises dequeues), not their absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheSpec:
    """One cache level for the locality simulator."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64
    hit_cycles: float = 4.0


@dataclass(frozen=True)
class MachineModel:
    """Cost-model parameters of one simulated multicore."""

    name: str
    num_cores: int
    freq_ghz: float
    flops_per_cycle: float          # per core, double precision
    dram_bandwidth_gbs: float       # total socket bandwidth
    single_core_bandwidth_gbs: float
    # Synchronization / runtime overheads (microseconds).
    barrier_base_us: float = 1.0    # fixed cost of an OpenMP barrier
    barrier_per_core_us: float = 0.25
    task_spawn_us: float = 0.5      # static task launch
    dequeue_us: float = 1.2         # dynamic-scheduler dequeue (serialized)
    atomic_us: float = 0.0015       # per atomically-updated output element
    blas_efficiency: float = 0.80   # fraction of peak inside large GEMMs
    small_gemm_efficiency: float = 0.35  # skinny/small tile GEMMs
    # Cache hierarchy (first level first) + memory latency for AMAL.
    caches: tuple[CacheSpec, ...] = ()
    memory_cycles: float = 200.0
    tlb_entries: int = 64
    page_bytes: int = 4096
    tlb_hit_cycles: float = 0.0
    tlb_miss_cycles: float = 30.0

    @property
    def core_gflops(self) -> float:
        """Peak GFLOP/s of one core."""
        return self.freq_ghz * self.flops_per_cycle

    @property
    def peak_gflops(self) -> float:
        return self.core_gflops * self.num_cores

    def flop_seconds(self, flops: float, cores: float = 1.0,
                     efficiency: float | None = None) -> float:
        """Seconds to execute ``flops`` on ``cores`` cores."""
        eff = self.small_gemm_efficiency if efficiency is None else efficiency
        rate = self.core_gflops * 1e9 * eff * cores
        return flops / rate if rate > 0 else 0.0

    def mem_seconds(self, nbytes: float, active_cores: int = 1,
                    locality: float = 1.0) -> float:
        """Seconds to move ``nbytes``; ``locality`` >= 1 inflates traffic.

        Bandwidth per core saturates: one core gets
        ``single_core_bandwidth``; with many active cores the socket
        bandwidth is divided between them.
        """
        per_core = min(
            self.single_core_bandwidth_gbs,
            self.dram_bandwidth_gbs / max(active_cores, 1),
        )
        return nbytes * locality / (per_core * 1e9)

    def barrier_seconds(self, cores: int) -> float:
        return (self.barrier_base_us + self.barrier_per_core_us * cores) * 1e-6

    def scaled_caches(self, factor: float) -> "MachineModel":
        """Copy of this machine with cache/TLB capacities scaled by ``factor``.

        Benchmarks run the paper's datasets at reduced N (pure-Python
        compression); scaling the cache capacity by the same ratio preserves
        the footprint-to-cache regime, so capacity-miss behaviour matches
        the full-scale problem. Latencies, bandwidth, and core counts are
        untouched.
        """
        from dataclasses import replace

        if factor <= 0:
            raise ValueError("factor must be positive")
        caches = tuple(
            CacheSpec(
                name=c.name,
                size_bytes=max(c.line_bytes * c.ways, int(c.size_bytes * factor)),
                ways=c.ways,
                line_bytes=c.line_bytes,
                hit_cycles=c.hit_cycles,
            )
            for c in self.caches
        )
        tlb = max(8, int(self.tlb_entries * factor))
        return replace(self, caches=caches, tlb_entries=tlb)


HASWELL = MachineModel(
    name="haswell",
    num_cores=12,
    freq_ghz=2.5,
    flops_per_cycle=16.0,
    dram_bandwidth_gbs=68.0,
    single_core_bandwidth_gbs=18.0,
    barrier_base_us=1.2,
    barrier_per_core_us=0.25,
    task_spawn_us=0.4,
    dequeue_us=1.0,
    atomic_us=0.0015,
    small_gemm_efficiency=0.55,
    caches=(
        CacheSpec("L1", 32 * 1024, 8, 64, hit_cycles=4.0),
        CacheSpec("L2", 256 * 1024, 8, 64, hit_cycles=12.0),
        CacheSpec("L3", 30 * 1024 * 1024, 20, 64, hit_cycles=40.0),
    ),
    memory_cycles=210.0,
    tlb_entries=64,
)

KNL = MachineModel(
    name="knl",
    num_cores=68,
    freq_ghz=1.4,
    flops_per_cycle=32.0,
    dram_bandwidth_gbs=380.0,        # MCDRAM flat mode
    single_core_bandwidth_gbs=12.0,
    barrier_base_us=2.5,
    barrier_per_core_us=0.6,         # barriers scale poorly on manycore
    task_spawn_us=0.8,
    dequeue_us=2.5,                  # slow cores + contended central queue
    atomic_us=0.003,
    blas_efficiency=0.70,
    small_gemm_efficiency=0.25,
    caches=(
        CacheSpec("L1", 32 * 1024, 8, 64, hit_cycles=4.0),
        CacheSpec("L2", 512 * 1024, 16, 64, hit_cycles=17.0),
        CacheSpec("L3", 34 * 1024 * 1024, 16, 64, hit_cycles=60.0),
    ),
    memory_cycles=230.0,
    tlb_entries=64,
)

MACHINES = {"haswell": HASWELL, "knl": KNL}
