"""Task-graph and phase extraction from structure sets.

Converts one HMatrix-matrix multiplication (with Q right-hand columns) into
the unit the machine simulator executes:

* :func:`matrox_phases`       — the static schedule of the generated code:
  blocked parallel-for phases, coarsen-level phases with pre-assigned
  sub-trees, and a peeled parallel-BLAS phase;
* :func:`matrox_batched_phases` — the schedule of the bucketed batched-GEMM
  executor: every loop collapses into a few fat BLAS kernels (row panels
  for the reduction loops, shape buckets per tree level for the sweeps);
* :func:`gofmm_taskgraph`     — a dependency task graph consumed by a
  dynamic (central-queue) scheduler, the GOFMM execution model;
* :func:`levelbylevel_phases` — barrier-per-tree-level phases with atomic
  reductions, the STRUMPACK/SMASH execution model.

Every task carries flop and byte counts derived from the real generator
shapes, so simulated times reflect the actual compressed structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compression.factors import Factors
from repro.storage.cds import CDSMatrix


@dataclass
class Task:
    """One GEMM-ish unit of work.

    ``affinity`` identifies the data region the task touches (used by the
    dynamic scheduler to charge cache-migration penalties); ``deps`` are
    indices into the owning graph's task list. ``out_elems`` is the number
    of output elements the task updates and ``atomic`` marks updates that
    must be atomic because another task writes the same output rows (the
    ``#pragma omp atomic`` of the library reduction loops — blocking exists
    precisely to remove this).
    """

    name: str
    flops: float
    bytes: float
    affinity: int = 0
    deps: tuple[int, ...] = ()
    out_elems: float = 0.0
    atomic: bool = False


@dataclass
class Phase:
    """One static-schedule phase executed between barriers.

    kind:
      * ``parallel_for``   — units chunked contiguously over workers
        (OpenMP static), barrier at the end;
      * ``parallel_units`` — units pre-assigned one-per-worker (coarsen
        sub-trees), barrier at the end;
      * ``serial``         — one worker, no barrier;
      * ``blas``           — one fat kernel using all workers at BLAS
        efficiency (the peeled root iteration).

    ``atomic_per_task`` adds the reduction-atomic overhead library loops pay.
    """

    name: str
    kind: str
    units: list[list[Task]] = field(default_factory=list)
    atomic_per_task: bool = False

    def total_flops(self) -> float:
        return sum(t.flops for u in self.units for t in u)

    def total_bytes(self) -> float:
        return sum(t.bytes for u in self.units for t in u)

    def num_tasks(self) -> int:
        return sum(len(u) for u in self.units)


# --------------------------------------------------------------------------
# Per-operation cost helpers. A GEMM C(m,n) += A(m,k) B(k,n) does 2mkn flops.
# Only the *generator* block A streams from DRAM (it is visited once per
# evaluation); the vector panels B and C are reused across many tasks and
# live in cache, so they are charged at a small residual fraction.
# --------------------------------------------------------------------------

_PANEL_MISS_FRACTION = 0.05


def _gemm(m: int, k: int, n: int) -> tuple[float, float]:
    flops = 2.0 * m * k * n
    nbytes = 8.0 * (m * k + _PANEL_MISS_FRACTION * (k * n + m * n))
    return flops, nbytes


def _near_task(factors: Factors, i: int, j: int, q: int) -> Task:
    t = factors.tree
    flops, nbytes = _gemm(t.node_size(i), t.node_size(j), q)
    return Task(f"near({i},{j})", flops, nbytes, affinity=i,
                out_elems=float(t.node_size(i)) * q)


def _coupling_task(factors: Factors, i: int, j: int, q: int) -> Task:
    flops, nbytes = _gemm(factors.srank(i), factors.srank(j), q)
    return Task(f"coupling({i},{j})", flops, nbytes, affinity=i,
                out_elems=float(factors.srank(i)) * q)


def _mark_atomics(tasks_with_targets: list[tuple[Task, int]]) -> None:
    """Set ``atomic`` on tasks whose output node has multiple writers.

    Single-writer rows (e.g. the diagonal-only near list of HSS) need no
    synchronization even in the naive loop, which is why the paper's HSS
    executor stays fast without block lowering.
    """
    writers: dict[int, int] = {}
    for _t, i in tasks_with_targets:
        writers[i] = writers.get(i, 0) + 1
    for t, i in tasks_with_targets:
        t.atomic = writers[i] > 1


def _basis_task(factors: Factors, v: int, q: int, direction: str) -> Task:
    t = factors.tree
    if t.is_leaf(v):
        m, k = t.node_size(v), factors.srank(v)
    else:
        lc, rc = int(t.lchild[v]), int(t.rchild[v])
        m, k = factors.srank(lc) + factors.srank(rc), factors.srank(v)
    flops, nbytes = _gemm(m, k, q)
    return Task(f"{direction}({v})", flops, nbytes, affinity=v)


# --------------------------------------------------------------------------
# MatRox static phases.
# --------------------------------------------------------------------------

def matrox_phases(cds: CDSMatrix, q: int, decision=None) -> list[Phase]:
    """Phases of the MatRox generated code for one evaluation."""
    factors = cds.factors
    phases: list[Phase] = []

    # Near loop. Without block lowering the loop is still the generic
    # parallel reduction loop of Fig. 1d (parallel for + atomic); block
    # lowering removes the atomics by making blocks conflict-free.
    near_blocks = cds.near_blockset.blocks or (
        [sorted(factors.near_blocks)] if factors.near_blocks else []
    )
    blocked_near = decision.block_near if decision is not None else True
    if near_blocks:
        if blocked_near:
            units = [
                [_near_task(factors, i, j, q) for (i, j) in block]
                for block in near_blocks
            ]
            phases.append(Phase("near", "parallel_for", units))
        else:
            pairs = [(i, j) for block in near_blocks for (i, j) in block]
            tasks = [_near_task(factors, i, j, q) for (i, j) in pairs]
            _mark_atomics(list(zip(tasks, (i for (i, _j) in pairs),
                                   strict=True)))
            phases.append(Phase("near", "parallel_for",
                                [[t] for t in tasks], atomic_per_task=True))

    # Upward coarsen levels.
    coarsen = decision.coarsen if decision is not None else True
    peel = decision.peel_root if decision is not None else True
    levels = cds.coarsenset.levels
    if not coarsen or not levels:
        order = [v for v in factors.tree.postorder()
                 if v != 0 and factors.srank(v) > 0]
        up_phases = [Phase("upward", "serial",
                           [[_basis_task(factors, v, q, "up") for v in order]])]
        down_phases = [Phase("downward", "serial",
                             [[_basis_task(factors, v, q, "down")
                               for v in reversed(order)]])]
        peel = False
    else:
        up_phases = []
        for idx, cl in enumerate(levels):
            units = [
                [_basis_task(factors, v, q, "up") for v in st.nodes]
                for st in cl.subtrees
            ]
            up_phases.append(Phase(f"upward[{idx}]", "parallel_units", units))
        down_phases = []
        for idx, cl in enumerate(reversed(levels)):
            units = [
                [_basis_task(factors, v, q, "down") for v in reversed(st.nodes)]
                for st in cl.subtrees
            ]
            down_phases.append(
                Phase(f"downward[{idx}]", "parallel_units", units)
            )
        if peel and up_phases:
            top = up_phases.pop()
            phases_top_tasks = [t for u in top.units for t in u]
            up_phases.append(Phase("upward[peeled]", "blas",
                                   [phases_top_tasks]))
            bot = down_phases.pop(0)
            down_phases.insert(
                0,
                Phase("downward[peeled]", "blas",
                      [[t for u in bot.units for t in u]]),
            )
    phases.extend(up_phases)

    # Coupling loop — same blocked/atomic dichotomy as the near loop.
    far_blocks = cds.far_blockset.blocks or (
        [sorted(factors.coupling)] if factors.coupling else []
    )
    blocked_far = decision.block_far if decision is not None else True
    if far_blocks:
        if blocked_far:
            units = [
                [_coupling_task(factors, i, j, q) for (i, j) in block]
                for block in far_blocks
            ]
            phases.append(Phase("coupling", "parallel_for", units))
        else:
            pairs = [(i, j) for block in far_blocks for (i, j) in block]
            tasks = [_coupling_task(factors, i, j, q) for (i, j) in pairs]
            _mark_atomics(list(zip(tasks, (i for (i, _j) in pairs),
                                   strict=True)))
            phases.append(Phase("coupling", "parallel_for",
                                [[t] for t in tasks], atomic_per_task=True))

    phases.extend(down_phases)
    return phases


# --------------------------------------------------------------------------
# MatRox batched (bucketed batched-GEMM) phases.
# --------------------------------------------------------------------------

def matrox_batched_phases(cds: CDSMatrix, q: int,
                          q_chunk: int | None = None) -> list[Phase]:
    """Phases of the batched executor for one evaluation.

    Each reduction loop prices as one "blas" phase (its row-panel GEMMs are
    fat, layout-insensitive kernels), and each tree level prices one "blas"
    phase per shape bucket — mirroring exactly the kernel launches the
    generated batched code performs. ``q_chunk`` repeats the schedule per
    streamed column chunk, charging the extra barriers the streaming loop
    pays in exchange for cache-resident panels.
    """
    if q_chunk and q > q_chunk:
        n_full, rem = divmod(q, q_chunk)
        chunk_phases = matrox_batched_phases(cds, q_chunk)
        out = []
        for _ in range(n_full):
            out.extend(chunk_phases)
        if rem:
            out.extend(matrox_batched_phases(cds, rem))
        return out

    factors = cds.factors
    phases: list[Phase] = []

    near_pairs = cds.near_visit_order() or sorted(factors.near_blocks)
    if near_pairs:
        units = [[_near_task(factors, i, j, q) for (i, j) in near_pairs]]
        phases.append(Phase("near-batched", "blas", units))

    levels = cds.basis_level_buckets()
    for idx, level in enumerate(levels):
        for bucket in level:
            units = [[_basis_task(factors, v, q, "up") for v in bucket.keys]]
            phases.append(Phase(
                f"up-batched[{idx}][{bucket.kind}"
                f"{bucket.shape[0]}x{bucket.shape[1]}]", "blas", units))

    far_pairs = cds.far_visit_order() or sorted(factors.coupling)
    if far_pairs:
        units = [[_coupling_task(factors, i, j, q) for (i, j) in far_pairs]]
        phases.append(Phase("coupling-batched", "blas", units))

    for idx, level in enumerate(reversed(levels)):
        for bucket in level:
            units = [[_basis_task(factors, v, q, "down") for v in bucket.keys]]
            phases.append(Phase(
                f"down-batched[{idx}][{bucket.kind}"
                f"{bucket.shape[0]}x{bucket.shape[1]}]", "blas", units))
    return phases


# --------------------------------------------------------------------------
# GOFMM-style dynamic task graph.
# --------------------------------------------------------------------------

def gofmm_taskgraph(factors: Factors, q: int) -> list[Task]:
    """All evaluation tasks with dependencies, for the dynamic scheduler."""
    tree = factors.tree
    tasks: list[Task] = []
    up_id: dict[int, int] = {}
    down_id: dict[int, int] = {}
    coupling_into: dict[int, list[int]] = {}

    # Upward tasks, children before parents.
    for v in tree.postorder():
        if v == 0 or factors.srank(v) == 0:
            continue
        t = _basis_task(factors, v, q, "up")
        if not tree.is_leaf(v):
            deps = []
            for c in (int(tree.lchild[v]), int(tree.rchild[v])):
                if c in up_id:
                    deps.append(up_id[c])
            t.deps = tuple(deps)
        up_id[v] = len(tasks)
        tasks.append(t)

    # Near tasks (independent).
    for (i, j) in sorted(factors.near_blocks):
        tasks.append(_near_task(factors, i, j, q))

    # Coupling tasks: need T_j.
    for (i, j) in sorted(factors.coupling):
        t = _coupling_task(factors, i, j, q)
        t.deps = (up_id[j],) if j in up_id else ()
        coupling_into.setdefault(i, []).append(len(tasks))
        tasks.append(t)

    # Downward tasks: need own couplings + parent's downward, top-down.
    for level_nodes in tree.levels():
        for v in level_nodes:
            v = int(v)
            if v == 0 or factors.srank(v) == 0:
                continue
            t = _basis_task(factors, v, q, "down")
            deps = list(coupling_into.get(v, ()))
            par = int(tree.parent[v])
            if par in down_id:
                deps.append(down_id[par])
            t.deps = tuple(deps)
            down_id[v] = len(tasks)
            tasks.append(t)
    return tasks


# --------------------------------------------------------------------------
# STRUMPACK / SMASH level-by-level phases.
# --------------------------------------------------------------------------

def levelbylevel_phases(factors: Factors, q: int) -> list[Phase]:
    """Barrier-per-level schedule with atomic reductions (library style)."""
    tree = factors.tree
    phases: list[Phase] = []

    # Near loop with atomics (Fig. 1d lines 3-6).
    near_pairs = sorted(factors.near_blocks)
    near_tasks = [_near_task(factors, i, j, q) for (i, j) in near_pairs]
    _mark_atomics(list(zip(near_tasks, (i for (i, _j) in near_pairs),
                           strict=True)))
    if near_tasks:
        phases.append(Phase("near", "parallel_for",
                            [[t] for t in near_tasks], atomic_per_task=True))

    by_level: list[list[int]] = [[] for _ in range(tree.height + 1)]
    for v in range(tree.num_nodes):
        if factors.srank(v) > 0:
            by_level[int(tree.level[v])].append(v)

    # Upward: one barrier per tree level.
    for lvl in range(tree.height, -1, -1):
        nodes = by_level[lvl]
        if not nodes:
            continue
        units = [[_basis_task(factors, v, q, "up")] for v in nodes]
        phases.append(Phase(f"up-level[{lvl}]", "parallel_for", units))

    # Coupling with atomics.
    far_pairs = sorted(factors.coupling)
    far_tasks = [_coupling_task(factors, i, j, q) for (i, j) in far_pairs]
    _mark_atomics(list(zip(far_tasks, (i for (i, _j) in far_pairs),
                           strict=True)))
    if far_tasks:
        phases.append(Phase("coupling", "parallel_for",
                            [[t] for t in far_tasks], atomic_per_task=True))

    # Downward: one barrier per tree level, top-down.
    for lvl in range(0, tree.height + 1):
        nodes = by_level[lvl]
        if not nodes:
            continue
        units = [[_basis_task(factors, v, q, "down")] for v in nodes]
        phases.append(Phase(f"down-level[{lvl}]", "parallel_for", units))
    return phases
