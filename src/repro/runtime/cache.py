"""Set-associative LRU cache and TLB simulator.

Reproduces the measurement substrate behind the paper's Figure 6: the paper
collects L1/LLC/TLB hits & misses with PAPI and combines them into an
*average memory access latency* (Hennessy & Patterson). We obtain the same
counters by simulating the cache hierarchy over the evaluation's address
trace, which is derived from the storage layout (CDS vs tree-based) — the
actual mechanism by which CDS improves locality.

The simulator is deliberately simple (inclusive levels, LRU, no prefetcher):
relative miss ratios between layouts are what matters, not absolute rates.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.runtime.machine import CacheSpec, MachineModel


class CacheLevel:
    """One set-associative LRU cache level counting hits/misses."""

    def __init__(self, spec: CacheSpec):
        self.spec = spec
        self.num_sets = max(1, spec.size_bytes // (spec.line_bytes * spec.ways))
        self.ways = spec.ways
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, line_addr: int) -> bool:
        """Access one cache line address; returns True on hit."""
        s = self._sets[line_addr % self.num_sets]
        if line_addr in s:
            s.move_to_end(line_addr)
            self.hits += 1
            return True
        self.misses += 1
        if len(s) >= self.ways:
            s.popitem(last=False)
        s[line_addr] = True
        return False

    def insert(self, line_addr: int) -> None:
        """Install a line without touching the hit/miss counters (prefetch)."""
        s = self._sets[line_addr % self.num_sets]
        if line_addr in s:
            s.move_to_end(line_addr)
            return
        if len(s) >= self.ways:
            s.popitem(last=False)
        s[line_addr] = True

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0


class TLB:
    """Fully-associative LRU TLB over fixed-size pages."""

    def __init__(self, entries: int, page_bytes: int):
        self.entries = entries
        self.page_bytes = page_bytes
        self._pages: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, byte_addr: int) -> bool:
        page = byte_addr // self.page_bytes
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        if len(self._pages) >= self.entries:
            self._pages.popitem(last=False)
        self._pages[page] = True
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class CacheCounters:
    """Aggregated simulation counters (the PAPI-equivalent measurement)."""

    accesses: int
    level_hits: dict[str, int]
    level_misses: dict[str, int]
    tlb_hits: int
    tlb_misses: int

    def miss_ratio(self, level: str) -> float:
        total = self.level_hits[level] + self.level_misses[level]
        return self.level_misses[level] / total if total else 0.0


class CacheHierarchy:
    """Multi-level cache + TLB, driven by line-granular access traces.

    A next-line hardware prefetcher is modelled: every access installs
    ``line + 1`` into L1 *unless that line crosses a page boundary* (real
    stream prefetchers stop at pages). Sequential streams therefore hit
    after their first line, while pointer-chasing layouts pay a miss (and
    usually a TLB miss) at every jump — exactly the mechanism that makes
    CDS faster than tree-based storage.
    """

    def __init__(self, machine: MachineModel, prefetch: bool = True):
        if not machine.caches:
            raise ValueError(f"machine {machine.name} has no cache specs")
        self.machine = machine
        self.levels = [CacheLevel(spec) for spec in machine.caches]
        self.tlb = TLB(machine.tlb_entries, machine.page_bytes)
        self.line_bytes = machine.caches[0].line_bytes
        self.prefetch = prefetch
        self._lines_per_page = max(1, machine.page_bytes // self.line_bytes)

    def access_line(self, line_addr: int) -> None:
        """One load of the cache line at ``line_addr`` (line index units)."""
        self.tlb.access(line_addr * self.line_bytes)
        for level in self.levels:
            # access() installs on miss, so missing levels are filled on the
            # way down (inclusive hierarchy); stop at the first hit.
            if level.access(line_addr):
                break
        if self.prefetch:
            nxt = line_addr + 1
            if nxt // self._lines_per_page == line_addr // self._lines_per_page:
                self.levels[0].insert(nxt)

    def run(self, trace: np.ndarray) -> CacheCounters:
        """Feed a trace of line addresses; returns aggregated counters."""
        access = self.access_line
        for a in trace:
            access(int(a))
        return self.counters()

    def counters(self) -> CacheCounters:
        return CacheCounters(
            accesses=self.levels[0].accesses,
            level_hits={lv.spec.name: lv.hits for lv in self.levels},
            level_misses={lv.spec.name: lv.misses for lv in self.levels},
            tlb_hits=self.tlb.hits,
            tlb_misses=self.tlb.misses,
        )


def simulate_trace(trace: np.ndarray, machine: MachineModel) -> CacheCounters:
    """Convenience wrapper: fresh hierarchy, run trace, return counters."""
    return CacheHierarchy(machine).run(np.asarray(trace))
