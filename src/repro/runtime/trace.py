"""Storage-layout-dependent address traces for the cache simulator.

The trace of one HMatrix-matrix multiplication is the sequence of cache-line
addresses of every *generator* byte the evaluation reads, in execution-visit
order. Only generator traffic is traced: the vector traffic (W/Y/T/S) is
identical for every storage format, so it cancels in the CDS-vs-TB
comparison Figure 6 makes.

* CDS places generators contiguously in visit order, so the trace is a
  near-perfect stream.
* Tree-based storage places each generator in a separate heap allocation
  made in compression order (with allocator headers and, optionally,
  shuffled placement modelling heap fragmentation), so the same visit order
  jumps through the address space.
"""

from __future__ import annotations

import numpy as np

from repro.storage.cds import CDSMatrix
from repro.storage.treebased import TreeBasedStorage
from repro.utils.rng import as_rng

LINE_BYTES = 64
_HEADER_BYTES = 64    # allocator bookkeeping between heap blocks
_PAGE_BYTES = 4096    # large allocations start on fresh pages (size classes)


def matrox_visit_sequence(cds: CDSMatrix) -> list[tuple[str, object]]:
    """Generator visit order of the MatRox generated code."""
    seq: list[tuple[str, object]] = []
    seq.extend(("near", p) for p in cds.near_visit_order())
    up = cds.basis_visit_order()
    seq.extend(("basis", v) for v in up)
    seq.extend(("far", p) for p in cds.far_visit_order())
    seq.extend(("basis", v) for v in reversed(up))
    return seq


def library_visit_sequence(factors) -> list[tuple[str, object]]:
    """Generator visit order of the library-style loops (Fig. 1d):
    near pairs in list order, tree loops level-by-level."""
    tree = factors.tree
    seq: list[tuple[str, object]] = []
    seq.extend(("near", p) for p in sorted(factors.near_blocks))
    by_level: list[list[int]] = [[] for _ in range(tree.height + 1)]
    for v in range(tree.num_nodes):
        if factors.srank(v) > 0:
            by_level[int(tree.level[v])].append(v)
    for level in reversed(by_level):          # bottom-up upward pass
        seq.extend(("basis", v) for v in level)
    seq.extend(("far", p) for p in sorted(factors.coupling))
    for level in by_level:                    # top-down downward pass
        seq.extend(("basis", v) for v in level)
    return seq


def cds_address_map(cds: CDSMatrix) -> dict[tuple[str, object], tuple[int, int]]:
    """(kind, key) -> (byte base, byte length) for the CDS flat buffers."""
    addr: dict[tuple[str, object], tuple[int, int]] = {}
    base = 0
    for v, off in cds.basis_offset.items():
        rows, cols = cds.basis_shape[v]
        addr[("basis", v)] = (base + off * 8, rows * cols * 8)
    base += cds.basis_buf.nbytes
    tree = cds.tree
    for p, off in cds.near_offset.items():
        i, j = p
        nbytes = tree.node_size(i) * tree.node_size(j) * 8
        addr[("near", p)] = (base + off * 8, nbytes)
    base += cds.near_buf.nbytes
    for p, off in cds.far_offset.items():
        i, j = p
        nbytes = cds.factors.srank(i) * cds.factors.srank(j) * 8
        addr[("far", p)] = (base + off * 8, nbytes)
    return addr


def treebased_address_map(
    tb: TreeBasedStorage, shuffle: bool = True, seed: int = 0
) -> dict[tuple[str, object], tuple[int, int]]:
    """(kind, key) -> (byte base, byte length) for per-node heap allocations.

    Allocations are laid out in compression (allocation) order with an
    allocator header between blocks; with ``shuffle=True`` the placement
    order is permuted to model heap reuse/fragmentation in a long-lived
    process.
    """
    entries = []
    for kind, key in tb.allocation_order:
        arr = {"basis": tb.basis, "near": tb.near, "far": tb.far}[kind][key]
        entries.append(((kind, key), arr.nbytes))
    order = np.arange(len(entries))
    if shuffle:
        order = as_rng(seed).permutation(len(entries))
    addr: dict[tuple[str, object], tuple[int, int]] = {}
    cursor = 0
    for idx in order:
        (kind_key, nbytes) = entries[idx]
        cursor += _HEADER_BYTES
        if nbytes >= _PAGE_BYTES // 2:
            # Size-class allocators round big blocks to page boundaries.
            cursor = -(-cursor // _PAGE_BYTES) * _PAGE_BYTES
        addr[kind_key] = (cursor, nbytes)
        cursor += nbytes
    return addr


def trace_from_sequence(
    addr_map: dict[tuple[str, object], tuple[int, int]],
    sequence: list[tuple[str, object]],
    line_bytes: int = LINE_BYTES,
) -> np.ndarray:
    """Expand a visit sequence into cache-line addresses."""
    chunks = []
    for key in sequence:
        base, nbytes = addr_map[key]
        first = base // line_bytes
        last = (base + max(nbytes, 1) - 1) // line_bytes
        chunks.append(np.arange(first, last + 1, dtype=np.int64))
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks)


def cds_trace(cds: CDSMatrix) -> np.ndarray:
    """Line-address trace of one evaluation against CDS storage."""
    return trace_from_sequence(cds_address_map(cds), matrox_visit_sequence(cds))


def treebased_trace(tb: TreeBasedStorage, shuffle: bool = True,
                    seed: int = 0) -> np.ndarray:
    """Line-address trace of one library-style evaluation against TB storage."""
    return trace_from_sequence(
        treebased_address_map(tb, shuffle=shuffle, seed=seed),
        library_visit_sequence(tb.factors),
    )
