"""Discrete-event machine simulator for static phases and dynamic task graphs.

The simulator charges each task its compute time (flops at small-GEMM
efficiency) plus its memory time (bytes over the contended bandwidth,
inflated by the storage layout's locality factor), and charges the runtime
structure its synchronization costs: barriers between phases, task-spawn
overhead for static loops, serialized dequeues for the dynamic central
queue, atomics for library reduction loops, and cold-cache migration
penalties when the dynamic scheduler moves a task away from its data.

All the scheduling disciplines the paper compares are expressible:

* MatRox generated code  -> :func:`simulate_phases` on ``matrox_phases``;
* GOFMM dynamic tasking  -> :func:`simulate_dynamic` on ``gofmm_taskgraph``;
* STRUMPACK/SMASH levels -> :func:`simulate_phases` on ``levelbylevel_phases``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.runtime.machine import MachineModel
from repro.runtime.tasks import Phase, Task

# Compute-stall inflation when the dynamic scheduler migrates a task away
# from the worker holding its data (cold private caches), plus the extra
# fraction of its bytes refetched from shared cache/DRAM.
_MIGRATION_STALL = 1.80
_MIGRATION_REFETCH = 0.8


def _effective_locality(locality: float, active: int, beta: float) -> float:
    """Shared-cache contention: scattered working sets (tree-based storage)
    evict each other as more cores run, inflating the stall portion of the
    locality factor. Schedules that co-locate dependent tasks on compact
    CDS regions (MatRox) pass ``beta = 0``."""
    return 1.0 + (locality - 1.0) * (1.0 + beta * max(active - 1, 0))


@dataclass
class SimResult:
    """Outcome of one simulated evaluation."""

    time_s: float
    phase_times: dict[str, float] = field(default_factory=dict)
    busy_s: float = 0.0
    overhead_s: float = 0.0
    num_tasks: int = 0

    @property
    def parallel_efficiency(self) -> float:
        return self.busy_s / self.time_s if self.time_s > 0 else 0.0

    def gflops(self, flops: float) -> float:
        return flops / self.time_s / 1e9 if self.time_s > 0 else 0.0


def _task_seconds(task: Task, machine: MachineModel, active: int,
                  locality: float) -> float:
    """Time of one task on one core.

    The locality factor (AMAL relative to the all-hit ideal, >= 1) stalls
    the compute pipeline of these small memory-dependent GEMMs *and*
    degrades the effective streaming bandwidth of the generator bytes
    (scattered layouts defeat the prefetcher and pay TLB stalls mid-stream).
    """
    comp = machine.flop_seconds(task.flops) * locality
    mem = machine.mem_seconds(task.bytes, active_cores=active) * locality
    return comp + mem


def _chunk(units: list, p: int) -> list[list]:
    """Assign units to p workers with dynamic chunk scheduling.

    Models ``omp for schedule(dynamic)`` over conflict-free units: each unit
    goes to the currently lightest worker (in unit order), which is what a
    work-queue of blocks converges to. Blocks carry no write conflicts, so
    this costs no atomics — only the per-unit spawn overhead already charged.
    """
    n = len(units)
    if n == 0:
        return []
    p = min(p, n)
    loads = [0.0] * p
    out: list[list] = [[] for _ in range(p)]
    for u in units:
        w = min(range(p), key=loads.__getitem__)
        out[w].extend(u)
        loads[w] += sum(t.flops for t in u)
    return [chunk for chunk in out if chunk]


def simulate_phases(
    phases: list[Phase],
    machine: MachineModel,
    p: int | None = None,
    locality: float = 1.0,
    contention_beta: float = 0.0,
) -> SimResult:
    """Simulate a static schedule: phases in order, barrier after each
    parallel phase. Phase time = slowest worker + synchronization.
    ``contention_beta`` > 0 models shared-cache thrash of scattered
    (tree-based) working sets growing with active cores."""
    p = machine.num_cores if p is None else p
    total = 0.0
    busy = 0.0
    overhead = 0.0
    ntasks = 0
    phase_times: dict[str, float] = {}

    for phase in phases:
        ntasks += phase.num_tasks()
        if phase.kind == "serial":
            work = sum(
                _task_seconds(t, machine, 1, locality)
                for u in phase.units for t in u
            )
            dt = work
            busy += work
        elif phase.kind == "blas":
            # Peeled root iteration: one fat BLAS call — blocked GEMMs are
            # insensitive to the storage layout, so no locality stall.
            flops = phase.total_flops()
            nbytes = phase.total_bytes()
            comp = machine.flop_seconds(flops, cores=p,
                                        efficiency=machine.blas_efficiency)
            mem = machine.mem_seconds(nbytes, active_cores=p) / max(p, 1)
            dt = comp + mem + machine.barrier_seconds(p)
            busy += (comp + mem) * p
            overhead += machine.barrier_seconds(p)
        elif phase.kind in ("parallel_for", "parallel_units"):
            if phase.kind == "parallel_for":
                assignments = _chunk(phase.units, p)
            else:
                assignments = [list(u) for u in phase.units[:]]
                # More units than workers: fold extras onto workers greedily.
                if len(assignments) > p:
                    folded = [[] for _ in range(p)]
                    for idx, u in enumerate(assignments):
                        folded[idx % p].extend(u)
                    assignments = folded
            active = max(1, len(assignments))
            loc_eff = _effective_locality(locality, active, contention_beta)
            worker_times = []
            atomic_contention = 1.0 + 0.03 * (active - 1)
            for unit in assignments:
                wt = machine.task_spawn_us * 1e-6
                for t in unit:
                    dt_task = _task_seconds(t, machine, active, loc_eff)
                    if phase.atomic_per_task and t.atomic:
                        # Every output element updated atomically, contended
                        # by the other active workers (Fig. 1d lines 4-5).
                        dt_task += (
                            t.out_elems * machine.atomic_us * 1e-6
                            * atomic_contention
                        )
                    wt += dt_task
                worker_times.append(wt)
            work = sum(worker_times)
            dt = (max(worker_times) if worker_times else 0.0) + (
                machine.barrier_seconds(p)
            )
            busy += work
            overhead += machine.barrier_seconds(p)
        else:
            raise ValueError(f"unknown phase kind {phase.kind!r}")
        phase_times[phase.name] = phase_times.get(phase.name, 0.0) + dt
        total += dt

    return SimResult(time_s=total, phase_times=phase_times, busy_s=busy,
                     overhead_s=overhead, num_tasks=ntasks)


def simulate_dynamic(
    tasks: list[Task],
    machine: MachineModel,
    p: int | None = None,
    locality: float = 1.0,
    contention_beta: float = 0.06,
) -> SimResult:
    """Simulate a dynamic central-queue scheduler (the GOFMM model).

    List scheduling over the dependency graph with three costs the static
    schedule avoids: a serialized dequeue per task, loss of data affinity
    when a task lands on a worker whose previous task touched different
    data (extra ``_MIGRATION_REFETCH`` of its bytes), and FIFO ordering
    that ignores locality entirely.
    """
    p = machine.num_cores if p is None else p
    n = len(tasks)
    if n == 0:
        return SimResult(time_s=0.0)

    indeg = [len(t.deps) for t in tasks]
    dependents: list[list[int]] = [[] for _ in range(n)]
    for i, t in enumerate(tasks):
        for d in t.deps:
            dependents[d].append(i)

    ready: list[tuple[float, int]] = []  # (ready_time, task_idx) FIFO-ish
    for i in range(len(tasks)):
        if indeg[i] == 0:
            heapq.heappush(ready, (0.0, i))

    workers = [(0.0, w) for w in range(p)]  # (free_time, worker_id)
    heapq.heapify(workers)
    last_affinity: dict[int, int | None] = {w: None for w in range(p)}
    queue_free = 0.0
    finish = [0.0] * n
    busy = 0.0
    overhead = 0.0
    done = 0
    makespan = 0.0
    # Central-queue lock contention grows with the workers hammering it.
    dq = machine.dequeue_us * 1e-6 * (1.0 + 0.05 * p)
    loc_eff = _effective_locality(locality, min(p, n), contention_beta)

    while done < n:
        ready_time, idx = heapq.heappop(ready)
        free_time, w = heapq.heappop(workers)
        start = max(ready_time, free_time, queue_free) + dq
        queue_free = start  # dequeues serialize through the queue lock
        overhead += dq
        t = tasks[idx]
        dur = _task_seconds(t, machine, min(p, n), loc_eff)
        if p > 1 and last_affinity[w] is not None and last_affinity[w] != t.affinity:
            # Cold private cache after migration; the penalty saturates as
            # core count grows (1 - 1/p of tasks land on a foreign core).
            scale = 1.0 - 1.0 / p
            dur *= 1.0 + (_MIGRATION_STALL - 1.0) * scale
            dur += machine.mem_seconds(
                t.bytes * _MIGRATION_REFETCH * scale, active_cores=min(p, n)
            )
        last_affinity[w] = t.affinity
        end = start + dur
        busy += dur
        finish[idx] = end
        makespan = max(makespan, end)
        heapq.heappush(workers, (end, w))
        done += 1
        for dep in dependents[idx]:
            indeg[dep] -= 1
            if indeg[dep] == 0:
                heapq.heappush(ready, (end, dep))

    return SimResult(time_s=makespan, busy_s=busy, overhead_s=overhead,
                     num_tasks=n)
