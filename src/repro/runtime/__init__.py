"""Execution runtime: machine models, cache simulation, and schedule simulation.

The paper evaluates on real Haswell/KNL multicores with PAPI counters. This
sandbox has one core and no counters, so (per DESIGN.md section 2) the
performance experiments run on a **simulated machine**: task graphs extracted
from the real structure sets are executed by a discrete-event simulator with
calibrated machine models, and locality is measured by a set-associative
cache + TLB simulator fed with storage-layout-dependent access traces.

Functional execution (the actual numerics) always uses the real generated
code; the simulator only accounts time.
"""

from repro.runtime.cache import CacheHierarchy, CacheLevel, simulate_trace
from repro.runtime.latency import average_memory_access_latency, locality_factor
from repro.runtime.machine import HASWELL, KNL, MACHINES, MachineModel
from repro.runtime.simulator import SimResult, simulate_dynamic, simulate_phases
from repro.runtime.tasks import (
    Phase,
    Task,
    gofmm_taskgraph,
    levelbylevel_phases,
    matrox_batched_phases,
    matrox_phases,
)
from repro.runtime.trace import cds_trace, treebased_trace

__all__ = [
    "MachineModel",
    "HASWELL",
    "KNL",
    "MACHINES",
    "CacheHierarchy",
    "CacheLevel",
    "simulate_trace",
    "average_memory_access_latency",
    "locality_factor",
    "Task",
    "Phase",
    "matrox_phases",
    "matrox_batched_phases",
    "gofmm_taskgraph",
    "levelbylevel_phases",
    "simulate_phases",
    "simulate_dynamic",
    "SimResult",
    "cds_trace",
    "treebased_trace",
]
