"""Two-means splitting rule for high-dimensional points (d > 3 in the paper).

A few Lloyd iterations find two centers; points are then *balance-split* at
the median of their projection onto the center-to-center axis. Projecting
and splitting at the median (rather than assigning by nearest center) keeps
the tree perfectly balanced, which matches how GOFMM and the paper's binary
CTree behave and keeps level widths predictable for coarsening.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng


def twomeans_split(
    points: np.ndarray,
    indices: np.ndarray,
    rng=None,
    n_iter: int = 4,
) -> tuple[np.ndarray, np.ndarray]:
    """Split ``indices`` into two balanced halves along the two-means axis."""
    rng = as_rng(rng)
    pts = points[indices]
    m = len(indices)
    if m < 2:
        raise ValueError("cannot split fewer than 2 points")

    # Seed the two centers with distinct random points.
    seeds = rng.choice(m, size=2, replace=False)
    c0, c1 = pts[seeds[0]].copy(), pts[seeds[1]].copy()
    for _ in range(n_iter):
        d0 = np.einsum("ij,ij->i", pts - c0, pts - c0)
        d1 = np.einsum("ij,ij->i", pts - c1, pts - c1)
        mask = d0 <= d1
        if mask.all() or not mask.any():
            break  # degenerate clustering; fall through to axis projection
        new_c0 = pts[mask].mean(axis=0)
        new_c1 = pts[~mask].mean(axis=0)
        if np.allclose(new_c0, c0) and np.allclose(new_c1, c1):
            c0, c1 = new_c0, new_c1
            break
        c0, c1 = new_c0, new_c1

    axis = c1 - c0
    norm = np.linalg.norm(axis)
    if norm == 0.0:
        # All points coincide (or clustering collapsed): random direction.
        axis = rng.normal(size=pts.shape[1])
        norm = np.linalg.norm(axis)
    axis /= norm
    proj = pts @ axis
    order = np.argsort(proj, kind="stable")
    half = (m + 1) // 2
    return indices[order[:half]], indices[order[half:]]
