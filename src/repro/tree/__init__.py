"""Binary cluster tree (CTree) construction.

The CTree hierarchically partitions the point set: the root owns all points,
each interior node splits its points into two children, and partitioning
stops when a node holds at most ``leaf_size`` points. Following the paper,
kd-tree splitting is used for low-dimensional points (d <= 3) and two-means
splitting for high-dimensional points (d > 3).
"""

from repro.tree.build import build_cluster_tree
from repro.tree.cluster_tree import ClusterTree, TreeNode
from repro.tree.kdtree import kdtree_split
from repro.tree.twomeans import twomeans_split

__all__ = [
    "ClusterTree",
    "TreeNode",
    "build_cluster_tree",
    "kdtree_split",
    "twomeans_split",
]
