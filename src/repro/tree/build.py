"""Cluster-tree builder: recursive bisection with pluggable split rule."""

from __future__ import annotations

import numpy as np

from repro.tree.cluster_tree import ClusterTree
from repro.tree.kdtree import kdtree_split
from repro.tree.twomeans import twomeans_split
from repro.utils.rng import as_rng
from repro.utils.validation import check_points, require


def build_cluster_tree(
    points,
    leaf_size: int = 64,
    method: str = "auto",
    seed=None,
) -> ClusterTree:
    """Build a binary :class:`ClusterTree` over ``points``.

    Parameters
    ----------
    points:
        (N, d) point set.
    leaf_size:
        Partitioning stops when a node holds at most this many points
        (the paper's leaf-size constant ``m``).
    method:
        ``"kdtree"``, ``"twomeans"``, or ``"auto"`` which follows the paper:
        kd-tree when d <= 3, two-means when d > 3.
    seed:
        RNG seed for the stochastic two-means splits.
    """
    pts = check_points(points)
    require(leaf_size >= 1, f"leaf_size must be >= 1, got {leaf_size}")
    n, d = pts.shape

    if method == "auto":
        method = "kdtree" if d <= 3 else "twomeans"
    if method == "kdtree":
        split = kdtree_split
    elif method == "twomeans":
        split = twomeans_split
    else:
        raise ValueError(f"unknown method {method!r}")

    rng = as_rng(seed)

    # BFS construction so node ids come out in breadth-first order.
    parent: list[int] = [-1]
    lchild: list[int] = [-1]
    rchild: list[int] = [-1]
    level: list[int] = [0]
    start: list[int] = [0]
    stop: list[int] = [n]
    node_indices: dict[int, np.ndarray] = {0: np.arange(n, dtype=np.intp)}

    frontier = [0]
    while frontier:
        next_frontier: list[int] = []
        for v in frontier:
            idx = node_indices[v]
            if len(idx) <= leaf_size or len(idx) < 2:
                continue
            left_idx, right_idx = split(pts, idx, rng)
            require(
                len(left_idx) > 0 and len(right_idx) > 0,
                "split rule produced an empty side",
            )
            for side, child_idx in ((0, left_idx), (1, right_idx)):
                cid = len(parent)
                parent.append(v)
                lchild.append(-1)
                rchild.append(-1)
                level.append(level[v] + 1)
                offset = start[v] if side == 0 else start[v] + len(left_idx)
                start.append(offset)
                stop.append(offset + len(child_idx))
                node_indices[cid] = child_idx
                if side == 0:
                    lchild[v] = cid
                else:
                    rchild[v] = cid
                next_frontier.append(cid)
            del node_indices[v]
        frontier = next_frontier

    # Assemble the permutation from leaf ownership (leaves cover [0, N)).
    perm = np.empty(n, dtype=np.intp)
    for v, idx in node_indices.items():
        perm[start[v] : stop[v]] = idx

    return ClusterTree(pts, perm, parent, lchild, rchild, level, start, stop)
