"""Array-based binary cluster tree data structure.

Nodes are numbered in breadth-first order (the numbering used in the paper's
Figure 1b: root = 0, its children 1 and 2, ...). All per-node attributes live
in flat NumPy arrays indexed by node id, which keeps traversals cache-friendly
and makes the structure cheap to serialise — the same reasons the paper's CDS
format favours flat storage.

Each node owns the contiguous slice ``perm[start:stop]`` of the point
permutation, so a leaf's points (and any subtree's points) are a contiguous
range after reordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TreeNode:
    """Convenience view of one cluster-tree node (ids refer to BFS order)."""

    index: int
    parent: int
    lchild: int
    rchild: int
    level: int
    start: int
    stop: int

    @property
    def is_leaf(self) -> bool:
        return self.lchild < 0

    @property
    def size(self) -> int:
        return self.stop - self.start


class ClusterTree:
    """Binary cluster tree over ``points``.

    Parameters
    ----------
    points:
        The (N, d) point set (unpermuted, as supplied by the user).
    perm:
        Permutation of ``range(N)``; node ``v`` owns ``perm[start[v]:stop[v]]``.
    parent, lchild, rchild, level, start, stop:
        Flat per-node arrays (BFS node order). ``lchild/rchild = -1`` on leaves.
    """

    def __init__(self, points, perm, parent, lchild, rchild, level, start, stop):
        self.points = np.ascontiguousarray(points, dtype=np.float64)
        self.perm = np.asarray(perm, dtype=np.intp)
        self.parent = np.asarray(parent, dtype=np.intp)
        self.lchild = np.asarray(lchild, dtype=np.intp)
        self.rchild = np.asarray(rchild, dtype=np.intp)
        self.level = np.asarray(level, dtype=np.intp)
        self.start = np.asarray(start, dtype=np.intp)
        self.stop = np.asarray(stop, dtype=np.intp)
        self._validate()
        # Points in tree order: leaf/subtree point blocks become contiguous.
        self.ordered_points = self.points[self.perm]
        self._centers = None
        self._radii = None

    # ------------------------------------------------------------------ basics
    def _validate(self) -> None:
        n_nodes = len(self.parent)
        arrays = (self.lchild, self.rchild, self.level, self.start, self.stop)
        if any(len(a) != n_nodes for a in arrays):
            raise ValueError("per-node arrays must share one length")
        if n_nodes == 0:
            raise ValueError("tree must contain at least the root")
        if sorted(self.perm.tolist()) != list(range(self.num_points)):
            raise ValueError("perm must be a permutation of range(N)")
        if self.start[0] != 0 or self.stop[0] != self.num_points:
            raise ValueError("root must own the full point range")

    @property
    def num_points(self) -> int:
        return len(self.points)

    @property
    def dim(self) -> int:
        return self.points.shape[1]

    @property
    def num_nodes(self) -> int:
        return len(self.parent)

    @property
    def height(self) -> int:
        """Maximum level (root has level 0)."""
        return int(self.level.max())

    def node(self, v: int) -> TreeNode:
        return TreeNode(
            index=v,
            parent=int(self.parent[v]),
            lchild=int(self.lchild[v]),
            rchild=int(self.rchild[v]),
            level=int(self.level[v]),
            start=int(self.start[v]),
            stop=int(self.stop[v]),
        )

    def is_leaf(self, v: int) -> bool:
        return self.lchild[v] < 0

    def node_size(self, v: int) -> int:
        return int(self.stop[v] - self.start[v])

    def node_point_indices(self, v: int) -> np.ndarray:
        """Original (input-order) indices of the points owned by node ``v``."""
        return self.perm[self.start[v] : self.stop[v]]

    def node_points(self, v: int) -> np.ndarray:
        """Coordinates of the points owned by node ``v`` (contiguous view)."""
        return self.ordered_points[self.start[v] : self.stop[v]]

    # -------------------------------------------------------------- traversals
    @property
    def leaves(self) -> np.ndarray:
        return np.flatnonzero(self.lchild < 0)

    def levels(self) -> list[np.ndarray]:
        """Node ids grouped by level, root level first."""
        return [np.flatnonzero(self.level == lvl)
                for lvl in range(self.height + 1)]

    def postorder(self, root: int = 0) -> list[int]:
        """Post-order node ids of the subtree rooted at ``root``."""
        out: list[int] = []
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            v, expanded = stack.pop()
            if expanded or self.is_leaf(v):
                out.append(v)
            else:
                stack.append((v, True))
                stack.append((int(self.rchild[v]), False))
                stack.append((int(self.lchild[v]), False))
        return out

    def subtree_nodes(self, root: int, max_level: int | None = None) -> list[int]:
        """Post-order nodes of ``root``'s subtree, truncated below ``max_level``."""
        out: list[int] = []
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            v, expanded = stack.pop()
            leafish = self.is_leaf(v) or (
                max_level is not None and self.level[v] >= max_level
            )
            if expanded or leafish:
                out.append(v)
            else:
                stack.append((v, True))
                stack.append((int(self.rchild[v]), False))
                stack.append((int(self.lchild[v]), False))
        return out

    # ------------------------------------------------------- geometry summary
    def _compute_geometry(self) -> None:
        centers = np.empty((self.num_nodes, self.dim))
        radii = np.empty(self.num_nodes)
        for v in range(self.num_nodes):
            pts = self.node_points(v)
            c = pts.mean(axis=0)
            centers[v] = c
            diff = pts - c
            radii[v] = np.sqrt(np.max(np.einsum("ij,ij->i", diff, diff)))
        self._centers = centers
        self._radii = radii

    @property
    def centers(self) -> np.ndarray:
        """Bounding-sphere centers per node (mean of owned points)."""
        if self._centers is None:
            self._compute_geometry()
        return self._centers

    @property
    def radii(self) -> np.ndarray:
        """Bounding-sphere radii per node."""
        if self._radii is None:
            self._compute_geometry()
        return self._radii

    def diameter(self, v: int) -> float:
        """Bounding-sphere diameter of node ``v`` (2 * radius)."""
        return 2.0 * float(self.radii[v])

    def distance(self, a: int, b: int) -> float:
        """Center-to-center distance between two nodes."""
        return float(np.linalg.norm(self.centers[a] - self.centers[b]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterTree(N={self.num_points}, d={self.dim}, "
            f"nodes={self.num_nodes}, height={self.height}, "
            f"leaves={len(self.leaves)})"
        )
