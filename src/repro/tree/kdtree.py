"""kd-tree splitting rule for low-dimensional points (d <= 3 in the paper)."""

from __future__ import annotations

import numpy as np


def kdtree_split(points: np.ndarray, indices: np.ndarray,
                 rng=None) -> tuple[np.ndarray, np.ndarray]:
    """Split ``indices`` at the median of the widest coordinate.

    Returns (left, right) index arrays with ``len(left) = ceil(m / 2)``.
    Median splitting guarantees a balanced binary tree, which the coarsening
    analysis relies on for predictable level widths.
    """
    pts = points[indices]
    spread = pts.max(axis=0) - pts.min(axis=0)
    axis = int(np.argmax(spread))
    order = np.argsort(pts[:, axis], kind="stable")
    half = (len(indices) + 1) // 2
    return indices[order[:half]], indices[order[half:]]
