"""The HMatrix: compressed kernel matrix + structure sets + CDS + code.

This is the object the MatRox inspector hands to the executor (the ``H`` of
the paper's Figure 2). It owns the CDS-packed generators, the structure sets
that produced the layout, and the compiled specialized evaluator, and maps
between the user's point order and the internal tree order.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from repro.analysis.structure_sets import BlockSet, CoarsenSet
from repro.api.policy import ExecutionPolicy, resolve_policy
from repro.codegen.emit import GeneratedEvaluator
from repro.compression.factors import Factors
from repro.storage.cds import CDSMatrix


@dataclass
class HMatrix:
    """Compressed H2 approximation of a kernel matrix."""

    cds: CDSMatrix
    evaluator: GeneratedEvaluator
    metadata: dict = field(default_factory=dict)
    _batched: GeneratedEvaluator | None = field(default=None, repr=False)
    _batched_built: bool = field(default=False, repr=False)
    _compiled: object | None = field(default=None, repr=False)
    _compiled_built: bool = field(default=False, repr=False)

    @property
    def factors(self) -> Factors:
        return self.cds.factors

    @property
    def tree(self):
        return self.cds.tree

    @property
    def dim(self) -> int:
        """Matrix dimension N."""
        return self.cds.dim

    @property
    def shape(self) -> tuple[int, int]:
        return (self.dim, self.dim)

    @property
    def sranks(self) -> np.ndarray:
        return self.factors.sranks

    @property
    def coarsenset(self) -> CoarsenSet:
        return self.cds.coarsenset

    @property
    def near_blockset(self) -> BlockSet:
        return self.cds.near_blockset

    @property
    def far_blockset(self) -> BlockSet:
        return self.cds.far_blockset

    # ------------------------------------------------------------- evaluation
    @property
    def batched_evaluator(self) -> GeneratedEvaluator | None:
        """The bucketed batched-GEMM evaluator, or None when the cost model
        rejected batch lowering (low bucket occupancy). Compiled lazily on
        first use and cached — the inspector already paid for the structure
        analysis, so this is just table gathering + one ``compile``.
        """
        if not self._batched_built:
            self._batched_built = True
            if self.evaluator.decision.batch:
                from repro.codegen.emit import generate_batched_evaluator
                self._batched = generate_batched_evaluator(self.cds)
        return self._batched

    @property
    def compiled_evaluator(self):
        """The fused compiled evaluator, or None when unavailable.

        Resolved (and attached) through the process-global
        :class:`~repro.codegen.compiled.CompiledCache` on first use;
        Executors/Sessions resolve through their own store-backed cache
        instead, which attaches here too. ``None`` means
        ``order="compiled"`` degrades to the batched path.
        """
        if not self._compiled_built:
            from repro.codegen.compiled import default_compiled_cache
            default_compiled_cache().evaluator_for(self)
        return self._compiled

    def attach_compiled(self, ev) -> None:
        """Attach a resolved compiled evaluator (or None = unavailable)."""
        self._compiled = ev
        self._compiled_built = True

    def matmul(self, W: np.ndarray, pool=None, order: str | None = None,
               q_chunk: int | None = None,
               policy: "ExecutionPolicy | None" = None) -> np.ndarray:
        """``Y = K~ @ W`` with the generated specialized code.

        Knobs resolve through one :class:`~repro.api.policy.ExecutionPolicy`
        (explicit ``order``/``q_chunk`` win over ``policy``, which wins over
        :data:`~repro.api.policy.DEFAULT_POLICY`). ``order="batched"`` (the
        shared default) treats W rows as being in the user's input point
        order and executes through the bucketed batched-GEMM engine, falling
        back to the per-block code (with ``pool``) when the cost model
        rejected batch lowering; ``order="compiled"`` runs the fused
        compiled executor (bit-identical; degrades to the batched path
        when unavailable); ``order="original"`` forces the per-block
        code; ``order="tree"`` skips both permutations (internal/benchmark
        use). ``q_chunk`` overrides the selected evaluator's streaming panel
        width (the single chunking layer — callers never chunk on top of
        it). When no ``pool`` is given and the policy asks for threads, a
        short-lived pool is created for this call.
        """
        pol = resolve_policy(policy, order=order, q_chunk=q_chunk)
        if pol.is_auto:
            # Profile-guided resolution (DESIGN.md section 9) through the
            # process-global tuner: repeated bare H.matmul(W) calls reuse
            # the profile tuned on the first one. Executor/Session carry
            # their own (PlanStore-persisted) tuner instead.
            from repro.tuning import resolve_auto
            pol = resolve_auto(self, W, pol)
        order, q_chunk = pol.order, pol.q_chunk
        if pol.backend == "process" and pool is None and order != "original":
            # Convenience path: a short-lived pool for this one call. For
            # the persistent pool the backend is designed around, route
            # through an Executor or Session, which cache one
            # ProcessEngine per HMatrix and close it deterministically.
            # order="original" asks for the per-block code by name, so it
            # wins over the backend and runs in-process below.
            from repro.core.parallel import ProcessEngine
            with ProcessEngine(self, num_workers=pol.num_workers,
                               q_chunk=q_chunk) as engine:
                return engine.matmul(W, order=order)
        if pool is None and pol.num_threads and pol.num_threads > 1:
            with ThreadPoolExecutor(max_workers=pol.num_threads) as tmp:
                return self.matmul(W, pool=tmp, order=order, q_chunk=q_chunk)
        W = np.ascontiguousarray(W, dtype=np.float64)
        squeeze = W.ndim == 1
        if squeeze:
            W = W[:, None]
        if W.shape[0] != self.dim:
            raise ValueError(
                f"W has {W.shape[0]} rows but the HMatrix dimension is "
                f"{self.dim}"
            )
        if order == "tree":
            ev = self.evaluator
        elif order in ("original", "batched", "compiled"):
            # Degradation chain: compiled -> batched -> per-block code.
            # Each step preserves results bit-for-bit, so asking for a
            # tier that is unavailable is a performance event (counted
            # by the CompiledCache / lowering decision), never an error.
            ev = self.evaluator
            if order == "compiled" and self.compiled_evaluator is not None:
                ev = self.compiled_evaluator
            elif (order in ("batched", "compiled")
                    and self.batched_evaluator is not None):
                ev = self.batched_evaluator
        else:
            raise ValueError(
                f"order must be 'original', 'tree', 'batched', or "
                f"'compiled', got {order!r}"
            )
        if q_chunk is not None and ev.q_chunk != q_chunk:
            ev = replace(ev, q_chunk=q_chunk)
        if order == "tree":
            Y = ev(W, pool=pool)
        else:
            perm = self.tree.perm
            Y_tree = ev(W[perm], pool=pool)
            Y = np.empty_like(Y_tree)
            Y[perm] = Y_tree
        return Y[:, 0] if squeeze else Y

    def __matmul__(self, W: np.ndarray) -> np.ndarray:
        return self.matmul(W)

    # -------------------------------------------------------------- reporting
    def memory_bytes(self) -> int:
        return self.cds.total_bytes()

    def compression_ratio(self) -> float:
        dense = self.dim * self.dim * 8
        stored = self.memory_bytes()
        return dense / stored if stored else float("inf")

    def evaluation_flops(self, q: int) -> int:
        return self.factors.evaluation_flops(q)

    def summary(self) -> dict:
        """Human-readable structural summary (used by examples and logs)."""
        f = self.factors
        active = f.sranks[f.sranks > 0]
        return {
            "N": self.dim,
            "structure": f.htree.structure,
            "tree_height": self.tree.height,
            "num_leaves": int(len(self.tree.leaves)),
            "near_interactions": f.htree.num_near(),
            "far_interactions": f.htree.num_far(),
            "mean_srank": float(active.mean()) if len(active) else 0.0,
            "max_srank": int(active.max()) if len(active) else 0,
            "memory_mb": self.memory_bytes() / 2**20,
            "compression_ratio": self.compression_ratio(),
            "lowering": {
                "block_near": self.evaluator.decision.block_near,
                "block_far": self.evaluator.decision.block_far,
                "coarsen": self.evaluator.decision.coarsen,
                "peel_root": self.evaluator.decision.peel_root,
                "batch": self.evaluator.decision.batch,
            },
        }
