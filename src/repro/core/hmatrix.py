"""The HMatrix: compressed kernel matrix + structure sets + CDS + code.

This is the object the MatRox inspector hands to the executor (the ``H`` of
the paper's Figure 2). It owns the CDS-packed generators, the structure sets
that produced the layout, and the compiled specialized evaluator, and maps
between the user's point order and the internal tree order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.structure_sets import BlockSet, CoarsenSet
from repro.codegen.emit import GeneratedEvaluator
from repro.compression.factors import Factors
from repro.storage.cds import CDSMatrix


@dataclass
class HMatrix:
    """Compressed H2 approximation of a kernel matrix."""

    cds: CDSMatrix
    evaluator: GeneratedEvaluator
    metadata: dict = field(default_factory=dict)

    @property
    def factors(self) -> Factors:
        return self.cds.factors

    @property
    def tree(self):
        return self.cds.tree

    @property
    def dim(self) -> int:
        """Matrix dimension N."""
        return self.cds.dim

    @property
    def shape(self) -> tuple[int, int]:
        return (self.dim, self.dim)

    @property
    def sranks(self) -> np.ndarray:
        return self.factors.sranks

    @property
    def coarsenset(self) -> CoarsenSet:
        return self.cds.coarsenset

    @property
    def near_blockset(self) -> BlockSet:
        return self.cds.near_blockset

    @property
    def far_blockset(self) -> BlockSet:
        return self.cds.far_blockset

    # ------------------------------------------------------------- evaluation
    def matmul(self, W: np.ndarray, pool=None, order: str = "original") -> np.ndarray:
        """``Y = K~ @ W`` with the generated specialized code.

        ``order="original"`` (default) treats W rows as being in the user's
        input point order and returns Y in the same order; ``order="tree"``
        skips both permutations (internal/benchmark use).
        """
        W = np.ascontiguousarray(W, dtype=np.float64)
        squeeze = W.ndim == 1
        if squeeze:
            W = W[:, None]
        if W.shape[0] != self.dim:
            raise ValueError(
                f"W has {W.shape[0]} rows but the HMatrix dimension is "
                f"{self.dim}"
            )
        if order == "tree":
            Y = self.evaluator(W, pool=pool)
        elif order == "original":
            perm = self.tree.perm
            Y_tree = self.evaluator(W[perm], pool=pool)
            Y = np.empty_like(Y_tree)
            Y[perm] = Y_tree
        else:
            raise ValueError(f"order must be 'original' or 'tree', got {order!r}")
        return Y[:, 0] if squeeze else Y

    def __matmul__(self, W: np.ndarray) -> np.ndarray:
        return self.matmul(W)

    # -------------------------------------------------------------- reporting
    def memory_bytes(self) -> int:
        return self.cds.total_bytes()

    def compression_ratio(self) -> float:
        dense = self.dim * self.dim * 8
        stored = self.memory_bytes()
        return dense / stored if stored else float("inf")

    def evaluation_flops(self, q: int) -> int:
        return self.factors.evaluation_flops(q)

    def summary(self) -> dict:
        """Human-readable structural summary (used by examples and logs)."""
        f = self.factors
        active = f.sranks[f.sranks > 0]
        return {
            "N": self.dim,
            "structure": f.htree.structure,
            "tree_height": self.tree.height,
            "num_leaves": int(len(self.tree.leaves)),
            "near_interactions": f.htree.num_near(),
            "far_interactions": f.htree.num_far(),
            "mean_srank": float(active.mean()) if len(active) else 0.0,
            "max_srank": int(active.max()) if len(active) else 0,
            "memory_mb": self.memory_bytes() / 2**20,
            "compression_ratio": self.compression_ratio(),
            "lowering": {
                "block_near": self.evaluator.decision.block_near,
                "block_far": self.evaluator.decision.block_far,
                "coarsen": self.evaluator.decision.coarsen,
                "peel_root": self.evaluator.decision.peel_root,
            },
        }
