"""The MatRox inspector: modular compression + structure analysis + codegen.

``inspector`` runs everything (the paper's Figure 2 usage). For inspection
reuse (Section 5, Figure 8), the work is split into

* ``inspector_p1`` — tree construction, interaction computation, sampling,
  and *blocking*: everything that depends only on the points and the
  admissibility condition;
* ``inspector_p2`` — low-rank approximation, *coarsening* (needs sranks),
  data-layout construction, and code generation: everything that depends on
  the kernel function and the block accuracy.

Changing the kernel and/or bacc therefore re-runs only p2 against a cached
:class:`InspectionP1`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.blocking import build_blockset
from repro.api.plan import PlanConfig
from repro.analysis.coarsening import build_coarsenset
from repro.codegen.emit import generate_evaluator
from repro.codegen.ir import build_ir
from repro.codegen.lowering import decide_lowering
from repro.compression.skeleton import skeletonize_tree
from repro.core.hmatrix import HMatrix
from repro.htree.admissibility import Admissibility, make_admissibility
from repro.htree.htree import HTree, build_htree
from repro.kernels.base import Kernel, get_kernel
from repro.sampling.plan import SamplingPlan, build_sampling_plan
from repro.storage.cds import build_cds
from repro.tree.build import build_cluster_tree
from repro.tree.cluster_tree import ClusterTree


#: Process-wide phase run counters. The Session cache tests (and anyone
#: auditing inspection reuse) read these to *prove* that a cache hit
#: skipped the corresponding phase rather than silently re-running it.
INSPECTION_COUNTS = {"p1": 0, "p2": 0}


@dataclass
class InspectionP1:
    """Kernel/accuracy-independent inspection output (reusable)."""

    tree: ClusterTree
    htree: HTree
    plan: SamplingPlan
    near_blockset: object
    far_blockset: object
    timings: dict[str, float] = field(default_factory=dict)

    def total_time(self) -> float:
        return sum(self.timings.values())


@dataclass(frozen=True)
class Inspector(PlanConfig):
    """Configurable MatRox inspector.

    The knob *schema* (fields, paper defaults, validation) is inherited
    from :class:`~repro.api.plan.PlanConfig` — it exists exactly once —
    and this subclass adds the phase-1/phase-2 machinery. Defaults mirror
    the paper: ``tau = 0.65`` / ``budget = 0.03`` admissibility,
    ``bacc = 1e-5``, leaf size 64, sampling size 32, max rank 256,
    ``agg = 2``, ``p`` = physical cores, near/far blocksizes 2/4,
    coarsen-threshold 4, block-threshold = number of leaf nodes.
    """

    def _admissibility(self) -> Admissibility:
        if self.structure in ("h2", "h2-geometric", "geometric"):
            return make_admissibility(self.structure, tau=self.tau)
        if self.structure in ("h2-b", "h2-budget", "budget"):
            return make_admissibility(self.structure, budget=self.budget)
        return make_admissibility(self.structure)

    # ------------------------------------------------------------------ p1
    def run_p1(self, points) -> InspectionP1:
        """Tree + interactions + sampling + blocking (kernel-independent)."""
        INSPECTION_COUNTS["p1"] += 1
        timings: dict[str, float] = {}
        t0 = time.perf_counter()
        tree = build_cluster_tree(points, leaf_size=self.leaf_size,
                                  method=self.tree_method, seed=self.seed)
        timings["tree_construction"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        htree = build_htree(tree, self._admissibility())
        timings["interaction_computation"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        plan = build_sampling_plan(tree, k=self.sampling_size, seed=self.seed)
        timings["sampling"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        near_bs = build_blockset(htree, self.near_blocksize, kind="near")
        far_bs = build_blockset(htree, self.far_blocksize, kind="far")
        timings["blocking"] = time.perf_counter() - t0

        return InspectionP1(tree=tree, htree=htree, plan=plan,
                            near_blockset=near_bs, far_blockset=far_bs,
                            timings=timings)

    # ------------------------------------------------------------------ p2
    def run_p2(self, p1: InspectionP1, kernel: Kernel | str,
               bacc: float | None = None) -> HMatrix:
        """Low-rank approx + coarsening + CDS layout + codegen."""
        INSPECTION_COUNTS["p2"] += 1
        if isinstance(kernel, str):
            kernel = get_kernel(kernel)
        bacc = self.bacc if bacc is None else bacc
        timings: dict[str, float] = {}

        t0 = time.perf_counter()
        factors = skeletonize_tree(p1.htree, kernel, p1.plan,
                                   bacc=bacc, max_rank=self.max_rank)
        timings["low_rank_approximation"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        coarsenset = build_coarsenset(p1.tree, factors.sranks,
                                      p=self.p, agg=self.agg)
        timings["coarsening"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        cds = build_cds(factors, coarsenset, p1.near_blockset, p1.far_blockset)
        timings["data_layout"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        ir = build_ir(factors, coarsenset=coarsenset,
                      near_blockset=p1.near_blockset,
                      far_blockset=p1.far_blockset)
        decision = decide_lowering(ir, block_threshold=self.block_threshold,
                                   far_block_threshold=self.far_block_threshold,
                                   coarsen_threshold=self.coarsen_threshold,
                                   low_level=self.low_level)
        evaluator = generate_evaluator(cds, ir=ir, decision=decision)
        timings["code_generation"] = time.perf_counter() - t0

        return HMatrix(cds=cds, evaluator=evaluator,
                       metadata={"bacc": bacc, "kernel": kernel.identity(),
                                 "timings_p2": timings,
                                 "timings_p1": dict(p1.timings)})

    # ------------------------------------------------------------- one-shot
    def run(self, points, kernel: Kernel | str) -> HMatrix:
        p1 = self.run_p1(points)
        return self.run_p2(p1, kernel)


# ------------------------------------------------------------------- shims
# The functional entry points are thin shims over the typed API layer:
# loose **config kwargs are validated by PlanConfig (unknown keys raise a
# TypeError naming the valid knobs, out-of-range values raise ValueError)
# before the equivalent Inspector runs. Passing ``plan=`` directly skips
# the kwargs path entirely. Results are bit-identical to the old direct
# Inspector(**config) construction.

def _as_plan(plan: PlanConfig | None, config: dict) -> PlanConfig:
    if plan is not None:
        if config:
            raise TypeError(
                f"pass either plan= or loose config kwargs, not both "
                f"(got plan and {sorted(config)})"
            )
        return plan
    return PlanConfig.from_kwargs(**config)


def inspector(points, kernel: Kernel | str = "gaussian",
              plan: PlanConfig | None = None, **config) -> HMatrix:
    """One-shot inspection: points + kernel + plan/config -> HMatrix.

    The returned HMatrix carries both the CDS-stored generators and the
    generated specialized multiplication (the paper's ``H`` and ``HMatMul``).
    """
    return _as_plan(plan, config).to_inspector().run(points, kernel)


def inspector_p1(points, plan: PlanConfig | None = None,
                 **config) -> InspectionP1:
    """Phase-1 inspection (reusable across kernel/accuracy changes)."""
    return _as_plan(plan, config).to_inspector().run_p1(points)


def inspector_p2(p1: InspectionP1, kernel: Kernel | str = "gaussian",
                 bacc: float | None = None, plan: PlanConfig | None = None,
                 **config) -> HMatrix:
    """Phase-2 inspection against a cached phase-1 result."""
    return _as_plan(plan, config).to_inspector().run_p2(p1, kernel, bacc=bacc)
