"""Reference HMatrix-matrix multiplication (the library-style code of Fig. 1d).

This is the semantic ground truth for every optimized executor: a reduction
loop over near interactions, a bottom-up loop over the CTree computing the
skeleton weights T, a reduction loop over far interactions into S, and a
top-down loop interpolating S back to the output. All optimized paths
(generated code, CDS executor, baselines) are tested for exact agreement
with this function.

Everything here operates in *tree order* (points permuted so each node owns
a contiguous slice); the public API wrappers handle the permutation.
"""

from __future__ import annotations

import numpy as np

from repro.compression.factors import Factors


def upward_pass(factors: Factors, W: np.ndarray) -> dict[int, np.ndarray]:
    """Compute skeleton weights ``T_v`` for every node with a basis.

    Leaves: ``T_v = V_v^T W_v``; interior: ``T_v = E_v^T [T_lc; T_rc]``
    (the paper's "loops with carried dependencies", bottom-up).
    """
    tree = factors.tree
    T: dict[int, np.ndarray] = {}
    for v in tree.postorder():
        if factors.srank(v) == 0 or v == 0:
            continue
        if tree.is_leaf(v):
            V = factors.leaf_basis[v]
            T[v] = V.T @ W[tree.start[v] : tree.stop[v]]
        else:
            lc, rc = int(tree.lchild[v]), int(tree.rchild[v])
            E = factors.transfer[v]
            stacked = np.vstack([T[lc], T[rc]])
            T[v] = E.T @ stacked
    return T


def coupling_pass(factors: Factors, T: dict[int, np.ndarray],
                  q: int) -> dict[int, np.ndarray]:
    """Far-field reduction: ``S_i += B_ij T_j`` over all far pairs."""
    S: dict[int, np.ndarray] = {}
    for (i, j), B in factors.coupling.items():
        contrib = B @ T[j]
        if i in S:
            S[i] += contrib
        else:
            S[i] = contrib.copy() if contrib.base is not None else contrib
    return S


def downward_pass(factors: Factors, S: dict[int, np.ndarray], Y: np.ndarray) -> None:
    """Top-down interpolation: push S through transfers, leaves add to Y."""
    tree = factors.tree
    # Level order (top-down) guarantees parents are processed before children.
    for level_nodes in tree.levels():
        for v in level_nodes:
            v = int(v)
            if v not in S:
                continue
            if tree.is_leaf(v):
                V = factors.leaf_basis[v]
                Y[tree.start[v] : tree.stop[v]] += V @ S[v]
            else:
                lc, rc = int(tree.lchild[v]), int(tree.rchild[v])
                E = factors.transfer[v]
                pushed = E @ S[v]
                r_lc = factors.srank(lc)
                for child, seg in ((lc, pushed[:r_lc]), (rc, pushed[r_lc:])):
                    if child in S:
                        S[child] += seg
                    else:
                        S[child] = seg.copy()


def near_pass(factors: Factors, W: np.ndarray, Y: np.ndarray) -> None:
    """Near-field reduction: ``Y_i += D_ij W_j`` (the paper's reduction loop)."""
    tree = factors.tree
    for (i, j), D in factors.near_blocks.items():
        Y[tree.start[i] : tree.stop[i]] += D @ W[tree.start[j] : tree.stop[j]]


def evaluate_reference(factors: Factors, W: np.ndarray) -> np.ndarray:
    """``Y = K~ @ W`` with W/Y in tree order, shape (N, Q)."""
    tree = factors.tree
    W = np.ascontiguousarray(W, dtype=np.float64)
    if W.ndim == 1:
        W = W[:, None]
    if W.shape[0] != tree.num_points:
        raise ValueError(
            f"W has {W.shape[0]} rows but the HMatrix dimension is {tree.num_points}"
        )
    q = W.shape[1]
    Y = np.zeros_like(W)
    T = upward_pass(factors, W)
    S = coupling_pass(factors, T, q)
    downward_pass(factors, S, Y)
    near_pass(factors, W, Y)
    return Y
