"""Process-parallel sharded execution backend (``backend="process"``).

The batched engine (DESIGN.md section 3) turns the four evaluation loops
into row-panel and stacked GEMMs over the CDS shape buckets. This module
shards that work across a persistent pool of **worker processes**:

* the three CDS buffers (``basis_buf``/``near_buf``/``far_buf``) are
  exported once into ``multiprocessing.shared_memory`` segments, and every
  worker maps them zero-copy — block and basis views are reconstructed in
  the worker from the same offsets the serial engine uses;
* the near/far row panels are sharded by *output node* (all interactions
  writing one node's rows stay together), and the leaf basis buckets by
  member, both with a deterministic LPT (longest-processing-time) packing
  over a flop estimate;
* per call, W/Y/T/S live in four shared scratch segments and the product
  runs as three barrier phases (see :class:`ProcessEngine`). Every output
  row slice has exactly one writer, in the serial engine's per-node GEMM
  granularity, so the "reduction" of per-shard partial products is a
  disjoint scatter and the result is **bit-identical** to the serial
  batched *lowering* — not merely within rounding. (The engine builds the
  batched tables unconditionally; on matrices where the cost model
  rejected batching, serial ``order="batched"`` falls back to the
  per-block code, and the process backend agrees with that fallback only
  to rounding, < 1e-12 relative.)

The pool is built once per (HMatrix, worker count) and reused across
calls/chunks — the process analogue of the inspector-executor contract's
"inspect once, execute many". :class:`~repro.core.executor.Executor` and
:class:`~repro.api.session.Session` own engine lifecycles and tear them
down on ``close()``.
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import os
import signal
import sys
import traceback
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from repro.api.policy import DEFAULT_Q_CHUNK, effective_cpu_count
from repro.observability.faults import active_fault_plan

__all__ = ["ProcessEngine", "WorkerCrashError", "default_start_method",
           "shard_by_weight"]

# Phases of the barrier protocol (master interleaves the interior tree
# levels, which are cheap and strictly ordered, between worker phases).
_PHASE_NEAR_AND_LEAF_UP = 1
_PHASE_FAR = 2
_PHASE_LEAF_DOWN = 3

#: Public names of the barrier phases (the fault-injection vocabulary:
#: a FaultPlan kills a worker at one of these named points).
PHASE_NAMES = {
    _PHASE_NEAR_AND_LEAF_UP: "near_and_leaf_up",
    _PHASE_FAR: "far",
    _PHASE_LEAF_DOWN: "leaf_down",
}


#: Monotone suffix for ``MATROX_TRACE_DIR`` dump filenames (several
#: engines may close within one process; pid alone would collide).
_trace_dump_seq = 0


class WorkerCrashError(RuntimeError):
    """A pool worker died or failed mid-barrier.

    The engine is closed (fail closed: a partially-written shared Y must
    never be served) before this is raised; the owning
    :class:`~repro.core.executor.Executor` builds a fresh engine — pool
    respawn — on the next request for the same HMatrix.
    """


def default_start_method() -> str:
    """The multiprocessing start method the engine uses.

    ``fork`` on Linux (cheap startup, inherits the imported interpreter),
    ``spawn`` everywhere else — macOS has fork available but CPython made
    spawn its default there for a reason (forking after thread/BLAS
    runtime initialization is unsafe on darwin). Override with
    ``MATROX_MP_START``.
    """
    env = os.environ.get("MATROX_MP_START")
    if env:
        return env
    if sys.platform == "linux" and "fork" in mp.get_all_start_methods():
        return "fork"
    return "spawn"


def shard_by_weight(weights: list[float], num_shards: int) -> list[list[int]]:
    """Deterministic LPT packing: item indices grouped into ``num_shards``.

    Items are placed heaviest-first onto the least-loaded shard (ties
    broken by shard id), so the same inputs always produce the same
    shards and the shard loads stay within one item of balanced.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    shards: list[list[int]] = [[] for _ in range(num_shards)]
    loads = [0.0] * num_shards
    order = sorted(range(len(weights)), key=lambda i: (-weights[i], i))
    for i in order:
        s = min(range(num_shards), key=lambda j: (loads[j], j))
        shards[s].append(i)
        loads[s] += weights[i]
    # Preserve visit order inside each shard (determinism of the panel
    # tables, which concatenate members in order).
    return [sorted(s) for s in shards]


# --------------------------------------------------------------------------
# Shard plan: everything a worker needs, in picklable form.
# --------------------------------------------------------------------------

@dataclass
class _ShardPlan:
    """One worker's slice of the batched engine's tables.

    All fields are plain ints/tuples/dicts so the plan survives ``spawn``
    pickling; the heavy data stays in the shared CDS buffers and is
    re-viewed inside the worker.
    """

    wid: int
    n: int
    rank_rows: int
    q_cap: int
    shm_names: dict = field(default_factory=dict)
    buf_len: dict = field(default_factory=dict)
    # Near shard: pairs grouped per output node + row/offset maps.
    near_pairs: list = field(default_factory=list)
    point_rows: dict = field(default_factory=dict)
    near_off: dict = field(default_factory=dict)
    near_shape: dict = field(default_factory=dict)
    # Far shard: pairs + skeleton-row ranges in the T/S panels.
    far_pairs: list = field(default_factory=list)
    skel_rows: dict = field(default_factory=dict)
    far_off: dict = field(default_factory=dict)
    far_shape: dict = field(default_factory=dict)
    # Leaf basis shard: (basis offset, rows, cols, point start, T offset).
    leaf_specs: list = field(default_factory=list)


class _ShardState:
    """A worker's compiled tables: built once, applied every phase.

    Mirrors the serial batched engine exactly: row panels via
    :func:`repro.codegen.emit._row_panel_tables` (same padding/run
    merging), leaf buckets as stacked GEMMs grouped by shape.
    """

    def __init__(self, plan: _ShardPlan, basis_buf: np.ndarray,
                 near_buf: np.ndarray, far_buf: np.ndarray):
        from repro.codegen.emit import _row_panel_tables

        self.plan = plan

        def views(pairs, offs, shapes, buf):
            out = {}
            for p in pairs:
                r, c = shapes[p]
                o = offs[p]
                out[p] = buf[o:o + r * c].reshape(r, c)
            return out

        near_blocks = views(plan.near_pairs, plan.near_off,
                            plan.near_shape, near_buf)
        far_blocks = views(plan.far_pairs, plan.far_off,
                           plan.far_shape, far_buf)
        self.near_panels = _row_panel_tables(
            plan.near_pairs, plan.point_rows.__getitem__,
            plan.point_rows.__getitem__, near_blocks,
        ) if plan.near_pairs else ()
        self.far_panels = _row_panel_tables(
            plan.far_pairs, plan.skel_rows.__getitem__,
            plan.skel_rows.__getitem__, far_blocks,
        ) if plan.far_pairs else ()
        max_k = max(
            (e[2] for e in self.near_panels + self.far_panels
             if len(e[1]) > 1),
            default=1,
        )
        self._gather_buf = np.empty((max_k, plan.q_cap))

        # Leaf basis buckets: group this shard's leaves by generator shape
        # and assemble (G, GT, point-row gather, T-row scatter) stacks from
        # views into the shared basis buffer.
        groups: dict[tuple[int, int], list] = {}
        for spec in plan.leaf_specs:
            off, rows, cols, start, t0 = spec
            groups.setdefault((rows, cols), []).append((off, start, t0))
        self.leaf_buckets = []
        for (rows, cols), members in groups.items():
            G = np.stack([
                basis_buf[off:off + rows * cols].reshape(rows, cols)
                for off, _s, _t in members
            ])
            GT = G.transpose(0, 2, 1)
            gather = np.stack([
                np.arange(s, s + rows) for _o, s, _t in members
            ])
            own = np.concatenate([
                t0 + np.arange(cols) for _o, _s, t0 in members
            ])
            self.leaf_buckets.append(
                (G, GT, gather, own, own.reshape(len(members), cols))
            )

    # ------------------------------------------------------------- phases
    def _apply_row_panels(self, panels, src, out):
        # Same loop as the generated batched code's ``_row_panels``.
        buf = self._gather_buf
        for panel, runs, k, si, ei in panels:
            if len(runs) == 1:
                out[si:ei] += panel @ src[runs[0][0]:runs[0][1]]
                continue
            gat = buf[:k, :src.shape[1]]
            o = 0
            for a, b in runs:
                gat[o:o + b - a] = src[a:b]
                o += b - a
            out[si:ei] += panel @ gat

    def run_phase(self, phase: int, W, Y, T, S) -> None:
        q = W.shape[1]
        if phase == _PHASE_NEAR_AND_LEAF_UP:
            self._apply_row_panels(self.near_panels, W, Y)
            for _G, GT, gather, own, _own2d in self.leaf_buckets:
                T[own] = np.matmul(GT, W[gather]).reshape(-1, q)
        elif phase == _PHASE_FAR:
            self._apply_row_panels(self.far_panels, T, S)
        elif phase == _PHASE_LEAF_DOWN:
            for G, _GT, gather, _own, own2d in self.leaf_buckets:
                Y[gather.ravel()] += np.matmul(G, S[own2d]).reshape(-1, q)
        else:  # pragma: no cover - protocol bug guard
            raise ValueError(f"unknown phase {phase}")


# --------------------------------------------------------------------------
# Worker process entry point.
# --------------------------------------------------------------------------

def _attach(name: str):
    """Attach an existing shared segment without taking ownership.

    On Python >= 3.13 ``track=False`` skips resource-tracker registration
    outright. Earlier versions register on attach, but worker processes
    share the engine's tracker, so the duplicate register is a no-op
    set-add and the engine's ``unlink()`` performs the single unregister —
    attaching must NOT unregister, or it would strip the owner's entry.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13 signature has no ``track``
        return shared_memory.SharedMemory(name=name)


def _worker_main(conn, plan: _ShardPlan) -> None:
    """Worker loop: attach the shared CDS + scratch, serve phase requests."""
    segs = {key: _attach(name) for key, name in plan.shm_names.items()}
    try:
        def buf(key):
            return np.ndarray((plan.buf_len[key],), dtype=np.float64,
                              buffer=segs[key].buf)

        state = _ShardState(plan, buf("basis"), buf("near"), buf("far"))
        n, r = plan.n, plan.rank_rows
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                conn.send(("bye", plan.wid))
                break
            phase, q = msg
            try:
                W = np.ndarray((n, q), dtype=np.float64,
                               buffer=segs["W"].buf)
                Y = np.ndarray((n, q), dtype=np.float64,
                               buffer=segs["Y"].buf)
                T = np.ndarray((r, q), dtype=np.float64,
                               buffer=segs["T"].buf)
                S = np.ndarray((r, q), dtype=np.float64,
                               buffer=segs["S"].buf)
                state.run_phase(phase, W, Y, T, S)
                conn.send(("ok", plan.wid))
            except Exception:
                conn.send(("err", plan.wid, traceback.format_exc()))
    finally:
        for seg in segs.values():
            seg.close()
        conn.close()


# --------------------------------------------------------------------------
# The engine.
# --------------------------------------------------------------------------

class ProcessEngine:
    """Persistent process pool evaluating ``Y = H @ W`` by CDS sharding.

    Protocol per column chunk (master = the calling process):

    1. master writes the permuted W chunk into shared scratch and zeroes
       Y/S; **phase 1**: workers apply their near row panels into Y and
       their leaf basis buckets into T (both read only W);
    2. master runs the interior upward levels (strictly ordered, small);
       **phase 2**: workers apply their far row panels into S (read T);
    3. master runs the interior downward levels; **phase 3**: workers
       scatter their leaf buckets' ``G @ S`` into Y.

    Each Y/T/S row slice is written by exactly one worker with the same
    per-node GEMMs the serial batched engine issues, so results are
    bit-identical to ``order="batched"`` on one process whenever the cost
    model accepted batch lowering (when it rejected it, the serial path
    falls back to per-block code and agreement is < 1e-12, not bitwise).

    ``num_workers=0`` keeps the exact sharded code path but runs every
    shard inline (no pool, no shared memory) — the degenerate case tests
    pin. Use as a context manager or call :meth:`close`; an
    :class:`~repro.core.executor.Executor` or
    :class:`~repro.api.session.Session` does this for you.
    """

    def __init__(self, H, num_workers: int | None = None,
                 q_chunk: int | None = None,
                 start_method: str | None = None):
        from repro.codegen.emit import _batched_tree_tables, _rank_offsets

        # The engine holds H *weakly* plus direct references to the
        # arrays it actually needs (the permutation here; the CDS
        # buffers through the shard plans / shared-memory copies), so
        # caching an engine in an Executor never pins an HMatrix past
        # its own lifetime — its collection is the eviction signal.
        self._H_ref = weakref.ref(H)
        cds = H.cds
        self._perm = np.asarray(H.tree.perm)
        self.n = cds.dim
        self.q_cap = int(q_chunk or DEFAULT_Q_CHUNK)
        if num_workers is None:
            # Affinity/cgroup-aware: os.cpu_count() reports the machine,
            # not the process, and oversubscribing a restricted CI
            # container stalls the pool on workers that never run.
            num_workers = effective_cpu_count()
        self.num_workers = int(num_workers)
        self.calls = 0
        self.chunks = 0
        self._closed = False
        self._workers: list = []
        self._conns: list = []
        self._segments: list = []

        toff, self.rank_rows = _rank_offsets(cds)
        up_levels, down_levels = _batched_tree_tables(cds, toff)
        # Interior tree levels stay in the master: they are strictly
        # level-ordered and tiny next to the near/far panels.
        self._up_interior = tuple(
            tuple(e for e in level if not e[3]) for level in up_levels
        )
        self._down_interior = tuple(
            tuple(e for e in level if not e[3]) for level in down_levels
        )

        plans = self._build_plans(cds, toff)
        # Retained for the race certifier (repro.analysis.races): the
        # plans *are* the engine's access trace — workers execute
        # exactly the panels listed here, every call.
        self._plans = plans
        if self.num_workers == 0:
            # Inline mode: same shards, no pool, plain scratch arrays.
            self._inline_states = [
                _ShardState(p, cds.basis_buf, cds.near_buf, cds.far_buf)
                for p in plans
            ]
            self._W = np.empty((self.n, self.q_cap))
            self._Y = np.empty((self.n, self.q_cap))
            self._T = np.empty((max(self.rank_rows, 1), self.q_cap))
            self._S = np.empty((max(self.rank_rows, 1), self.q_cap))
            self._finalizer = None
            return

        # Shared CDS buffers (copied once at pool startup, mapped
        # zero-copy in every worker thereafter) + per-call scratch.
        shm_names: dict[str, str] = {}
        buf_len: dict[str, int] = {}

        def share(key, length):
            seg = shared_memory.SharedMemory(
                create=True, size=max(int(length), 1) * 8)
            self._segments.append(seg)
            shm_names[key] = seg.name
            buf_len[key] = int(length)
            return np.ndarray((max(int(length), 1),), dtype=np.float64,
                              buffer=seg.buf)

        for key, src in (("basis", cds.basis_buf), ("near", cds.near_buf),
                         ("far", cds.far_buf)):
            view = share(key, src.size)
            view[:src.size] = src
        scratch_rows = {"W": self.n, "Y": self.n,
                        "T": self.rank_rows, "S": self.rank_rows}
        for key, rows in scratch_rows.items():
            share(key, max(rows, 1) * self.q_cap)
        # Master-side scratch views (the interior levels run here).
        self._seg_by_key = dict(zip(shm_names, self._segments, strict=True))

        ctx = mp.get_context(start_method or default_start_method())
        try:
            for plan in plans:
                plan.shm_names = shm_names
                plan.buf_len = buf_len
                parent, child = ctx.Pipe(duplex=True)
                proc = ctx.Process(target=_worker_main, args=(child, plan),
                                   daemon=True)
                proc.start()
                child.close()
                self._workers.append(proc)
                self._conns.append(parent)
        except Exception:
            # A mid-spawn failure (fork EAGAIN, spawn pickling error)
            # must not leak the already-created segments — by this point
            # a full CDS copy plus four scratch panels sit in /dev/shm.
            _shutdown_pool(self._workers, self._conns, self._segments)
            raise
        self._finalizer = weakref.finalize(self, _shutdown_pool,
                                           self._workers, self._conns,
                                           self._segments)

    # ---------------------------------------------------------------- plans
    def _build_plans(self, cds, toff) -> list[_ShardPlan]:
        t = cds.tree
        srank = cds.factors.srank
        shards = max(self.num_workers, 1)

        def point_range(v):
            return (int(t.start[v]), int(t.stop[v]))

        def skel_range(v):
            return (int(toff[v]), int(toff[v] + srank(v)))

        # Group near/far pairs by output node: a row panel is indivisible.
        def group(pairs):
            by_row: dict[int, list] = {}
            for (i, j) in pairs:
                by_row.setdefault(i, []).append((i, j))
            return list(by_row.items())

        near_groups = group(cds.near_visit_order())
        far_groups = group(cds.far_visit_order())
        near_w = [
            float(sum(t.node_size(i) * t.node_size(j) for _i, j in g))
            for i, g in near_groups
        ]
        far_w = [
            float(sum(srank(i) * srank(j) for _i, j in g))
            for i, g in far_groups
        ]
        leaves = [
            v for v in cds.basis_nodes()
            if t.is_leaf(v) and srank(v) > 0
        ]
        leaf_w = [float(t.node_size(v) * srank(v)) for v in leaves]

        near_shards = shard_by_weight(near_w, shards)
        far_shards = shard_by_weight(far_w, shards)
        leaf_shards = shard_by_weight(leaf_w, shards)

        plans = []
        for wid in range(shards):
            plan = _ShardPlan(wid=wid, n=self.n, rank_rows=self.rank_rows,
                              q_cap=self.q_cap)
            for gi in near_shards[wid]:
                _i, pairs = near_groups[gi]
                plan.near_pairs.extend(pairs)
            for (i, j) in plan.near_pairs:
                plan.point_rows[i] = point_range(i)
                plan.point_rows[j] = point_range(j)
                plan.near_off[(i, j)] = int(cds.near_offset[(i, j)])
                plan.near_shape[(i, j)] = (t.node_size(i), t.node_size(j))
            for gi in far_shards[wid]:
                _i, pairs = far_groups[gi]
                plan.far_pairs.extend(pairs)
            for (i, j) in plan.far_pairs:
                plan.skel_rows[i] = skel_range(i)
                plan.skel_rows[j] = skel_range(j)
                plan.far_off[(i, j)] = int(cds.far_offset[(i, j)])
                plan.far_shape[(i, j)] = (srank(i), srank(j))
            for li in leaf_shards[wid]:
                v = leaves[li]
                rows, cols = cds.basis_shape[v]
                plan.leaf_specs.append(
                    (int(cds.basis_offset[v]), int(rows), int(cols),
                     int(t.start[v]), int(toff[v]))
                )
            plans.append(plan)
        return plans

    # ------------------------------------------------------------- protocol
    def _scratch(self, key: str, rows: int, q: int) -> np.ndarray:
        if self.num_workers == 0:
            return getattr(self, f"_{key}")[:max(rows, 1), :q]
        seg = self._seg_by_key[key]
        return np.ndarray((max(rows, 1), q), dtype=np.float64, buffer=seg.buf)

    def _barrier(self, phase: int, q: int) -> None:
        if self.num_workers == 0:
            W = self._scratch("W", self.n, q)
            Y = self._scratch("Y", self.n, q)
            T = self._scratch("T", self.rank_rows, q)
            S = self._scratch("S", self.rank_rows, q)
            for state in self._inline_states:
                state.run_phase(phase, W, Y, T, S)
            return
        self._maybe_inject_kill(phase)
        errors = []
        for wid, conn in enumerate(self._conns):
            try:
                conn.send((phase, q))
            except (OSError, ValueError):
                errors.append(f"worker {wid}: pipe closed (worker died?)")
        for wid, conn in enumerate(self._conns):
            try:
                reply = conn.recv()
            except (EOFError, OSError):
                errors.append(f"worker {wid}: died without replying")
                continue
            if reply[0] == "err":
                errors.append(f"worker {reply[1]}:\n{reply[2]}")
        if errors:
            self.close()
            raise WorkerCrashError(
                "process backend worker failed:\n" + "\n".join(errors)
            )

    def _maybe_inject_kill(self, phase: int) -> None:
        """Chaos hook: SIGKILL the FaultPlan's named worker at the start
        of its named barrier phase (no plan installed -> one None check).
        The kill lands *before* the phase commands go out, so the barrier
        observes exactly what a mid-protocol worker death looks like: a
        pipe that goes EOF instead of replying."""
        plan = active_fault_plan()
        if plan is None or not self._workers:
            return
        wid = plan.take_kill(PHASE_NAMES[phase])
        if wid is None:
            return
        proc = self._workers[wid % len(self._workers)]
        if proc.pid is not None:
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=5.0)

    def _matmul_tree_chunk(self, W_chunk: np.ndarray,
                           out: np.ndarray) -> None:
        """One chunk (tree order, q <= q_cap) through the 3-phase protocol.

        Writes the result into ``out`` (a caller-owned array slice) — the
        shared Y view is reused by the next chunk, so exactly one copy out
        of shared memory happens, with no intermediate allocation.
        """
        q = W_chunk.shape[1]
        W = self._scratch("W", self.n, q)
        Y = self._scratch("Y", self.n, q)
        T = self._scratch("T", self.rank_rows, q)
        S = self._scratch("S", self.rank_rows, q)
        W[:] = W_chunk
        Y[:] = 0.0
        S[:] = 0.0
        self._barrier(_PHASE_NEAR_AND_LEAF_UP, q)
        for level in self._up_interior:
            for GT, gather, t_rows, _from_w in level:
                T[t_rows] = np.matmul(GT, T[gather]).reshape(-1, q)
        self._barrier(_PHASE_FAR, q)
        for level in self._down_interior:
            for G, s_rows, scatter, _to_y in level:
                S[scatter] += np.matmul(G, S[s_rows]).reshape(-1, q)
        self._barrier(_PHASE_LEAF_DOWN, q)
        out[:] = Y

    # ------------------------------------------------------------------ API
    def matmul(self, W: np.ndarray, order: str = "batched") -> np.ndarray:
        """``Y = H @ W`` on the pool (W rows in user point order, or in
        tree order with ``order="tree"``)."""
        if self._closed:
            raise RuntimeError("ProcessEngine is closed")
        W = np.ascontiguousarray(W, dtype=np.float64)
        squeeze = W.ndim == 1
        if squeeze:
            W = W[:, None]
        if W.shape[0] != self.n:
            raise ValueError(
                f"W has {W.shape[0]} rows but the HMatrix dimension is "
                f"{self.n}"
            )
        self.calls += 1
        perm = None if order == "tree" else self._perm
        Wt = W if perm is None else W[perm]
        Yt = np.empty_like(Wt)
        for q0 in range(0, max(Wt.shape[1], 1), self.q_cap):
            chunk = Wt[:, q0:q0 + self.q_cap]
            if chunk.shape[1] == 0:
                break
            self.chunks += 1
            self._matmul_tree_chunk(np.ascontiguousarray(chunk),
                                    Yt[:, q0:q0 + self.q_cap])
        if perm is None:
            Y = Yt
        else:
            Y = np.empty_like(Yt)
            Y[perm] = Yt
        return Y[:, 0] if squeeze else Y

    @property
    def H(self):
        """The engine's HMatrix, or ``None`` once it has been collected.

        Held weakly (see ``__init__``); cache layers compare this
        against the matrix they were asked about (``engine.H is H``) so
        a CPython-recycled id can never alias another matrix's engine.
        """
        return self._H_ref()

    def access_trace(self) -> dict:
        """The engine's shared-memory access trace (DESIGN.md §13).

        A JSON-able record of every (actor, phase, array, row-interval,
        read/write) access the 3-phase protocol performs, derived from
        the shard plans — feed it to
        :func:`repro.analysis.races.certify_trace` to prove the
        single-writer-per-row invariant for this engine instance.
        """
        from repro.analysis.races import trace_from_plans

        return trace_from_plans(
            self._plans, n=self.n, rank_rows=self.rank_rows,
            num_workers=self.num_workers, calls=self.calls,
            chunks=self.chunks)

    def _maybe_dump_trace(self) -> None:
        """Best-effort trace dump at close when ``MATROX_TRACE_DIR`` is
        set and the engine actually ran — the CI analyze job replays
        these through ``repro analyze --races`` after the chaos and
        equivalence suites."""
        directory = os.environ.get("MATROX_TRACE_DIR")
        if not directory or self.calls == 0:
            return
        global _trace_dump_seq
        _trace_dump_seq += 1
        name = f"trace-{os.getpid()}-{_trace_dump_seq}.json"
        from repro.analysis.races import save_trace

        # A full/read-only trace dir must not fail close().
        with contextlib.suppress(OSError):
            save_trace(self.access_trace(), os.path.join(directory, name))

    def worker_pids(self) -> list[int]:
        return [p.pid for p in self._workers]

    def segment_names(self) -> list[str]:
        return [seg.name for seg in self._segments]

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop workers and unlink every shared-memory segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._maybe_dump_trace()
        if self._finalizer is not None:
            self._finalizer.detach()
        _shutdown_pool(self._workers, self._conns, self._segments)
        self._workers, self._conns, self._segments = [], [], []

    def __enter__(self) -> "ProcessEngine":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def _shutdown_pool(workers, conns, segments) -> None:
    """Best-effort orderly stop; module-level so a GC finalizer can run it."""
    for conn in conns:
        with contextlib.suppress(OSError, ValueError):
            conn.send(("stop",))
    for proc in workers:
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover - deadlock guard
            proc.terminate()
            proc.join(timeout=1.0)
    for conn in conns:
        with contextlib.suppress(OSError):  # pragma: no cover
            conn.close()
    for seg in segments:
        with contextlib.suppress(FileNotFoundError):  # already unlinked
            seg.close()
            seg.unlink()
