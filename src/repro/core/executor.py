"""The MatRox executor: runs the generated code against the CDS storage.

``matmul(H, W)`` is the paper's Figure 2 executor call. :class:`Executor`
additionally owns a thread pool so repeated evaluations (the common case the
inspector amortises against) reuse worker threads. NumPy's BLAS releases the
GIL inside GEMM, so sub-tree and block tasks overlap on real cores.

``order="batched"`` routes the evaluation through the bucketed batched-GEMM
engine (one stacked GEMM per CDS shape bucket; see DESIGN.md section 3),
falling back to the thread-pool per-block code when the cost model rejected
batch lowering. :func:`matmul_many` streams wide or many-panel right-hand
sides through cache-sized column chunks.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.hmatrix import HMatrix

# Default streaming panel width: 256 float64 columns over a typical leaf
# keeps one pass's W/Y/T/S working set inside the last-level cache.
DEFAULT_Q_CHUNK = 256


class Executor:
    """Reusable evaluation context with an optional thread pool."""

    def __init__(self, num_threads: int | None = None):
        """``num_threads=None`` or 1 runs serially (no pool)."""
        if num_threads is not None and num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        self.num_threads = num_threads
        self._pool = (
            ThreadPoolExecutor(max_workers=num_threads)
            if num_threads and num_threads > 1
            else None
        )

    def matmul(self, H: HMatrix, W: np.ndarray, order: str = "original") -> np.ndarray:
        return H.matmul(W, pool=self._pool, order=order)

    def matmul_many(self, H: HMatrix, W, order: str = "batched",
                    q_chunk: int = DEFAULT_Q_CHUNK):
        """Evaluate ``H @ W`` for a wide or many-panel right-hand side.

        A single ``(N, Q)`` array is streamed through column chunks of at
        most ``q_chunk`` so each pass's panels stay cache-resident, and the
        result is returned as one ``(N, Q)`` array. Any other iterable is
        treated as a stream of independent right-hand-side panels and a
        list of results is returned. Chunking happens once, inside the
        selected evaluator — ``q_chunk`` is honored exactly.
        """
        if isinstance(W, np.ndarray):
            return H.matmul(W, pool=self._pool, order=order, q_chunk=q_chunk)
        return [self.matmul_many(H, w, order=order, q_chunk=q_chunk) for w in W]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def matmul(H: HMatrix, W: np.ndarray, num_threads: int | None = None,
           order: str = "original") -> np.ndarray:
    """``Y = H @ W`` — the executor entry point of the paper's Figure 2."""
    if num_threads and num_threads > 1:
        with Executor(num_threads) as ex:
            return ex.matmul(H, W, order=order)
    return H.matmul(W, order=order)


def matmul_many(H: HMatrix, W, num_threads: int | None = None,
                order: str = "batched", q_chunk: int = DEFAULT_Q_CHUNK):
    """Multi-RHS streaming evaluation (see :meth:`Executor.matmul_many`)."""
    with Executor(num_threads) as ex:
        return ex.matmul_many(H, W, order=order, q_chunk=q_chunk)
