"""The MatRox executor: runs the generated code against the CDS storage.

``matmul(H, W)`` is the paper's Figure 2 executor call. :class:`Executor`
additionally owns a thread pool so repeated evaluations (the common case the
inspector amortises against) reuse worker threads. NumPy's BLAS releases the
GIL inside GEMM, so sub-tree and block tasks overlap on real cores.

All execution knobs travel as one :class:`~repro.api.policy.ExecutionPolicy`
(order, num_threads, q_chunk). There is a single documented default,
:data:`~repro.api.policy.DEFAULT_POLICY` (``order="batched"``): the bucketed
batched-GEMM engine (one stacked GEMM per CDS shape bucket; see DESIGN.md
section 3), falling back to the thread-pool per-block code when the cost
model rejected batch lowering. :func:`matmul_many` streams wide or
many-panel right-hand sides through cache-sized column chunks.

``order="auto"`` resolves through the profile-guided autotuner
(:mod:`repro.tuning`, DESIGN.md section 9) before any evaluator runs: an
Executor carries its own :class:`~repro.tuning.Autotuner` (persisted
through the ``store`` it was given, so profiles warm-start across
processes), while the free functions share the process-global tuner.
"""

from __future__ import annotations

import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING

import numpy as np

from repro.api.policy import (
    DEFAULT_Q_CHUNK,
    ExecutionPolicy,
    resolve_policy,
)
from repro.core.hmatrix import HMatrix

if TYPE_CHECKING:  # annotation-only: the real imports stay lazy
    from repro.api.store import PlanStore
    from repro.codegen.compiled import CompiledCache
    from repro.tuning.autotune import Autotuner

__all__ = ["Executor", "matmul", "matmul_many", "DEFAULT_Q_CHUNK"]


def _evict_engine(executor_ref, key) -> None:
    """weakref.finalize callback: an HMatrix died, so its cached process
    engine must go — CPython reuses ids, and a stale entry under a
    recycled id would hand a *different* HMatrix another matrix's
    engine. Module-level (not a bound method) so the finalizer itself
    never keeps the executor alive."""
    executor = executor_ref()
    if executor is None:
        return
    entry = executor._engines.pop(key, None)
    if entry is not None:
        executor.engines_evicted += 1
        entry[0].close()


class Executor:
    """Reusable evaluation context with an optional thread pool.

    ``Executor(num_threads=4)`` keeps the legacy shorthand;
    ``Executor(policy=ExecutionPolicy(...))`` carries every knob at once.
    An explicit ``num_threads`` overrides the policy's.

    With ``policy.backend == "process"`` the executor owns one persistent
    :class:`~repro.core.parallel.ProcessEngine` per HMatrix it has seen
    (shared-memory pool, reused across ``matmul``/``matmul_many`` calls)
    and tears them all down on :meth:`close` / context-manager exit.

    ``store`` (a :class:`~repro.api.store.PlanStore`) backs the
    executor's autotuner: ``order="auto"`` profiles persist there and
    warm-start later processes. Without one, auto resolution falls back
    to the process-global tuner (memory-only).
    """

    def __init__(self, num_threads: int | None = None,
                 policy: ExecutionPolicy | None = None,
                 store: PlanStore | None = None,
                 autotuner: Autotuner | None = None):
        """``num_threads=None`` or 1 runs serially (no pool)."""
        self.policy = resolve_policy(policy, num_threads=num_threads)
        self.num_threads = self.policy.num_threads
        self._pool = (
            ThreadPoolExecutor(max_workers=self.num_threads)
            if self.num_threads and self.num_threads > 1
            and self.policy.backend == "thread"
            else None
        )
        # Process engines keyed by the HMatrix identity (plus the knobs
        # that shape the pool); populated lazily, closed with the
        # executor. The identity is weakref-guarded: each entry carries a
        # finalizer that evicts (and closes) it the moment its HMatrix is
        # collected, so a recycled id can never alias another matrix's
        # engine. Bounded: each engine pins worker processes and a
        # shared-memory CDS copy, so an unbounded map would defeat a
        # Session's HMatrix LRU in long-lived serving use.
        self._engines: dict = {}
        self._max_engines = 4
        self._store = store
        self._autotuner = autotuner
        self._compiled_cache = None
        # Engine-cache lifecycle counters (the observability layer's
        # window into pool behaviour; a respawn is the recovery proof
        # after a WorkerCrashError closed an engine).
        self.engines_built = 0
        self.engine_respawns = 0
        self.engines_evicted = 0

    # -------------------------------------------------------------- tuning
    @property
    def autotuner(self) -> Autotuner:
        """This executor's :class:`~repro.tuning.Autotuner` (lazy).

        Backed by the executor's ``store`` when one was given (profiles
        persist and warm-start); otherwise the process-global tuner, so
        repeated auto resolutions amortize across short-lived executors.
        """
        if self._autotuner is None:
            from repro.tuning import Autotuner, default_autotuner
            self._autotuner = (Autotuner(store=self._store)
                               if self._store is not None
                               else default_autotuner())
        return self._autotuner

    def autotune_stats(self) -> dict:
        """Tuner counters (empty dict until auto resolution first runs)."""
        return (self._autotuner.stats_dict()
                if self._autotuner is not None else {})

    # ------------------------------------------------------------- compiled
    @property
    def compiled_cache(self) -> CompiledCache:
        """This executor's :class:`~repro.codegen.compiled.CompiledCache`.

        Backed by the executor's ``store`` when one was given (compiled
        artifacts persist in the ``"compiled"`` tier and warm-start
        later processes with zero recompiles); otherwise the
        process-global cache (memory-only).
        """
        if self._compiled_cache is None:
            from repro.codegen.compiled import (
                CompiledCache,
                default_compiled_cache,
            )
            self._compiled_cache = (CompiledCache(store=self._store)
                                    if self._store is not None
                                    else default_compiled_cache())
        return self._compiled_cache

    def compiled_stats(self) -> dict:
        """Compiled-tier counters (empty until order="compiled" runs)."""
        return (self._compiled_cache.stats_dict()
                if self._compiled_cache is not None else {})

    def _resolve_auto(self, H: HMatrix, W,
                      pol: ExecutionPolicy) -> ExecutionPolicy:
        if not pol.is_auto:
            return pol
        q = W.shape[1] if getattr(W, "ndim", 1) == 2 else 1
        return self.autotuner.resolve(H, q, pol)

    # ------------------------------------------------------------- engines
    def engine_for(self, H: HMatrix,
                   policy: ExecutionPolicy | None = None):
        """The persistent process engine for ``H`` (created on first use).

        At most ``_max_engines`` engines are kept; the least recently
        used one is closed (workers + segments) to admit a new one.
        Entries are keyed by weakref-guarded identity: the finalizer
        registered on ``H`` evicts the entry when ``H`` is collected,
        and a cache hit additionally verifies ``engine.H is H`` — an id
        recycled by CPython can never serve a stale engine.
        """
        from repro.core.parallel import ProcessEngine

        pol = resolve_policy(policy, fallback=self.policy)
        key = (id(H), pol.num_workers, pol.q_chunk)
        entry = self._engines.pop(key, None)
        if entry is not None:
            engine, finalizer = entry
            if engine.closed or engine.H is not H:
                if engine.closed and engine.H is H:
                    # Same matrix, dead pool (a WorkerCrashError closed
                    # it): the rebuild below IS the recovery respawn.
                    self.engine_respawns += 1
                finalizer.detach()
                engine.close()
                entry = None
        if entry is None:
            engine = ProcessEngine(H, num_workers=pol.num_workers,
                                   q_chunk=pol.q_chunk)
            self.engines_built += 1
            finalizer = weakref.finalize(
                H, _evict_engine, weakref.ref(self), key)
            entry = (engine, finalizer)
        self._engines[key] = entry  # re-insert = move to MRU position
        while len(self._engines) > self._max_engines:
            oldest = next(iter(self._engines))
            old_engine, old_finalizer = self._engines.pop(oldest)
            # Detach first: the old H dying later must not evict (and
            # close) a successor entry that reused its id.
            old_finalizer.detach()
            old_engine.close()
            self.engines_evicted += 1
        return entry[0]

    def engine_stats(self) -> dict:
        """Engine-cache lifecycle counters (stats export / manifests)."""
        return {
            "active": len(self._engines),
            "built": self.engines_built,
            "respawns": self.engine_respawns,
            "evicted": self.engines_evicted,
        }

    def matmul(self, H: HMatrix, W: np.ndarray, order: str | None = None,
               q_chunk: int | None = None,
               policy: ExecutionPolicy | None = None) -> np.ndarray:
        """``Y = H @ W`` under ``policy`` (explicit knobs override it)."""
        pol = resolve_policy(policy, order=order, q_chunk=q_chunk,
                             fallback=self.policy)
        pol = self._resolve_auto(H, W, pol)
        if pol.backend == "process" and pol.order != "original":
            # The process engine implements the batched lowering only;
            # order="original" explicitly asks for the per-block code, so
            # it wins over the backend and runs in-process (and the
            # compiled tier is an in-process fusion of that same
            # lowering, so it maps to the engine's batched order).
            engine_order = "batched" if pol.order == "compiled" else pol.order
            return self.engine_for(H, pol).matmul(W, order=engine_order)
        if pol.order == "compiled":
            # Resolve through this executor's cache (store-backed when
            # available) so the evaluator attached to H is the persisted
            # one; H.matmul then dispatches to it — or degrades to the
            # batched path when resolution returned None.
            self.compiled_cache.evaluator_for(H)
        if self._pool is None and pol.num_threads and pol.num_threads > 1:
            # Per-call thread request on a pool-less executor: honor it
            # with a short-lived pool rather than silently running serial.
            return H.matmul(W, policy=pol)
        return H.matmul(W, pool=self._pool, order=pol.order,
                        q_chunk=pol.q_chunk)

    def matmul_many(self, H: HMatrix, W, order: str | None = None,
                    q_chunk: int | None = None,
                    policy: ExecutionPolicy | None = None):
        """Evaluate ``H @ W`` for a wide or many-panel right-hand side.

        A single ``(N, Q)`` array is streamed through column chunks of at
        most ``q_chunk`` (the generated evaluator's cache-sized default
        when unset) so each pass's panels stay cache-resident, and the
        result is returned as one ``(N, Q)`` array. Any other iterable is
        treated as a stream of independent right-hand-side panels and a
        list of results is returned. Chunking happens once, inside the
        selected evaluator — ``q_chunk`` is honored exactly. An auto
        policy resolves per panel, so a stream whose panel widths drift
        across bucket boundaries re-tunes exactly when the optimum can
        move.
        """
        pol = resolve_policy(policy, order=order, q_chunk=q_chunk,
                             fallback=self.policy)
        if isinstance(W, np.ndarray):
            return self.matmul(H, W, policy=pol)
        return [self.matmul_many(H, w, policy=pol) for w in W]

    def close(self) -> None:
        """Shut the thread pool down and tear down every process engine
        (worker processes + shared-memory segments). Idempotent."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for engine, finalizer in self._engines.values():
            finalizer.detach()
            engine.close()
        self._engines.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def matmul(H: HMatrix, W: np.ndarray, num_threads: int | None = None,
           order: str | None = None, q_chunk: int | None = None,
           policy: ExecutionPolicy | None = None) -> np.ndarray:
    """``Y = H @ W`` — the executor entry point of the paper's Figure 2.

    Thin shim over the policy layer: knobs resolve against
    :data:`~repro.api.policy.DEFAULT_POLICY`; ``order="auto"`` resolves
    through the process-global autotuner, so repeated calls reuse the
    profile tuned on the first one.

    .. versionchanged:: 1.1
       The default ``order`` is now the shared policy default
       (``"batched"``); it was previously ``"original"`` here while
       :func:`matmul_many` already defaulted to ``"batched"``. The batched
       engine falls back to the per-block code when the cost model rejected
       batch lowering, so results only move at rounding level.
    """
    pol = resolve_policy(policy, order=order, num_threads=num_threads,
                         q_chunk=q_chunk)
    if pol.is_auto:
        from repro.tuning import resolve_auto
        pol = resolve_auto(H, W, pol)
    if pol.backend == "process" or (pol.num_threads and pol.num_threads > 1):
        with Executor(policy=pol) as ex:
            return ex.matmul(H, W)
    return H.matmul(W, order=pol.order, q_chunk=pol.q_chunk)


def matmul_many(H: HMatrix, W, num_threads: int | None = None,
                order: str | None = None, q_chunk: int | None = None,
                policy: ExecutionPolicy | None = None):
    """Multi-RHS streaming evaluation (see :meth:`Executor.matmul_many`).

    Thin shim over the policy layer; shares the single
    :data:`~repro.api.policy.DEFAULT_POLICY` default (``order="batched"``)
    with :func:`matmul` — the two entry points no longer disagree.
    """
    pol = resolve_policy(policy, order=order, num_threads=num_threads,
                         q_chunk=q_chunk)
    if pol.is_auto:
        from repro.tuning import default_autotuner
        with Executor(policy=pol, autotuner=default_autotuner()) as ex:
            return ex.matmul_many(H, W)
    with Executor(policy=pol) as ex:
        return ex.matmul_many(H, W)
