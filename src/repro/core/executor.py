"""The MatRox executor: runs the generated code against the CDS storage.

``matmul(H, W)`` is the paper's Figure 2 executor call. :class:`Executor`
additionally owns a thread pool so repeated evaluations (the common case the
inspector amortises against) reuse worker threads. NumPy's BLAS releases the
GIL inside GEMM, so sub-tree and block tasks overlap on real cores.

All execution knobs travel as one :class:`~repro.api.policy.ExecutionPolicy`
(order, num_threads, q_chunk). There is a single documented default,
:data:`~repro.api.policy.DEFAULT_POLICY` (``order="batched"``): the bucketed
batched-GEMM engine (one stacked GEMM per CDS shape bucket; see DESIGN.md
section 3), falling back to the thread-pool per-block code when the cost
model rejected batch lowering. :func:`matmul_many` streams wide or
many-panel right-hand sides through cache-sized column chunks.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.api.policy import (
    DEFAULT_Q_CHUNK,
    ExecutionPolicy,
    resolve_policy,
)
from repro.core.hmatrix import HMatrix

__all__ = ["Executor", "matmul", "matmul_many", "DEFAULT_Q_CHUNK"]


class Executor:
    """Reusable evaluation context with an optional thread pool.

    ``Executor(num_threads=4)`` keeps the legacy shorthand;
    ``Executor(policy=ExecutionPolicy(...))`` carries every knob at once.
    An explicit ``num_threads`` overrides the policy's.

    With ``policy.backend == "process"`` the executor owns one persistent
    :class:`~repro.core.parallel.ProcessEngine` per HMatrix it has seen
    (shared-memory pool, reused across ``matmul``/``matmul_many`` calls)
    and tears them all down on :meth:`close` / context-manager exit.
    """

    def __init__(self, num_threads: int | None = None,
                 policy: ExecutionPolicy | None = None):
        """``num_threads=None`` or 1 runs serially (no pool)."""
        self.policy = resolve_policy(policy, num_threads=num_threads)
        self.num_threads = self.policy.num_threads
        self._pool = (
            ThreadPoolExecutor(max_workers=self.num_threads)
            if self.num_threads and self.num_threads > 1
            and self.policy.backend == "thread"
            else None
        )
        # Process engines keyed by the HMatrix identity (plus the knobs
        # that shape the pool); populated lazily, closed with the executor.
        # Bounded: each engine pins worker processes, a shared-memory CDS
        # copy, AND a strong reference to its HMatrix, so an unbounded map
        # would defeat a Session's HMatrix LRU in long-lived serving use.
        self._engines: dict = {}
        self._max_engines = 4

    def engine_for(self, H: HMatrix,
                   policy: ExecutionPolicy | None = None):
        """The persistent process engine for ``H`` (created on first use).

        At most ``_max_engines`` engines are kept; the least recently
        used one is closed (workers + segments) to admit a new one.
        """
        from repro.core.parallel import ProcessEngine

        pol = resolve_policy(policy or self.policy)
        key = (id(H), pol.num_workers, pol.q_chunk)
        engine = self._engines.pop(key, None)
        if engine is None or engine.closed:
            engine = ProcessEngine(H, num_workers=pol.num_workers,
                                   q_chunk=pol.q_chunk)
        self._engines[key] = engine  # re-insert = move to MRU position
        while len(self._engines) > self._max_engines:
            oldest = next(iter(self._engines))
            self._engines.pop(oldest).close()
        return engine

    def matmul(self, H: HMatrix, W: np.ndarray, order: str | None = None,
               q_chunk: int | None = None,
               policy: ExecutionPolicy | None = None) -> np.ndarray:
        """``Y = H @ W`` under ``policy`` (explicit knobs override it)."""
        pol = resolve_policy(policy or self.policy, order=order,
                             q_chunk=q_chunk)
        if pol.backend == "process" and pol.order != "original":
            # The process engine implements the batched lowering only;
            # order="original" explicitly asks for the per-block code, so
            # it wins over the backend and runs in-process.
            return self.engine_for(H, pol).matmul(W, order=pol.order)
        if self._pool is None and pol.num_threads and pol.num_threads > 1:
            # Per-call thread request on a pool-less executor: honor it
            # with a short-lived pool rather than silently running serial.
            return H.matmul(W, policy=pol)
        return H.matmul(W, pool=self._pool, order=pol.order,
                        q_chunk=pol.q_chunk)

    def matmul_many(self, H: HMatrix, W, order: str | None = None,
                    q_chunk: int | None = None,
                    policy: ExecutionPolicy | None = None):
        """Evaluate ``H @ W`` for a wide or many-panel right-hand side.

        A single ``(N, Q)`` array is streamed through column chunks of at
        most ``q_chunk`` (the generated evaluator's cache-sized default
        when unset) so each pass's panels stay cache-resident, and the
        result is returned as one ``(N, Q)`` array. Any other iterable is
        treated as a stream of independent right-hand-side panels and a
        list of results is returned. Chunking happens once, inside the
        selected evaluator — ``q_chunk`` is honored exactly.
        """
        pol = resolve_policy(policy or self.policy, order=order,
                             q_chunk=q_chunk)
        if isinstance(W, np.ndarray):
            return self.matmul(H, W, policy=pol)
        return [self.matmul_many(H, w, policy=pol) for w in W]

    def close(self) -> None:
        """Shut the thread pool down and tear down every process engine
        (worker processes + shared-memory segments). Idempotent."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for engine in self._engines.values():
            engine.close()
        self._engines.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def matmul(H: HMatrix, W: np.ndarray, num_threads: int | None = None,
           order: str | None = None, q_chunk: int | None = None,
           policy: ExecutionPolicy | None = None) -> np.ndarray:
    """``Y = H @ W`` — the executor entry point of the paper's Figure 2.

    Thin shim over the policy layer: knobs resolve against
    :data:`~repro.api.policy.DEFAULT_POLICY`.

    .. versionchanged:: 1.1
       The default ``order`` is now the shared policy default
       (``"batched"``); it was previously ``"original"`` here while
       :func:`matmul_many` already defaulted to ``"batched"``. The batched
       engine falls back to the per-block code when the cost model rejected
       batch lowering, so results only move at rounding level.
    """
    pol = resolve_policy(policy, order=order, num_threads=num_threads,
                         q_chunk=q_chunk)
    if pol.backend == "process" or (pol.num_threads and pol.num_threads > 1):
        with Executor(policy=pol) as ex:
            return ex.matmul(H, W)
    return H.matmul(W, order=pol.order, q_chunk=pol.q_chunk)


def matmul_many(H: HMatrix, W, num_threads: int | None = None,
                order: str | None = None, q_chunk: int | None = None,
                policy: ExecutionPolicy | None = None):
    """Multi-RHS streaming evaluation (see :meth:`Executor.matmul_many`).

    Thin shim over the policy layer; shares the single
    :data:`~repro.api.policy.DEFAULT_POLICY` default (``order="batched"``)
    with :func:`matmul` — the two entry points no longer disagree.
    """
    pol = resolve_policy(policy, order=order, num_threads=num_threads,
                         q_chunk=q_chunk)
    with Executor(policy=pol) as ex:
        return ex.matmul_many(H, W)
