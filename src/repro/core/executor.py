"""The MatRox executor: runs the generated code against the CDS storage.

``matmul(H, W)`` is the paper's Figure 2 executor call. :class:`Executor`
additionally owns a thread pool so repeated evaluations (the common case the
inspector amortises against) reuse worker threads. NumPy's BLAS releases the
GIL inside GEMM, so sub-tree and block tasks overlap on real cores.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.hmatrix import HMatrix


class Executor:
    """Reusable evaluation context with an optional thread pool."""

    def __init__(self, num_threads: int | None = None):
        """``num_threads=None`` or 1 runs serially (no pool)."""
        if num_threads is not None and num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        self.num_threads = num_threads
        self._pool = (
            ThreadPoolExecutor(max_workers=num_threads)
            if num_threads and num_threads > 1
            else None
        )

    def matmul(self, H: HMatrix, W: np.ndarray, order: str = "original") -> np.ndarray:
        return H.matmul(W, pool=self._pool, order=order)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def matmul(H: HMatrix, W: np.ndarray, num_threads: int | None = None,
           order: str = "original") -> np.ndarray:
    """``Y = H @ W`` — the executor entry point of the paper's Figure 2."""
    if num_threads and num_threads > 1:
        with Executor(num_threads) as ex:
            return ex.matmul(H, W, order=order)
    return H.matmul(W, order=order)
