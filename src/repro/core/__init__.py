"""Core MatRox framework: HMatrix, inspector/executor, reference evaluation."""

from repro.core.accuracy import overall_accuracy, relative_error
from repro.core.evaluation import evaluate_reference
from repro.core.hmatrix import HMatrix
from repro.core.inspector import (
    InspectionP1,
    Inspector,
    inspector,
    inspector_p1,
    inspector_p2,
)
from repro.core.executor import Executor, matmul, matmul_many
from repro.core.parallel import ProcessEngine

__all__ = [
    "evaluate_reference",
    "overall_accuracy",
    "relative_error",
    "HMatrix",
    "Inspector",
    "InspectionP1",
    "inspector",
    "inspector_p1",
    "inspector_p2",
    "Executor",
    "ProcessEngine",
    "matmul",
    "matmul_many",
]
