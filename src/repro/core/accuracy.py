"""Accuracy metrics: the paper's overall accuracy epsilon_f.

``epsilon_f = ||K~ W - K W||_F / ||K W||_F`` (Section 5, Figure 9): the
relative Frobenius error of the approximated HMatrix-matrix product against
the exact dense product.
"""

from __future__ import annotations

import numpy as np


def relative_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """``||approx - exact||_F / ||exact||_F`` (0 when both are zero)."""
    denom = np.linalg.norm(exact)
    if denom == 0.0:
        return 0.0 if np.linalg.norm(approx) == 0.0 else float("inf")
    return float(np.linalg.norm(approx - exact) / denom)


def overall_accuracy(factors, kernel, W: np.ndarray) -> float:
    """epsilon_f for the given compressed factors against the dense product.

    Assembles the dense kernel matrix, so only suitable for validation-scale
    N (the benchmarks use it on scaled-down datasets, as DESIGN.md records).
    ``W`` is in tree order to match :func:`evaluate_reference`.
    """
    from repro.core.evaluation import evaluate_reference

    tree = factors.tree
    W = np.ascontiguousarray(W, dtype=np.float64)
    if W.ndim == 1:
        W = W[:, None]
    K = kernel.block(tree.ordered_points, tree.ordered_points)
    exact = K @ W
    approx = evaluate_reference(factors, W)
    return relative_error(approx, exact)
