"""Persistence for inspection artifacts.

The paper's usage model (Figures 2 and 8) stores the inspector outputs to
disk — the CDS-packed HMatrix (``hmat.cds``), the generated code
(``matmul.h``), and for inspection reuse the CTree, blockset, and sampling
information — so the executor (or a later ``inspector_p2`` run) can load
them without re-inspecting. This module provides the same capability:

* :func:`save_hmatrix` / :func:`load_hmatrix` — the full HMatrix. The flat
  CDS buffers and structure sets round-trip bit-exactly; the specialized
  evaluator is *regenerated* on load from the stored lowering decision
  (compiling the code is cheap; the expensive inspection is what's stored).
* :func:`save_inspection_p1` / :func:`load_inspection_p1` — the reusable
  phase-1 artifacts (tree, interactions, sampling plan, blocksets).

Format: a single ``.npz`` file holding the numeric buffers plus a JSON
manifest for the structural metadata. No pickle is involved, so the files
are safe to share and stable across Python versions.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.analysis.structure_sets import BlockSet, CoarsenLevel, CoarsenSet, SubTree
from repro.codegen.emit import generate_evaluator
from repro.codegen.lowering import LoweringDecision
from repro.compression.factors import Factors
from repro.core.hmatrix import HMatrix
from repro.core.inspector import InspectionP1
from repro.htree.htree import HTree
from repro.sampling.plan import SamplingPlan
from repro.storage.cds import build_cds
from repro.tree.cluster_tree import ClusterTree

_FORMAT_VERSION = 1


class PlanStoreError(RuntimeError):
    """A stored artifact is missing, corrupted, truncated, or incompatible.

    Every load path in this module (and the disk tier of
    :class:`repro.api.store.PlanStore`) fails **closed** with this error:
    a file that does not decode bit-for-bit into a valid artifact raises
    ``PlanStoreError`` rather than leaking a raw ``zipfile``/``numpy``/
    ``json`` exception — or, worse, a silently wrong matrix.

    ``quarantine`` is set by the store's integrity checks when the
    offending file pair was moved aside rather than deleted.
    """

    quarantine: bool = False


def _guard_load(what: str, path, loader):
    """Run ``loader()`` failing closed: any decode error, missing file, or
    format incompatibility surfaces as a :class:`PlanStoreError` naming the
    artifact, never a raw ``zipfile``/``numpy``/``json``/``KeyError``."""
    try:
        return loader()
    except PlanStoreError:
        raise
    except FileNotFoundError as exc:
        raise PlanStoreError(f"{what} artifact {path} does not exist") from exc
    except Exception as exc:
        raise PlanStoreError(
            f"{what} artifact {path} is corrupted, truncated, or not a "
            f"{what} file ({type(exc).__name__}: {exc})"
        ) from exc


# --------------------------------------------------------------------------
# Structural (de)serialisation helpers.
# --------------------------------------------------------------------------

def _tree_arrays(tree: ClusterTree) -> dict[str, np.ndarray]:
    return {
        "tree_points": tree.points,
        "tree_perm": tree.perm,
        "tree_parent": tree.parent,
        "tree_lchild": tree.lchild,
        "tree_rchild": tree.rchild,
        "tree_level": tree.level,
        "tree_start": tree.start,
        "tree_stop": tree.stop,
    }


def _tree_from_arrays(data) -> ClusterTree:
    return ClusterTree(
        data["tree_points"], data["tree_perm"], data["tree_parent"],
        data["tree_lchild"], data["tree_rchild"], data["tree_level"],
        data["tree_start"], data["tree_stop"],
    )


def _pairs_to_list(d: dict[int, list[int]]) -> list[list[int]]:
    return [[int(k)] + [int(x) for x in v] for k, v in sorted(d.items())]


def _pairs_from_list(rows) -> dict[int, list[int]]:
    return {int(r[0]): [int(x) for x in r[1:]] for r in rows}


def _blockset_manifest(bs: BlockSet) -> dict:
    return {
        "blocks": [[[int(i), int(j)] for (i, j) in b] for b in bs.blocks],
        "blocksize": bs.blocksize,
        "kind": bs.kind,
    }


def _blockset_from_manifest(m) -> BlockSet:
    return BlockSet(
        blocks=[[(int(i), int(j)) for i, j in b] for b in m["blocks"]],
        blocksize=int(m["blocksize"]),
        kind=m["kind"],
    )


def _coarsenset_manifest(cs: CoarsenSet) -> dict:
    return {
        "agg": cs.agg,
        "num_partitions": cs.num_partitions,
        "levels": [
            {
                "lb": cl.lb,
                "ub": cl.ub,
                "subtrees": [
                    {"nodes": [int(v) for v in st.nodes],
                     "cost": st.cost,
                     "roots": [int(r) for r in st.roots]}
                    for st in cl.subtrees
                ],
            }
            for cl in cs.levels
        ],
    }


def _coarsenset_from_manifest(m) -> CoarsenSet:
    return CoarsenSet(
        agg=int(m["agg"]),
        num_partitions=int(m["num_partitions"]),
        levels=[
            CoarsenLevel(
                lb=int(cl["lb"]), ub=int(cl["ub"]),
                subtrees=[
                    SubTree(nodes=[int(v) for v in st["nodes"]],
                            cost=float(st["cost"]),
                            roots=[int(r) for r in st["roots"]])
                    for st in cl["subtrees"]
                ],
            )
            for cl in m["levels"]
        ],
    )


def _decision_manifest(d: LoweringDecision) -> dict:
    return {
        "block_near": d.block_near, "block_far": d.block_far,
        "coarsen": d.coarsen, "peel_root": d.peel_root,
        "block_threshold": d.block_threshold,
        "far_block_threshold": d.far_block_threshold,
        "coarsen_threshold": d.coarsen_threshold,
        "reasons": list(d.reasons),
        "batch": d.batch,
        "batch_threshold": d.batch_threshold,
    }


def _decision_from_manifest(m) -> LoweringDecision:
    return LoweringDecision(
        block_near=bool(m["block_near"]), block_far=bool(m["block_far"]),
        coarsen=bool(m["coarsen"]), peel_root=bool(m["peel_root"]),
        block_threshold=int(m["block_threshold"]),
        far_block_threshold=int(m["far_block_threshold"]),
        coarsen_threshold=int(m["coarsen_threshold"]),
        reasons=tuple(m.get("reasons", ())),
        batch=bool(m.get("batch", False)),
        batch_threshold=float(m.get("batch_threshold", 2.0)),
    )


# --------------------------------------------------------------------------
# HMatrix save / load.
# --------------------------------------------------------------------------

def save_hmatrix(H, path) -> Path:
    """Store an HMatrix (CDS buffers + structure) to ``path`` (.npz).

    Also accepts a :class:`~repro.api.operator.KernelOperator`, whose
    backing HMatrix is materialized (inspecting if still lazy) and stored;
    the compressed content round-trips bit-exactly either way.
    """
    if not isinstance(H, HMatrix) and hasattr(H, "hmatrix"):
        H = H.hmatrix  # KernelOperator (or any facade exposing .hmatrix)
    if not isinstance(H, HMatrix):
        raise TypeError(
            f"expected an HMatrix or an operator backed by one, got "
            f"{type(H).__name__ if H is not None else None}"
        )
    path = Path(path)
    factors = H.factors
    tree = H.tree
    arrays: dict[str, np.ndarray] = dict(_tree_arrays(tree))
    arrays["sranks"] = factors.sranks

    # Generators: flat buffers are already packed in the CDS.
    arrays["basis_buf"] = H.cds.basis_buf
    arrays["near_buf"] = H.cds.near_buf
    arrays["far_buf"] = H.cds.far_buf
    for v, sk in factors.skeleton.items():
        arrays[f"skeleton_{v}"] = sk

    manifest = {
        "version": _FORMAT_VERSION,
        "structure": factors.htree.structure,
        "near": _pairs_to_list(factors.htree.near),
        "far": _pairs_to_list(factors.htree.far),
        "near_blockset": _blockset_manifest(H.cds.near_blockset),
        "far_blockset": _blockset_manifest(H.cds.far_blockset),
        "coarsenset": _coarsenset_manifest(H.cds.coarsenset),
        "decision": _decision_manifest(H.evaluator.decision),
        "basis_offset": {str(k): int(v) for k, v in H.cds.basis_offset.items()},
        "basis_shape": {str(k): list(v) for k, v in H.cds.basis_shape.items()},
        "near_offset": {f"{i},{j}": int(o)
                        for (i, j), o in H.cds.near_offset.items()},
        "far_offset": {f"{i},{j}": int(o)
                       for (i, j), o in H.cds.far_offset.items()},
        "metadata": {k: v for k, v in H.metadata.items()
                     if isinstance(v, (str, int, float, bool))},
    }
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode(), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    return path


def _as_source(path):
    """np.load source: a binary file-like passes through, else a Path."""
    return path if hasattr(path, "read") else Path(path)


def load_hmatrix(path) -> HMatrix:
    """Load an HMatrix saved by :func:`save_hmatrix`; recompiles the code.

    ``path`` may also be an open binary file-like (the
    :class:`~repro.api.store.PlanStore` hands over bytes it already read
    for the integrity check). Fails closed: a corrupted, truncated, or
    version-incompatible file raises :class:`PlanStoreError`.
    """
    return _guard_load("hmatrix", path, lambda: _load_hmatrix(path))


def _load_hmatrix(path) -> HMatrix:
    with np.load(_as_source(path), allow_pickle=False) as data:
        manifest = json.loads(bytes(data["manifest"]).decode())
        if manifest["version"] != _FORMAT_VERSION:
            raise PlanStoreError(
                f"unsupported hmatrix file version {manifest['version']} "
                f"in {path} (this build reads version {_FORMAT_VERSION})"
            )
        tree = _tree_from_arrays(data)
        htree = HTree(tree=tree,
                      near=_pairs_from_list(manifest["near"]),
                      far=_pairs_from_list(manifest["far"]),
                      structure=manifest["structure"])
        factors = Factors(htree=htree)
        factors.sranks = np.asarray(data["sranks"], dtype=np.intp)
        factors.skeleton = {
            int(k.split("_")[1]): np.asarray(data[k], dtype=np.intp)
            for k in data.files if k.startswith("skeleton_")
        }

        # Rebuild the per-node / per-pair generator dicts as views into the
        # loaded flat buffers (same layout the CDS will re-pack).
        basis_buf = np.array(data["basis_buf"])
        near_buf = np.array(data["near_buf"])
        far_buf = np.array(data["far_buf"])
        for vstr, off in manifest["basis_offset"].items():
            v = int(vstr)
            rows, cols = manifest["basis_shape"][vstr]
            gen = basis_buf[off: off + rows * cols].reshape(rows, cols)
            if tree.is_leaf(v):
                factors.leaf_basis[v] = gen
            else:
                factors.transfer[v] = gen
        for key, off in manifest["near_offset"].items():
            i, j = (int(x) for x in key.split(","))
            rows, cols = tree.node_size(i), tree.node_size(j)
            factors.near_blocks[(i, j)] = near_buf[
                off: off + rows * cols].reshape(rows, cols)
        for key, off in manifest["far_offset"].items():
            i, j = (int(x) for x in key.split(","))
            rows = int(factors.sranks[i])
            cols = int(factors.sranks[j])
            factors.coupling[(i, j)] = far_buf[
                off: off + rows * cols].reshape(rows, cols)

    near_bs = _blockset_from_manifest(manifest["near_blockset"])
    far_bs = _blockset_from_manifest(manifest["far_blockset"])
    coarsenset = _coarsenset_from_manifest(manifest["coarsenset"])
    decision = _decision_from_manifest(manifest["decision"])

    cds = build_cds(factors, coarsenset, near_bs, far_bs)
    evaluator = generate_evaluator(cds, decision=decision)
    return HMatrix(cds=cds, evaluator=evaluator,
                   metadata=dict(manifest.get("metadata", {})))


def load_operator(path, policy=None):
    """Load a stored HMatrix as a composable KernelOperator facade.

    Convenience for executor-side processes: the loaded operator supports
    ``@``, scaling, and ``+ beta * I`` directly (see
    :mod:`repro.api.operator`), with ``policy`` as its bound execution
    policy.
    """
    from repro.api.operator import KernelOperator

    return KernelOperator(load_hmatrix(path), policy=policy)


# --------------------------------------------------------------------------
# InspectionP1 save / load (Figure 8's reuse artifacts).
# --------------------------------------------------------------------------

def save_inspection_p1(p1: InspectionP1, path) -> Path:
    """Store the reusable phase-1 inspection to ``path`` (.npz)."""
    path = Path(path)
    arrays = dict(_tree_arrays(p1.tree))
    for v, s in p1.plan.samples.items():
        arrays[f"samples_{v}"] = s
    manifest = {
        "version": _FORMAT_VERSION,
        "structure": p1.htree.structure,
        "near": _pairs_to_list(p1.htree.near),
        "far": _pairs_to_list(p1.htree.far),
        "near_blockset": _blockset_manifest(p1.near_blockset),
        "far_blockset": _blockset_manifest(p1.far_blockset),
        "plan": {"k": p1.plan.k, "method": p1.plan.method,
                 "seed": p1.plan.seed, "stats": p1.plan.stats},
        "timings": p1.timings,
    }
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode(), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    return path


def load_inspection_p1(path) -> InspectionP1:
    """Load phase-1 inspection artifacts saved by :func:`save_inspection_p1`.

    ``path`` may also be an open binary file-like. Fails closed: a
    corrupted, truncated, or version-incompatible file raises
    :class:`PlanStoreError`.
    """
    return _guard_load("inspection-p1", path, lambda: _load_inspection_p1(path))


def _load_inspection_p1(path) -> InspectionP1:
    with np.load(_as_source(path), allow_pickle=False) as data:
        manifest = json.loads(bytes(data["manifest"]).decode())
        if manifest["version"] != _FORMAT_VERSION:
            raise PlanStoreError(
                f"unsupported inspection file version {manifest['version']} "
                f"in {path} (this build reads version {_FORMAT_VERSION})"
            )
        tree = _tree_from_arrays(data)
        samples = {
            int(k.split("_")[1]): np.asarray(data[k], dtype=np.intp)
            for k in data.files if k.startswith("samples_")
        }
    htree = HTree(tree=tree,
                  near=_pairs_from_list(manifest["near"]),
                  far=_pairs_from_list(manifest["far"]),
                  structure=manifest["structure"])
    pm = manifest["plan"]
    plan = SamplingPlan(samples=samples, k=int(pm["k"]), method=pm["method"],
                        seed=pm["seed"], stats=pm.get("stats", {}))
    return InspectionP1(
        tree=tree, htree=htree, plan=plan,
        near_blockset=_blockset_from_manifest(manifest["near_blockset"]),
        far_blockset=_blockset_from_manifest(manifest["far_blockset"]),
        timings={k: float(v) for k, v in manifest.get("timings", {}).items()},
    )


# --------------------------------------------------------------------------
# TuningProfile save / load (repro.tuning's PlanStore artifacts).
# --------------------------------------------------------------------------

def save_tuning_profile(profile, path) -> Path:
    """Store a tuning profile (a plain JSON-able dict) to ``path`` (.npz).

    Profiles travel as dicts (see
    :meth:`repro.tuning.TuningProfile.to_dict`) so this module stays free
    of a ``repro.tuning`` import; the .npz envelope keeps them on the
    same atomic-write/SHA-256-manifest PlanStore path as plans.
    """
    if hasattr(profile, "to_dict"):
        profile = profile.to_dict()
    if not isinstance(profile, dict):
        raise TypeError(
            f"expected a TuningProfile or its dict form, got "
            f"{type(profile).__name__}"
        )
    path = Path(path)
    manifest = {"version": _FORMAT_VERSION, "profile": profile}
    blob = np.frombuffer(json.dumps(manifest).encode(), dtype=np.uint8)
    np.savez_compressed(path, manifest=blob)
    return path


def load_tuning_profile(path) -> dict:
    """Load a tuning-profile dict saved by :func:`save_tuning_profile`.

    ``path`` may also be an open binary file-like. Fails closed: a
    corrupted, truncated, or version-incompatible file raises
    :class:`PlanStoreError`.
    """
    return _guard_load("tuning-profile", path,
                       lambda: _load_tuning_profile(path))


def _load_tuning_profile(path) -> dict:
    with np.load(_as_source(path), allow_pickle=False) as data:
        manifest = json.loads(bytes(data["manifest"]).decode())
    if manifest.get("version") != _FORMAT_VERSION:
        raise PlanStoreError(
            f"unsupported tuning-profile file version "
            f"{manifest.get('version')} in {path} (this build reads "
            f"version {_FORMAT_VERSION})"
        )
    profile = manifest.get("profile")
    if not isinstance(profile, dict):
        raise PlanStoreError(
            f"tuning-profile artifact {path} holds no profile dict")
    return profile
