"""Host identity: the axes a host-specific artifact depends on.

Two PlanStore tiers key artifacts by host — tuning profiles (a measured
policy winner is only transferable between like hosts) and compiled
executors (index tables and workspace plans are laid out for one
BLAS/CPU configuration). Both MUST use the same signature: if the tuner
and the compiled tier disagreed about what "this host" means, a
signature change (new BLAS, different affinity mask) would invalidate
one cache but silently replay the other. This module is the single
definition; :mod:`repro.tuning.profile` re-exports it for backward
compatibility.
"""

from __future__ import annotations

import contextlib
import platform

import numpy as np

from repro.api.policy import effective_cpu_count

__all__ = ["host_key", "host_signature"]


def _blas_vendor() -> str:
    """Best-effort BLAS vendor name (part of the host signature)."""
    # show_config has no stable API; any failure means "unknown".
    with contextlib.suppress(Exception):  # numpy >= 1.26 structured config
        cfg = np.show_config(mode="dicts")
        name = (cfg.get("Build Dependencies", {})
                .get("blas", {}).get("name", ""))
        if name:
            return str(name).lower()
    config = getattr(np, "__config__", None)
    for vendor in ("mkl", "openblas", "blis", "accelerate", "atlas"):
        if config is not None and getattr(config, f"{vendor}_info", None):
            return vendor
    return "unknown"


def host_signature() -> dict:
    """The host axes a measured or compiled artifact depends on.

    ``cpus`` is the *effective* count (:func:`effective_cpu_count` — the
    scheduler-affinity mask, not the machine), so an artifact built
    inside a 2-CPU cgroup is never replayed as if 64 cores were
    available.
    """
    return {
        "cpus": effective_cpu_count(),
        "blas": _blas_vendor(),
        "machine": platform.machine() or "unknown",
    }


def host_key(host: dict) -> str:
    """Canonical string form of a host signature (stable across runs)."""
    return ";".join(f"{k}={host[k]}" for k in sorted(host))
