"""repro.tuning — profile-guided execution-policy autotuning.

``ExecutionPolicy(order="auto")`` defers the order/backend/thread/worker/
q_chunk choice to a measured :class:`TuningProfile` keyed by HMatrix
fingerprint x RHS-width bucket x host signature (x pinned knobs), seeded
by the :mod:`repro.metrics.costmodel` executor prior and persisted
through the :class:`~repro.api.store.PlanStore` ``"profile"`` tier.

See DESIGN.md section 9 for the profile format and re-tune triggers.
"""

from repro.tuning.autotune import (
    AutotuneBackend,
    Autotuner,
    AutotuneStats,
    autotune_backends,
    default_autotuner,
    register_autotune_backend,
    reset_default_autotuner,
    resolve_auto,
    tune,
)
from repro.tuning.profile import (
    PROFILE_FORMAT_VERSION,
    TuningProfile,
    hmatrix_fingerprint,
    host_signature,
    policy_from_knobs,
    policy_knobs,
    width_bucket,
)

__all__ = [
    "AutotuneBackend",
    "Autotuner",
    "AutotuneStats",
    "PROFILE_FORMAT_VERSION",
    "TuningProfile",
    "autotune_backends",
    "default_autotuner",
    "register_autotune_backend",
    "hmatrix_fingerprint",
    "host_signature",
    "policy_from_knobs",
    "policy_knobs",
    "reset_default_autotuner",
    "resolve_auto",
    "tune",
    "width_bucket",
]
