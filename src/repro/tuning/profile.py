"""Tuning-profile format: keys, host signature, and the profile record.

A :class:`TuningProfile` is the persisted outcome of one autotuning run
(see :mod:`repro.tuning.autotune`): *for this operator, at this RHS
width, on this host (under these pinned knobs), this execution policy
won, by this margin*. Profiles are keyed by

* the **HMatrix fingerprint** — a structural + content digest of the
  compiled operator (dimension, structure sets, lowering decision, CRCs
  of the CDS buffers), so a profile never leaks across operators that
  merely share a Python object id;
* the **RHS-width bucket** — the power-of-two ceiling of the number of
  right-hand-side columns, the quantity the Fig. 5/Fig. 7 sweeps show
  actually moves the optimum (a served batch drifting into a different
  bucket is what triggers a re-tune);
* the **host signature** — effective CPU count (affinity/cgroup-aware),
  BLAS vendor, and machine architecture: the axes along which a
  measured winner stops being transferable;
* any **pinned knobs** — knobs set explicitly alongside
  ``order="auto"`` constrain the candidate grid, so a constrained
  profile must never answer an unconstrained query (or vice versa).

Profiles travel as plain JSON-able dicts through
:meth:`~repro.api.store.PlanStore.put_profile` /
:meth:`~repro.api.store.PlanStore.get_profile` (same atomic-write +
SHA-256-manifest path as plan artifacts; see DESIGN.md section 9).
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.api.policy import DEFAULT_POLICY, ExecutionPolicy
from repro.host import host_key, host_signature

__all__ = [
    "PROFILE_FORMAT_VERSION",
    "TuningProfile",
    "hmatrix_fingerprint",
    "host_signature",
    "policy_from_knobs",
    "policy_knobs",
    "width_bucket",
]

#: Schema version of the profile dict (bump on incompatible change; a
#: mismatched stored profile is discarded and re-tuned, never mis-read).
PROFILE_FORMAT_VERSION = 1

#: The ExecutionPolicy fields a profile records / a winner sets.
POLICY_KNOBS = ("order", "backend", "num_threads", "num_workers", "q_chunk")

#: Width buckets are capped here: beyond this, evaluation time scales
#: linearly in Q and the per-column policy optimum no longer moves.
MAX_WIDTH_BUCKET = 4096


def width_bucket(q: int) -> int:
    """Power-of-two ceiling of a RHS column count (1 .. MAX_WIDTH_BUCKET)."""
    q = max(1, int(q))
    bucket = 1
    while bucket < q and bucket < MAX_WIDTH_BUCKET:
        bucket *= 2
    return bucket


def policy_knobs(policy: ExecutionPolicy) -> dict:
    """The JSON-able knob dict of a policy (the profile wire format)."""
    return {name: getattr(policy, name) for name in POLICY_KNOBS}


def policy_from_knobs(knobs: dict) -> ExecutionPolicy:
    """Rebuild an :class:`ExecutionPolicy` from :func:`policy_knobs` output."""
    unknown = sorted(set(knobs) - set(POLICY_KNOBS))
    if unknown:
        raise ValueError(f"unknown policy knob(s) {unknown}")
    return ExecutionPolicy(**{k: knobs[k] for k in POLICY_KNOBS
                              if k in knobs})


# host_signature()/host_key() live in repro.host (shared with the
# compiled-artifact tier so both key off ONE host definition); they are
# re-exported here — importing them from this module is deprecated.


def hmatrix_fingerprint(H) -> str:
    """Structural + content digest of a compiled HMatrix.

    Derived from the object's *content* (dimension, structure, lowering
    decision, CRC-32 of the sranks and the three CDS buffers), not its
    Python identity, so it is stable across save/load round trips and
    across processes — the property the profile store needs. CRC-32 over
    the packed buffers is O(bytes) at memory speed; an HMatrix is
    fingerprinted once per Executor lifetime, not per request.
    """
    cds = H.cds
    decision = H.evaluator.decision
    parts = [
        f"n={H.dim}",
        f"structure={H.factors.htree.structure}",
        f"height={H.tree.height}",
        f"leaves={len(H.tree.leaves)}",
        f"near={H.factors.htree.num_near()}",
        f"far={H.factors.htree.num_far()}",
        f"decision={decision.block_near:d}{decision.block_far:d}"
        f"{decision.coarsen:d}{decision.peel_root:d}{decision.batch:d}",
        f"sranks={zlib.crc32(np.ascontiguousarray(H.sranks).tobytes()):08x}",
    ]
    for name in ("basis_buf", "near_buf", "far_buf"):
        buf = np.ascontiguousarray(getattr(cds, name))
        parts.append(f"{name}={len(buf)}:{zlib.crc32(buf.tobytes()):08x}")
    for k in sorted(H.metadata):
        v = H.metadata[k]
        if isinstance(v, (str, int, float, bool)):
            parts.append(f"meta.{k}={v!r}")
    blob = ";".join(parts).encode()
    return format(zlib.crc32(blob), "08x") + format(zlib.adler32(blob), "08x")


def policy_pins(policy: ExecutionPolicy) -> dict:
    """Knobs explicitly constrained alongside ``order="auto"``.

    Any non-order knob that differs from :data:`DEFAULT_POLICY` is
    treated as a user constraint the tuner must honor (an immutable
    frozen dataclass cannot distinguish "explicitly passed the default"
    from "defaulted", so the default values themselves are never pins).
    """
    return {
        name: getattr(policy, name)
        for name in POLICY_KNOBS
        if name != "order"
        and getattr(policy, name) != getattr(DEFAULT_POLICY, name)
    }


@dataclass
class TuningProfile:
    """One autotuning outcome: the winning policy and how it was chosen.

    ``source`` records whether the winner was *measured* (timed trials)
    or taken straight from the cost-model *prior* (problems below the
    measurement floor, where trial noise exceeds any policy delta).
    ``margin`` is runner-up seconds over winner seconds (>= 1.0): how
    decisively the winner won. ``candidates`` keeps every considered
    policy with its seconds (measured or predicted), so benchmarks and
    the CLI can show the whole ranking, not just the pick.
    """

    hmatrix_fp: str
    width_bucket: int
    host: dict
    policy: dict
    candidates: list = field(default_factory=list)
    pins: dict = field(default_factory=dict)
    source: str = "measured"
    margin: float = 1.0
    trials: int = 0
    version: int = PROFILE_FORMAT_VERSION
    # analysis: waive R004 -- profile age bookkeeping: performance
    # metadata, never a correctness input, and excluded from the key
    created: float = field(default_factory=time.time)

    @property
    def key(self) -> tuple:
        return self.make_key(self.hmatrix_fp, self.width_bucket, self.host,
                             self.pins)

    @staticmethod
    def make_key(hmatrix_fp: str, bucket: int, host: dict,
                 pins: dict | None = None) -> tuple:
        pins_part = tuple(sorted((pins or {}).items()))
        return ("tuning", hmatrix_fp, int(bucket), host_key(host), pins_part)

    def best_policy(self) -> ExecutionPolicy:
        """The winning policy as a concrete :class:`ExecutionPolicy`."""
        return policy_from_knobs(self.policy)

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "hmatrix_fp": self.hmatrix_fp,
            "width_bucket": self.width_bucket,
            "host": dict(self.host),
            "pins": dict(self.pins),
            "policy": dict(self.policy),
            "candidates": [dict(c) for c in self.candidates],
            "source": self.source,
            "margin": self.margin,
            "trials": self.trials,
            "created": self.created,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "TuningProfile":
        """Rebuild a profile; raises ``ValueError`` on schema mismatch.

        Callers treat an invalid stored profile as a miss (re-tune) —
        a profile is performance metadata, never a correctness input, so
        version skew degrades to one extra tuning run, not an error.
        """
        if not isinstance(doc, dict):
            raise ValueError(f"profile must be a dict, got "
                             f"{type(doc).__name__}")
        if doc.get("version") != PROFILE_FORMAT_VERSION:
            raise ValueError(
                f"profile version {doc.get('version')!r} != "
                f"{PROFILE_FORMAT_VERSION}")
        try:
            policy = dict(doc["policy"])
            policy_from_knobs(policy)  # validates knob names + values
            return cls(
                hmatrix_fp=str(doc["hmatrix_fp"]),
                width_bucket=int(doc["width_bucket"]),
                host=dict(doc["host"]),
                policy=policy,
                candidates=[dict(c) for c in doc.get("candidates", [])],
                pins=dict(doc.get("pins", {})),
                source=str(doc.get("source", "measured")),
                margin=float(doc.get("margin", 1.0)),
                trials=int(doc.get("trials", 0)),
                created=float(doc.get("created", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed tuning profile: {exc}") from exc
