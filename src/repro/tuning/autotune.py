"""Profile-guided policy autotuning: ``tune()`` and the :class:`Autotuner`.

The inspector already spends its 8.1% on structure analysis and codegen
so the executor can pick the right lowering; this module closes the same
loop one level up, over the *execution policy*. No single fixed
order/backend/thread/worker/q_chunk setting wins everywhere (the Fig. 5
and Fig. 7 sweeps), so ``ExecutionPolicy(order="auto")`` defers the
choice to a measured, persisted :class:`~repro.tuning.TuningProfile`:

1. **Seed analytically.** Candidates come from the policy grid filtered
   by the host (no thread/process candidates on 1 CPU, no process pool
   below its amortization floor) and are ranked by the
   :mod:`repro.metrics.costmodel` executor prior. A problem below the
   measurement floor (``EXECUTOR_TRIVIAL_FLOPS``) takes the analytic
   winner directly — zero trials, ``source="prior"``.
2. **Measure short trials.** Everything else runs warmup + ``reps``
   timed passes per candidate over a representative trial panel
   (min-of-reps; persistent pools are set up *before* the clock starts,
   matching how an :class:`~repro.core.executor.Executor` amortizes
   them). The winner is recorded with its measured margin.
3. **Persist + warm-start.** With a :class:`~repro.api.store.PlanStore`
   attached, profiles are written next to plan artifacts (same
   atomic-write/verify-on-read path, tier ``"profile"``) and a fresh
   process resolves ``order="auto"`` with **zero re-tunes** — the
   counters in :attr:`Autotuner.stats` prove it.

Re-tune triggers are exactly the profile-key axes: a different operator
(HMatrix fingerprint), an RHS batch drifting into another width bucket
(the :class:`~repro.api.service.KernelService` dispatcher case), a
different host signature, or different pinned knobs.
"""

from __future__ import annotations

import contextlib
import importlib
import threading
import time
import weakref
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.api.policy import (
    DEFAULT_POLICY,
    DEFAULT_Q_CHUNK,
    ExecutionPolicy,
    coalesce_policy,
)
from repro.metrics.costmodel import (
    EXECUTOR_TRIVIAL_FLOPS,
    PROCESS_BACKEND_MIN_FLOPS,
    executor_policy_priors,
)
from repro.observability.sync import make_lock, make_rlock
from repro.tuning.profile import (
    TuningProfile,
    hmatrix_fingerprint,
    host_signature,
    policy_from_knobs,
    policy_knobs,
    policy_pins,
    width_bucket,
)

if TYPE_CHECKING:  # annotation-only: avoids an api->tuning import cycle
    from repro.api.store import PlanStore

__all__ = ["AutotuneBackend", "Autotuner", "AutotuneStats",
           "autotune_backends", "default_autotuner",
           "register_autotune_backend", "reset_default_autotuner",
           "resolve_auto", "tune"]

#: Trial panels are capped here: past ~2x the default streaming chunk,
#: wider trials add wall time without changing any candidate's ranking
#: (per-column cost is flat), and this width still *discriminates* the
#: q_chunk candidate (one pass vs two) for the buckets that get one.
TRIAL_COLS_CAP = 512


# --------------------------------------------------------------------------
# Candidate backends: one registry, enumerated by order="auto",
# `repro tune`, and stats()["autotune"] alike.
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class AutotuneBackend:
    """One self-describing autotune candidate source.

    ``available(ctx)`` is the capability probe; ``candidates(ctx)``
    yields policy knob dicts (:func:`~repro.tuning.profile.policy_knobs`
    keys). The ``ctx`` dict carries the tuning context: ``host``,
    ``cpus``, ``q``, ``bucket``, ``flops``, ``trial_chunk`` (the widest
    chunk a trial panel can discriminate), and ``has_batched`` (whether
    batch lowering was accepted for the operator).
    """

    name: str
    available: Callable[[dict], bool]
    candidates: Callable[[dict], list]

    def __post_init__(self):
        if not self.name.isidentifier():
            raise ValueError(f"backend name {self.name!r} must be an "
                             f"identifier")


_BACKEND_REGISTRY: dict[str, AutotuneBackend] = {}

#: Backends living in modules this package must not import eagerly
#: (repro.codegen.compiled registers itself on import); resolved lazily
#: the first time the registry is enumerated.
_BACKEND_AUTOLOAD = {"compiled": "repro.codegen.compiled"}


def register_autotune_backend(backend: AutotuneBackend) -> AutotuneBackend:
    """Register (or replace) a candidate backend by name."""
    if not isinstance(backend, AutotuneBackend):
        raise TypeError(f"expected AutotuneBackend, got "
                        f"{type(backend).__name__}")
    _BACKEND_REGISTRY[backend.name] = backend
    return backend


def autotune_backends() -> tuple[AutotuneBackend, ...]:
    """Every registered backend, registration-ordered (after autoload)."""
    for name, module in _BACKEND_AUTOLOAD.items():
        if name not in _BACKEND_REGISTRY:
            with contextlib.suppress(ImportError):  # optional module
                importlib.import_module(module)
    return tuple(_BACKEND_REGISTRY.values())


def _batched_candidates(ctx: dict) -> list:
    out = [{"order": "batched"}]
    # One streaming pass instead of several: worth trying once the
    # bucket outgrows the generated default panel width. The chunk is
    # capped at the *trial* width so the candidate is only offered when
    # the trial actually discriminates it — a candidate whose trial run
    # is byte-for-byte the default's would make the "measured" winner
    # pure timing noise.
    if ctx["trial_chunk"] > DEFAULT_Q_CHUNK:
        out.append({"order": "batched", "q_chunk": ctx["trial_chunk"]})
    return out


def _original_candidates(ctx: dict) -> list:
    out = [{"order": "original"}]
    if ctx["cpus"] > 1:
        out.append({"order": "original", "num_threads": ctx["cpus"]})
    return out


register_autotune_backend(AutotuneBackend(
    name="batched", available=lambda ctx: True,
    candidates=_batched_candidates))
register_autotune_backend(AutotuneBackend(
    name="original", available=lambda ctx: True,
    candidates=_original_candidates))
register_autotune_backend(AutotuneBackend(
    name="process",
    available=lambda ctx: (ctx["cpus"] > 1
                           and ctx["flops"] >= PROCESS_BACKEND_MIN_FLOPS),
    candidates=lambda ctx: [{"order": "batched", "backend": "process",
                             "num_workers": ctx["cpus"]}]))


def _fingerprint_drop(tuner_ref, key) -> None:
    """weakref.finalize callback: an HMatrix died — drop its memoized
    fingerprint so a CPython-recycled id can never serve a stale one.
    Module-level so the finalizer never keeps the tuner alive."""
    tuner = tuner_ref()
    if tuner is not None:
        with tuner._lock:
            tuner._fingerprints.pop(key, None)


@dataclass
class AutotuneStats:
    """Counters proving where auto policies were resolved from."""

    tunes: int = 0            # full tuning runs (measured or prior)
    trials: int = 0           # individual timed candidate measurements
    memory_hits: int = 0      # profile served from this tuner's memory
    store_hits: int = 0       # profile warm-started from the PlanStore
    prior_shortcuts: int = 0  # tunes that skipped measurement entirely

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class Autotuner:
    """Measures, records, and replays winning execution policies.

    Parameters
    ----------
    store:
        Optional :class:`~repro.api.store.PlanStore`; profiles persist
        in its ``"profile"`` tier and warm-start later processes.
    reps:
        Timed repetitions per candidate (min-of-reps is recorded).
    trial_cols:
        Columns in the trial panel; ``None`` uses the width bucket
        capped at :data:`TRIAL_COLS_CAP` (wide buckets are
        representative well before their full width; the q_chunk
        candidate is capped to the same width so trials discriminate
        it).
    min_measured_flops:
        Evaluation-flop floor below which the analytic prior answers
        directly (``source="prior"``, zero trials).

    Thread-safe: one coarse lock guards the profile map and counters
    (profiles are tuned once and then read), so a
    :class:`~repro.api.service.KernelService` dispatcher and caller
    threads may share one tuner.
    """

    def __init__(self, store: PlanStore | None = None, *, reps: int = 2,
                 trial_cols: int | None = None,
                 min_measured_flops: float = EXECUTOR_TRIVIAL_FLOPS,
                 host: dict | None = None):
        if reps < 1:
            raise ValueError(f"reps must be >= 1, got {reps}")
        self.store = store
        self.reps = int(reps)
        self.trial_cols = trial_cols
        self.min_measured_flops = float(min_measured_flops)
        self.host = dict(host) if host is not None else host_signature()
        self.stats = AutotuneStats()
        self._profiles: dict[tuple, TuningProfile] = {}
        self._fingerprints: dict[int, str] = {}
        self._lock = make_rlock("Autotuner._lock")
        # Per-profile-key mutexes: concurrent first resolutions of the
        # same key must not each run the full measured trial grid.
        self._key_locks: dict[tuple, threading.Lock] = {}

    # ------------------------------------------------------------ resolution
    def resolve(self, H, q: int,
                policy: ExecutionPolicy | None = None) -> ExecutionPolicy:
        """A concrete policy for ``H`` at RHS width ``q``.

        A non-auto ``policy`` passes through untouched; ``order="auto"``
        resolves via :meth:`profile_for` (memory -> store -> tune).
        """
        pol = coalesce_policy(policy, DEFAULT_POLICY)
        if not pol.is_auto:
            return pol
        return self.profile_for(H, q, pol).best_policy()

    def profile_for(self, H, q: int,
                    policy: ExecutionPolicy | None = None) -> TuningProfile:
        """The profile governing ``(H, q)``, tuning only on a cold miss.

        A cold miss holds a per-key mutex through the store lookup and
        the tuning run, so concurrent first resolutions of one key tune
        exactly once — latecomers block, then hit the fresh profile.
        """
        pol = coalesce_policy(policy, DEFAULT_POLICY)
        pins = policy_pins(pol)
        key = TuningProfile.make_key(self._fingerprint(H), width_bucket(q),
                                     self.host, pins)
        with self._lock:
            prof = self._profiles.get(key)
            if prof is not None:
                self.stats.memory_hits += 1
                return prof
            key_lock = self._key_locks.setdefault(
                key, make_lock("Autotuner._key_locks[*]"))
        with key_lock:
            with self._lock:
                prof = self._profiles.get(key)
                if prof is not None:      # a concurrent tuner beat us
                    self.stats.memory_hits += 1
                    return prof
            prof = self._stored_profile(key)
            if prof is not None:
                with self._lock:
                    self.stats.store_hits += 1
                    self._profiles[key] = prof
                return prof
            return self.tune(H, q, pol)

    def _stored_profile(self, key: tuple) -> TuningProfile | None:
        if self.store is None:
            return None
        doc = self.store.get("profile", key)
        if doc is None:
            return None
        try:
            return TuningProfile.from_dict(doc)
        except ValueError:
            # Version skew or malformed content: a profile is performance
            # metadata, so degrade to one extra tuning run, never an error.
            return None

    def _fingerprint(self, H) -> str:
        # Per-object memo, weakref-guarded like every id()-keyed cache
        # in this codebase: the finalizer drops the entry when H is
        # collected, so a CPython-recycled id can never serve a stale
        # fingerprint (which would replay — and persist — another
        # matrix's profile under the wrong key).
        key = id(H)
        with self._lock:
            fp = self._fingerprints.get(key)
        if fp is None:
            fp = hmatrix_fingerprint(H)
            with self._lock:
                self._fingerprints[key] = fp
                while len(self._fingerprints) > 64:
                    self._fingerprints.pop(next(iter(self._fingerprints)))
            # HMatrix is weakref-able, so TypeError never fires today.
            with contextlib.suppress(TypeError):  # pragma: no cover
                weakref.finalize(H, _fingerprint_drop, weakref.ref(self),
                                 key)
        return fp

    # ----------------------------------------------------------- candidates
    def candidate_policies(self, H, q: int,
                           pins: dict | None = None) -> list[dict]:
        """The policy grid for ``(H, q)`` as knob dicts, pins applied.

        The grid is the union of every registered
        :class:`AutotuneBackend` whose probe passes — one source of
        truth shared with ``repro tune`` and ``stats()["autotune"]``.
        Only result-preserving policies are eligible: ``order="tree"``
        changes the meaning of W's row order, so auto never selects it.
        """
        pins = dict(pins or {})
        ctx = self._backend_ctx(H, q)
        grid: list[dict] = []
        for backend in autotune_backends():
            try:
                if not backend.available(ctx):
                    continue
                grid.extend(dict(knobs) for knobs in backend.candidates(ctx))
            except Exception:  # noqa: BLE001 - a broken probe is a no-op,
                continue       # not a tuning failure
        out, seen = [], set()
        for knobs in grid:
            merged = {**knobs, **pins}
            if (merged.get("backend") == "process"
                    and merged.get("order") == "original"):
                continue  # "original" names the in-process per-block code
            frozen = tuple(sorted(merged.items()))
            if frozen in seen:
                continue
            seen.add(frozen)
            policy_from_knobs(merged)  # validates the combination
            out.append(merged)
        return out

    def _backend_ctx(self, H, q: int) -> dict:
        """The probe/candidate context handed to every backend."""
        bucket = width_bucket(q)
        decision = getattr(H.evaluator, "decision", None)
        return {
            "host": dict(self.host),
            "cpus": int(self.host.get("cpus", 1)),
            "q": int(q),
            "bucket": bucket,
            "flops": float(H.evaluation_flops(bucket)),
            "trial_chunk": min(bucket, self._trial_width(bucket)),
            "has_batched": bool(getattr(decision, "batch", False)),
        }

    # ------------------------------------------------------------ measuring
    def tune(self, H, q: int, policy: ExecutionPolicy | None = None,
             force: bool = False) -> TuningProfile:
        """Run one tuning pass for ``(H, q)`` and record the profile.

        ``force=True`` re-tunes even when a profile already exists
        (the CLI's explicit re-tune path); otherwise an existing profile
        for the same key is simply replaced by the fresh result.
        """
        pol = coalesce_policy(policy, DEFAULT_POLICY)
        pins = policy_pins(pol)
        bucket = width_bucket(q)
        cpus = int(self.host.get("cpus", 1))
        flops = float(H.evaluation_flops(bucket))
        candidates = self.candidate_policies(H, q, pins)

        ranked = executor_policy_priors(candidates, flops, bucket, cpus)
        if flops < self.min_measured_flops and not force:
            scored = [
                {"policy": knobs, "seconds": seconds, "measured": False}
                for knobs, seconds in ranked
            ]
            trials = 0
            with self._lock:
                self.stats.prior_shortcuts += 1
        else:
            W = self._trial_panel(H, bucket)
            scored = []
            for knobs, _prior in ranked:
                seconds = self._measure(H, policy_from_knobs(knobs), W)
                scored.append({"policy": knobs, "seconds": seconds,
                               "measured": True})
            scored.sort(key=lambda c: c["seconds"])
            trials = len(scored) * self.reps
            with self._lock:
                self.stats.trials += trials

        winner = scored[0]
        margin = (scored[1]["seconds"] / winner["seconds"]
                  if len(scored) > 1 and winner["seconds"] > 0 else 1.0)
        prof = TuningProfile(
            hmatrix_fp=self._fingerprint(H),
            width_bucket=bucket,
            host=dict(self.host),
            pins=pins,
            policy=dict(winner["policy"]),
            candidates=scored,
            source="measured" if trials else "prior",
            margin=float(margin),
            trials=trials,
        )
        with self._lock:
            self.stats.tunes += 1
            self._profiles[prof.key] = prof
        if self.store is not None:
            self.store.put("profile", prof.key, prof)
        return prof

    def _trial_width(self, bucket: int) -> int:
        cols = (self.trial_cols if self.trial_cols is not None
                else min(bucket, TRIAL_COLS_CAP))
        return max(1, int(cols))

    def _trial_panel(self, H, bucket: int) -> np.ndarray:
        rng = np.random.default_rng(0xA0701)
        return rng.random((H.dim, self._trial_width(bucket)))

    def _measure(self, H, pol: ExecutionPolicy, W: np.ndarray) -> float:
        """Min-of-reps seconds for one candidate, pools pre-warmed.

        Persistent pools (threads, worker processes) are constructed and
        warmed before timing starts: an Executor/Session amortizes them
        across requests, so steady-state per-call time is the quantity a
        profile must record.
        """
        clock = time.perf_counter

        def timed(call) -> float:
            call()  # warmup (first-touch, lazy compiles, pool spin-up)
            best = float("inf")
            for _ in range(self.reps):
                t0 = clock()
                call()
                best = min(best, clock() - t0)
            return best

        if pol.backend == "process" and pol.order != "original":
            from repro.core.parallel import ProcessEngine
            with ProcessEngine(H, num_workers=pol.num_workers,
                               q_chunk=pol.q_chunk) as engine:
                return timed(lambda: engine.matmul(W, order=pol.order))
        if pol.num_threads and pol.num_threads > 1:
            with ThreadPoolExecutor(max_workers=pol.num_threads) as pool:
                return timed(lambda: H.matmul(
                    W, pool=pool, order=pol.order, q_chunk=pol.q_chunk))
        return timed(lambda: H.matmul(W, order=pol.order,
                                      q_chunk=pol.q_chunk))

    # ------------------------------------------------------------- reporting
    def profiles(self) -> list[TuningProfile]:
        with self._lock:
            return list(self._profiles.values())

    def stats_dict(self) -> dict:
        with self._lock:
            return {**self.stats.as_dict(),
                    "profiles": len(self._profiles),
                    "backends": [b.name for b in autotune_backends()]}


# --------------------------------------------------------------------------
# Module-level convenience layer.
# --------------------------------------------------------------------------

def tune(H, q: int = 16, store: PlanStore | None = None, *, reps: int = 2,
         policy: ExecutionPolicy | None = None,
         trial_cols: int | None = None) -> TuningProfile:
    """One-shot tuning: measure the policy grid for ``H`` at width ``q``.

    Convenience wrapper constructing a throwaway :class:`Autotuner`;
    pass ``store`` (a :class:`~repro.api.store.PlanStore` or a Session's
    store) to persist the profile for later ``order="auto"`` runs.
    """
    tuner = Autotuner(store=store, reps=reps, trial_cols=trial_cols)
    base = coalesce_policy(policy, ExecutionPolicy(order="auto"))
    return tuner.tune(H, q, base)


_default_tuner: Autotuner | None = None
_default_lock = threading.Lock()


def default_autotuner() -> Autotuner:
    """The process-global tuner behind bare ``order="auto"`` calls.

    Free functions and :meth:`HMatrix.matmul` have no Executor to carry
    a tuner, so they share this one (memory-only; an Executor or Session
    with a PlanStore owns its own persistent tuner instead).
    """
    global _default_tuner
    with _default_lock:
        if _default_tuner is None:
            _default_tuner = Autotuner()
        return _default_tuner


def reset_default_autotuner() -> None:
    """Drop the process-global tuner (test isolation)."""
    global _default_tuner
    with _default_lock:
        _default_tuner = None


def resolve_auto(H, W, policy: ExecutionPolicy | None = None,
                 tuner: Autotuner | None = None) -> ExecutionPolicy:
    """Resolve ``order="auto"`` against a W panel (or integer width)."""
    q = (int(W) if np.isscalar(W)
         else W.shape[1] if getattr(W, "ndim", 1) == 2 else 1)
    tuner = tuner if tuner is not None else default_autotuner()
    return tuner.resolve(H, q, policy)
