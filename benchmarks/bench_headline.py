"""Headline numbers: the abstract's claims in one table.

* generated code vs GOFMM / SMASH / STRUMPACK evaluation: 2.98x / 1.60x /
  5.98x average in the paper;
* vs dense GEMM: ~18x overall at Q=2K (and 9.06x / 2.11x on covtype
  specifically, Section 2.2);
* reuse over 5 accuracy changes: 2.21x vs GOFMM.

Our substrate is a simulated machine at scaled N, so the check is on
*who wins and roughly by how much*, not on matching decimals.
"""

import os

import numpy as np

from repro.api.policy import ExecutionPolicy
from repro.baselines import DenseGEMM, MatRoxSystem
from repro.core.executor import Executor
from repro.core.inspector import Inspector
from repro.datasets import DATASETS, dataset_names, load_dataset
from repro.kernels import get_kernel
from repro.runtime import HASWELL

from conftest import (
    BENCH_Q,
    BENCH_QUICK,
    GAUSS_BW,
    PAPER_BACC,
    PAPER_P,
    bench_n as bench_n_of,
    best_seconds,
    fmt,
    print_table,
    save_results,
    scaled_machine,
)

# Default dataset for the wall-clock executor comparison: grid, the paper's
# largest scientific set (Table 1, N=102K), whose geometry the quickstart
# mirrors. Leaf size is scaled with bench N the same way PAPER_LEAF is —
# at 1.5% of the paper's N a leaf of 16 keeps the per-block GEMMs in the
# small-generator regime the paper's blocking analysis produces at 100K.
WALLCLOCK_DATASET = "grid"
WALLCLOCK_LEAF = 16
WALLCLOCK_Q = 64


def test_headline_batched_executor_wallclock(benchmark):
    """The batched bucketed-GEMM engine vs the seed per-block executor.

    Real execution, no simulation: identical numerics (<1e-12 relative
    across serial / threaded / batched / process-sharded paths) and >= 2x
    wall-clock on the default dataset at Q=64 (threshold relaxed in
    MATROX_BENCH_QUICK smoke runs — the numbers are still recorded).
    """
    n = bench_n_of(WALLCLOCK_DATASET)
    points = load_dataset(WALLCLOCK_DATASET, n=n, seed=0)
    insp = Inspector(structure="h2-geometric", tau=0.65, bacc=PAPER_BACC,
                     leaf_size=WALLCLOCK_LEAF, p=PAPER_P, seed=0)
    H = insp.run(points, get_kernel("gaussian", bandwidth=GAUSS_BW))
    assert H.evaluator.decision.batch, "cost model must accept batch lowering"
    W = np.random.default_rng(0).random((n, WALLCLOCK_Q))
    workers = min(4, os.cpu_count() or 1)

    def run():
        y_serial = H.matmul(W, order="original")
        y_batched = H.matmul(W, order="batched")
        with Executor(num_threads=4) as ex:
            y_threaded = ex.matmul(H, W, order="original")
        t_serial = best_seconds(lambda: H.matmul(W, order="original"))
        t_batched = best_seconds(lambda: H.matmul(W, order="batched"))
        with Executor(policy=ExecutionPolicy(backend="process",
                                             num_workers=workers)) as ex:
            y_process = ex.matmul(H, W)
            t_process = best_seconds(lambda: ex.matmul(H, W))
        return (y_serial, y_threaded, y_batched, y_process,
                t_serial, t_batched, t_process)

    (y_serial, y_threaded, y_batched, y_process,
     t_serial, t_batched, t_process) = benchmark.pedantic(
        run, rounds=1, iterations=1)

    scale = np.linalg.norm(y_serial)
    err_batched = np.linalg.norm(y_batched - y_serial) / scale
    err_threaded = np.linalg.norm(y_threaded - y_serial) / scale
    err_process = np.linalg.norm(y_process - y_serial) / scale
    speedup = t_serial / t_batched
    speedup_process = t_serial / t_process
    print_table(
        f"Headline: batched executor wall-clock ({WALLCLOCK_DATASET}, "
        f"N={n}, Q={WALLCLOCK_Q}, real execution)",
        ["executor", "time (ms)", "speedup", "rel. error vs serial"],
        [
            ["per-block (seed)", fmt(t_serial * 1e3), "1.00", "--"],
            ["threaded", "--", "--", f"{err_threaded:.2e}"],
            ["batched", fmt(t_batched * 1e3), fmt(speedup), f"{err_batched:.2e}"],
            [f"process ({workers}w)", fmt(t_process * 1e3),
             fmt(speedup_process), f"{err_process:.2e}"],
        ],
    )
    save_results("headline_batched", {
        "dataset": WALLCLOCK_DATASET, "n": n, "q": WALLCLOCK_Q,
        "serial_s": t_serial, "batched_s": t_batched, "speedup": speedup,
        "process_s": t_process, "process_workers": workers,
        "speedup_process": speedup_process, "cpu_count": os.cpu_count(),
        "err_batched": err_batched, "err_threaded": err_threaded,
        "err_process": err_process,
    })

    assert err_batched < 1e-12
    assert err_threaded < 1e-12
    assert err_process < 1e-12
    if not BENCH_QUICK:
        assert speedup >= 2.0, (
            f"batched executor only {speedup:.2f}x faster than per-block"
        )


def test_headline_speedups(pipelines, systems, benchmark):
    def run():
        per_system = {"gofmm": [], "strumpack": [], "smash": [], "gemm": []}
        for name in dataset_names():
            H, _p1, _insp, points, kernel = pipelines.get(name, "h2-b")
            machine = scaled_machine(HASWELL, len(points))
            mx = MatRoxSystem(H)
            t_m = mx.simulate(H.factors, BENCH_Q, machine, p=PAPER_P).time_s
            t_g = systems["gofmm"].simulate(
                H.factors, BENCH_Q, machine, p=PAPER_P).time_s
            per_system["gofmm"].append((name, t_g / t_m))

            t_d = DenseGEMM().simulate(H.factors, BENCH_Q, machine,
                                       p=PAPER_P).time_s
            per_system["gemm"].append((name, t_d / t_m))

            spec = DATASETS[name]
            # STRUMPACK: HSS structure on the datasets it supports.
            if systems["strumpack"].supports(spec.paper_n, spec.dim,
                                             BENCH_Q, "hss"):
                H_hss, _, _, pts2, _ = pipelines.get(name, "hss")
                m2 = scaled_machine(HASWELL, len(pts2))
                t_m2 = MatRoxSystem(H_hss).simulate(
                    H_hss.factors, BENCH_Q, m2, p=PAPER_P).time_s
                t_s = systems["strumpack"].simulate(
                    H_hss.factors, BENCH_Q, m2, p=PAPER_P).time_s
                per_system["strumpack"].append((name, t_s / t_m2))

            # SMASH: scientific (d<=3) sets, Q=1, 1/r kernel.
            if systems["smash"].supports(spec.paper_n, spec.dim, 1,
                                         "h2-geometric"):
                pts3 = load_dataset(name, n=1000, seed=0)
                insp = Inspector(structure="h2-geometric", tau=0.65,
                                 bacc=1e-5, leaf_size=32, p=PAPER_P, seed=0)
                H3 = insp.run(pts3, get_kernel("inverse_distance"))
                m3 = scaled_machine(HASWELL, len(pts3))
                t_m3 = MatRoxSystem(H3).simulate(H3.factors, 1, m3,
                                                 p=PAPER_P).time_s
                t_sm = systems["smash"].simulate(H3.factors, 1, m3,
                                                 p=PAPER_P).time_s
                per_system["smash"].append((name, t_sm / t_m3))
        return per_system

    per_system = benchmark.pedantic(run, rounds=1, iterations=1)

    paper = {"gofmm": 2.98, "smash": 1.60, "strumpack": 5.98, "gemm": 18.0}
    rows = []
    means = {}
    for sysname, pairs in per_system.items():
        vals = [s for _n, s in pairs]
        means[sysname] = float(np.mean(vals))
        rows.append([sysname, len(pairs), fmt(means[sysname]),
                     fmt(min(vals)), fmt(max(vals)), paper[sysname]])
    print_table(
        "Headline: MatRox executor speedup vs each system "
        f"(Q={BENCH_Q}, simulated Haswell)",
        ["system", "#datasets", "mean", "min", "max", "paper mean"],
        rows,
    )
    save_results("headline", per_system)

    # The dense-GEMM comparison is scale-sensitive: the HMatrix advantage is
    # O(N) (compressed flops ~ N r^2 vs dense ~ N^2 q), so the bench-scale
    # ratio extrapolates linearly in N to the paper's problem sizes.
    gemm_extrap = []
    for name, s in per_system["gemm"]:
        scale = DATASETS[name].paper_n / bench_n_of(name)
        gemm_extrap.append(s * scale)
    mean_extrap = float(np.mean(gemm_extrap))
    print(f"  gemm speedup extrapolated to paper N: mean "
          f"{mean_extrap:.1f}x (paper: ~18x at Q=2K)")

    # Orderings and win/loss must match the paper.
    assert means["gofmm"] > 1.5
    assert means["strumpack"] > means["gofmm"] * 0.8
    assert means["smash"] > 1.0
    assert mean_extrap > 5.0  # dense loses badly at Q=2K and paper scale
    # At bench scale the scientific (low-dim) sets must already beat GEMM.
    sci = [s for n, s in per_system["gemm"]
           if DATASETS[n].kind == "scientific"]
    assert min(sci) > 1.5
