"""Table 1: the dataset roster (N, d) and generation throughput."""

import numpy as np

from repro.datasets import load_dataset, table1_rows

from conftest import bench_n, print_table, save_results

# The paper's Table 1, used as the assertion target.
PAPER_TABLE1 = {
    "covtype": (100_000, 54), "higgs": (100_000, 28), "mnist": (60_000, 780),
    "susy": (100_000, 18), "letter": (20_000, 16), "pen": (11_000, 16),
    "hepmass": (100_000, 28), "gas": (14_000, 129), "grid": (102_000, 2),
    "random": (66_000, 2), "dino": (80_000, 3), "sunflower": (80_000, 2),
    "unit": (32_000, 2),
}


def test_table1_rows(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    assert len(rows) == 13
    out = []
    for r in rows:
        assert PAPER_TABLE1[r["data"]] == (r["N"], r["d"])
        out.append([r["id"], r["data"], f"{r['N']//1000}k", r["d"],
                    bench_n(r["data"])])
    print_table("Table 1: datasets (paper N/d + scaled bench N)",
                ["ID", "Data", "N", "d", "bench N"], out)
    save_results("table1", rows)


def test_dataset_generation_speed(benchmark):
    pts = benchmark(load_dataset, "susy", n=bench_n("susy"), seed=0)
    assert pts.shape[1] == 18
    assert np.isfinite(pts).all()
