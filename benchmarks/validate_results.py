"""Validate benchmark result JSONs — the bench-smoke CI gate.

Usage::

    python benchmarks/validate_results.py [stem ...]

Checks every ``benchmarks/results/*.json`` (or just the named stems,
which must then exist): the file parses, holds at least one numeric
value, and no number is NaN, infinite, or denormal (a denormal timing or
speedup means a measurement collapsed to garbage rather than failing
loudly). Exits non-zero with one line per problem.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def _load_manifest_validator():
    """The repro schema validator, importable with or without an
    installed package (CI runs this file directly, without PYTHONPATH)."""
    try:
        from repro.observability import validate_run_manifest
    except ImportError:
        sys.path.insert(0, str(Path(__file__).parent.parent / "src"))
        from repro.observability import validate_run_manifest
    return validate_run_manifest


def iter_numbers(obj, path="$"):
    """Yield (json-path, value) for every number in a parsed JSON tree."""
    if isinstance(obj, bool):
        return
    if isinstance(obj, (int, float)):
        yield path, float(obj)
    elif isinstance(obj, dict):
        for key, value in obj.items():
            yield from iter_numbers(value, f"{path}.{key}")
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            yield from iter_numbers(value, f"{path}[{i}]")


def check_file(path: Path) -> list[str]:
    problems = []
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path.name}: unreadable/invalid JSON ({exc})"]
    numbers = list(iter_numbers(payload))
    if not numbers:
        problems.append(f"{path.name}: contains no numeric results")
    for jpath, x in numbers:
        if math.isnan(x) or math.isinf(x):
            problems.append(f"{path.name}: non-finite value at {jpath}: {x}")
        elif x != 0.0 and abs(x) < sys.float_info.min:
            problems.append(f"{path.name}: denormal value at {jpath}: {x!r}")
    # Semantic gate for the backend-sweep artifact: a result recorded on
    # real multi-core hardware must not ship a process backend that lost
    # to the thread backend — that would mean the >=1.5x tentpole claim
    # is being evidenced by a regression. (1-CPU results are exempt: no
    # parallel speedup is physically possible there, and the JSON's
    # cpu_count field says so.)
    if path.name == "fig7_backend_sweep.json" and isinstance(payload, dict):
        cpus = payload.get("cpu_count") or 0
        ratios = payload.get("process_speedup_vs_thread") or {}
        if cpus >= 4 and ratios:
            workers, best = max(ratios.items(), key=lambda kv: int(kv[0]))
            if best < 1.0:
                problems.append(
                    f"{path.name}: process backend slower than thread "
                    f"({best:.2f}x at {workers} workers) despite "
                    f"cpu_count={cpus}"
                )
    # Semantic gate for the serving artifact: compile-once/serve-forever
    # means a warm start must beat a cold start outright, and the
    # micro-batched KernelService must clear the tentpole's >= 1.5x
    # throughput bar at batch size >= 4. Both are algorithmic wins
    # (skip-the-inspection, amortize-the-engine), not core-count wins,
    # so they are enforced even on 1-CPU quick-mode runs.
    if path.name == "serving.json" and isinstance(payload, dict):
        cold_over_warm = payload.get("cold_over_warm")
        if cold_over_warm is None:
            problems.append(f"{path.name}: missing cold_over_warm field")
        elif cold_over_warm <= 1.0:
            problems.append(
                f"{path.name}: warm start did not beat cold start "
                f"({cold_over_warm:.2f}x)")
        best = payload.get("batched_speedup_max")
        if best is None:
            problems.append(
                f"{path.name}: missing batched_speedup_max field")
        elif best < 1.5:
            problems.append(
                f"{path.name}: micro-batched throughput only {best:.2f}x "
                f"sequential (tentpole gate is >= 1.5x at batch >= 4)")
    # Semantic gates for the autotuner artifact (ISSUE 5): (a) auto must
    # never be >10% slower than the best fixed policy on any swept
    # shape; (b) auto must beat DEFAULT_POLICY outright on >= 1 shape —
    # unless it (correctly) chose the default everywhere, in which case
    # there is nothing to beat; (c) PlanStore-persisted profiles must
    # warm-start with zero re-tunes. All three are algorithmic claims
    # (the tuner picks among the same measured candidates), so they are
    # enforced on the committed artifact unconditionally.
    if path.name == "autotune.json" and isinstance(payload, dict):
        ratio = payload.get("auto_over_best_fixed_max")
        if ratio is None:
            problems.append(
                f"{path.name}: missing auto_over_best_fixed_max field")
        elif ratio > 1.10:
            problems.append(
                f"{path.name}: auto policy is {ratio:.2f}x the best fixed "
                f"policy (gate: within 10%)")
        beats = payload.get("auto_beats_default_shapes")
        if beats is None:
            problems.append(
                f"{path.name}: missing auto_beats_default_shapes field")
        elif not beats and not payload.get("auto_always_default"):
            problems.append(
                f"{path.name}: auto never beat DEFAULT_POLICY yet did not "
                f"simply choose it — the tuner picked losers")
        retunes = payload.get("warm_retunes")
        if retunes is None:
            problems.append(f"{path.name}: missing warm_retunes field")
        elif retunes != 0:
            problems.append(
                f"{path.name}: {retunes} re-tune(s) after a PlanStore "
                f"reopen (gate: warm start re-tunes nothing)")
    # Semantic gates for the compiled-executor artifact (ISSUE 8):
    # (a) the fused driver must be byte-identical to order="batched" at
    # every swept width and (b) a fresh cache over the same PlanStore
    # must recompile nothing — both algorithmic claims, enforced
    # unconditionally. (c) The >= 2x speedup at Q=1 is a wall-clock
    # claim, so it keys off the artifact's own gate_eligible flag
    # (false for scaled-down quick-mode runs, mirroring fig7's
    # cpu_count exemption).
    if path.name == "compiled.json" and isinstance(payload, dict):
        bit = payload.get("bit_identical")
        if bit is None:
            problems.append(f"{path.name}: missing bit_identical field")
        elif not bit:
            problems.append(
                f"{path.name}: compiled output diverged from "
                f"order='batched' (gate: byte-identical)")
        recompiles = payload.get("warm_recompiles")
        if recompiles is None:
            problems.append(f"{path.name}: missing warm_recompiles field")
        elif recompiles != 0:
            problems.append(
                f"{path.name}: {recompiles} recompile(s) after a "
                f"PlanStore reopen (gate: warm start compiles nothing)")
        if payload.get("gate_eligible"):
            speedup = payload.get("speedup_q1")
            if speedup is None:
                problems.append(
                    f"{path.name}: gate_eligible but missing speedup_q1")
            elif speedup < 2.0:
                problems.append(
                    f"{path.name}: compiled only {speedup:.2f}x batched "
                    f"at Q=1 (gate: >= 2x on eligible runs)")
    # Semantic gates for the network-serving artifact (repro.net): the
    # HTTP front-end must not drop requests under concurrent mixed-tenant
    # load (auth/quota/audit are per-request code paths — one failure
    # means one of them broke), a warm server restart must serve from the
    # per-tenant PlanStore roots with zero inspections and zero re-tunes,
    # and the recorded p99 must be bounded — a multi-second tail for
    # small panels means the dispatcher or a front-end lock stalled.
    if path.name == "netserve.json" and isinstance(payload, dict):
        load = payload.get("load") or {}
        failed = load.get("failed_requests")
        if failed is None:
            problems.append(
                f"{path.name}: missing load.failed_requests field")
        elif failed != 0:
            problems.append(
                f"{path.name}: {failed} failed request(s) under load "
                f"(gate: zero)")
        p99 = load.get("p99_ms")
        if p99 is None:
            problems.append(f"{path.name}: missing load.p99_ms field")
        elif not (0.0 < p99 < 30_000.0):
            problems.append(
                f"{path.name}: p99 of {p99:.0f} ms is outside the sane "
                f"band (gate: 0 < p99 < 30000 ms)")
        for field in ("warm_inspections", "warm_retunes"):
            value = payload.get(field)
            if value is None:
                problems.append(f"{path.name}: missing {field} field")
            elif value != 0:
                problems.append(
                    f"{path.name}: {field}={value} after a server restart "
                    f"(gate: warm tenants rebuild nothing)")
    # Semantic gates for the static-analysis artifact (`repro analyze
    # --json`): the shipped tree must carry zero unwaived findings,
    # every waiver must state its reason (an unexplained waiver is just
    # a suppressed bug), and a race replay recorded in the doc must have
    # certified at least one engine trace with zero violations.
    if path.name == "analysis_findings.json" and isinstance(payload, dict):
        unwaived = payload.get("unwaived")
        if unwaived is None:
            problems.append(f"{path.name}: missing unwaived field")
        elif unwaived != 0:
            problems.append(
                f"{path.name}: {unwaived} unwaived finding(s) "
                f"(gate: the shipped tree lints clean)")
        for f in payload.get("findings", []):
            if f.get("waived") and not f.get("waiver_reason"):
                problems.append(
                    f"{path.name}: waiver without a reason at "
                    f"{f.get('path')}:{f.get('line')}")
        races = payload.get("races")
        if races is not None:
            if races.get("traces", 0) < 1:
                problems.append(
                    f"{path.name}: race replay certified no traces "
                    f"(gate: the replay must actually replay)")
            if races.get("violations", 0) != 0:
                problems.append(
                    f"{path.name}: {races['violations']} race violation(s) "
                    f"in replayed engine traces (gate: zero)")
        # The concurrency certifier (DESIGN.md §14): the lock-acquisition
        # graph must be acyclic, the happens-before replay must certify
        # at least one recorded sync trace violation-free, and the
        # schedule explorer must have exercised real interleaving
        # diversity without a single failing schedule.
        lock_order = payload.get("lock_order")
        if lock_order is not None:
            if lock_order.get("unwaived_cycles", 0) != 0:
                problems.append(
                    f"{path.name}: {lock_order['unwaived_cycles']} unwaived "
                    f"lock-order cycle(s) (gate: the graph is acyclic)")
            if not lock_order.get("locks"):
                problems.append(
                    f"{path.name}: lock-order analysis resolved no locks "
                    f"(gate: the analysis must actually analyze)")
        sync = payload.get("sync")
        if sync is not None:
            if sync.get("traces", 0) < 1:
                problems.append(
                    f"{path.name}: happens-before replay certified no sync "
                    f"traces (gate: the replay must actually replay)")
            if sync.get("violations", 0) != 0:
                problems.append(
                    f"{path.name}: {sync['violations']} happens-before "
                    f"violation(s) in replayed sync traces (gate: zero)")
        schedules = payload.get("schedules")
        if schedules is not None:
            if schedules.get("inequivalent", 0) < 20:
                problems.append(
                    f"{path.name}: only {schedules.get('inequivalent', 0)} "
                    f"inequivalent schedule(s) explored (gate: >= 20)")
            if schedules.get("failures", 0) != 0:
                problems.append(
                    f"{path.name}: {schedules['failures']} failed "
                    f"schedule(s) under exploration (gate: zero)")
    # The serve-smoke run manifest must conform to the checked-in JSON
    # schema — an observability artifact nobody can parse is no
    # observability at all — and must prove the run actually served.
    if path.name == "run_manifest.json" and isinstance(payload, dict):
        for problem in _load_manifest_validator()(payload):
            problems.append(f"{path.name}: schema violation: {problem}")
        served = (payload.get("stats", {}).get("service", {})
                  .get("served", 0))
        if not problems and served < 1:
            problems.append(
                f"{path.name}: manifest records no served requests")
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        files = []
        problems = []
        for stem in argv:
            path = RESULTS_DIR / f"{stem}.json"
            if not path.exists():
                problems.append(f"{path.name}: required result is missing")
            else:
                files.append(path)
    else:
        problems = []
        files = sorted(RESULTS_DIR.glob("*.json"))
        if not files:
            problems.append(f"no result JSONs found under {RESULTS_DIR}")
    for path in files:
        problems.extend(check_file(path))
    for line in problems:
        print(f"FAIL {line}", file=sys.stderr)
    if not problems:
        print(f"ok: {len(files)} result file(s) valid")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
