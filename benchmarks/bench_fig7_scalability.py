"""Figure 7: strong scaling on Haswell (1-12 cores) and KNL (1-68 cores).

The paper plots speedup-over-serial for covtype and unit: MatRox scales
near-linearly on both machines while the libraries plateau — GOFMM's
performance *drops* from 34 to 68 KNL cores. The coarsening partition
count p is re-derived per simulated core count (as the real inspector
would be configured per machine).
"""

import os

import numpy as np
import pytest

from repro.api.policy import ExecutionPolicy, effective_cpu_count
from repro.baselines import MatRoxSystem
from repro.core.executor import Executor
from repro.core.inspector import Inspector
from repro.datasets import load_dataset
from repro.kernels import get_kernel
from repro.runtime import HASWELL, KNL

from conftest import (
    BENCH_Q,
    BENCH_QUICK,
    PAPER_BACC,
    bench_n,
    best_seconds,
    fmt,
    pipelines,
    print_table,
    save_results,
    scaled_machine,
)

HASWELL_CORES = (1, 2, 4, 6, 8, 10, 12)
KNL_CORES = (1, 2, 4, 8, 17, 34, 68)
FIG7_DATASETS = ("covtype", "unit")

# Real wall-clock thread-vs-process backend sweep (not simulated): a
# large-n batched workload — fine leaves maximise the bucketed panel
# supply the process backend shards.
SWEEP_DATASET = "grid"
SWEEP_LEAF = 16
SWEEP_Q = int(os.environ.get("MATROX_SWEEP_Q", "512"))
SWEEP_WORKERS = (1, 2, 4)


def scaling_curves(pipelines, systems, name: str, machine, cores):
    # HSS structure like the paper's scalability study; p sized for the
    # largest core count; fine leaves so the sub-tree supply covers 68 cores.
    H, _p1, _insp, points, _kern = pipelines.get(
        name, "hss", p=max(cores), leaf=16, bacc=1e-4)
    m = scaled_machine(machine, len(points))
    mx = MatRoxSystem(H)
    go = systems["gofmm"]
    sp = systems["strumpack"]
    curves = {"matrox": [], "gofmm": [], "strumpack": []}
    for p in cores:
        curves["matrox"].append(mx.simulate(H.factors, BENCH_Q, m, p=p).time_s)
        curves["gofmm"].append(go.simulate(H.factors, BENCH_Q, m, p=p).time_s)
        curves["strumpack"].append(
            sp.simulate(H.factors, BENCH_Q, m, p=p).time_s)
    return {
        sys_name: [ts[0] / t for t in ts] for sys_name, ts in curves.items()
    }


@pytest.mark.parametrize("machine,cores,mname", [
    (HASWELL, HASWELL_CORES, "haswell"),
    (KNL, KNL_CORES, "knl"),
])
def test_fig7_scalability(machine, cores, mname, pipelines, systems, benchmark):
    def run():
        return {
            name: scaling_curves(pipelines, systems, name, machine, cores)
            for name in FIG7_DATASETS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    from repro.reporting import line_chart

    for name, speedups in results.items():
        rows = [
            [sys_name] + [fmt(s, 1) for s in ss]
            for sys_name, ss in speedups.items()
        ]
        print_table(
            f"Figure 7: {name} ({mname}) — speedup over serial",
            ["system"] + [f"p={p}" for p in cores],
            rows,
        )
        print(line_chart(
            [float(p) for p in cores], speedups,
            title=f"Figure 7: {name} ({mname}) speedup vs cores",
        ))
    save_results(f"fig7_{mname}", results)

    for name, speedups in results.items():
        mx, go = speedups["matrox"], speedups["gofmm"]
        # MatRox scales further than GOFMM at max cores.
        assert mx[-1] > go[-1], f"{name}/{mname}"
        # MatRox speedup is monotone non-decreasing (within noise).
        for a, b in zip(mx, mx[1:], strict=False):
            assert b >= a * 0.9, f"{name}/{mname}: matrox regressed"
        if mname == "knl":
            # The paper's headline anomaly: GOFMM declines from 34 to 68.
            i34, i68 = cores.index(34), cores.index(68)
            assert go[i68] <= go[i34] * 1.1, (
                f"{name}: GOFMM should flatten/drop from 34 to 68 cores"
            )
            # MatRox keeps scaling well past 34 cores.
            assert mx[i68] > mx[i34]


def test_fig7_backend_sweep(benchmark):
    """Thread vs process backend, real execution (the ISSUE 3 tentpole).

    Sweeps ``backend="thread"`` (the in-process engine: batched order
    ignores the pool; the per-block order shows the GIL plateau the
    process backend exists to break) against ``backend="process"`` at
    1/2/4 workers, and emits the speedup table into
    ``benchmarks/results/fig7_backend_sweep.json``. Equivalence (<1e-12)
    is asserted unconditionally; the >= 1.5x speedup-at-4-workers gate
    only applies where 4 physical cores exist and quick mode is off —
    the JSON records ``cpu_count`` so a reader can tell which regime a
    committed result came from.
    """
    n = bench_n(SWEEP_DATASET)
    points = load_dataset(SWEEP_DATASET, n=n, seed=0)
    insp = Inspector(structure="h2-geometric", tau=0.65, bacc=PAPER_BACC,
                     leaf_size=SWEEP_LEAF, p=max(SWEEP_WORKERS), seed=0)
    H = insp.run(points, get_kernel("gaussian", bandwidth=5.0))
    assert H.evaluator.decision.batch, "sweep needs the batched engine"
    W = np.random.default_rng(0).random((n, SWEEP_Q))

    def run():
        y_ref = H.matmul(W, order="batched")
        t_serial = best_seconds(lambda: H.matmul(W, order="batched"))
        thread_t, thread_pb_t, process_t = {}, {}, {}
        errs = {}
        for k in SWEEP_WORKERS:
            pol = ExecutionPolicy(backend="thread", num_threads=k)
            with Executor(policy=pol) as ex:
                errs[f"thread-{k}"] = float(np.linalg.norm(
                    ex.matmul(H, W) - y_ref) / np.linalg.norm(y_ref))
                thread_t[k] = best_seconds(lambda: ex.matmul(H, W))
                thread_pb_t[k] = best_seconds(
                    lambda: ex.matmul(H, W, order="original"))
            pol = ExecutionPolicy(backend="process", num_workers=k)
            with Executor(policy=pol) as ex:
                errs[f"process-{k}"] = float(np.linalg.norm(
                    ex.matmul(H, W) - y_ref) / np.linalg.norm(y_ref))
                process_t[k] = best_seconds(lambda: ex.matmul(H, W))
        return t_serial, thread_t, thread_pb_t, process_t, errs

    t_serial, thread_t, thread_pb_t, process_t, errs = benchmark.pedantic(
        run, rounds=1, iterations=1)

    rows = [["serial batched", "--", fmt(t_serial * 1e3), "1.00"]]
    for k in SWEEP_WORKERS:
        rows.append([
            "thread (batched)", k, fmt(thread_t[k] * 1e3),
            fmt(t_serial / thread_t[k]),
        ])
        rows.append([
            "thread (per-block)", k, fmt(thread_pb_t[k] * 1e3),
            fmt(t_serial / thread_pb_t[k]),
        ])
        rows.append([
            "process (sharded)", k, fmt(process_t[k] * 1e3),
            fmt(t_serial / process_t[k]),
        ])
    print_table(
        f"Figure 7 extension: thread vs process backend "
        f"({SWEEP_DATASET}, N={n}, Q={SWEEP_Q}, real wall-clock, "
        f"{os.cpu_count()} cpus)",
        ["backend", "workers", "time (ms)", "speedup vs serial"],
        rows,
    )
    kmax = max(SWEEP_WORKERS)
    speedup_vs_thread = {
        k: thread_t[k] / process_t[k] for k in SWEEP_WORKERS
    }
    save_results("fig7_backend_sweep", {
        "dataset": SWEEP_DATASET, "n": n, "q": SWEEP_Q,
        "cpu_count": os.cpu_count(),
        # What a default-sized pool (num_workers=None) actually gets:
        # the affinity/cgroup-aware count, not the machine's.
        "effective_cpu_count": effective_cpu_count(),
        "default_engine_workers": effective_cpu_count(),
        "serial_batched_s": t_serial,
        "thread_batched_s": {str(k): t for k, t in thread_t.items()},
        "thread_perblock_s": {str(k): t for k, t in thread_pb_t.items()},
        "process_s": {str(k): t for k, t in process_t.items()},
        "process_speedup_vs_thread": {
            str(k): s for k, s in speedup_vs_thread.items()
        },
        "errors_vs_serial": errs,
    })

    assert all(e < 1e-12 for e in errs.values()), errs
    cpus = os.cpu_count() or 1
    if cpus >= 4 and not BENCH_QUICK:
        assert speedup_vs_thread[kmax] >= 1.5, (
            f"process backend only {speedup_vs_thread[kmax]:.2f}x over "
            f"thread at {kmax} workers on {cpus} cpus"
        )


def test_fig7_smash_comparison(pipelines, systems, benchmark):
    """SMASH runs only matvec on low-dim points; MatRox with SMASH settings
    (1/r kernel, tau=0.65) still wins — the paper's 'MatRox-Skernel'."""
    from repro.core.inspector import Inspector
    from repro.datasets import load_dataset

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    points = load_dataset("unit", n=1200, seed=0)
    kernel = get_kernel("inverse_distance")
    insp = Inspector(structure="h2-geometric", tau=0.65, bacc=1e-5,
                     leaf_size=32, p=12, seed=0)
    H = insp.run(points, kernel)
    m = scaled_machine(HASWELL, len(points))
    t_m = MatRoxSystem(H).simulate(H.factors, 1, m, p=12).time_s
    t_s = systems["smash"].simulate(H.factors, 1, m, p=12).time_s
    print(f"\nSMASH settings, Q=1: matrox {t_m*1e6:.0f}us vs "
          f"smash {t_s*1e6:.0f}us ({t_s/t_m:.2f}x, paper eval avg: 1.6x)")
    assert t_m < t_s
