"""Figure 7: strong scaling on Haswell (1-12 cores) and KNL (1-68 cores).

The paper plots speedup-over-serial for covtype and unit: MatRox scales
near-linearly on both machines while the libraries plateau — GOFMM's
performance *drops* from 34 to 68 KNL cores. The coarsening partition
count p is re-derived per simulated core count (as the real inspector
would be configured per machine).
"""

import pytest

from repro.baselines import GOFMMBaseline, MatRoxSystem, SMASHBaseline, STRUMPACKBaseline
from repro.datasets import DATASETS
from repro.kernels import get_kernel
from repro.runtime import HASWELL, KNL

from conftest import BENCH_Q, fmt, pipelines, print_table, save_results, scaled_machine

HASWELL_CORES = (1, 2, 4, 6, 8, 10, 12)
KNL_CORES = (1, 2, 4, 8, 17, 34, 68)
FIG7_DATASETS = ("covtype", "unit")


def scaling_curves(pipelines, systems, name: str, machine, cores):
    # HSS structure like the paper's scalability study; p sized for the
    # largest core count; fine leaves so the sub-tree supply covers 68 cores.
    H, _p1, _insp, points, _kern = pipelines.get(
        name, "hss", p=max(cores), leaf=16, bacc=1e-4)
    m = scaled_machine(machine, len(points))
    mx = MatRoxSystem(H)
    go = systems["gofmm"]
    sp = systems["strumpack"]
    curves = {"matrox": [], "gofmm": [], "strumpack": []}
    for p in cores:
        curves["matrox"].append(mx.simulate(H.factors, BENCH_Q, m, p=p).time_s)
        curves["gofmm"].append(go.simulate(H.factors, BENCH_Q, m, p=p).time_s)
        curves["strumpack"].append(
            sp.simulate(H.factors, BENCH_Q, m, p=p).time_s)
    speedups = {
        sys_name: [ts[0] / t for t in ts] for sys_name, ts in curves.items()
    }
    return speedups


@pytest.mark.parametrize("machine,cores,mname", [
    (HASWELL, HASWELL_CORES, "haswell"),
    (KNL, KNL_CORES, "knl"),
])
def test_fig7_scalability(machine, cores, mname, pipelines, systems, benchmark):
    def run():
        return {
            name: scaling_curves(pipelines, systems, name, machine, cores)
            for name in FIG7_DATASETS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    from repro.reporting import line_chart

    for name, speedups in results.items():
        rows = [
            [sys_name] + [fmt(s, 1) for s in ss]
            for sys_name, ss in speedups.items()
        ]
        print_table(
            f"Figure 7: {name} ({mname}) — speedup over serial",
            ["system"] + [f"p={p}" for p in cores],
            rows,
        )
        print(line_chart(
            [float(p) for p in cores], speedups,
            title=f"Figure 7: {name} ({mname}) speedup vs cores",
        ))
    save_results(f"fig7_{mname}", results)

    for name, speedups in results.items():
        mx, go = speedups["matrox"], speedups["gofmm"]
        # MatRox scales further than GOFMM at max cores.
        assert mx[-1] > go[-1], f"{name}/{mname}"
        # MatRox speedup is monotone non-decreasing (within noise).
        for a, b in zip(mx, mx[1:]):
            assert b >= a * 0.9, f"{name}/{mname}: matrox regressed"
        if mname == "knl":
            # The paper's headline anomaly: GOFMM declines from 34 to 68.
            i34, i68 = cores.index(34), cores.index(68)
            assert go[i68] <= go[i34] * 1.1, (
                f"{name}: GOFMM should flatten/drop from 34 to 68 cores"
            )
            # MatRox keeps scaling well past 34 cores.
            assert mx[i68] > mx[i34]


def test_fig7_smash_comparison(pipelines, systems, benchmark):
    """SMASH runs only matvec on low-dim points; MatRox with SMASH settings
    (1/r kernel, tau=0.65) still wins — the paper's 'MatRox-Skernel'."""
    from repro.core.inspector import Inspector
    from repro.datasets import load_dataset

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    points = load_dataset("unit", n=1200, seed=0)
    kernel = get_kernel("inverse_distance")
    insp = Inspector(structure="h2-geometric", tau=0.65, bacc=1e-5,
                     leaf_size=32, p=12, seed=0)
    H = insp.run(points, kernel)
    m = scaled_machine(HASWELL, len(points))
    t_m = MatRoxSystem(H).simulate(H.factors, 1, m, p=12).time_s
    t_s = systems["smash"].simulate(H.factors, 1, m, p=12).time_s
    print(f"\nSMASH settings, Q=1: matrox {t_m*1e6:.0f}us vs "
          f"smash {t_s*1e6:.0f}us ({t_s/t_m:.2f}x, paper eval avg: 1.6x)")
    assert t_m < t_s
