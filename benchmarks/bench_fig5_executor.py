"""Figure 5: executor GFLOP/s breakdown across all 13 datasets.

Per dataset and structure (HSS top panel, H2-b bottom panel) the paper
shows the MatRox ladder — CDS(seq), +coarsen, (+block for H2-b),
+low-level — against GOFMM TB(seq) / TB+DS and STRUMPACK TB(seq) / TB+DS.
STRUMPACK bars are missing where it cannot run. Assertions encode the
figure's claims: the full MatRox code beats both libraries, blocking is
never activated for HSS, and coarsening contributes more for HSS than
H2-b (79.2% vs 46.8% average improvement in the paper).
"""

import numpy as np
import pytest

from repro.baselines import MatRoxSystem
from repro.datasets import DATASETS, dataset_names
from repro.runtime import HASWELL

from conftest import BENCH_Q, PAPER_P, fmt, print_table, save_results, scaled_machine


def ladder_gflops(pipelines, systems, name: str, structure: str):
    H, _p1, _insp, points, _kern = pipelines.get(name, structure)
    machine = scaled_machine(HASWELL, len(points))
    mx = MatRoxSystem(H)
    out = {"lowering": H.evaluator.decision}
    for rung, run in mx.simulate_ladder(BENCH_Q, machine, p=PAPER_P).items():
        out[rung] = run.gflops
    # GOFMM sequential (TB storage) and parallel (dynamic scheduling).
    go = systems["gofmm"]
    out["gofmm TB(seq)"] = go.simulate(H.factors, BENCH_Q, machine, p=1).gflops
    out["gofmm TB+DS"] = go.simulate(H.factors, BENCH_Q, machine,
                                     p=PAPER_P).gflops
    sp = systems["strumpack"]
    spec = DATASETS[name]
    if sp.supports(spec.paper_n, spec.dim, BENCH_Q, structure):
        out["strumpack TB+DS"] = sp.simulate(
            H.factors, BENCH_Q, machine, p=PAPER_P).gflops
    return out


@pytest.mark.parametrize("structure", ["hss", "h2-b"])
def test_fig5_executor_breakdown(structure, pipelines, systems, benchmark):
    def run():
        return {
            name: ladder_gflops(pipelines, systems, name, structure)
            for name in dataset_names()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, r in results.items():
        rows.append([
            name, fmt(r["cds-seq"], 1), fmt(r["+coarsen"], 1),
            fmt(r["+block"], 1), fmt(r["+low-level"], 1),
            fmt(r["gofmm TB(seq)"], 1), fmt(r["gofmm TB+DS"], 1),
            fmt(r.get("strumpack TB+DS", "--"), 1)
            if isinstance(r.get("strumpack TB+DS"), float) else "--",
            fmt(r["+low-level"] / r["gofmm TB+DS"]),
        ])
    print_table(
        f"Figure 5 ({structure}, Haswell, Q={BENCH_Q}): executor GFLOP/s",
        ["dataset", "CDS(seq)", "+coarsen", "+block", "+lowlvl",
         "gofmm(seq)", "gofmm+DS", "strumpack", "speedup"],
        rows,
    )
    save_results(
        f"fig5_{structure}",
        {k: {kk: vv for kk, vv in v.items() if kk != "lowering"}
         for k, v in results.items()},
    )

    speedups = []
    for name, r in results.items():
        # Full MatRox beats GOFMM's parallel executor on every dataset.
        assert r["+low-level"] > r["gofmm TB+DS"], name
        speedups.append(r["+low-level"] / r["gofmm TB+DS"])
        # CDS(seq) at least matches TB(seq) — the storage-format effect.
        assert r["cds-seq"] >= 0.95 * r["gofmm TB(seq)"], name
        # Block lowering never activates for HSS (paper Section 4.3).
        if structure == "hss":
            assert not r["lowering"].block_near, name
            assert not r["lowering"].block_far, name
            assert r["+block"] == pytest.approx(r["+coarsen"]), name
    mean_speedup = float(np.mean(speedups))
    print(f"  mean executor speedup vs GOFMM ({structure}): "
          f"{mean_speedup:.2f}x (paper: {'3.41x' if structure == 'hss' else '2.98x'})")
    assert mean_speedup > 1.5


def test_fig5_batched_vs_serial(pipelines, benchmark):
    """Batched bucketed-GEMM executor vs the Figure 5 ladder (simulated).

    Not a paper rung: the batched engine collapses each loop into a few
    fat BLAS kernels, so the simulator prices it at blocked-GEMM
    efficiency with almost no task-spawn overhead. It must beat the
    serial CDS rung everywhere batching is accepted, and the real
    (wall-clock) counterpart of this comparison lives in
    bench_headline.py::test_headline_batched_executor_wallclock.
    """
    def run():
        out = {}
        for name in dataset_names():
            H, _p1, _insp, points, _k = pipelines.get(name, "h2-b")
            machine = scaled_machine(HASWELL, len(points))
            mx = MatRoxSystem(H)
            seq = mx.simulate(H.factors, BENCH_Q, machine, p=PAPER_P,
                              rung="cds-seq")
            full = mx.simulate(H.factors, BENCH_Q, machine, p=PAPER_P)
            bat = mx.simulate(H.factors, BENCH_Q, machine, p=PAPER_P,
                              rung="+batched", q_chunk=256)
            out[name] = (seq.gflops, full.gflops, bat.gflops,
                         H.evaluator.decision.batch)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [name, fmt(seq, 1), fmt(full, 1), fmt(bat, 1), fmt(bat / seq), gate]
        for name, (seq, full, bat, gate) in results.items()
    ]
    print_table(
        f"Batched executor vs ladder (h2-b, Haswell, Q={BENCH_Q}, simulated)",
        ["dataset", "CDS(seq)", "+low-level", "batched", "batched/seq",
         "gate"],
        rows,
    )
    save_results(
        "fig5_batched",
        {k: {"cds-seq": v[0], "+low-level": v[1], "batched": v[2],
             "batch_gate": v[3]} for k, v in results.items()},
    )
    for name, (seq, _full, bat, _gate) in results.items():
        assert bat > seq, name


def test_fig5_coarsening_contribution(pipelines, systems, benchmark):
    """Coarsening contributes more for HSS (79.2%) than H2-b (46.8%)."""
    fracs = {}
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for structure in ("hss", "h2-b"):
        gains = []
        for name in ("grid", "unit", "susy"):
            r = ladder_gflops(pipelines, systems, name, structure)
            t_seq = 1.0 / r["cds-seq"]
            t_coars = 1.0 / r["+coarsen"]
            t_full = 1.0 / r["+low-level"]
            if t_seq > t_full:
                gains.append((t_seq - t_coars) / (t_seq - t_full))
        fracs[structure] = float(np.mean(gains))
    print(f"\ncoarsening share of total improvement: hss={fracs['hss']:.2f}, "
          f"h2-b={fracs['h2-b']:.2f} (paper: 0.79 vs 0.47)")
    assert fracs["hss"] >= fracs["h2-b"] * 0.9
