"""Network serving benchmark: sustained mixed-tenant load over a socket.

The repro.net tentpole claims the HTTP front-end adds tenancy, auth, and
quotas around KernelService *without* breaking its serving properties.
This bench drives a live :class:`~repro.net.server.KernelServer` on a
loopback socket with several concurrent clients across two tenants and
records:

1. **Sustained throughput + tail latency** — requests/s and client-side
   p50/p99 across all tenants (every request authenticated, audited,
   and quota-charged), with **zero failed requests**;
2. **Warm tenant restart** — a fresh server over the same root must
   serve both tenants with **zero inspections** (``p1_builds ==
   p2_builds == 0``) and zero re-tunes: the per-tenant PlanStore roots
   survive the process.

Results land in ``benchmarks/results/netserve.json`` for
``validate_results.py`` (gates: zero failures, bounded p99, zero warm
inspections).
"""

import threading
import time

import numpy as np

from repro.datasets import load_dataset
from repro.net import KernelClient, KernelServer, ServerError

from conftest import (
    BENCH_QUICK,
    GAUSS_BW,
    PAPER_BACC,
    bench_n,
    fmt,
    print_table,
    save_results,
)

DATASET = "grid"
LEAF = 32
TENANTS = ("alpha", "beta")
TOKENS = {"tok-alpha": "alpha", "tok-beta": "beta"}
#: Concurrent client threads (round-robin over the tenants) and the
#: requests each replays — 6 x 12 = 72 authenticated round trips.
CLIENTS = 6
REQUESTS_PER_CLIENT = 12
REQUEST_Q = 4

KERNEL_DOC = {"name": "gaussian", "bandwidth": GAUSS_BW}
PLAN_DOC = {"leaf_size": LEAF, "bacc": PAPER_BACC, "p": 4, "seed": 0}


def _client(server, tenant) -> KernelClient:
    return KernelClient(server.url, tenant=tenant,
                        token=f"tok-{tenant}", timeout=120)


def _drive(server, n: int) -> dict:
    """Concurrent mixed-tenant replay; returns latency + failure stats."""
    g = np.random.default_rng(7)
    panels = [g.random((n, REQUEST_Q)) for _ in range(REQUESTS_PER_CLIENT)]
    latencies: list[list[float]] = [[] for _ in range(CLIENTS)]
    failures: list[int] = [0] * CLIENTS

    def worker(idx: int) -> None:
        client = _client(server, TENANTS[idx % len(TENANTS)])
        for panel in panels:
            t0 = time.perf_counter()
            try:
                client.matmul("grid", panel)
            except ServerError:
                failures[idx] += 1
            latencies[idx].append(time.perf_counter() - t0)

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(CLIENTS)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    lat = np.asarray([x for per in latencies for x in per]) * 1e3
    return {
        "requests_total": int(lat.size),
        "failed_requests": int(sum(failures)),
        "wall_s": wall,
        "throughput_rps": lat.size / wall,
        "p50_ms": float(np.percentile(lat, 50)),
        "p99_ms": float(np.percentile(lat, 99)),
        "mean_ms": float(lat.mean()),
    }


def test_netserve_sustained_load_and_warm_restart(tmp_path_factory):
    root = tmp_path_factory.mktemp("netserve-root")
    n = bench_n(DATASET)
    points = load_dataset(DATASET, n=n, seed=0)
    results: dict = {"dataset": DATASET, "n": n, "clients": CLIENTS,
                     "request_q": REQUEST_Q, "tenants": list(TENANTS)}

    # --- cold: both tenants compile over the wire, then sustained load
    with KernelServer(root, tokens=TOKENS, max_wait_ms=2.0) as server:
        compile_s = {}
        for tenant in TENANTS:
            info = _client(server, tenant).compile(
                points, kernel=KERNEL_DOC, plan=PLAN_DOC, points_id="grid")
            assert info["compiled"] is True, \
                f"fresh tenant {tenant} must compile, not store-hit"
            compile_s[tenant] = info["compile_seconds"]
        results["compile_seconds"] = compile_s

        load = _drive(server, n)
        stats = server.stats()
        results["load"] = load
        results["server_responses"] = stats["server"]["responses"]
        results["audit_lines"] = stats["server"].get("audit_lines", 0)
        per_tenant = {
            name: {"served": t["service"]["served"],
                   "mean_batch": t["service"]["mean_batch"],
                   "window_requests": t["quota"]["window_requests"]}
            for name, t in stats["tenants"].items()
        }
        results["per_tenant"] = per_tenant

    # --- warm: a fresh server over the same root must skip inspection
    warm_inspections = 0
    warm_retunes = 0
    with KernelServer(root, tokens=TOKENS, max_wait_ms=2.0) as server:
        warm_compile_s = {}
        for tenant in TENANTS:
            client = _client(server, tenant)
            info = client.compile(points, kernel=KERNEL_DOC,
                                  plan=PLAN_DOC, points_id="grid")
            assert info["compiled"] is False, \
                f"warm tenant {tenant} re-inspected instead of store-hit"
            warm_compile_s[tenant] = info["compile_seconds"]
            client.matmul("grid",
                          np.random.default_rng(1).random((n, REQUEST_Q)))
            session = client.stats()["session"]
            warm_inspections += (session["p1_builds"]
                                 + session["p2_builds"])
            warm_retunes += client.stats()["autotune"].get("tunes", 0)
        results["warm_compile_seconds"] = warm_compile_s
    results["warm_inspections"] = warm_inspections
    results["warm_retunes"] = warm_retunes
    save_results("netserve", results)

    print_table(
        f"repro.net sustained load ({DATASET}, N={n}, {CLIENTS} clients "
        f"x {REQUESTS_PER_CLIENT} req, q={REQUEST_Q})",
        ["metric", "value"],
        [["throughput (req/s)", fmt(load["throughput_rps"], 1)],
         ["p50 (ms)", fmt(load["p50_ms"], 2)],
         ["p99 (ms)", fmt(load["p99_ms"], 2)],
         ["failed requests", load["failed_requests"]],
         ["warm inspections", warm_inspections],
         ["warm re-tunes", warm_retunes]],
    )

    # Gates (mirrored in validate_results.py for the committed artifact):
    # correctness-class claims hold even in quick mode on a loaded CI box.
    assert load["failed_requests"] == 0, \
        f"{load['failed_requests']} request(s) failed under load"
    assert warm_inspections == 0, \
        "warm restart re-inspected despite the tenant PlanStore roots"
    assert warm_retunes == 0
    if not BENCH_QUICK:
        # Tail-latency sanity on a real perf box: a 5 s p99 for q=4
        # panels at this N means the dispatcher or the front-end stalled.
        assert load["p99_ms"] < 5000, f"p99 {load['p99_ms']:.0f} ms"
