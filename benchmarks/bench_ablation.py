"""Ablations of MatRox's design choices (DESIGN.md section 5).

Not a paper figure — sensitivity sweeps over the parameters the paper fixes:
* agg (coarsen aggregation, paper 2),
* near blocksize (paper 2),
* first-fit bin-packing vs naive round-robin sub-tree assignment,
* root-iteration peeling on/off.
"""

from repro.analysis import build_blockset, build_coarsenset
from repro.analysis.coarsening import node_heights
from repro.analysis.structure_sets import CoarsenLevel, CoarsenSet, SubTree
from repro.baselines import MatRoxSystem
from repro.runtime import HASWELL
from repro.runtime.simulator import simulate_phases
from repro.runtime.tasks import matrox_phases
from repro.storage import build_cds

from conftest import BENCH_Q, PAPER_P, fmt, print_table, save_results, scaled_machine


def _simulate_with(pipelines, name, coarsenset=None, near_bs=None,
                   peel=True):
    H, p1, insp, points, _k = pipelines.get(name, "h2-b")
    machine = scaled_machine(HASWELL, len(points))
    cs = coarsenset if coarsenset is not None else H.cds.coarsenset
    nb = (build_blockset(p1.htree, near_bs, kind="near")
          if near_bs is not None else H.cds.near_blockset)
    cds = build_cds(H.factors, cs, nb, H.cds.far_blockset)
    from repro.codegen.lowering import LoweringDecision

    base = H.evaluator.decision
    decision = LoweringDecision(
        block_near=base.block_near, block_far=base.block_far,
        coarsen=base.coarsen, peel_root=peel and base.peel_root,
        block_threshold=base.block_threshold,
        far_block_threshold=base.far_block_threshold,
        coarsen_threshold=base.coarsen_threshold)
    phases = matrox_phases(cds, BENCH_Q, decision=decision)
    loc = MatRoxSystem(H).locality(machine)
    return simulate_phases(phases, machine, p=PAPER_P, locality=loc).time_s


def test_ablation_agg(pipelines, benchmark):
    """agg sweep: more aggregation = fewer barriers but coarser balance."""
    name = "grid"
    H, p1, insp, points, _k = pipelines.get(name, "h2-b")

    def run():
        times = {}
        for agg in (1, 2, 3, 4, 8):
            cs = build_coarsenset(p1.tree, H.sranks, p=PAPER_P, agg=agg)
            times[agg] = _simulate_with(pipelines, name, coarsenset=cs)
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Ablation: coarsening agg ({name})",
        ["agg", "time (ms)", "vs agg=2"],
        [[a, fmt(t * 1e3), fmt(t / times[2])] for a, t in times.items()],
    )
    save_results("ablation_agg", {str(k): v for k, v in times.items()})
    # The paper's default should be within 25% of the best choice.
    assert times[2] <= min(times.values()) * 1.25


def test_ablation_near_blocksize(pipelines, benchmark):
    name = "susy"

    def run():
        return {bs: _simulate_with(pipelines, name, near_bs=bs)
                for bs in (1, 2, 4, 8)}

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Ablation: near blocksize ({name})",
        ["blocksize", "time (ms)", "vs bs=2"],
        [[b, fmt(t * 1e3), fmt(t / times[2])] for b, t in times.items()],
    )
    save_results("ablation_blocksize", {str(k): v for k, v in times.items()})
    assert times[2] <= min(times.values()) * 1.3


def test_ablation_binpacking(pipelines, benchmark):
    """First-fit-decreasing bin-packing vs naive round-robin sub-trees."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    name = "grid"
    H, p1, _insp, points, _k = pipelines.get(name, "h2-b")
    tree, sranks = p1.tree, H.sranks

    packed = build_coarsenset(tree, sranks, p=PAPER_P, agg=2)

    # Round-robin variant: same disjoint sub-trees, dealt card-style.
    from repro.analysis.cost_model import node_cost

    rr_levels = []
    heights = node_heights(tree)
    for cl in packed.levels:
        singles = [
            SubTree(nodes=[v for v in st.nodes], cost=st.cost)
            for st in cl.subtrees
        ]
        # Explode back to per-root sub-trees is not recoverable here; instead
        # rebuild with p=1 partition granularity then deal round-robin.
        rr_levels.append(cl)
    rr = build_coarsenset(tree, sranks, p=PAPER_P, agg=2)
    # Re-pack each level round-robin by replacing the bin-packed merge.
    from repro.analysis.coarsening import _collect_subtree

    active = sranks > 0
    naive_levels = []
    for cl in rr.levels:
        roots = [r for st in cl.subtrees for r in st.roots]
        bins = [[] for _ in range(min(PAPER_P, max(len(roots), 1)))]
        for idx, root in enumerate(roots):
            bins[idx % len(bins)].append(root)
        subtrees = []
        for b in bins:
            nodes = []
            for root in b:
                nodes.extend(_collect_subtree(tree, root, cl.lb, heights,
                                              active))
            if nodes:
                cost = sum(node_cost(tree, sranks, v) for v in nodes)
                subtrees.append(SubTree(nodes=nodes, cost=cost, roots=b))
        naive_levels.append(CoarsenLevel(lb=cl.lb, ub=cl.ub,
                                         subtrees=subtrees))
    naive = CoarsenSet(levels=naive_levels, agg=2, num_partitions=PAPER_P)

    t_packed = _simulate_with(pipelines, name, coarsenset=packed)
    t_naive = _simulate_with(pipelines, name, coarsenset=naive)
    print(f"\nbin-packing ablation ({name}): LPT {t_packed*1e3:.2f}ms vs "
          f"round-robin {t_naive*1e3:.2f}ms "
          f"({t_naive/t_packed:.2f}x)")
    # Cost-aware packing never loses to round-robin by more than noise.
    assert t_packed <= t_naive * 1.05

    # And the load spread is tighter.
    for cl_p, cl_n in zip(packed.levels, naive.levels, strict=True):
        costs_p = [st.cost for st in cl_p.subtrees]
        costs_n = [st.cost for st in cl_n.subtrees]
        if len(costs_p) > 1 and len(costs_n) > 1 and sum(costs_n) > 0:
            spread_p = max(costs_p) / (sum(costs_p) / len(costs_p))
            spread_n = max(costs_n) / (sum(costs_n) / len(costs_n))
            assert spread_p <= spread_n * 1.2


def test_ablation_peeling(pipelines, benchmark):
    """Root peeling: the paper's low-level transform (6.28% on HSS)."""
    name = "unit"

    def run():
        return {
            "peeled": _simulate_with(pipelines, name, peel=True),
            "unpeeled": _simulate_with(pipelines, name, peel=False),
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    gain = times["unpeeled"] / times["peeled"]
    print(f"\npeeling ablation ({name}): {times['unpeeled']*1e3:.2f}ms -> "
          f"{times['peeled']*1e3:.2f}ms ({(gain-1)*100:.1f}% improvement)")
    save_results("ablation_peeling", times)
    assert gain >= 0.98  # never a significant regression
