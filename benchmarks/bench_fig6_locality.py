"""Figure 6: speedup vs average memory access latency (locality proxy).

The paper correlates the MatRox-vs-GOFMM speedup per dataset with the
average memory access latency measured via PAPI counters, reporting
R^2 = 0.81. Here the counters come from the cache/TLB simulator driven by
each storage layout's access trace; the regression is speedup against the
AMAL *ratio* (tree-based over CDS), which is the quantity the storage
format controls.
"""

import numpy as np

from repro.baselines import MatRoxSystem
from repro.datasets import dataset_names
from repro.runtime import HASWELL, simulate_trace
from repro.runtime.latency import average_memory_access_latency
from repro.runtime.trace import cds_trace, treebased_trace
from repro.storage.treebased import build_treebased

from conftest import BENCH_Q, PAPER_P, fmt, print_table, save_results, scaled_machine


def r_squared(x: np.ndarray, y: np.ndarray) -> float:
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0


def test_fig6_speedup_vs_memory_latency(pipelines, systems, benchmark):
    def run():
        points_rows = []
        for structure in ("hss", "h2-b"):
            for name in dataset_names():
                H, _p1, _insp, points, _k = pipelines.get(name, structure)
                machine = scaled_machine(HASWELL, len(points))
                amal_cds = average_memory_access_latency(
                    simulate_trace(cds_trace(H.cds), machine), machine)
                tb = build_treebased(H.factors)
                amal_tb = average_memory_access_latency(
                    simulate_trace(treebased_trace(tb), machine), machine)
                mx = MatRoxSystem(H)
                t_m = mx.simulate(H.factors, BENCH_Q, machine, p=PAPER_P).time_s
                t_g = systems["gofmm"].simulate(
                    H.factors, BENCH_Q, machine, p=PAPER_P).time_s
                points_rows.append({
                    "dataset": name, "structure": structure,
                    "amal_cds": amal_cds, "amal_tb": amal_tb,
                    "amal_ratio": amal_tb / amal_cds,
                    "speedup": t_g / t_m,
                })
        return points_rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "Figure 6: speedup vs average memory access latency",
        ["dataset", "struct", "AMAL cds", "AMAL tb", "ratio", "speedup"],
        [[r["dataset"], r["structure"], fmt(r["amal_cds"]),
          fmt(r["amal_tb"]), fmt(r["amal_ratio"]), fmt(r["speedup"])]
         for r in rows],
    )
    save_results("fig6", rows)

    x = np.array([r["amal_ratio"] for r in rows])
    y = np.array([r["speedup"] for r in rows])
    r2 = r_squared(x, y)
    slope = np.polyfit(x, y, 1)[0]
    print(f"  R^2 = {r2:.2f} (paper: 0.81), slope = {slope:.2f}")

    from repro.reporting import scatter_plot

    print(scatter_plot(
        x.tolist(), y.tolist(),
        title="Figure 6: speedup (y) vs TB/CDS memory-latency ratio (x)",
    ))

    # The correlation must exist and point the right way: worse TB latency
    # relative to CDS -> larger MatRox speedup.
    assert slope > 0, "speedup should grow with the TB/CDS latency gap"
    assert r2 > 0.3, f"speedup-vs-latency correlation too weak (R^2={r2:.2f})"
    # CDS has lower (or at worst tied — large-leaf ML sets are dominated by
    # within-block streaming that no layout can change) AMAL than tree-based.
    assert all(r["amal_ratio"] > 0.97 for r in rows)
    assert float(np.mean([r["amal_ratio"] for r in rows])) > 1.02
