"""Figure 9: block accuracy (bacc) vs achieved overall accuracy eps_f.

Real numerics, no simulation: for every dataset and bacc in {1e-1..1e-5},
compress with H2-b and measure eps_f = ||K~W - KW||_F / ||KW||_F against
the dense product. The paper's claims: overall accuracy tracks bacc only
through a loose upper bound — with bacc = 1e-3 more than half the datasets
miss 1e-3 overall — and tightening bacc tightens eps_f.
"""

import numpy as np

from repro.core.accuracy import overall_accuracy
from repro.datasets import dataset_names

from conftest import print_table, save_results

BACCS = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5)


def test_fig9_bacc_vs_overall_accuracy(pipelines, benchmark):
    def run():
        results = {}
        for name in dataset_names():
            H0, p1, insp, points, kernel = pipelines.get(name, "h2-b")
            rng = np.random.default_rng(0)
            W = rng.random((len(points), 16))
            Wt = W[p1.tree.perm]
            per_bacc = {}
            for bacc in BACCS:
                H = insp.run_p2(p1, kernel, bacc=bacc)
                per_bacc[bacc] = overall_accuracy(H.factors, kernel, Wt)
            results[name] = per_bacc
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [name] + [f"{results[name][b]:.1e}" for b in BACCS]
        for name in results
    ]
    print_table(
        "Figure 9: overall accuracy eps_f per input bacc (H2-b)",
        ["dataset"] + [f"bacc={b:.0e}" for b in BACCS],
        rows,
    )
    save_results("fig9", {k: {str(b): v for b, v in r.items()}
                          for k, r in results.items()})

    for name, r in results.items():
        # eps_f decreases as bacc tightens — unless it already saturated at
        # an excellent level (mnist's 780-dim Gaussian is near-diagonal and
        # compresses to high accuracy at any bacc).
        assert r[1e-5] < max(r[1e-1] * 0.5, 5e-5), (
            f"{name}: accuracy does not improve"
        )
        # bacc is only a loose bound: eps_f can exceed bacc.
    missed = sum(1 for r in results.values() if r[1e-3] > 1e-3)
    print(f"  datasets missing 1e-3 overall accuracy at bacc=1e-3: "
          f"{missed}/13 (paper: >50%)")


def test_fig9_monotone_on_average(pipelines, benchmark):
    """Median eps_f across datasets decreases monotonically with bacc."""
    meds = []
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for bacc in (1e-1, 1e-3, 1e-5):
        vals = []
        for name in ("grid", "unit", "letter", "susy"):
            H0, p1, insp, points, kernel = pipelines.get(name, "h2-b")
            rng = np.random.default_rng(0)
            Wt = rng.random((len(points), 8))[p1.tree.perm]
            H = insp.run_p2(p1, kernel, bacc=bacc)
            vals.append(overall_accuracy(H.factors, kernel, Wt))
        meds.append(float(np.median(vals)))
    assert meds[0] > meds[1] > meds[2]
