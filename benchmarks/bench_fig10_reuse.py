"""Figure 10: inspection reuse over 5 accuracy changes (H2-b).

The paper tunes bacc over {1e-1 .. 1e-5}: MatRox runs inspector_p1 once and
re-runs only inspector_p2 + executor per change; GOFMM recompresses from
scratch every time. Normalized total time is reported per dataset; the
paper's averages: MatRox 2.21x faster than GOFMM, up to 2.64x on mnist
(where sampling is 89.2% of compression and is fully reused).

Inspector times come from the inspector flop-cost model on the simulated
Haswell (consistent with Fig. 4); executor times from the machine simulator.
"""

import numpy as np

from repro.baselines import MatRoxSystem
from repro.compression.compressor import CompressionResult
from repro.datasets import dataset_names
from repro.metrics import inspector_cost_model, simulate_inspector_seconds
from repro.runtime import HASWELL

from conftest import BENCH_Q, PAPER_P, fmt, print_table, save_results, scaled_machine

BACC_SWEEP = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5)


def reuse_times(pipelines, systems, name: str):
    H0, p1, insp, points, kernel = pipelines.get(name, "h2-b")
    machine = scaled_machine(HASWELL, len(points))

    matrox_total = 0.0
    gofmm_total = 0.0
    p1_cost_done = False
    for bacc in BACC_SWEEP:
        H = insp.run_p2(p1, kernel, bacc=bacc)
        res = CompressionResult(tree=p1.tree, htree=p1.htree, plan=p1.plan,
                                factors=H.factors)
        costs = inspector_cost_model(res)
        stages = simulate_inspector_seconds(costs, machine, p=PAPER_P)
        # Split compression: sampling + tree + interactions belong to p1
        # (reusable); low-rank approx + layout belong to p2.
        total_flops = costs.compression_flops
        p1_frac = (costs.sampling_flops + costs.tree_flops) / total_flops
        t_comp = stages["compression"]
        t_p1 = t_comp * p1_frac
        t_p2 = t_comp * (1 - p1_frac) + stages["structure_analysis"] + (
            stages["code_generation"])
        t_exec = MatRoxSystem(H).simulate(
            H.factors, BENCH_Q, machine, p=PAPER_P).time_s
        if not p1_cost_done:
            matrox_total += t_p1
            p1_cost_done = True
        matrox_total += t_p2 + t_exec

        # GOFMM pays the full compression every change.
        t_go_exec = systems["gofmm"].simulate(
            H.factors, BENCH_Q, machine, p=PAPER_P).time_s
        gofmm_total += t_comp + t_go_exec

    return {"matrox": matrox_total, "gofmm": gofmm_total,
            "speedup": gofmm_total / matrox_total}


def test_fig10_inspection_reuse(pipelines, systems, benchmark):
    def run():
        return {name: reuse_times(pipelines, systems, name)
                for name in dataset_names()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [name, fmt(r["matrox"] * 1e3), fmt(r["gofmm"] * 1e3),
         fmt(r["speedup"])]
        for name, r in results.items()
    ]
    print_table(
        "Figure 10: 5 bacc changes, total time (ms, simulated Haswell)",
        ["dataset", "matrox (p1 reused)", "gofmm (recompress)", "speedup"],
        rows,
    )
    save_results("fig10", results)

    speedups = [r["speedup"] for r in results.values()]
    mean = float(np.mean(speedups))
    print(f"  mean reuse speedup: {mean:.2f}x (paper: 2.21x), "
          f"max: {max(speedups):.2f}x (paper: 2.64x on mnist)")
    # Reuse must win on every dataset.
    assert all(s > 1.0 for s in speedups)
    assert mean > 1.3


def test_fig10_mnist_sampling_dominates(pipelines, benchmark):
    """mnist (780-dim): sampling is the dominant reusable compression cost
    (89.2% in the paper), so it benefits most from reuse."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    H, p1, _insp, _points, _kernel = pipelines.get("mnist", "h2-b")
    res = CompressionResult(tree=p1.tree, htree=p1.htree, plan=p1.plan,
                            factors=H.factors)
    costs = inspector_cost_model(res)
    # The reusable p1 portion (sampling + tree) must be a substantial share,
    # so reuse pays off. (At the paper's N=60k the exact-kNN N^2 d term makes
    # this 89.2%; at bench scale the near-block assembly, also O(N^2)-ish,
    # competes — the share is smaller but still significant.)
    frac = (costs.sampling_flops + costs.tree_flops) / costs.compression_flops
    print(f"\nmnist reusable (p1) share of compression flops: {frac:.2f}")
    assert frac > 0.15
    # And extrapolated to the paper's N (kNN is O(N^2 d), the rest O(N r^2)
    # per point), sampling dominates:
    scale = 60_000 / p1.tree.num_points
    knn_paper = costs.sampling_flops * scale**2
    rest_paper = (costs.lowrank_flops + costs.kernel_flops) * scale
    frac_paper = knn_paper / (knn_paper + rest_paper)
    print(f"extrapolated to N=60k: sampling share {frac_paper:.2f} "
          f"(paper: 0.89)")
    assert frac_paper > 0.8
