"""Shared benchmark infrastructure.

Every figure benchmark runs the *real* pipeline (synthetic datasets scaled
down from the paper's N, actual compression, structure analysis, code
generation, and numerics) and obtains comparative execution times from the
machine simulator (see DESIGN.md section 2 for the substitution rationale).

Set ``MATROX_BENCH_N`` to change the per-dataset point budget (default 1500)
and ``MATROX_BENCH_Q`` for the right-hand-side column count (default 2048,
the paper's Q for most figures).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.baselines import (
    DenseGEMM,
    GOFMMBaseline,
    SMASHBaseline,
    STRUMPACKBaseline,
)
from repro.core.inspector import Inspector
from repro.datasets import DATASETS, load_dataset
from repro.kernels import get_kernel

BENCH_N = int(os.environ.get("MATROX_BENCH_N", "1500"))
BENCH_Q = int(os.environ.get("MATROX_BENCH_Q", "2048"))
#: Wall-clock repetitions for min-of-reps timings (CI smoke sets 1).
BENCH_REPS = int(os.environ.get("MATROX_BENCH_REPS", "10"))
#: Quick mode (bench-smoke CI): run everything, record every JSON, but
#: relax wall-clock *threshold* assertions — a cold two-core CI runner is
#: not a perf machine; correctness/equivalence assertions always hold.
BENCH_QUICK = os.environ.get("MATROX_BENCH_QUICK", "") not in ("", "0")
RESULTS_DIR = Path(__file__).parent / "results"

# The paper's default experiment configuration (Section 4.1).
PAPER_P = 12                 # Haswell physical cores
PAPER_BACC = 1e-5
PAPER_LEAF = 32              # scaled with N (paper uses larger leaves at 100k)
GAUSS_BW = 5.0               # Gaussian bandwidth for GOFMM/STRUMPACK comparisons


def bench_n(name: str) -> int:
    """Scaled point count for a dataset (proportional to the paper's N)."""
    paper_n = DATASETS[name].paper_n
    return max(600, min(BENCH_N, int(paper_n * BENCH_N / 100_000)))


def kernel_for(name: str):
    """Paper setting: Gaussian (bw 5) for ML sets, SMASH's 1/r for
    scientific sets when comparing to SMASH; Gaussian everywhere else."""
    return get_kernel("gaussian", bandwidth=GAUSS_BW)


def scaled_machine(machine, n: int):
    return machine.scaled_caches(n / 100_000)


class BenchPipelines:
    """Caches inspected HMatrices per (dataset, structure) for the session."""

    def __init__(self):
        self._cache: dict = {}

    def get(self, name: str, structure: str, p: int = PAPER_P,
            bacc: float = PAPER_BACC, leaf: int = PAPER_LEAF):
        key = (name, structure, p, bacc, leaf)
        if key not in self._cache:
            n = bench_n(name)
            points = load_dataset(name, n=n, seed=0)
            kernel = kernel_for(name)
            insp = Inspector(structure=structure, budget=0.03, tau=0.65,
                             bacc=bacc, leaf_size=leaf, p=p, seed=0)
            p1 = insp.run_p1(points)
            H = insp.run_p2(p1, kernel)
            self._cache[key] = (H, p1, insp, points, kernel)
        return self._cache[key]


@pytest.fixture(scope="session")
def pipelines():
    return BenchPipelines()


@pytest.fixture(scope="session")
def systems():
    return {
        "gofmm": GOFMMBaseline(),
        "strumpack": STRUMPACKBaseline(),
        "smash": SMASHBaseline(),
        "gemm": DenseGEMM(),
    }


def best_seconds(fn, reps: int | None = None) -> float:
    """Min-of-reps wall-clock (robust to scheduler noise); one warm-up."""
    import time

    reps = BENCH_REPS if reps is None else reps
    fn()
    times = []
    for _ in range(max(reps, 1)):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def save_results(name: str, payload) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=str))
    return path


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render one figure/table as aligned text (the paper-row regenerator)."""
    print(f"\n=== {title}")
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print("  " + "  ".join(str(h).rjust(w) for h, w in zip(headers, widths, strict=True)))
    for r in rows:
        print("  " + "  ".join(str(c).rjust(w) for c, w in zip(r, widths, strict=True)))


def fmt(x, nd=2):
    if isinstance(x, float):
        return f"{x:.{nd}f}"
    return str(x)
