"""Figure 4: overall time (inspector + executor) vs Q for HSS and H2-b.

The paper stacks MatRox compression / structure analysis / code generation /
executor against GOFMM and STRUMPACK compression + evaluation for
Q in {1, 1K, 2K, 4K} on higgs, susy, letter and grid. Compression time is
converted from counted flops by the inspector cost model; evaluation time
comes from the machine simulator (DESIGN.md section 2). STRUMPACK bars are
missing exactly where the paper reports it could not run (HSS-only, small
datasets).
"""

import pytest

from repro.baselines import MatRoxSystem
from repro.compression.compressor import CompressionResult
from repro.datasets import DATASETS
from repro.metrics import inspector_cost_model, simulate_inspector_seconds
from repro.runtime import HASWELL

from conftest import (
    PAPER_P,
    fmt,
    print_table,
    save_results,
    scaled_machine,
)

FIG4_DATASETS = ["higgs", "susy", "letter", "grid"]
FIG4_QS = [1, 1024, 2048, 4096]


def overall_times(pipelines, name: str, structure: str, q: int, systems):
    H, p1, insp, points, kernel = pipelines.get(name, structure)
    machine = scaled_machine(HASWELL, len(points))
    res = CompressionResult(tree=p1.tree, htree=p1.htree, plan=p1.plan,
                            factors=H.factors)
    costs = inspector_cost_model(res)

    out = {}
    # --- MatRox: compression + SA + codegen + executor ----------------------
    insp_s = simulate_inspector_seconds(costs, machine, p=PAPER_P)
    mx = MatRoxSystem(H)
    exec_s = mx.simulate(H.factors, q, machine, p=PAPER_P).time_s
    out["matrox"] = {**insp_s, "executor": exec_s,
                     "total": sum(insp_s.values()) + exec_s}

    # --- GOFMM: same ID-style compression, dynamic evaluation ---------------
    go_insp = simulate_inspector_seconds(costs, machine, p=PAPER_P)
    go_exec = systems["gofmm"].simulate(H.factors, q, machine, p=PAPER_P).time_s
    out["gofmm"] = {"compression": go_insp["compression"],
                    "evaluation": go_exec,
                    "total": go_insp["compression"] + go_exec}

    # --- STRUMPACK: only where the paper could run it -----------------------
    sp = systems["strumpack"]
    paper_n, d = DATASETS[name].paper_n, DATASETS[name].dim
    if sp.supports(paper_n, d, q, structure):
        sp_insp = simulate_inspector_seconds(
            costs, machine, p=PAPER_P, overhead=sp.compression_overhead)
        sp_exec = sp.simulate(H.factors, q, machine, p=PAPER_P).time_s
        out["strumpack"] = {"compression": sp_insp["compression"],
                            "evaluation": sp_exec,
                            "total": sp_insp["compression"] + sp_exec}
    return out


@pytest.mark.parametrize("structure", ["hss", "h2-b"])
def test_fig4_overall_time(structure, pipelines, systems, benchmark):
    def run():
        table = {}
        for name in FIG4_DATASETS:
            for q in FIG4_QS:
                table[(name, q)] = overall_times(
                    pipelines, name, structure, q, systems)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (name, q), t in table.items():
        sp = t.get("strumpack")
        rows.append([
            f"{name}-{q if q > 1 else 1}",
            fmt(t["matrox"]["compression"] * 1e3),
            fmt(t["matrox"]["structure_analysis"] * 1e3),
            fmt(t["matrox"]["code_generation"] * 1e3),
            fmt(t["matrox"]["executor"] * 1e3),
            fmt(t["matrox"]["total"] * 1e3),
            fmt(t["gofmm"]["total"] * 1e3),
            fmt(sp["total"] * 1e3) if sp else "--",
            fmt(t["gofmm"]["total"] / t["matrox"]["total"]),
        ])
    print_table(
        f"Figure 4 ({structure}, Haswell, ms): MatRox stacked vs libraries",
        ["dataset-Q", "compr", "SA", "codegen", "exec", "matrox",
         "gofmm", "strumpack", "speedup"],
        rows,
    )
    save_results(f"fig4_{structure}", {str(k): v for k, v in table.items()})

    # Qualitative claims of Figure 4:
    for name in FIG4_DATASETS:
        # (1) inspector amortises with Q: MatRox overall speedup vs GOFMM
        #     grows from Q=1K to Q=4K (susy: 1.56x -> 2.02x in the paper).
        s1 = (table[(name, 1024)]["gofmm"]["total"]
              / table[(name, 1024)]["matrox"]["total"])
        s4 = (table[(name, 4096)]["gofmm"]["total"]
              / table[(name, 4096)]["matrox"]["total"])
        assert s4 >= s1 * 0.95, f"{name}: amortisation broken ({s1} -> {s4})"
        # (2) structure analysis + codegen are a small fraction of inspection.
        t = table[(name, 2048)]["matrox"]
        frac = (t["structure_analysis"] + t["code_generation"]) / (
            t["compression"] + t["structure_analysis"] + t["code_generation"])
        assert frac < 0.15, f"{name}: SA+codegen fraction {frac}"


def test_fig4_strumpack_compression_slower(pipelines, systems, benchmark):
    """Figure 4's STRUMPACK bars: compression slower than MatRox/GOFMM."""
    t = benchmark.pedantic(
        overall_times, args=(pipelines, "letter", "hss", 2048, systems),
        rounds=1, iterations=1)
    assert "strumpack" in t
    assert t["strumpack"]["compression"] > t["matrox"]["compression"]
