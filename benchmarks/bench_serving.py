"""Serving benchmark: compile-once/serve-forever, measured.

Two claims from the PlanStore + KernelService redesign:

1. **Cold vs warm start** — a fresh process with ``Session(store=dir)``
   loads its plan from disk instead of re-inspecting: zero
   ``p1_builds``/``p2_builds`` and a wall-clock start several times
   faster than inspection.
2. **Micro-batching pays** — stacking concurrent requests for the same
   HMatrix into one ``matmul`` amortizes the per-call engine overhead:
   KernelService throughput at batch size >= 4 must be >= 1.5x
   sequential per-request submission (this is the tentpole's acceptance
   gate and holds in quick mode too — it is an algorithmic win, not a
   core-count win).

Results land in ``benchmarks/results/serving.json`` for
``validate_results.py``.
"""

import time

import numpy as np

from repro.api.plan import PlanConfig
from repro.api.service import KernelService
from repro.api.session import Session
from repro.api.store import PlanStore
from repro.datasets import load_dataset
from repro.kernels import get_kernel

from conftest import (
    BENCH_REPS,
    GAUSS_BW,
    PAPER_BACC,
    bench_n,
    fmt,
    print_table,
    save_results,
)

DATASET = "grid"
LEAF = 32
#: Requests replayed per batch-size setting (single-column panels: the
#: per-request-overhead-dominated regime serving is designed for).
REQUESTS = 48
REQUEST_Q = 1
BATCH_SIZES = (1, 2, 4, 8)

_RESULTS: dict = {}


def _plan() -> PlanConfig:
    return PlanConfig(leaf_size=LEAF, bacc=PAPER_BACC, p=4, seed=0)


def test_serving_cold_vs_warm_start(tmp_path_factory):
    """Restart the 'process' (fresh Session + PlanStore objects) and prove
    the warm start skips inspection entirely."""
    store_dir = tmp_path_factory.mktemp("plan-store")
    n = bench_n(DATASET)
    points = load_dataset(DATASET, n=n, seed=0)
    kernel = get_kernel("gaussian", bandwidth=GAUSS_BW)
    W = np.random.default_rng(0).random((n, 8))

    t0 = time.perf_counter()
    with Session(plan=_plan(), store=PlanStore(store_dir)) as cold:
        H = cold.inspect(points, kernel=kernel)
        cold.matmul(H, W)
    cold_s = time.perf_counter() - t0
    assert cold.stats.p1_builds == 1 and cold.stats.p2_builds == 1

    t0 = time.perf_counter()
    with Session(plan=_plan(), store=PlanStore(store_dir)) as warm:
        H2 = warm.inspect(points, kernel=kernel)
        warm.matmul(H2, W)
    warm_s = time.perf_counter() - t0
    assert warm.stats.p1_builds == 0 and warm.stats.p2_builds == 0
    assert warm.store.stats.disk_hits == 1

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    _RESULTS.update(dataset=DATASET, n=n, cold_start_s=cold_s,
                    warm_start_s=warm_s, cold_over_warm=speedup)
    print_table(
        f"Serving cold vs warm start ({DATASET}, N={n})",
        ["start", "seconds", "p1_builds", "p2_builds"],
        [["cold", fmt(cold_s, 3), cold.stats.p1_builds,
          cold.stats.p2_builds],
         ["warm", fmt(warm_s, 3), warm.stats.p1_builds,
          warm.stats.p2_builds],
         ["cold/warm", fmt(speedup, 2) + "x", "", ""]],
    )
    # The warm path replaces full inspection with one verified npz load;
    # it must win outright on any hardware.
    assert speedup > 1.0


def _run_replay(service: KernelService, n: int, sequential: bool) -> dict:
    """Replay REQUESTS single-column requests; return timing stats."""
    g = np.random.default_rng(42)
    panels = [g.random((n, REQUEST_Q)) for _ in range(REQUESTS)]
    best_wall = float("inf")
    for _ in range(max(BENCH_REPS, 1)):
        t0 = time.perf_counter()
        if sequential:
            for W in panels:
                service.request("grid", W)
        else:
            futures = [service.submit("grid", W) for W in panels]
            for f in futures:
                f.result()
        best_wall = min(best_wall, time.perf_counter() - t0)
    stats = service.stats()
    return {
        "wall_s": best_wall,
        "throughput_rps": REQUESTS / best_wall,
        "p50_ms": stats["p50_ms"],
        "p99_ms": stats["p99_ms"],
        "mean_batch": stats["mean_batch"],
        "max_queue_depth": stats["max_queue_depth"],
    }


def test_serving_microbatch_throughput(tmp_path_factory):
    """p50/p99 latency + throughput vs micro-batch size; the >= 1.5x gate."""
    store_dir = tmp_path_factory.mktemp("plan-store-batch")
    n = bench_n(DATASET)
    points = load_dataset(DATASET, n=n, seed=0)
    kernel = get_kernel("gaussian", bandwidth=GAUSS_BW)
    # Compile once so every service below warm-starts identically.
    with Session(plan=_plan(), store=PlanStore(store_dir)) as compiler:
        compiler.inspect(points, kernel=kernel)

    per_batch: dict[str, dict] = {}
    for max_batch in BATCH_SIZES:
        with KernelService(store=PlanStore(store_dir), plan=_plan(),
                           max_batch=max_batch, max_wait_ms=2.0) as service:
            service.register("grid", points, kernel=kernel, warm=True)
            assert service.session.stats.p1_builds == 0, \
                "service must warm-start from the compiled store"
            per_batch[str(max_batch)] = _run_replay(
                service, n, sequential=(max_batch == 1))

    seq = per_batch["1"]["throughput_rps"]
    speedups = {b: s["throughput_rps"] / seq for b, s in per_batch.items()}
    best_batch = str(max(BATCH_SIZES))
    _RESULTS.update(
        requests=REQUESTS, request_q=REQUEST_Q,
        per_batch=per_batch,
        batched_speedup_vs_sequential=speedups,
        batched_speedup_max=speedups[best_batch],
    )
    save_results("serving", _RESULTS)

    print_table(
        f"KernelService micro-batching ({DATASET}, N={n}, "
        f"{REQUESTS} x q={REQUEST_Q} requests)",
        ["max_batch", "req/s", "p50 ms", "p99 ms", "mean batch",
         "vs sequential"],
        [[b, fmt(s["throughput_rps"], 1), fmt(s["p50_ms"], 2),
          fmt(s["p99_ms"], 2), fmt(s["mean_batch"], 2),
          fmt(speedups[b], 2) + "x"]
         for b, s in per_batch.items()],
    )
    # Acceptance gate: micro-batching >= 1.5x sequential at batch >= 4.
    # This is per-call-overhead amortization (one stacked GEMM instead of
    # B traversals), so it holds on the quick-mode workload too.
    assert speedups[best_batch] >= 1.5, (
        f"micro-batched throughput only {speedups[best_batch]:.2f}x "
        f"sequential at max_batch={best_batch}")
