"""Autotuner benchmark: auto vs every fixed policy, plus warm restarts.

Two claims from the ``repro.tuning`` tentpole (ISSUE 5):

1. **Auto is never meaningfully worse than the best fixed policy.** For
   each swept RHS shape, ``order="auto"`` must land within 10% of the
   best fixed policy in its candidate grid (it literally *is* one of
   them after resolution — the margin covers resolution overhead and
   trial-vs-replay noise), and it must beat the fixed
   ``DEFAULT_POLICY`` outright on at least one shape unless it chose
   the default everywhere.
2. **Profiles persist.** A fresh tuner over the same PlanStore resolves
   every swept shape with zero re-tunes (``warm_retunes == 0``).

Results land in ``benchmarks/results/autotune.json`` for
``validate_results.py`` (which enforces both gates on the committed
artifact unconditionally; the wall-clock assertion here additionally
relaxes under ``MATROX_BENCH_QUICK`` like every other timing gate).
"""

import os

import numpy as np

from repro.api.policy import (
    DEFAULT_POLICY,
    ExecutionPolicy,
    effective_cpu_count,
)
from repro.api.store import PlanStore
from repro.core.executor import Executor
from repro.core.inspector import Inspector
from repro.datasets import load_dataset
from repro.kernels import get_kernel
from repro.tuning import Autotuner
from repro.tuning.profile import policy_from_knobs, policy_knobs

from conftest import (
    BENCH_QUICK,
    PAPER_BACC,
    bench_n,
    best_seconds,
    fmt,
    print_table,
    save_results,
)

DATASET = "grid"
LEAF = 32
#: RHS widths swept (one tuning profile per bucket): single vector, the
#: mid panel, and a wide panel past the default q_chunk.
SWEEP_Q = tuple(
    int(q) for q in os.environ.get("MATROX_AUTOTUNE_Q", "1 32 512").split()
)


def _label(knobs: dict) -> str:
    """Canonical policy label: full knob set, defaults included."""
    full = policy_knobs(policy_from_knobs(dict(knobs)))
    return ",".join(f"{k}={v}" for k, v in sorted(full.items()))


def test_autotune_auto_vs_fixed(tmp_path_factory):
    n = bench_n(DATASET)
    points = load_dataset(DATASET, n=n, seed=0)
    insp = Inspector(structure="h2-geometric", tau=0.65, bacc=PAPER_BACC,
                     leaf_size=LEAF, p=4, seed=0)
    H = insp.run(points, get_kernel("gaussian", bandwidth=5.0))

    store_dir = tmp_path_factory.mktemp("profile-store")
    tuner = Autotuner(store=PlanStore(store_dir), min_measured_flops=0.0)
    auto = ExecutionPolicy(order="auto")
    default_label = _label(policy_knobs(DEFAULT_POLICY))

    rng = np.random.default_rng(0)
    shapes, rows = {}, []
    for q in SWEEP_Q:
        W = rng.random((n, q))
        fixed_s = {}
        for knobs in tuner.candidate_policies(H, q):
            pol = policy_from_knobs(knobs)
            with Executor(policy=pol) as ex:
                fixed_s[_label(knobs)] = best_seconds(
                    lambda: ex.matmul(H, W))
        with Executor(policy=auto, autotuner=tuner) as ex:
            ex.matmul(H, W)                 # tunes (and persists) here
            auto_s = best_seconds(lambda: ex.matmul(H, W))
            chosen = _label(policy_knobs(tuner.resolve(H, q, auto)))

        best_label, best_s = min(fixed_s.items(), key=lambda kv: kv[1])
        default_s = fixed_s[default_label]
        shapes[str(q)] = {
            "auto_s": auto_s,
            "auto_policy": chosen,
            "fixed_s": fixed_s,
            "best_fixed": best_label,
            "best_fixed_s": best_s,
            "default_s": default_s,
            "auto_over_best_fixed": auto_s / best_s,
            "auto_over_default": auto_s / default_s,
        }
        rows.append([q, chosen, fmt(auto_s * 1e3), best_label,
                     fmt(best_s * 1e3), fmt(auto_s / best_s),
                     fmt(auto_s / default_s)])

    # Warm restart: a fresh tuner over the same store must re-tune nothing.
    warm = Autotuner(store=PlanStore(store_dir), min_measured_flops=0.0)
    for q in SWEEP_Q:
        warm.resolve(H, q, auto)
    warm_retunes = warm.stats.tunes

    print_table(
        f"Autotune: auto vs fixed policies ({DATASET}, N={n}, "
        f"{effective_cpu_count()} effective cpus)",
        ["q", "auto picked", "auto (ms)", "best fixed", "best (ms)",
         "auto/best", "auto/default"],
        rows,
    )

    ratio_max = max(s["auto_over_best_fixed"] for s in shapes.values())
    beats_default = [q for q, s in shapes.items()
                     if s["auto_over_default"] < 1.0]
    always_default = all(s["auto_policy"] == default_label
                         for s in shapes.values())
    save_results("autotune", {
        "dataset": DATASET, "n": n, "sweep_q": list(SWEEP_Q),
        "cpu_count": os.cpu_count(),
        "effective_cpu_count": effective_cpu_count(),
        "shapes": shapes,
        "auto_over_best_fixed_max": ratio_max,
        "auto_beats_default_shapes": beats_default,
        "auto_always_default": always_default,
        "warm_retunes": warm_retunes,
        "tunes": tuner.stats.tunes,
        "trials": tuner.stats.trials,
    })

    assert warm_retunes == 0, "PlanStore-persisted profiles must warm-start"
    if not BENCH_QUICK:
        assert ratio_max <= 1.10, (
            f"auto is {ratio_max:.2f}x the best fixed policy "
            f"(gate: within 10%)")
