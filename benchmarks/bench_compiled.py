"""Compiled executor benchmark: fused native driver vs batched engine.

Two claims from the ``repro.codegen.compiled`` tentpole (ISSUE 8):

1. **The fused driver wins where Python overhead dominates.** At Q=1
   the batched engine spends most of its wall-clock in per-phase Python
   dispatch, gather/scatter temporaries, and workspace allocation; the
   compiled driver precomputes every index table and preallocates every
   buffer, so a single call is one straight-line sweep. Gate: >= 2x at
   Q=1 (enforced only on full-scale, non-quick runs — a scaled-down
   bench-smoke problem has too little arithmetic for the ratio to
   stabilise). Results must be *byte-identical* to ``order="batched"``
   at every swept width, quick mode or not.
2. **Artifacts persist.** A fresh :class:`CompiledCache` over the same
   PlanStore serves the evaluator with zero recompiles
   (``warm_recompiles == 0``), asserted unconditionally.

Results land in ``benchmarks/results/compiled.json`` for
``validate_results.py`` (bit-identity and warm_recompiles gates are
unconditional there too; the speedup gate keys off the recorded
``gate_eligible`` flag, mirroring fig7's cpu_count exemption).
"""

import os
from dataclasses import replace

import numpy as np

from repro.api.policy import effective_cpu_count
from repro.api.store import PlanStore
from repro.codegen.compiled import (
    NARROW_Q_MAX,
    CompiledCache,
    available_backends,
)
from repro.core.inspector import Inspector
from repro.datasets import load_dataset
from repro.kernels import get_kernel

from conftest import (
    BENCH_QUICK,
    PAPER_BACC,
    bench_n,
    best_seconds,
    fmt,
    print_table,
    save_results,
)

DATASET = "grid"
LEAF = 32
#: RHS widths swept: the fused-driver regime (Q=1), a mid panel past the
#: narrow-Q threshold (delegates to batched — ratio ~1.0 by design), and
#: a wide panel.
SWEEP_Q = tuple(
    int(q) for q in os.environ.get("MATROX_COMPILED_Q", "1 32 512").split()
)
#: Extra reps for narrow widths — a single fused call is sub-millisecond,
#: so min-of-reps needs a deeper pool for the >= 2x gate to be stable.
NARROW_REPS = int(os.environ.get("MATROX_COMPILED_REPS", "30"))


def _bytes(a: np.ndarray) -> bytes:
    return np.ascontiguousarray(a).tobytes()


def test_compiled_vs_batched(tmp_path_factory):
    n = bench_n(DATASET)
    points = load_dataset(DATASET, n=n, seed=0)
    insp = Inspector(structure="h2-geometric", tau=0.65, bacc=PAPER_BACC,
                     leaf_size=LEAF, p=4, seed=0)
    H = insp.run(points, get_kernel("gaussian", bandwidth=5.0))

    store_dir = tmp_path_factory.mktemp("compiled-store")
    cold = CompiledCache(store=PlanStore(store_dir))
    ev = cold.evaluator_for(H)
    assert ev is not None, (
        f"compiled build degraded: {cold.stats_dict()['fallbacks']}")

    rng = np.random.default_rng(0)
    shapes, rows, bit_identical = {}, [], True
    for q in SWEEP_Q:
        W = rng.random((n, q))
        Yb = H.matmul(W, order="batched")
        Yc = H.matmul(W, order="compiled")
        same = _bytes(Yb) == _bytes(Yc)
        bit_identical = bit_identical and same

        reps = NARROW_REPS if q <= NARROW_Q_MAX else None
        batched_s = best_seconds(
            lambda: H.matmul(W, order="batched"), reps=reps)
        compiled_s = best_seconds(
            lambda: H.matmul(W, order="compiled"), reps=reps)
        fused = q <= NARROW_Q_MAX
        shapes[str(q)] = {
            "batched_s": batched_s,
            "compiled_s": compiled_s,
            "speedup": batched_s / compiled_s,
            "bit_identical": same,
            "fused": fused,
        }
        rows.append([q, "fused" if fused else "delegate",
                     fmt(batched_s * 1e3), fmt(compiled_s * 1e3),
                     fmt(batched_s / compiled_s),
                     "yes" if same else "NO"])

    # Warm restart: a fresh cache over the same store, with a rebuilt-
    # from-scratch HMatrix view (no attached evaluators), must serve the
    # artifact without deriving a single table.
    warm = CompiledCache(store=PlanStore(store_dir))
    H2 = replace(H, _batched=None, _batched_built=False,
                 _compiled=None, _compiled_built=False)
    assert warm.evaluator_for(H2) is not None
    warm_recompiles = warm.stats.builds

    print_table(
        f"Compiled vs batched ({DATASET}, N={n}, backend={ev.backend}, "
        f"{effective_cpu_count()} effective cpus)",
        ["q", "path", "batched (ms)", "compiled (ms)", "speedup",
         "bitwise"],
        rows,
    )

    speedup_q1 = shapes.get("1", {}).get("speedup")
    gate_eligible = not BENCH_QUICK and "1" in shapes
    save_results("compiled", {
        "dataset": DATASET, "n": n, "sweep_q": list(SWEEP_Q),
        "cpu_count": os.cpu_count(),
        "effective_cpu_count": effective_cpu_count(),
        "backend": ev.backend,
        "backends_available": list(available_backends()),
        "narrow_q_max": NARROW_Q_MAX,
        "shapes": shapes,
        "speedup_q1": speedup_q1,
        "bit_identical": bit_identical,
        "cold_builds": cold.stats.builds,
        "warm_recompiles": warm_recompiles,
        "warm_store_hits": warm.stats.store_hits,
        "gate_eligible": gate_eligible,
    })

    assert bit_identical, "compiled output diverged from order='batched'"
    assert warm_recompiles == 0, (
        "PlanStore-persisted compiled artifacts must warm-start")
    assert warm.stats.store_hits == 1
    if gate_eligible and speedup_q1 is not None:
        assert speedup_q1 >= 2.0, (
            f"compiled is only {speedup_q1:.2f}x batched at Q=1 "
            f"(gate: >= 2x on full-scale runs)")
