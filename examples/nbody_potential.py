#!/usr/bin/env python
"""N-body potential summation on a 3-D surface scan (scientific workload).

The low-dimensional side of the paper's evaluation: inverse-distance
potentials (SMASH's default kernel) summed over a 3-D point cloud. The
geometric tau-admissibility keeps genuinely nearby interactions exact and
compresses the far field; this example compares accuracy and flops across
the three structures the paper evaluates (HSS, geometric H2, budget H2-b).

Run:  python examples/nbody_potential.py
"""

import numpy as np

from repro import get_kernel, inspector, relative_error
from repro.datasets import dino_points


def main() -> None:
    rng = np.random.default_rng(0)
    points = dino_points(3000, seed=0)               # 3-D surface curve
    charges = rng.random((3000, 1))
    kernel = get_kernel("inverse_distance")          # SMASH's 1/||x-y||

    exact = kernel.matrix(points) @ charges

    print(f"{'structure':>14} {'eps_f':>10} {'near':>6} {'far':>6} "
          f"{'mean srank':>11} {'flops (MF)':>11} {'mem (MiB)':>10}")
    for structure, params in [
        ("hss", {}),
        ("h2-geometric", {"tau": 0.65}),
        ("h2-b", {"budget": 0.03}),
    ]:
        H = inspector(points, kernel=kernel, structure=structure,
                      bacc=1e-6, leaf_size=64, seed=0, **params)
        pot = H.matmul(charges)
        eps = relative_error(pot, exact)
        s = H.summary()
        print(f"{structure:>14} {eps:10.1e} {s['near_interactions']:6d} "
              f"{s['far_interactions']:6d} {s['mean_srank']:11.1f} "
              f"{H.evaluation_flops(1)/1e6:11.1f} {s['memory_mb']:10.2f}")

    print("\nGeometric admissibility keeps close-range interactions exact "
          "(more near blocks),\nwhile HSS forces every off-diagonal block "
          "low-rank — cheaper but less accurate\nfor kernels with a "
          "singular near field like 1/||x-y||.")


if __name__ == "__main__":
    main()
