#!/usr/bin/env python
"""Serving many requests from one Session: inspect once, execute many.

Simulates a small request stream against a kernel-evaluation service.
Requests repeat point sets, switch kernels, and tighten accuracy — the
exact reuse patterns of the paper's Section 5 (P1: same points, new
kernel/accuracy; full hit: identical request). The Session's fingerprint
cache turns those repeats into cache hits, and its stats show how little
inspection actually ran.

Run:  python examples/serving_session.py
"""

import time

import numpy as np

from repro import PlanConfig, Session


def main() -> None:
    rng = np.random.default_rng(0)
    clouds = {
        "sensor-grid": rng.random((2000, 2)),
        "fleet-gps": rng.random((1500, 3)),
    }
    # A request: (points, kernel, block accuracy). Later entries repeat
    # earlier structure — that's what the cache monetizes.
    requests = [
        ("sensor-grid", "gaussian", 1e-5),
        ("sensor-grid", "gaussian", 1e-5),   # identical -> full cache hit
        ("sensor-grid", "laplace", 1e-5),    # new kernel -> P1 reused
        ("sensor-grid", "gaussian", 1e-7),   # tighter bacc -> P1 reused
        ("fleet-gps", "gaussian", 1e-5),     # new points -> full inspection
        ("fleet-gps", "gaussian", 1e-5),     # identical -> full cache hit
        ("sensor-grid", "gaussian", 1e-5),   # still cached from request 1
    ]

    with Session(plan=PlanConfig(leaf_size=64), num_threads=4) as session:
        for i, (name, kernel, bacc) in enumerate(requests):
            points = clouds[name]
            W = rng.random((len(points), 32))
            t0 = time.perf_counter()
            K = session.operator(points, kernel=kernel, bacc=bacc)
            Y = K @ W
            dt = time.perf_counter() - t0
            print(f"request {i}: {name:12s} kernel={kernel:8s} "
                  f"bacc={bacc:.0e}  ||Y||={np.linalg.norm(Y):10.3e}  "
                  f"{dt*1e3:7.1f} ms")
        print(f"\nsession stats after {len(requests)} requests:")
        for key, value in session.cache_info().items():
            print(f"  {key:16s} {value}")


if __name__ == "__main__":
    main()
