#!/usr/bin/env python
"""Inspection reuse while tuning accuracy — the paper's Section 5 workflow.

A practitioner tunes the block accuracy (bacc) because the overall accuracy
of the HMatrix product is correlated with bacc only through a loose upper
bound (paper Fig. 9). Libraries re-run all of compression for every try;
MatRox re-runs only ``inspector_p2`` against the cached ``inspector_p1``
(tree, interactions, sampling, blocking), mirroring the paper's Figure 8.

Run:  python examples/accuracy_tuning.py
"""

import time

import numpy as np

from repro import get_kernel, inspector_p1, inspector_p2, relative_error
from repro.datasets import load_dataset


def main() -> None:
    rng = np.random.default_rng(0)
    points = load_dataset("letter", n=2000, seed=0)   # 16-dimensional
    kernel = get_kernel("gaussian", bandwidth=5.0)
    W = rng.random((len(points), 64))
    exact = kernel.matrix(points) @ W

    # ---- phase 1 once: everything that does not depend on kernel/bacc -----
    t0 = time.perf_counter()
    p1 = inspector_p1(points, structure="h2-b", budget=0.03,
                      leaf_size=64, seed=0)
    t_p1 = time.perf_counter() - t0
    print(f"inspector_p1 (tree + interactions + sampling + blocking): "
          f"{t_p1:.2f}s — computed ONCE\n")

    # ---- accuracy sweep: only phase 2 re-runs ------------------------------
    print(f"{'bacc':>8} {'overall eps_f':>14} {'mean srank':>11} "
          f"{'p2 time':>8}")
    total_p2 = 0.0
    for bacc in (1e-1, 1e-2, 1e-3, 1e-4, 1e-5):
        t0 = time.perf_counter()
        H = inspector_p2(p1, kernel, bacc=bacc, leaf_size=64, seed=0)
        dt = time.perf_counter() - t0
        total_p2 += dt
        eps = relative_error(H.matmul(W), exact)
        active = H.sranks[H.sranks > 0]
        print(f"{bacc:8.0e} {eps:14.2e} {active.mean():11.1f} {dt:7.2f}s")

    # A library would have paid ~(t_p1 + t_p2) for each of the 5 tries.
    library_cost = 5 * (t_p1 + total_p2 / 5)
    matrox_cost = t_p1 + total_p2
    print(f"\n5-change tuning cost: MatRox {matrox_cost:.2f}s vs "
          f"library-style {library_cost:.2f}s "
          f"({library_cost/matrox_cost:.2f}x saved by reusing inspection)")


if __name__ == "__main__":
    main()
