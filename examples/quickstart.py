#!/usr/bin/env python
"""Quickstart: compress a kernel matrix and multiply it, MatRox style.

Mirrors the paper's Figure 2: the *inspector* takes points, an admissibility
setting, a kernel function, and a block accuracy, and produces the HMatrix
(CDS-stored generators) plus generated specialized multiplication code; the
*executor* then computes Y = K~ @ W.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    PlanConfig,
    Session,
    get_kernel,
    inspector,
    matmul,
    relative_error,
)


def main() -> None:
    rng = np.random.default_rng(0)

    # --- inputs (Figure 2 of the paper) ------------------------------------
    points = rng.random((3000, 2))            # the pointset
    tau = 0.65                                # admissibility parameter
    bacc = 1e-5                               # block approximation accuracy
    kfunc = get_kernel("gaussian", bandwidth=0.5)

    # --- inspector: compression + structure analysis + code generation -----
    H = inspector(points, kernel=kfunc, structure="h2-geometric",
                  tau=tau, bacc=bacc, leaf_size=64, seed=0)

    s = H.summary()
    print("HMatrix built:")
    print(f"  N = {s['N']}, structure = {s['structure']}, "
          f"tree height = {s['tree_height']}")
    print(f"  near interactions = {s['near_interactions']}, "
          f"far = {s['far_interactions']}")
    print(f"  mean srank = {s['mean_srank']:.1f}, max = {s['max_srank']}")
    print(f"  memory = {s['memory_mb']:.2f} MiB "
          f"(compression ratio {s['compression_ratio']:.1f}x)")
    print(f"  lowering decision = {s['lowering']}")

    # --- executor: HMatrix-matrix multiplication ---------------------------
    W = rng.random((3000, 128))
    Y = matmul(H, W)

    # --- validate against the dense product --------------------------------
    K = kfunc.matrix(points)
    eps_f = relative_error(Y, K @ W)
    print(f"\noverall accuracy eps_f = {eps_f:.2e}  (bacc = {bacc:.0e})")
    flops_dense = 2 * 3000**2 * 128
    flops_h = H.evaluation_flops(128)
    print(f"evaluation flops: {flops_h/1e6:.1f} MF vs dense "
          f"{flops_dense/1e6:.1f} MF ({flops_dense/flops_h:.1f}x fewer)")

    # --- the same workflow, session-style ----------------------------------
    # A Session caches inspection by content fingerprint (points + plan):
    # the second operator request below reuses the cached plan outright.
    plan = PlanConfig(structure="h2-geometric", tau=tau, bacc=bacc,
                      leaf_size=64, seed=0)
    with Session(plan=plan, num_threads=4) as session:
        K = session.operator(points, kernel=kfunc)   # lazy: nothing runs yet
        Y2 = K @ W                                   # first product inspects
        _ = session.operator(points, kernel=kfunc) @ W   # cache hit
        print(f"\nsession: {session.cache_info()}")
        print(f"session result matches one-shot path: "
              f"{np.allclose(Y, Y2, atol=1e-12)}")


if __name__ == "__main__":
    main()
