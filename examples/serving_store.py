#!/usr/bin/env python
"""Compile once, serve forever: restart with a warm PlanStore.

Walks the full durable-serving lifecycle on one machine:

1. **Compile** — a Session with a disk-backed PlanStore inspects two
   point clouds; every artifact lands on disk as an integrity-checked
   ``.npz`` + manifest pair.
2. **"Restart"** — brand-new Session and PlanStore objects over the
   same directory (what a new process would construct): the first
   request is served with ZERO p1/p2 builds, and the counters prove it.
3. **Serve** — a KernelService over the warm store takes a burst of
   concurrent requests and micro-batches them into stacked GEMMs.

Run:  python examples/serving_store.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import KernelService, PlanConfig, PlanStore, Session

PLAN = PlanConfig(leaf_size=64, seed=0)


def main() -> None:
    rng = np.random.default_rng(0)
    clouds = {
        "sensor-grid": rng.random((2000, 2)),
        "fleet-gps": rng.random((1500, 3)),
    }
    store_dir = Path(tempfile.mkdtemp(prefix="plan-store-"))

    # ------------------------------------------------- 1. compile once
    t0 = time.perf_counter()
    with Session(plan=PLAN, store=PlanStore(store_dir)) as session:
        for name, points in clouds.items():
            session.inspect(points, kernel="gaussian")
    compile_s = time.perf_counter() - t0
    print(f"compiled {len(clouds)} plans in {compile_s*1e3:.0f} ms "
          f"-> {store_dir}")
    for entry in PlanStore(store_dir).entries():
        print(f"  {entry['digest'][:12]}…  tier={entry['tier']:8s} "
              f"{entry['size']/1024:8.1f} KiB  sha256={entry['sha256'][:12]}…")

    # ------------------------------- 2. "restart": fresh objects, warm disk
    t0 = time.perf_counter()
    with Session(plan=PLAN, store=PlanStore(store_dir)) as session:
        H = session.inspect(clouds["sensor-grid"], kernel="gaussian")
        Y = session.matmul(H, rng.random((2000, 16)))
        warm_s = time.perf_counter() - t0
        info = session.cache_info()
    print(f"\nwarm start: first matmul in {warm_s*1e3:.0f} ms "
          f"(vs {compile_s*1e3:.0f} ms compile) ||Y||={np.linalg.norm(Y):.3e}")
    print(f"  p1_builds={info['p1_builds']}  p2_builds={info['p2_builds']}  "
          f"hmatrix_hits={info['hmatrix_hits']}  "
          f"disk_hits={info['disk_hits']}  <- zero builds, proven")

    # ------------------------------------------ 3. serve a request burst
    with KernelService(store=PlanStore(store_dir), plan=PLAN,
                       max_batch=8, max_wait_ms=2.0) as service:
        for name, points in clouds.items():
            service.register(name, points, kernel="gaussian", warm=True)
        futures = [
            service.submit(name, rng.random(len(clouds[name])))
            for _ in range(12) for name in clouds
        ]
        norms = [np.linalg.norm(f.result()) for f in futures]
        stats = service.stats()
        builds = service.session.stats.p1_builds
    print(f"\nserved {len(futures)} concurrent requests "
          f"(first ||y||={norms[0]:.3e})")
    print(f"  p50={stats['p50_ms']:.2f} ms  p99={stats['p99_ms']:.2f} ms  "
          f"mean_batch={stats['mean_batch']:.1f}  "
          f"max_queue_depth={stats['max_queue_depth']}")
    print(f"  p1_builds during serving: {builds} (store stayed warm)")


if __name__ == "__main__":
    main()
