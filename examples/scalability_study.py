#!/usr/bin/env python
"""Strong-scaling study on the simulated Haswell and KNL machines.

Reproduces the mechanism of the paper's Figure 7 at example scale: the
MatRox schedule (coarsen + block, static load-balanced) against the
GOFMM-style dynamic task queue and the STRUMPACK-style level-by-level
sweep, across core counts. See DESIGN.md for why execution time comes from
the machine simulator (this sandbox has one physical core).

Run:  python examples/scalability_study.py
"""

import numpy as np

from repro import get_kernel, Inspector
from repro.baselines import GOFMMBaseline, MatRoxSystem, STRUMPACKBaseline
from repro.runtime import HASWELL, KNL


def scaling_row(system_name, times):
    base = times[0]
    return f"{system_name:>10} " + " ".join(
        f"{base/t:6.1f}x" for t in times
    )


def main() -> None:
    rng = np.random.default_rng(0)
    points = rng.random((4000, 2))
    kernel = get_kernel("gaussian", bandwidth=0.5)
    q = 2048

    for machine, cores in ((HASWELL, (1, 2, 4, 8, 12)),
                           (KNL, (1, 4, 17, 34, 68))):
        m = machine.scaled_caches(len(points) / 100_000)
        # Coarsening partitions for the largest simulated core count.
        insp = Inspector(structure="hss", leaf_size=16, bacc=1e-4,
                         seed=0, p=max(cores))
        H = insp.run(points, kernel)
        mx = MatRoxSystem(H)
        go = GOFMMBaseline()
        sp = STRUMPACKBaseline()

        t_m = [mx.simulate(H.factors, q, m, p=p).time_s for p in cores]
        t_g = [go.simulate(H.factors, q, m, p=p).time_s for p in cores]
        t_s = [sp.simulate(H.factors, q, m, p=p).time_s for p in cores]

        print(f"\n== {machine.name} (speedup over 1 core), cores = {cores}")
        print(scaling_row("matrox", t_m))
        print(scaling_row("gofmm", t_g))
        print(scaling_row("strumpack", t_s))
        print(f"  at {cores[-1]} cores, MatRox is "
              f"{t_g[-1]/t_m[-1]:.2f}x faster than GOFMM and "
              f"{t_s[-1]/t_m[-1]:.2f}x faster than STRUMPACK")


if __name__ == "__main__":
    main()
