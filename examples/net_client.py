#!/usr/bin/env python
"""Serve kernels over the network: tenants, auth, quotas, warm restart.

Walks the full repro.net lifecycle against an in-process server on an
ephemeral loopback port (no setup; the same client code talks to a
``repro server`` started from the shell):

1. **Serve** — a KernelServer with two token-authenticated tenants;
   each compiles its own point cloud and evaluates panels over HTTP,
   chunk-streamed so the dispatcher micro-batches.
2. **Isolation + failure codes** — identical points for both tenants
   still compile per tenant (separate PlanStore roots); a cross-tenant
   token gets 403, an over-quota burst gets 429 + Retry-After.
3. **Warm restart** — a brand-new server over the same root serves
   both tenants with ZERO inspections, proven by counters.

Run:  python examples/net_client.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import KernelClient, KernelServer
from repro.net import ServerError, TenantQuota

TOKENS = {"s3cret-a": "acme", "s3cret-b": "globex"}
PLAN = {"leaf_size": 64, "seed": 0}
KERNEL = {"name": "gaussian", "bandwidth": 5.0}


def main() -> None:
    rng = np.random.default_rng(0)
    points = rng.random((2000, 2))
    W = rng.random((2000, 32))
    root = Path(tempfile.mkdtemp(prefix="net-root-"))

    # ------------------------------------------- 1. serve two tenants
    quota = TenantQuota(max_requests=40, window_seconds=60.0)
    with KernelServer(root, tokens=TOKENS, quota=quota) as server:
        print(f"serving on {server.url}  (root {root})")
        acme = KernelClient(server.url, tenant="acme", token="s3cret-a")
        globex = KernelClient(server.url, tenant="globex",
                              token="s3cret-b")
        for name, client in (("acme", acme), ("globex", globex)):
            info = client.compile(points, kernel=KERNEL, plan=PLAN,
                                  points_id="grid")
            print(f"  {name:6s} compiled={info['compiled']} "
                  f"plan={info['plan_fingerprint'][:12]}… "
                  f"in {info['compile_seconds']*1e3:.0f} ms")
        Y = acme.matmul("grid", W, chunk_cols=8)  # 4 chunks, micro-batched
        print(f"  acme   Y = K @ W done, shape {Y.shape}, "
              f"service batches: "
              f"{acme.stats()['service']['max_batch_observed']} max")

        # --------------------- 2. isolation and machine-readable errors
        try:
            KernelClient(server.url, tenant="globex",
                         token="s3cret-a").stats()
        except ServerError as err:
            print(f"  cross-tenant token -> HTTP {err.status} "
                  f"[{err.code}]")
        try:
            for _ in range(50):
                acme.matmul("grid", W[:, :1])
        except ServerError as err:
            print(f"  quota burst       -> HTTP {err.status} "
                  f"[{err.code}] retry after {err.retry_after:.0f}s")

    # ------------------------- 3. restart: same root, zero inspections
    with KernelServer(root, tokens=TOKENS) as server:
        acme = KernelClient(server.url, tenant="acme", token="s3cret-a")
        info = acme.compile(points, kernel=KERNEL, plan=PLAN,
                            points_id="grid")
        Y2 = acme.matmul("grid", W)
        session = acme.stats()["session"]
        print(f"restarted: compiled={info['compiled']} (store hit), "
              f"p1_builds={session['p1_builds']}, "
              f"p2_builds={session['p2_builds']}, "
              f"bit-identical={bool(np.array_equal(Y, Y2))}")
        assert info["compiled"] is False
        assert session["p1_builds"] == session["p2_builds"] == 0
    print(f"audit log: {sum(1 for _ in open(root / 'audit.jsonl'))} "
          f"request lines in {root / 'audit.jsonl'}")


if __name__ == "__main__":
    main()
