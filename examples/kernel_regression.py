#!/usr/bin/env python
"""Gaussian kernel ridge regression accelerated with an HMatrix.

The paper's motivating workload (Section 1): Gaussian ridge regression needs
repeated products with the N x N kernel matrix inside an iterative solver.
This example trains a regressor on a synthetic dataset two ways —

* dense: assemble K and run conjugate gradient with exact products;
* MatRox: compress K once, reuse the HMatrix product inside the same CG —

and shows both reach the same predictions while the HMatrix path does a
fraction of the flops per iteration.

Run:  python examples/kernel_regression.py
"""

import numpy as np

from repro import KernelOperator, PlanConfig, get_kernel
from repro import conjugate_gradient as repro_cg
from repro.datasets import clustered_gaussian_points


def conjugate_gradient(apply_A, b, tol=1e-8, max_iter=200):
    """Plain CG on an SPD operator given as a callable."""
    x = np.zeros_like(b)
    r = b - apply_A(x)
    p = r.copy()
    rs = float(r.T @ r)
    for it in range(max_iter):
        Ap = apply_A(p)
        alpha = rs / float(p.T @ Ap)
        x += alpha * p
        r -= alpha * Ap
        rs_new = float(r.T @ r)
        if np.sqrt(rs_new) < tol * np.sqrt(len(b)):
            return x, it + 1
        p = r + (rs_new / rs) * p
        rs = rs_new
    return x, max_iter


def main() -> None:
    rng = np.random.default_rng(3)
    n, d = 2000, 12
    X = clustered_gaussian_points(n, d, n_clusters=8, seed=1)
    # Ground-truth function: smooth + noise.
    y = np.sin(X[:, 0] * 2.0) + 0.5 * np.cos(X @ rng.normal(size=d)) \
        + 0.05 * rng.normal(size=n)

    lam = 1e-2                                # ridge regularization
    kernel = get_kernel("gaussian", bandwidth=2.0)

    # --- dense reference -----------------------------------------------------
    K = kernel.matrix(X)
    alpha_dense, it_dense = conjugate_gradient(
        lambda v: K @ v + lam * v, y
    )

    # --- HMatrix-accelerated -------------------------------------------------
    # The regularized system is a composed operator, K~ + lam*I, handed to
    # the library CG directly — no hand-rolled apply_A closure.
    plan = PlanConfig(structure="h2-b", budget=0.05, bacc=1e-7,
                      leaf_size=64, seed=0)
    K_op = KernelOperator.from_points(X, kernel=kernel, plan=plan)
    res = repro_cg(K_op.shifted(lam), y, tol=1e-10, max_iter=200)
    alpha_h, it_h = res.x, res.iterations
    H = K_op.hmatrix

    train_err_dense = np.linalg.norm(K @ alpha_dense + lam * alpha_dense - y)
    train_err_h = np.linalg.norm(K @ alpha_h + lam * alpha_h - y)
    coef_diff = np.linalg.norm(alpha_dense - alpha_h) / np.linalg.norm(alpha_dense)

    flops_dense = 2 * n * n
    flops_h = H.evaluation_flops(1)
    print(f"dense CG:   {it_dense} iterations, residual {train_err_dense:.2e}")
    print(f"hmatrix CG: {it_h} iterations, residual {train_err_h:.2e}")
    print(f"coefficient agreement: {coef_diff:.2e} relative difference")
    print(f"flops per matvec: dense {flops_dense/1e6:.1f} MF vs "
          f"hmatrix {flops_h/1e6:.1f} MF ({flops_dense/flops_h:.1f}x fewer)")
    print(f"hmatrix memory: {H.memory_bytes()/2**20:.1f} MiB vs dense "
          f"{n*n*8/2**20:.1f} MiB")

    # The same workflow through the library's high-level estimator:
    from repro.solvers import KernelRidgeRegression

    model = KernelRidgeRegression(kernel=kernel, lam=lam, structure="h2-b",
                                  budget=0.05, bacc=1e-7,
                                  leaf_size=64).fit(X, y)
    pred = model.predict(X[:200])
    corr = np.corrcoef(pred, y[:200])[0, 1]
    print(f"\nKernelRidgeRegression estimator: CG converged in "
          f"{model.cg_result_.iterations} iterations, "
          f"train-subset correlation {corr:.4f}")


if __name__ == "__main__":
    main()
