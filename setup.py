"""Shim so editable installs work offline with legacy setuptools (no wheel)."""
from setuptools import setup

setup()
