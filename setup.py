"""Package metadata. Editable installs work offline with legacy setuptools
(no wheel); the quickstart and docs live in README.md.

The version is single-sourced from ``repro.__version__`` (read textually so
building an sdist does not require the runtime dependencies)."""
import re
from pathlib import Path

from setuptools import find_packages, setup


def _version() -> str:
    init = Path(__file__).parent / "src" / "repro" / "__init__.py"
    m = re.search(r'^__version__ = "([^"]+)"', init.read_text(), re.M)
    if not m:
        raise RuntimeError("__version__ not found in src/repro/__init__.py")
    return m.group(1)


setup(
    name="matrox-repro",
    version=_version(),
    description=(
        "Reproduction of MatRox (Liu et al., PPoPP 2020): inspector-executor "
        "H2 hierarchical-matrix evaluation with CDS storage, specialized "
        "code generation, and a bucketed batched-GEMM executor"
    ),
    long_description=Path(__file__).with_name("README.md").read_text(),
    long_description_content_type="text/markdown",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=["numpy"],
)
