"""Package metadata. Editable installs work offline with legacy setuptools
(no wheel); the quickstart and docs live in README.md."""
from pathlib import Path

from setuptools import find_packages, setup

setup(
    name="matrox-repro",
    version="1.0.0",
    description=(
        "Reproduction of MatRox (Liu et al., PPoPP 2020): inspector-executor "
        "H2 hierarchical-matrix evaluation with CDS storage, specialized "
        "code generation, and a bucketed batched-GEMM executor"
    ),
    long_description=Path(__file__).with_name("README.md").read_text(),
    long_description_content_type="text/markdown",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=["numpy"],
)
