"""Compiled kernel tier: bit-identity, fallbacks, store round-trips.

The acceptance bar for ``order="compiled"``: byte-identical to
``order="batched"`` across the equivalence matrix ({float32, float64} x
{single panel, matmul_many, chunked multi-RHS} x {serial, KernelService
micro-batching}), typed degradation (host mismatch, missing numba,
version skew — a counter, never an exception), and a compiled-tier
artifact that quarantines on tamper and rebuilds exactly once.
"""

from __future__ import annotations

import importlib.machinery
import json
import sys
import types
from dataclasses import replace

import numpy as np
import pytest

from repro import KernelService, PlanConfig, PlanStore, Session
from repro.api.policy import ExecutionPolicy
from repro.api.store import registered_tiers
from repro.codegen import compiled as C
from repro.codegen.compiled import (
    COMPILED_FORMAT_VERSION,
    NARROW_Q_MAX,
    CompiledArtifact,
    CompiledCache,
    available_backends,
    compile_evaluator,
    load_compiled_artifact,
    reset_default_compiled_cache,
    save_compiled_artifact,
)
from repro.core.executor import matmul_many
from repro.core.io import PlanStoreError
from repro.host import host_key, host_signature
from repro.tuning import Autotuner, autotune_backends
from repro.tuning.profile import hmatrix_fingerprint

PLAN = PlanConfig(leaf_size=32, bacc=1e-6, p=4, seed=0)


@pytest.fixture(autouse=True)
def _isolate_default_cache():
    reset_default_compiled_cache()
    yield
    reset_default_compiled_cache()


def fresh(H):
    """A copy of ``H`` with no attached evaluators (same content, so the
    same fingerprint) — keeps per-test counters honest and the shared
    session fixture unmutated."""
    return replace(H, _batched=None, _batched_built=False,
                   _compiled=None, _compiled_built=False)


def _bytes(a):
    return np.ascontiguousarray(a).tobytes()


# --------------------------------------------------------------------------
# Equivalence matrix: compiled is byte-identical to batched.
# --------------------------------------------------------------------------

class TestEquivalenceMatrix:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("q", [None, 1, 3, NARROW_Q_MAX,
                                   NARROW_Q_MAX + 1, 40])
    def test_single_panel(self, hmatrix_2d, dtype, q):
        """One panel per dtype, narrow and wide (wide exercises the
        batched-delegation path)."""
        H = fresh(hmatrix_2d)
        g = np.random.default_rng(5)
        shape = (H.dim,) if q is None else (H.dim, q)
        W = (g.random(shape) * 2 - 1).astype(dtype)
        Yb = H.matmul(W, order="batched")
        Yc = H.matmul(W, order="compiled")
        assert Yc.shape == Yb.shape
        assert _bytes(Yc) == _bytes(Yb)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_matmul_many_stream(self, hmatrix_2d, dtype):
        H = fresh(hmatrix_2d)
        g = np.random.default_rng(6)
        panels = [g.random((H.dim, q)).astype(dtype) for q in (1, 4, 2)]
        Yb = matmul_many(H, panels, order="batched")
        Yc = matmul_many(H, panels, order="compiled")
        for yb, yc in zip(Yb, Yc, strict=True):
            assert _bytes(yc) == _bytes(yb)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_chunked_multi_rhs(self, hmatrix_2d, dtype):
        """Wide panel under an explicit q_chunk: the compiled evaluator
        delegates to the batched one with the same streaming chunk."""
        H = fresh(hmatrix_2d)
        W = np.random.default_rng(7).random((H.dim, 40)).astype(dtype)
        Yb = H.matmul(W, order="batched", q_chunk=16)
        Yc = H.matmul(W, order="compiled", q_chunk=16)
        assert _bytes(Yc) == _bytes(Yb)

    def test_via_kernelservice_microbatching(self, points_2d,
                                             gaussian_kernel):
        """Micro-batched serving: same merged panels, same bytes.

        max_batch equals the number of submissions and the linger is
        generous, so both services deterministically merge all requests
        into one stacked matmul (asserted via max_batch_observed).
        """
        g = np.random.default_rng(8)
        panels = [g.random((len(points_2d), q)) for q in (1, 2, 1)]

        def serve(order):
            with KernelService(plan=PLAN,
                               policy=ExecutionPolicy(order=order),
                               max_batch=len(panels),
                               max_wait_ms=2000.0) as svc:
                svc.register("grid", points_2d, kernel=gaussian_kernel,
                             warm=True)
                futs = [svc.submit("grid", W) for W in panels]
                out = [f.result(30) for f in futs]
                assert svc.stats()["max_batch_observed"] == len(panels)
            return out

        for yb, yc in zip(serve("batched"), serve("compiled"),
                          strict=True):
            assert _bytes(yc) == _bytes(yb)

    def test_delegation_threshold(self, hmatrix_2d):
        """Panels wider than NARROW_Q_MAX run through the batched
        evaluator (counter-checked), narrower ones through the fused
        driver — both byte-identical (covered above)."""
        H = fresh(hmatrix_2d)
        ev = compile_evaluator(H)
        g = np.random.default_rng(9)
        perm = H.tree.perm
        ev(g.random((H.dim, NARROW_Q_MAX))[perm])
        assert ev._rt.calls == 1
        ev(g.random((H.dim, NARROW_Q_MAX + 1))[perm])
        assert ev._rt.calls == 1  # wide panel delegated


# --------------------------------------------------------------------------
# Artifact codec: round-trip + fail-closed decode.
# --------------------------------------------------------------------------

class TestArtifactCodec:
    def test_roundtrip(self, hmatrix_2d, tmp_path):
        H = fresh(hmatrix_2d)
        ev = compile_evaluator(H)
        path = tmp_path / "art.npz"
        save_compiled_artifact(ev.artifact, path)
        art = load_compiled_artifact(path)
        assert art.meta == json.loads(json.dumps(ev.artifact.meta))
        assert art.source == ev.artifact.source
        for name, table in ev.artifact.tables.items():
            np.testing.assert_array_equal(art.tables[name], table)

    def test_rehydrated_artifact_is_byte_identical(self, hmatrix_2d,
                                                   tmp_path):
        H = fresh(hmatrix_2d)
        ev = compile_evaluator(H)
        path = tmp_path / "art.npz"
        save_compiled_artifact(ev.artifact, path)
        ev2 = C.evaluator_from_artifact(load_compiled_artifact(path),
                                        H.batched_evaluator)
        W = np.random.default_rng(0).random((H.dim, 2))
        perm = H.tree.perm
        assert _bytes(ev2(W[perm])) == _bytes(ev(W[perm]))

    def test_garbage_bytes_fail_closed(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not an npz payload")
        with pytest.raises(PlanStoreError, match="unreadable|truncated"):
            load_compiled_artifact(path)

    def test_missing_fields_fail_closed(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, meta=np.array("{}"), source=np.array("x"))
        with pytest.raises(PlanStoreError, match="missing field"):
            load_compiled_artifact(path)

    def test_inconsistent_tables_fail_closed(self, hmatrix_2d, tmp_path):
        """Valid npz whose spec rows disagree with the arena: the
        structural validator must refuse it (indexing from such a plan
        would read garbage mid-evaluation)."""
        H = fresh(hmatrix_2d)
        art = compile_evaluator(H).artifact
        bad_tables = dict(art.tables)
        bad_tables["near_arena"] = art.tables["near_arena"][:-7]
        path = tmp_path / "bad.npz"
        save_compiled_artifact(
            CompiledArtifact(art.meta, art.source, bad_tables), path)
        with pytest.raises(PlanStoreError, match="inconsistent"):
            load_compiled_artifact(path)

    def test_registered_as_store_tier(self):
        assert "compiled" in registered_tiers()


# --------------------------------------------------------------------------
# Typed fallbacks: degradation is a counter, never an exception.
# --------------------------------------------------------------------------

def _put_doctored(store, cache, H, **meta_overrides):
    """Persist this host's artifact with doctored meta under the live
    key (the stored-artifact-from-elsewhere scenarios)."""
    art = compile_evaluator(H).artifact
    bad = CompiledArtifact(meta={**art.meta, **meta_overrides},
                           source=art.source, tables=art.tables)
    store.put("compiled", cache.key(hmatrix_fingerprint(H)), bad)
    store.clear_memory()


class TestTypedFallbacks:
    @pytest.mark.parametrize("doctor,reason", [
        ({"host": {"cpus": 999, "blas": "other", "machine": "elsewhere"}},
         "host_mismatch"),
        ({"backend": "numba"}, "numba_missing"),
        ({"format_version": 999}, "version_skew"),
        ({"fingerprint": "deadbeefdeadbeef"}, "fingerprint_mismatch"),
    ])
    def test_unusable_stored_artifact_degrades(self, hmatrix_2d, tmp_path,
                                               monkeypatch, doctor, reason):
        if reason == "numba_missing":
            monkeypatch.delitem(sys.modules, "numba", raising=False)
            monkeypatch.setenv("MATROX_COMPILED_BACKEND", "numpy-fused")
        store = PlanStore(tmp_path)
        cache = CompiledCache(store=store)
        _put_doctored(store, cache, fresh(hmatrix_2d), **doctor)

        H = fresh(hmatrix_2d)
        assert cache.evaluator_for(H) is None
        assert cache.stats.fallbacks == {reason: 1}
        assert cache.stats.builds == 0
        # ...and evaluation degrades to the batched bytes, no exception.
        W = np.random.default_rng(1).random((H.dim, 2))
        assert _bytes(H.matmul(W, order="compiled")) == \
            _bytes(H.matmul(W, order="batched"))

    def test_no_batched_lowering_degrades(self, hmatrix_2d):
        H = replace(fresh(hmatrix_2d), _batched=None, _batched_built=True)
        cache = CompiledCache()
        assert cache.evaluator_for(H) is None
        assert cache.stats.fallbacks == {"no_batched_lowering": 1}
        W = np.random.default_rng(2).random((H.dim, 3))
        assert _bytes(H.matmul(W, order="compiled")) == \
            _bytes(H.matmul(W, order="original"))

    def test_tamper_quarantines_and_rebuilds_exactly_once(self, hmatrix_2d,
                                                          tmp_path):
        store = PlanStore(tmp_path)
        cold = CompiledCache(store=store)
        cold.evaluator_for(fresh(hmatrix_2d))
        assert cold.stats.builds == 1 and cold.stats.store_puts == 1

        for manifest in tmp_path.glob("*.json"):
            if json.loads(manifest.read_text())["tier"] != "compiled":
                continue
            payload = manifest.with_suffix(".npz")
            data = bytearray(payload.read_bytes())
            data[len(data) // 2] ^= 0xFF
            payload.write_bytes(bytes(data))

        tampered = PlanStore(tmp_path)
        warm = CompiledCache(store=tampered)
        H = fresh(hmatrix_2d)
        assert warm.evaluator_for(H) is not None
        assert warm.stats.fallbacks == {"store_corrupt": 1}
        assert warm.stats.builds == 1        # rebuilt exactly once...
        assert warm.stats.store_puts == 1    # ...and re-persisted
        assert tampered.stats.quarantined >= 1
        assert warm.evaluator_for(H) is not None
        assert warm.stats.builds == 1        # memory hit, no second build

        healed = CompiledCache(store=PlanStore(tmp_path))
        assert healed.evaluator_for(fresh(hmatrix_2d)) is not None
        assert healed.stats.builds == 0      # clean store hit again
        assert healed.stats.store_hits == 1

    def test_truncation_quarantines_and_rebuilds(self, hmatrix_2d,
                                                 tmp_path):
        store = PlanStore(tmp_path)
        CompiledCache(store=store).evaluator_for(fresh(hmatrix_2d))
        for manifest in tmp_path.glob("*.json"):
            if json.loads(manifest.read_text())["tier"] == "compiled":
                payload = manifest.with_suffix(".npz")
                payload.write_bytes(payload.read_bytes()[:64])
        warm = CompiledCache(store=PlanStore(tmp_path))
        assert warm.evaluator_for(fresh(hmatrix_2d)) is not None
        assert warm.stats.fallbacks == {"store_corrupt": 1}
        assert warm.stats.builds == 1


# --------------------------------------------------------------------------
# Numba backend (faked: the container has no numba; CI has a real leg).
# --------------------------------------------------------------------------

@pytest.fixture()
def fake_numba(monkeypatch):
    """An importable stand-in whose ``njit`` is an identity decorator —
    the jitted gather/scatter loops run as plain Python, so results are
    exact and the backend-selection/serialization path is fully
    exercised without the real dependency."""
    mod = types.ModuleType("numba")
    mod.__spec__ = importlib.machinery.ModuleSpec("numba", None)

    def njit(fn=None, **_kwargs):
        return fn if fn is not None else (lambda f: f)

    mod.njit = njit
    monkeypatch.setitem(sys.modules, "numba", mod)
    monkeypatch.setattr(C, "_numba_impls_cache", None)
    yield mod
    monkeypatch.setattr(C, "_numba_impls_cache", None)


class TestNumbaBackend:
    def test_probe_with_and_without(self, fake_numba, monkeypatch):
        assert set(available_backends()) == {"numpy-fused", "numba"}
        assert C.select_backend() == "numba"  # preferred when importable
        monkeypatch.setenv("MATROX_COMPILED_BACKEND", "numpy-fused")
        assert available_backends() == ("numpy-fused",)

    def test_numba_backend_is_byte_identical(self, hmatrix_2d, fake_numba,
                                             monkeypatch):
        monkeypatch.setenv("MATROX_COMPILED_BACKEND", "numba")
        H = fresh(hmatrix_2d)
        ev = compile_evaluator(H)
        assert ev.backend == "numba"
        g = np.random.default_rng(4)
        for shape in [(H.dim,), (H.dim, 3), (H.dim, NARROW_Q_MAX)]:
            W = g.random(shape)
            assert _bytes(H.matmul(W, order="compiled")) == \
                _bytes(H.matmul(W, order="batched"))


# --------------------------------------------------------------------------
# Warm start: zero recompiles, zero re-tunes (counter-asserted).
# --------------------------------------------------------------------------

class TestWarmStart:
    def test_session_restart_zero_recompiles(self, points_2d,
                                             gaussian_kernel, tmp_path):
        pol = ExecutionPolicy(order="compiled")
        W = np.random.default_rng(0).random((len(points_2d), 2))
        with Session(plan=PLAN, policy=pol,
                     store=PlanStore(tmp_path)) as cold:
            Yc = cold.matmul(cold.inspect(points_2d,
                                          kernel=gaussian_kernel), W)
            info = cold.cache_info()
            assert info["compiled"]["builds"] == 1
            assert info["compiled"]["store_puts"] == 1

        with Session(plan=PLAN, policy=pol,
                     store=PlanStore(tmp_path)) as warm:
            Yw = warm.matmul(warm.inspect(points_2d,
                                          kernel=gaussian_kernel), W)
            info = warm.cache_info()
        assert info["compiled"]["builds"] == 0      # zero recompiles
        assert info["compiled"]["store_hits"] == 1
        assert info["p1_builds"] == 0 and info["p2_builds"] == 0
        assert _bytes(Yw) == _bytes(Yc)

    def test_auto_session_restart_zero_retunes_and_recompiles(
            self, points_2d, gaussian_kernel, tmp_path):
        """order="auto" over a warm store: the profile AND any compiled
        artifact it produced replay without one trial or rebuild."""
        pol = ExecutionPolicy(order="auto")
        W = np.random.default_rng(1).random((len(points_2d), 2))
        with Session(plan=PLAN, policy=pol,
                     store=PlanStore(tmp_path)) as cold:
            cold.matmul(cold.inspect(points_2d, kernel=gaussian_kernel), W)
            assert cold.cache_info()["autotune"]["tunes"] == 1

        with Session(plan=PLAN, policy=pol,
                     store=PlanStore(tmp_path)) as warm:
            warm.matmul(warm.inspect(points_2d, kernel=gaussian_kernel), W)
            info = warm.cache_info()
        assert info["autotune"]["tunes"] == 0       # zero re-tunes
        assert info["compiled"].get("builds", 0) == 0  # zero recompiles


# --------------------------------------------------------------------------
# One host signature, two tiers: a change invalidates both.
# --------------------------------------------------------------------------

class TestHostSignature:
    def test_signature_change_invalidates_both_tiers(self, hmatrix_2d,
                                                     tmp_path, monkeypatch):
        store = PlanStore(tmp_path)
        h1 = host_signature()
        tuner1 = Autotuner(store=store, reps=1, trial_cols=2, host=h1)
        tuner1.profile_for(fresh(hmatrix_2d), 4,
                           ExecutionPolicy(order="auto"))
        cache1 = CompiledCache(store=store, host=h1)
        cache1.evaluator_for(fresh(hmatrix_2d))
        assert tuner1.stats.tunes == 1 and cache1.stats.builds == 1

        # The same store on a like host: both tiers replay.
        store.clear_memory()
        tuner2 = Autotuner(store=store, reps=1, trial_cols=2, host=h1)
        tuner2.profile_for(fresh(hmatrix_2d), 4,
                           ExecutionPolicy(order="auto"))
        cache2 = CompiledCache(store=store, host=h1)
        cache2.evaluator_for(fresh(hmatrix_2d))
        assert tuner2.stats.tunes == 0 and tuner2.stats.store_hits == 1
        assert cache2.stats.builds == 0 and cache2.stats.store_hits == 1

        # The signature moves (new BLAS vendor): BOTH tiers miss — a
        # disagreement here would replay one tier against the wrong host.
        monkeypatch.setattr("repro.host._blas_vendor", lambda: "other-blas")
        h2 = host_signature()
        assert host_key(h2) != host_key(h1)
        tuner3 = Autotuner(store=store, reps=1, trial_cols=2, host=h2)
        tuner3.profile_for(fresh(hmatrix_2d), 4,
                           ExecutionPolicy(order="auto"))
        cache3 = CompiledCache(store=store, host=h2)
        cache3.evaluator_for(fresh(hmatrix_2d))
        assert tuner3.stats.tunes == 1 and tuner3.stats.store_hits == 0
        assert cache3.stats.builds == 1 and cache3.stats.store_hits == 0


# --------------------------------------------------------------------------
# Autotune registry: {original, batched, process, compiled} from one
# source of truth.
# --------------------------------------------------------------------------

class TestAutotuneRegistry:
    def test_backends_enumerate_all_four(self):
        names = {b.name for b in autotune_backends()}
        assert names >= {"batched", "original", "process", "compiled"}

    def test_compiled_candidate_at_narrow_widths(self, hmatrix_2d):
        tuner = Autotuner(reps=1, trial_cols=2)
        H = fresh(hmatrix_2d)
        narrow = tuner.candidate_policies(H, 2)
        assert {"order": "compiled"} in narrow
        wide = tuner.candidate_policies(H, 512)
        assert {"order": "compiled"} not in wide

    def test_stats_report_registry(self, hmatrix_2d):
        tuner = Autotuner(reps=1, trial_cols=2)
        tuner.tune(fresh(hmatrix_2d), 2, ExecutionPolicy(order="auto"),
                   force=True)
        stats = tuner.stats_dict()
        assert set(stats["backends"]) >= {"batched", "original", "process",
                                          "compiled"}

    def test_auto_ranks_compiled_and_stays_bit_identical(self, hmatrix_2d):
        """A measured tune at a narrow width includes the compiled
        candidate, and resolving auto adds zero perturbation."""
        tuner = Autotuner(reps=1, trial_cols=2)
        H = fresh(hmatrix_2d)
        prof = tuner.tune(H, 2, ExecutionPolicy(order="auto"), force=True)
        assert {"order": "compiled"} in [c["policy"] for c in prof.candidates]
        W = np.random.default_rng(3).random((H.dim, 2))
        pol = prof.best_policy()
        assert _bytes(H.matmul(W, policy=pol)) == \
            _bytes(H.matmul(W, order=pol.order))
