"""repro.analysis: lint rules R001-R004, race certifier, write-set verifier.

The acceptance bar for the analysis layer: each fixture under
``tests/fixtures/analysis/`` fires its rule exactly once, the shipped
tree lints clean (``repro analyze --strict`` exits 0), the certifier
proves a real two-worker engine race-free and flags a seeded overlap,
and a doctored compiled artifact is rejected *before* execution — the
cache degrades to batched bytes, never raises.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro import PlanStore, ProcessEngine, inspector
from repro.analysis import (
    AnalysisError,
    Finding,
    RaceViolation,
    analysis_counters,
    bump_analysis_counter,
    certify_trace,
    certify_trace_dir,
    findings_to_doc,
    lint_paths,
    lint_source,
    reset_analysis_counters,
    seed_overlap_violation,
    verify_artifact,
    verify_artifact_file,
)
from repro.analysis.races import TRACE_VERSION, load_trace, save_trace
from repro.cli import main as cli_main
from repro.codegen.compiled import (
    CompiledArtifact,
    CompiledCache,
    compile_evaluator,
    reset_default_compiled_cache,
    save_compiled_artifact,
)
from repro.tuning.profile import hmatrix_fingerprint

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "analysis"


@pytest.fixture(autouse=True)
def _reset_analysis_state():
    reset_analysis_counters()
    reset_default_compiled_cache()
    yield
    reset_analysis_counters()
    reset_default_compiled_cache()


@pytest.fixture(scope="module")
def H():
    points = np.random.default_rng(7).random((600, 2))
    H = inspector(points, kernel="gaussian", structure="h2-geometric",
                  leaf_size=32)
    assert H.evaluator.decision.batch
    return H


@pytest.fixture(scope="module")
def W(H):
    return np.random.default_rng(8).random((H.dim, 6))


def fresh(H):
    from dataclasses import replace
    return replace(H, _batched=None, _batched_built=False,
                   _compiled=None, _compiled_built=False)


def _bytes(a):
    return np.ascontiguousarray(a).tobytes()


@pytest.fixture(scope="module")
def artifact(H):
    return compile_evaluator(fresh(H)).artifact


def _doctored(artifact, *, source=None, meta=None, **table_overrides):
    """A copy of ``artifact`` with selected parts replaced."""
    return CompiledArtifact(
        meta={**artifact.meta, **(meta or {})},
        source=source if source is not None else artifact.source,
        tables={**artifact.tables, **table_overrides})


def _overlap_near(artifact):
    """Tables whose second near panel writes over the first (the
    single-writer violation the verifier exists to catch)."""
    ns = np.asarray(artifact.tables["near_specs"]).copy()
    assert ns.shape[0] >= 2
    ns[1, 3] = ns[0, 3]  # si column: two panels, same output interval
    return _doctored(artifact, near_specs=ns)


# --------------------------------------------------------------------------
# Lint rules on their fixtures: each fires exactly once, unwaived.
# --------------------------------------------------------------------------

class TestLintFixtures:
    @pytest.mark.parametrize("filename,rule", [
        ("bad_r001.py", "R001"),
        ("bad_r002.py", "R002"),
        ("bad_r003_store.py", "R003"),
        ("bad_r004_manifest.py", "R004"),
    ])
    def test_fixture_fires_exactly_once(self, filename, rule):
        path = FIXTURES / filename
        findings = lint_source(path.read_text(encoding="utf-8"),
                               f"tests/fixtures/analysis/{filename}")
        assert [f.rule for f in findings] == [rule]
        assert not findings[0].waived
        assert findings[0].line > 0

    def test_fixture_directory_totals(self):
        doc = findings_to_doc(lint_paths([FIXTURES], base=REPO_ROOT))
        assert doc["analysis_version"] == 1
        assert doc["by_rule"] == {"R001": 1, "R002": 1,
                                  "R003": 1, "R004": 1}
        assert doc["total"] == doc["unwaived"] == 4
        assert doc["waived"] == 0
        # Findings carry repo-relative posix paths.
        paths = {f["path"] for f in doc["findings"]}
        assert all(p.startswith("tests/fixtures/analysis/") for p in paths)

    def test_r002_locked_write_does_not_fire(self):
        source = (FIXTURES / "bad_r002.py").read_text(encoding="utf-8")
        (finding,) = lint_source(source, "counter.py")
        # The one finding is the unlocked write in racy_increment, not
        # the locked one and not the __init__ assignment.
        assert "racy" not in finding.message  # message names attr + lock
        assert finding.line > source.splitlines().index(
            "    def racy_increment(self):") + 1 - 1

    def test_parse_failure_is_a_finding(self):
        (finding,) = lint_source("def broken(:\n", "oops.py")
        assert finding.rule == "parse"
        assert "does not parse" in finding.message


class TestWaivers:
    def test_same_line_waiver(self):
        source = ("def resolve(policy, fallback):\n"
                  "    return policy or fallback"
                  "  # analysis: waive R001 -- legacy shim\n")
        (finding,) = lint_source(source, "x.py")
        assert finding.rule == "R001"
        assert finding.waived
        assert finding.waiver_reason == "legacy shim"

    def test_own_line_waiver_covers_next_code_line(self):
        source = ("def resolve(policy, fallback):\n"
                  "    # analysis: waive R001 -- documented fallback\n"
                  "    return policy or fallback\n")
        (finding,) = lint_source(source, "x.py")
        assert finding.waived
        assert finding.waiver_reason == "documented fallback"

    def test_waiver_for_other_rule_does_not_apply(self):
        source = ("def resolve(policy, fallback):\n"
                  "    return policy or fallback"
                  "  # analysis: waive R002 -- wrong rule\n")
        (finding,) = lint_source(source, "x.py")
        assert not finding.waived


class TestPathScoping:
    CLOCKY = "import time\n\ndef stamp():\n    return time.time()\n"
    SWALLOW = ("class PlanStoreError(Exception):\n    pass\n\n"
               "def f(p):\n    try:\n        return p.read()\n"
               "    except PlanStoreError:\n        pass\n")

    def test_r004_only_on_scoped_paths(self):
        assert [f.rule for f in lint_source(
            self.CLOCKY, "src/repro/observability/manifest.py")] == ["R004"]
        assert lint_source(self.CLOCKY, "src/repro/core/tree.py") == []

    def test_r003_only_on_scoped_paths(self):
        assert [f.rule for f in lint_source(
            self.SWALLOW, "src/repro/api/store.py")] == ["R003"]
        assert lint_source(self.SWALLOW, "src/repro/core/tree.py") == []


class TestShippedTreeClean:
    def test_src_repro_has_no_unwaived_findings(self):
        findings = lint_paths([REPO_ROOT / "src" / "repro"], base=REPO_ROOT)
        unwaived = [f for f in findings if not f.waived]
        assert unwaived == [], "\n".join(f.format() for f in unwaived)
        # The tree does carry *waived* findings — wall-clock reads
        # (profiling and store mtimes legitimately sample clocks) and
        # one quota-refund write whose callers all hold the lock — so
        # the waiver machinery is live, not vacuous.
        waived = [f for f in findings if f.waived]
        assert waived and all(f.rule in ("R002", "R004") for f in waived)
        assert any(f.rule == "R004" for f in waived)
        assert all(f.waiver_reason for f in waived)


# --------------------------------------------------------------------------
# Race certifier: a real engine certifies clean; a seeded overlap flags.
# --------------------------------------------------------------------------

@pytest.fixture(scope="module")
def engine(H):
    with ProcessEngine(H, num_workers=2) as eng:
        yield eng


@pytest.fixture(scope="module")
def clean_trace(engine, H, W):
    np.testing.assert_array_equal(engine.matmul(W),
                                  H.matmul(W, order="batched"))
    return engine.access_trace()


class TestRaceCertifier:
    def test_real_engine_certifies_race_free(self, clean_trace):
        assert clean_trace["trace_version"] == TRACE_VERSION
        assert clean_trace["num_workers"] == 2
        actors = {a["actor"] for a in clean_trace["accesses"]}
        assert {"master", "worker0", "worker1"} <= actors
        assert certify_trace(clean_trace) == []
        assert analysis_counters()["races_certified"] == 1
        assert analysis_counters()["races_flagged"] == 0

    def test_seeded_overlap_is_flagged(self, clean_trace):
        doctored = seed_overlap_violation(clean_trace)
        violations = certify_trace(doctored)
        assert violations
        v = violations[0]
        assert isinstance(v, RaceViolation)
        assert v.actor_a != v.actor_b
        assert "write" in (v.mode_a, v.mode_b)
        assert v.array in v.format() and v.phase in v.format()
        assert analysis_counters()["races_flagged"] == 1
        # The original trace is untouched (the mutation is a copy).
        assert certify_trace(clean_trace) == []

    def test_seeding_needs_two_writers(self, clean_trace):
        solo = dict(clean_trace,
                    accesses=[a for a in clean_trace["accesses"]
                              if a["actor"] in ("master", "worker0")])
        with pytest.raises(ValueError, match="two distinct writers"):
            seed_overlap_violation(solo)

    def test_version_gate(self):
        with pytest.raises(ValueError, match="not a v1 access trace"):
            certify_trace({"trace_version": 99, "accesses": []})
        with pytest.raises(ValueError, match="not a v1 access trace"):
            certify_trace([])

    def test_trace_roundtrip_and_dir_certification(self, clean_trace,
                                                   tmp_path):
        save_trace(clean_trace, tmp_path / "trace-1.json")
        save_trace(seed_overlap_violation(clean_trace),
                   tmp_path / "trace-2.json")
        assert load_trace(tmp_path / "trace-1.json") == clean_trace
        results = certify_trace_dir(tmp_path)
        assert sorted(results) == ["trace-1.json", "trace-2.json"]
        assert results["trace-1.json"] == []
        assert results["trace-2.json"]

    def test_empty_trace_dir_fails_loudly(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no trace JSONs"):
            certify_trace_dir(tmp_path)

    def test_engine_dumps_trace_on_close(self, H, W, tmp_path,
                                         monkeypatch):
        monkeypatch.setenv("MATROX_TRACE_DIR", str(tmp_path))
        with ProcessEngine(H, num_workers=2) as eng:
            eng.matmul(W)
        results = certify_trace_dir(tmp_path)
        assert len(results) == 1
        assert next(iter(results.values())) == []

    def test_idle_engine_dumps_nothing(self, H, tmp_path, monkeypatch):
        monkeypatch.setenv("MATROX_TRACE_DIR", str(tmp_path))
        with ProcessEngine(H, num_workers=2):
            pass  # never ran: nothing worth certifying
        assert list(tmp_path.glob("*.json")) == []


# --------------------------------------------------------------------------
# Write-set verifier: legit artifacts prove, doctored ones degrade.
# --------------------------------------------------------------------------

class TestWritesetVerifier:
    def test_real_artifact_verifies(self, artifact):
        assert verify_artifact(artifact) is None
        assert analysis_counters()["writeset_verified"] == 1
        assert analysis_counters()["writeset_rejected"] == 0

    def test_overlapping_near_panels_rejected(self, artifact):
        with pytest.raises(AnalysisError, match="single-writer"):
            verify_artifact(_overlap_near(artifact))
        assert analysis_counters()["writeset_rejected"] == 1

    def test_negative_index_rejected(self, artifact):
        gidx = np.asarray(artifact.tables["near_gidx"]).copy()
        assert gidx.size
        gidx[0] = -1
        with pytest.raises(AnalysisError, match="negative index"):
            verify_artifact(_doctored(artifact, near_gidx=gidx))

    def test_out_of_bounds_interval_rejected(self, artifact):
        ns = np.asarray(artifact.tables["near_specs"]).copy()
        ns[0, 3] = int(artifact.meta["dim"])  # si past the last Y row
        with pytest.raises(AnalysisError, match="outside"):
            verify_artifact(_doctored(artifact, near_specs=ns))

    def test_duplicate_ownership_rejected(self, artifact):
        own = np.asarray(artifact.tables["up_own"]).copy()
        assert own.size >= 2
        own[1] = own[0]
        with pytest.raises(AnalysisError, match="ownership"):
            verify_artifact(_doctored(artifact, up_own=own))

    @pytest.mark.parametrize("source,match", [
        ("import os\n", "one function definition"),
        ("def hmatmul_compiled(W, Y, T, S):\n    print(W)\n",
         "only"),
        ("def wrong_name(W, Y, T, S):\n    return Y\n", "named"),
        ("def hmatmul_compiled(W, Y, T, S):\n"
         "    _scatter_add(W, [0], [0])\n", "may only touch"),
        ("def hmatmul_compiled(W, Y, T, S):\n"
         "    x = [i for i in range(3)]\n", "disallowed"),
    ])
    def test_source_discipline(self, artifact, source, match):
        with pytest.raises(AnalysisError, match=match):
            verify_artifact(_doctored(artifact, source=source))

    def test_meta_without_dims_rejected(self, artifact):
        meta = {k: v for k, v in artifact.meta.items() if k != "dim"}
        bad = CompiledArtifact(meta=meta, source=artifact.source,
                               tables=artifact.tables)
        with pytest.raises(AnalysisError, match="dim/rank_rows"):
            verify_artifact(bad)

    def test_verify_artifact_file(self, artifact, tmp_path):
        good = tmp_path / "good.npz"
        save_compiled_artifact(artifact, good)
        assert verify_artifact_file(good) is None
        garbage = tmp_path / "garbage.npz"
        garbage.write_bytes(b"not an npz")
        with pytest.raises(AnalysisError, match="rejected"):
            verify_artifact_file(garbage)


class TestDoctoredArtifactServing:
    def test_doctored_store_artifact_degrades_to_batched(self, H, W,
                                                         artifact,
                                                         tmp_path):
        store = PlanStore(tmp_path)
        cache = CompiledCache(store=store)
        Hf = fresh(H)
        store.put("compiled", cache.key(hmatrix_fingerprint(Hf)),
                  _overlap_near(artifact))
        store.clear_memory()
        reset_analysis_counters()

        # Rejected before execution: typed fallback, no exception, no
        # rebuild masking the event.
        assert cache.evaluator_for(Hf) is None
        assert cache.stats.fallbacks == {"writeset_violation": 1}
        assert cache.stats.builds == 0
        assert analysis_counters()["writeset_rejected"] == 1
        # ...and serving degrades to the batched bytes.
        assert _bytes(Hf.matmul(W, order="compiled")) == \
            _bytes(Hf.matmul(W, order="batched"))

    def test_clean_store_artifact_is_verified_then_served(self, H, W,
                                                          artifact,
                                                          tmp_path):
        store = PlanStore(tmp_path)
        cache = CompiledCache(store=store)
        Hf = fresh(H)
        store.put("compiled", cache.key(hmatrix_fingerprint(Hf)), artifact)
        store.clear_memory()
        reset_analysis_counters()

        assert cache.evaluator_for(Hf) is not None
        assert cache.stats.store_hits == 1
        assert cache.stats.fallbacks == {}
        assert analysis_counters()["writeset_verified"] == 1

    def test_fresh_builds_are_verified_too(self, H):
        cache = CompiledCache()
        reset_analysis_counters()
        assert cache.evaluator_for(fresh(H)) is not None
        assert cache.stats.builds == 1
        assert analysis_counters()["writeset_verified"] == 1


# --------------------------------------------------------------------------
# Counters and observability wiring.
# --------------------------------------------------------------------------

class TestCounters:
    def test_bump_and_snapshot(self):
        bump_analysis_counter("lint_findings", 3)
        bump_analysis_counter("lint_findings")
        snap = analysis_counters()
        assert snap["lint_findings"] == 4
        snap["lint_findings"] = 0  # a copy, not the live dict
        assert analysis_counters()["lint_findings"] == 4

    def test_unknown_counter_fails_loudly(self):
        with pytest.raises(KeyError, match="unknown analysis counter"):
            bump_analysis_counter("writset_verified")

    def test_reset(self):
        bump_analysis_counter("races_certified")
        reset_analysis_counters()
        assert set(analysis_counters().values()) == {0}

    def test_collect_stats_exposes_analysis_section(self):
        from repro.observability.stats import collect_stats

        bump_analysis_counter("writeset_verified")
        section = collect_stats()["analysis"]
        assert section["writeset_verified"] == 1
        assert {"writeset_rejected", "races_certified", "races_flagged",
                "lint_findings"} <= set(section)


# --------------------------------------------------------------------------
# CLI: `repro analyze` exit codes and findings JSON.
# --------------------------------------------------------------------------

class TestAnalyzeCLI:
    def test_clean_tree_strict_exits_zero(self, capsys):
        assert cli_main(["analyze", "--strict",
                         str(REPO_ROOT / "src" / "repro")]) == 0
        out = capsys.readouterr().out
        assert "0 unwaived" in out

    def test_fixtures_fail_strict_and_write_json(self, tmp_path, capsys):
        out_json = tmp_path / "findings.json"
        assert cli_main(["analyze", "--strict", "--json", str(out_json),
                         str(FIXTURES)]) == 1
        doc = json.loads(out_json.read_text())
        assert doc["unwaived"] == 4
        assert doc["by_rule"] == {"R001": 1, "R002": 1,
                                  "R003": 1, "R004": 1}
        err = capsys.readouterr().err
        assert "strict mode: 4 failure(s)" in err

    def test_fixtures_without_strict_exit_zero(self, capsys):
        assert cli_main(["analyze", str(FIXTURES)]) == 0
        assert "4 unwaived" in capsys.readouterr().out

    def test_missing_path_exits_two(self, capsys):
        assert cli_main(["analyze", "/no/such/tree.py"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_race_replay(self, clean_trace, tmp_path, capsys):
        save_trace(clean_trace, tmp_path / "t.json")
        assert cli_main(["analyze", "--strict", "--races", str(tmp_path),
                         str(REPO_ROOT / "src" / "repro")]) == 0
        assert "1 engine trace(s) certified, 0 race(s)" in \
            capsys.readouterr().out

        save_trace(seed_overlap_violation(clean_trace),
                   tmp_path / "doctored.json")
        assert cli_main(["analyze", "--strict", "--races", str(tmp_path),
                         str(REPO_ROOT / "src" / "repro")]) == 1
        assert "RACE" in capsys.readouterr().out

    def test_race_replay_empty_dir_exits_two(self, tmp_path, capsys):
        assert cli_main(["analyze", "--races", str(tmp_path),
                         str(FIXTURES / "bad_r001.py")]) == 2
        assert "no trace JSONs" in capsys.readouterr().err

    def test_artifact_verification(self, artifact, tmp_path, capsys):
        good = tmp_path / "good.npz"
        save_compiled_artifact(artifact, good)
        assert cli_main(["analyze", "--strict", "--artifact", str(good),
                         str(REPO_ROOT / "src" / "repro")]) == 0
        assert "write sets verified" in capsys.readouterr().out

        bad = tmp_path / "bad.npz"
        save_compiled_artifact(_overlap_near(artifact), bad)
        assert cli_main(["analyze", "--strict", "--artifact", str(bad),
                         str(REPO_ROOT / "src" / "repro")]) == 1
        assert "single-writer" in capsys.readouterr().err

    def test_json_doc_records_extras(self, clean_trace, artifact,
                                     tmp_path):
        save_trace(clean_trace, tmp_path / "t.json")
        npz = tmp_path / "art.npz"
        save_compiled_artifact(artifact, npz)
        out_json = tmp_path / "doc.json"
        assert cli_main(["analyze", "--json", str(out_json),
                         "--races", str(tmp_path), "--artifact", str(npz),
                         str(FIXTURES / "bad_r001.py")]) == 0
        doc = json.loads(out_json.read_text())
        assert doc["races"] == {"traces": 1, "violations": 0}
        assert doc["artifact"]["verified"] is True
        assert doc["unwaived"] == 1


def test_finding_format_is_clickable():
    f = Finding(rule="R001", path="src/repro/x.py", line=3, col=4,
                message="policy coalesced")
    assert f.format() == "src/repro/x.py:3:4: R001 policy coalesced"
    f.waived, f.waiver_reason = True, "because"
    assert f.format().endswith("[waived: because]")
