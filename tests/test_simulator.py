"""Unit tests for the discrete-event machine simulator."""

import pytest

from repro.runtime import HASWELL, KNL, simulate_dynamic, simulate_phases
from repro.runtime.tasks import Phase, Task


def mk_task(flops=1e7, nbytes=1e5, affinity=0, deps=(), atomic=False,
            out_elems=0.0):
    return Task("t", flops, nbytes, affinity=affinity, deps=deps,
                atomic=atomic, out_elems=out_elems)


class TestStaticPhases:
    def test_serial_phase_sums_tasks(self):
        ph = Phase("s", "serial", [[mk_task(), mk_task()]])
        one = simulate_phases([Phase("s", "serial", [[mk_task()]])], HASWELL)
        two = simulate_phases([ph], HASWELL)
        assert two.time_s == pytest.approx(2 * one.time_s, rel=1e-6)

    def test_parallel_for_speedup(self):
        units = [[mk_task()] for _ in range(48)]
        t1 = simulate_phases([Phase("p", "parallel_for", units)], HASWELL, p=1)
        t12 = simulate_phases([Phase("p", "parallel_for", units)], HASWELL, p=12)
        assert 6 < t1.time_s / t12.time_s <= 12.5

    def test_parallel_units_limited_by_slowest(self):
        fast = [mk_task(flops=1e6)]
        slow = [mk_task(flops=1e8)]
        res = simulate_phases(
            [Phase("p", "parallel_units", [fast, slow])], HASWELL, p=2
        )
        only_slow = simulate_phases(
            [Phase("p", "parallel_units", [slow])], HASWELL, p=1
        )
        assert res.time_s >= only_slow.time_s * 0.99

    def test_parallel_units_fold_when_more_than_p(self):
        units = [[mk_task()] for _ in range(10)]
        res = simulate_phases(
            [Phase("p", "parallel_units", units)], HASWELL, p=2
        )
        assert res.num_tasks == 10
        # Folded onto 2 workers: ~5 tasks each.
        single = simulate_phases(
            [Phase("p", "parallel_units", units[:1])], HASWELL, p=2
        )
        assert res.time_s > 4 * single.time_s

    def test_blas_phase_uses_all_cores(self):
        tasks = [mk_task(flops=1e9)]
        r1 = simulate_phases([Phase("b", "blas", [tasks])], HASWELL, p=1)
        r12 = simulate_phases([Phase("b", "blas", [tasks])], HASWELL, p=12)
        assert r1.time_s > 5 * r12.time_s

    def test_atomic_tasks_cost_more(self):
        plain = [[mk_task(out_elems=1e6)] for _ in range(8)]
        atomics = [[mk_task(out_elems=1e6, atomic=True)] for _ in range(8)]
        t_plain = simulate_phases(
            [Phase("p", "parallel_for", plain, atomic_per_task=True)],
            HASWELL, p=4)
        t_atomic = simulate_phases(
            [Phase("p", "parallel_for", atomics, atomic_per_task=True)],
            HASWELL, p=4)
        assert t_atomic.time_s > t_plain.time_s * 1.5

    def test_locality_inflates_time(self):
        units = [[mk_task()] for _ in range(16)]
        base = simulate_phases([Phase("p", "parallel_for", units)],
                               HASWELL, p=4, locality=1.0)
        worse = simulate_phases([Phase("p", "parallel_for", units)],
                                HASWELL, p=4, locality=2.0)
        assert worse.time_s > 1.5 * base.time_s

    def test_contention_beta_hurts_scaling(self):
        units = [[mk_task()] for _ in range(96)]
        no_c = simulate_phases([Phase("p", "parallel_for", units)],
                               HASWELL, p=12, locality=2.0,
                               contention_beta=0.0)
        with_c = simulate_phases([Phase("p", "parallel_for", units)],
                                 HASWELL, p=12, locality=2.0,
                                 contention_beta=0.1)
        assert with_c.time_s > no_c.time_s

    def test_unknown_phase_kind(self):
        with pytest.raises(ValueError):
            simulate_phases([Phase("x", "wavefront", [[mk_task()]])], HASWELL)

    def test_phase_times_recorded(self):
        res = simulate_phases(
            [Phase("a", "serial", [[mk_task()]]),
             Phase("b", "serial", [[mk_task()]])], HASWELL)
        assert set(res.phase_times) == {"a", "b"}
        assert res.time_s == pytest.approx(sum(res.phase_times.values()))


class TestDynamicScheduler:
    def test_empty_graph(self):
        res = simulate_dynamic([], HASWELL)
        assert res.time_s == 0.0

    def test_independent_tasks_scale(self):
        tasks = [mk_task(affinity=i) for i in range(64)]
        t1 = simulate_dynamic(tasks, HASWELL, p=1)
        t12 = simulate_dynamic(tasks, HASWELL, p=12)
        assert t1.time_s / t12.time_s > 3

    def test_chain_does_not_scale(self):
        tasks = [mk_task(deps=(i - 1,) if i else ()) for i in range(16)]
        t1 = simulate_dynamic(tasks, HASWELL, p=1)
        t8 = simulate_dynamic(tasks, HASWELL, p=8)
        assert t8.time_s >= 0.9 * t1.time_s  # a chain is a chain

    def test_dependencies_respected_in_makespan(self):
        # Diamond: 1 -> (2, 3) -> 4; must take >= 3 task durations.
        tasks = [
            mk_task(), mk_task(deps=(0,)), mk_task(deps=(0,)),
            mk_task(deps=(1, 2)),
        ]
        one = simulate_dynamic([mk_task()], HASWELL, p=1).time_s
        res = simulate_dynamic(tasks, HASWELL, p=4)
        assert res.time_s >= 2.5 * one

    def test_migration_penalty_with_many_affinities(self):
        # Same worker ping-ponged across data regions pays migrations.
        same = [mk_task(affinity=0) for _ in range(32)]
        mixed = [mk_task(affinity=i % 8) for i in range(32)]
        t_same = simulate_dynamic(same, HASWELL, p=4)
        t_mixed = simulate_dynamic(mixed, HASWELL, p=4)
        assert t_mixed.time_s > t_same.time_s

    def test_queue_contention_at_high_core_count(self):
        """The central queue serializes: with many tiny tasks the marginal
        benefit of extra cores vanishes (the paper's GOFMM 34->68 drop)."""
        tasks = [mk_task(flops=5e4, nbytes=1e3, affinity=i) for i in range(600)]
        t34 = simulate_dynamic(tasks, KNL, p=34)
        t68 = simulate_dynamic(tasks, KNL, p=68)
        assert t68.time_s > 0.8 * t34.time_s  # little to no gain

    def test_busy_accounting(self):
        tasks = [mk_task() for _ in range(10)]
        res = simulate_dynamic(tasks, HASWELL, p=2)
        assert 0 < res.busy_s <= res.time_s * 2 + 1e-9
        assert res.num_tasks == 10
